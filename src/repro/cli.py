"""``ceresz`` command-line interface.

Subcommands::

    ceresz compress   IN.f32 OUT.csz  --rel 1e-3 | --eps 0.01 | --psnr 80
                      [--predictor P] [--jobs N] [--no-index] [--checksum]
                      [--no-fast] [--trace T.json] [--metrics]
                      [--ledger [PATH]]
    ceresz decompress IN.csz  OUT.f32 [--jobs N] [--salvage [--fill F]]
                      [--predictor P] [--no-fast] [--trace T.json] [--metrics]
                      [--ledger [PATH]]
    ceresz verify     IN.csz [--json OUT.json]     # checksum walk, no decode
    ceresz extract    IN.csz OUT.f32 --start A --stop B   # random access
    ceresz info       IN.csz                       # stream header dump
    ceresz stream     T0.f32 T1.f32 ... --out RUN.cszs --eps E
                      [--jobs N] [--no-index]
    ceresz unstream   RUN.cszs --prefix OUT_
    ceresz dataset    NAME [--field N] [--out F]   # synthesize a field
    ceresz table      {1,2,3,4,5}                  # regenerate a paper table
    ceresz figure     {7,10,11,12,13,14,15}        # regenerate a paper figure
    ceresz observations                            # the three boxed claims
    ceresz validate                                # calibration + model audit
    ceresz reproduce  [--out DIR] [--quick]        # everything + REPORT.md
    ceresz simulate   IN.f32 --rows R --cols C --strategy multi
                      [--mode {event,hybrid}] [--tile-rows]
                      [--jobs N|auto] [--profile] [--trace T.json]
                      [--metrics] [--trace-level L] [--sample-every N]
                      [--ledger [PATH]] [--progress]
                      # alias: sim
    ceresz trace      T.json [--top N]    # summarize a saved trace
    ceresz report     [--ledger PATH] [--baseline BENCH.json ...]
                      [--kind K] [--gate] [--verbose]
                      # regression report over the run ledger

Tables and figures print in the same layout the benchmarks log; the
compress path is the production-style usage.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro import CereSZ, __version__
from repro.core.predictors import predictor_names
from repro.datasets import generate_field, get_dataset, load_f32, save_f32
from repro.metrics.errorbound import max_abs_error


def _jobs_arg(value: str):
    """``--jobs`` accepts a worker count or ``auto`` (size to the host)."""
    if value == "auto":
        return value
    return int(value)


def _add_obs_flags(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--trace", metavar="OUT.json",
        help="write a Chrome trace-event JSON of the run "
        "(load in Perfetto / chrome://tracing)",
    )
    p.add_argument(
        "--metrics", action="store_true",
        help="print the run's metrics registry when done",
    )
    p.add_argument(
        "--ledger", nargs="?", const=True, default=None, metavar="PATH",
        help="append a provenance-stamped RunRecord to the run ledger "
        "(default path .ceresz/ledger.jsonl, or $CERESZ_LEDGER; "
        "`ceresz report` analyzes it)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="ceresz",
        description="CereSZ reproduction: error-bounded lossy compression "
        "on a simulated Cerebras CS-2.",
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("compress", help="compress a raw .f32 field")
    p.add_argument("input")
    p.add_argument("output")
    group = p.add_mutually_exclusive_group(required=True)
    group.add_argument("--rel", type=float, help="value-range relative bound")
    group.add_argument("--eps", type=float, help="absolute error bound")
    group.add_argument(
        "--psnr", type=float, help="target reconstruction quality in dB"
    )
    p.add_argument(
        "--shape",
        type=lambda s: tuple(int(d) for d in s.split("x")),
        help="field shape, e.g. 512x512x512 (default: flat)",
    )
    p.add_argument(
        "--no-index", dest="index", action="store_false",
        help="write a v1 stream without the per-block fl table "
        "(decoding falls back to the sequential header walk)",
    )
    p.add_argument(
        "--jobs", type=int,
        help="shard the field and compress shards on N workers",
    )
    p.add_argument(
        "--checksum", action="store_true",
        help="write a v3 stream with CRC32C integrity metadata "
        "(ceresz verify / --salvage need this)",
    )
    p.add_argument(
        "--no-fast", dest="fast", action="store_false",
        help="use the reference multi-stage kernels instead of the fused "
        "fast path (identical bytes, mainly for debugging/benchmarks)",
    )
    p.add_argument(
        "--predictor", choices=predictor_names(), default="lorenzo1d",
        help="prediction stage (default: lorenzo1d, the paper's "
        "wafer-mappable choice; others are registry extensions — see "
        "DESIGN.md)",
    )
    _add_obs_flags(p)

    p = sub.add_parser("decompress", help="decompress a .csz stream")
    p.add_argument("input")
    p.add_argument("output")
    p.add_argument(
        "--jobs", type=int,
        help="decode shard containers on N workers",
    )
    p.add_argument(
        "--salvage", action="store_true",
        help="decode what still verifies, fill corrupt blocks, and print "
        "a salvage report instead of failing on bad bytes",
    )
    p.add_argument(
        "--fill", choices=("zero", "previous"), default="zero",
        help="fill for salvaged-away blocks (default: zero)",
    )
    p.add_argument(
        "--no-fast", dest="fast", action="store_false",
        help="use the reference multi-stage decode instead of the fused "
        "fast path (identical output, mainly for debugging/benchmarks)",
    )
    p.add_argument(
        "--predictor", choices=predictor_names(),
        help="assert the stream was written with this predictor (decode "
        "always dispatches on the header; this flag just fails fast on a "
        "mismatch)",
    )
    _add_obs_flags(p)

    p = sub.add_parser(
        "verify",
        help="walk a stream's checksums without decoding payloads",
    )
    p.add_argument("input")
    p.add_argument(
        "--json", metavar="OUT.json",
        help="also write the IntegrityReport as JSON",
    )
    p.add_argument(
        "--ledger", nargs="?", const=True, default=None, metavar="PATH",
        help="append the verification outcome to the run ledger "
        "(default .ceresz/ledger.jsonl, or $CERESZ_LEDGER)",
    )

    p = sub.add_parser("info", help="describe a compressed stream")
    p.add_argument("input")

    p = sub.add_parser(
        "extract",
        help="random-access: reconstruct one element range of a stream",
    )
    p.add_argument("input")
    p.add_argument("output")
    p.add_argument("--start", type=int, required=True)
    p.add_argument("--stop", type=int, required=True)

    p = sub.add_parser("dataset", help="synthesize a dataset field")
    p.add_argument("name")
    p.add_argument("--field", type=int, default=0)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--out", help="write raw .f32 here instead of summarizing")

    p = sub.add_parser("table", help="regenerate a paper table")
    p.add_argument("number", type=int, choices=(1, 2, 3, 4, 5))

    p = sub.add_parser("figure", help="regenerate a paper figure")
    p.add_argument("number", type=int, choices=(7, 10, 11, 12, 13, 14, 15))

    p = sub.add_parser(
        "stream", help="frame-compress several .f32 snapshots into one file"
    )
    p.add_argument("inputs", nargs="+", help="raw .f32 snapshot files")
    p.add_argument("--out", required=True)
    p.add_argument("--eps", type=float, required=True,
                   help="shared absolute error bound for every frame")
    p.add_argument(
        "--no-index", dest="index", action="store_false",
        help="write v1 frames without per-block fl tables",
    )
    p.add_argument(
        "--jobs", type=int,
        help="shard each frame and compress shards on N workers",
    )

    p = sub.add_parser(
        "unstream", help="expand a framed stream back into .f32 snapshots"
    )
    p.add_argument("input")
    p.add_argument("--prefix", required=True,
                   help="output files are <prefix><index>.f32")
    p.add_argument(
        "--jobs", type=int,
        help="decode sharded frames on N workers",
    )

    p = sub.add_parser(
        "observations",
        help="re-derive the paper's three boxed Observations",
    )

    p = sub.add_parser(
        "validate",
        help="audit the cycle-model calibration and the sim-vs-model fit",
    )

    p = sub.add_parser(
        "reproduce",
        help="regenerate every table, figure, and audit into one folder",
    )
    p.add_argument("--out", default="reproduction")
    p.add_argument(
        "--quick", action="store_true",
        help="narrow dataset/field coverage for a fast smoke run",
    )

    p = sub.add_parser(
        "simulate", aliases=["sim"], help="compress on the WSE simulator"
    )
    p.add_argument("input")
    p.add_argument("--rows", type=int, default=2)
    p.add_argument("--cols", type=int, default=4)
    p.add_argument(
        "--strategy", choices=("rows", "pipeline", "multi"), default="multi"
    )
    p.add_argument("--pipeline-length", type=int, default=1)
    p.add_argument(
        "--predictor", choices=predictor_names(), default="lorenzo1d",
        help="block-local predictor to lower onto the mesh (whole-array "
        "predictors are rejected with their locality contract)",
    )
    p.add_argument("--rel", type=float, default=1e-3)
    p.add_argument(
        "--limit-blocks", type=int, default=64,
        help="simulate only the first N blocks (event-level sim is slow)",
    )
    p.add_argument(
        "--mode", choices=("event", "hybrid"), default="event",
        help="'event' simulates every PE; 'hybrid' event-simulates one "
        "representative per homogeneous row class and replicates the "
        "rest analytically (cycle-exact, orders of magnitude faster at "
        "wafer scale)",
    )
    p.add_argument(
        "--tile-rows", action="store_true",
        help="treat the input as ONE row's data and replicate it across "
        "all --rows rows (the wafer-scale fast path: the full plan is "
        "never materialized)",
    )
    p.add_argument(
        "--jobs", type=_jobs_arg, default=1, metavar="N|auto",
        help="row-parallel worker processes, or 'auto' to size to the "
        "host (results identical for any value)",
    )
    p.add_argument(
        "--profile", action="store_true",
        help="run under cProfile and print the top 25 functions by "
        "cumulative time",
    )
    p.add_argument(
        "--progress", action="store_true",
        help="emit periodic rows-done/ETA lines during long hybrid "
        "compositions (structured key=value records on stderr)",
    )
    _add_obs_flags(p)
    p.add_argument(
        "--trace-level", choices=("off", "spans", "timeline"),
        help="capture detail (default: timeline when --trace is given, "
        "off otherwise)",
    )
    p.add_argument(
        "--sample-every", type=int, default=1,
        help="keep every Nth task per PE in the timeline (default 1 = all)",
    )
    p.add_argument(
        "--inject-faults", metavar="SPEC",
        help="deterministic fault plan: ';'-separated segments "
        "'seed:S', 'halt:R,C@CYCLE', 'drop:R,C,COLOR#NTH', "
        "'dup:R,C,COLOR#NTH', 'flip:R,C,BUFFER,BIT@CYCLE', "
        "'link:R,C,DIR', or 'random:<seed>,<n>' which draws N faults "
        "over the whole --rows x --cols mesh from FaultPlan.random "
        "(e.g. 'random:7,4'); coordinates are validated against the "
        "mesh at parse time (see repro.faults.parse_fault_spec)",
    )
    p.add_argument(
        "--fault-report", metavar="OUT.json",
        help="write the structured FaultReport JSON when the injected "
        "faults stall the run (also written on clean survival, as an "
        "empty report)",
    )
    p.add_argument(
        "--on-fault", choices=("raise", "repair", "fallback"),
        default="raise",
        help="stall handling: 'raise' fails the run (default); 'repair' "
        "remaps condemned rows onto spares or a shrunk replan and "
        "retries; 'fallback' routes their blocks through the host fast "
        "path immediately",
    )
    p.add_argument(
        "--max-repairs", type=int, default=2,
        help="bound on wafer-side repair attempts before degrading to "
        "the host fallback (default 2)",
    )
    p.add_argument(
        "--spare-rows", type=int, default=0,
        help="grow the mesh by N idle spare rows for repairs to remap "
        "condemned rows onto (default 0)",
    )
    p.add_argument(
        "--repair-report", metavar="OUT.json",
        help="write the structured RepairReport JSON after a "
        "self-healing run (only with --on-fault repair/fallback)",
    )

    p = sub.add_parser(
        "trace", help="summarize a saved Chrome trace JSON"
    )
    p.add_argument("input")
    p.add_argument(
        "--top", type=int, default=10,
        help="rows per ranking (spans, PEs, hotspots)",
    )

    p = sub.add_parser(
        "report",
        help="cross-run regression report over the run ledger",
    )
    p.add_argument(
        "--ledger", nargs="?", const=True, default=True, metavar="PATH",
        help="ledger to analyze (default .ceresz/ledger.jsonl, or "
        "$CERESZ_LEDGER)",
    )
    p.add_argument(
        "--baseline", action="append", default=[], metavar="BENCH.json",
        help="committed baseline file(s) to compare the newest matching "
        "bench record against (repeatable)",
    )
    p.add_argument(
        "--kind", choices=("compress", "decompress", "sim", "bench"),
        help="restrict to records of one kind",
    )
    p.add_argument(
        "--gate", action="store_true",
        help="exit nonzero when any comparison flags a regression (CI)",
    )
    p.add_argument(
        "--verbose", action="store_true",
        help="print every compared metric, not just regressions",
    )

    p = sub.add_parser(
        "plan",
        help="print the mapping plan a simulate run would lower (no sim)",
    )
    p.add_argument("input")
    p.add_argument("--rows", type=int, default=2)
    p.add_argument("--cols", type=int, default=4)
    p.add_argument(
        "--strategy", choices=("rows", "pipeline", "multi"), default="multi"
    )
    p.add_argument("--pipeline-length", type=int, default=1)
    p.add_argument(
        "--predictor", choices=predictor_names(), default="lorenzo1d",
        help="block-local predictor to place in the plan (whole-array "
        "predictors are rejected with their locality contract)",
    )
    p.add_argument("--rel", type=float, default=1e-3)
    p.add_argument(
        "--limit-blocks", type=int, default=64,
        help="plan only the first N blocks",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    from repro.errors import ReproError

    args = build_parser().parse_args(argv)
    handler = globals()[f"_cmd_{args.command}"]
    try:
        return handler(args)
    except ReproError as exc:
        # Structured library failures (corrupt streams, bound violations,
        # dead workers) are user-facing conditions, not crashes.
        print(f"ceresz {args.command}: {type(exc).__name__}: {exc}",
              file=sys.stderr)
        hint = getattr(exc, "blocks", None)
        if hint:
            print(
                "hint: `ceresz verify` localizes the damage; "
                "`ceresz decompress --salvage` recovers the intact blocks",
                file=sys.stderr,
            )
        return 1


def _host_observers(args):
    """Tracer/registry for the host codec commands (spans only: there is
    no wafer timeline in host compression)."""
    from repro.obs import MetricsRegistry, Tracer

    tracer = Tracer(level="spans") if args.trace else None
    metrics = (
        MetricsRegistry() if (args.metrics or args.trace) else None
    )
    return tracer, metrics


def _finish_observers(
    args, tracer, metrics, *, recorder=None, run_info=None
) -> None:
    from repro.obs import build_chrome_trace, write_chrome_trace

    if args.trace:
        trace = build_chrome_trace(
            tracer, recorder=recorder, metrics=metrics, run_info=run_info
        )
        write_chrome_trace(args.trace, trace)
        print(f"trace -> {args.trace} ({len(trace['traceEvents'])} events)")
    if args.metrics and metrics is not None:
        print(metrics.render())


def _cmd_compress(args) -> int:
    from repro.obs.tracing import NULL_TRACER

    tracer, metrics = _host_observers(args)
    tr = tracer or NULL_TRACER
    with tr.span("load", path=args.input):
        data = load_f32(args.input, args.shape)
    codec = CereSZ(fast=args.fast, predictor=args.predictor)
    with tr.span("compress", jobs=args.jobs or 1):
        result = codec.compress(
            data,
            eps=args.eps,
            rel=args.rel,
            psnr=args.psnr,
            index=args.index,
            jobs=args.jobs,
            metrics=metrics,
            checksum=args.checksum,
            ledger=args.ledger,
        )
    with tr.span("write", path=args.output):
        with open(args.output, "wb") as fh:
            fh.write(result.stream)
    print(
        f"{args.input}: {result.original_bytes} -> {result.compressed_bytes} "
        f"bytes (ratio {result.ratio:.2f}, eps {result.eps:g}, "
        f"zero blocks {result.zero_block_fraction:.1%})"
    )
    _finish_observers(args, tracer, metrics)
    return 0


def _cmd_decompress(args) -> int:
    from repro.obs.tracing import NULL_TRACER

    tracer, metrics = _host_observers(args)
    tr = tracer or NULL_TRACER
    with tr.span("load", path=args.input):
        with open(args.input, "rb") as fh:
            stream = fh.read()
    codec = CereSZ(fast=args.fast)
    if args.predictor:
        from repro.core.parallel import is_sharded
        from repro.errors import FormatError

        if not is_sharded(stream):
            written = codec.describe_stream(stream).predictor
            if written != args.predictor:
                raise FormatError(
                    f"stream was written with predictor {written!r}, "
                    f"not {args.predictor!r}"
                )
    if args.salvage:
        from repro.core.decompressor import salvage_decompress

        with tr.span("salvage", fill=args.fill):
            field, report = salvage_decompress(
                stream, codec=codec, fill=args.fill, metrics=metrics,
                ledger=args.ledger,
            )
        print(report.describe())
    else:
        with tr.span("decompress", jobs=args.jobs or 1):
            field = codec.decompress(
                stream, jobs=args.jobs, metrics=metrics, ledger=args.ledger
            )
    with tr.span("write", path=args.output):
        save_f32(args.output, field)
    print(f"{args.input}: reconstructed {field.size} values -> {args.output}")
    _finish_observers(args, tracer, metrics)
    return 0


def _cmd_verify(args) -> int:
    from repro.core.decompressor import verify_stream

    with open(args.input, "rb") as fh:
        stream = fh.read()
    report = verify_stream(stream, ledger=args.ledger)
    print(report.describe())
    if args.json:
        with open(args.json, "w") as fh:
            fh.write(report.to_json())
        print(f"report -> {args.json}")
    return 0 if report.ok else 1


def _cmd_extract(args) -> int:
    from repro.core.access import decompress_range

    with open(args.input, "rb") as fh:
        stream = fh.read()
    part = decompress_range(stream, args.start, args.stop)
    save_f32(args.output, part)
    print(
        f"{args.input}[{args.start}:{args.stop}] -> {args.output} "
        f"({part.size} values)"
    )
    return 0


def _cmd_info(args) -> int:
    from repro.core.parallel import is_sharded, read_shard_table

    with open(args.input, "rb") as fh:
        stream = fh.read()
    if is_sharded(stream):
        shape, is_f64, eps, spans = read_shard_table(stream)
        print(f"container:    sharded ({len(spans)} shards)")
        print(f"shape:        {'x'.join(str(d) for d in shape)}")
        print(f"dtype:        {'f8' if is_f64 else 'f4'}")
        print(f"eps:          {eps:g}")
        print(f"stream bytes: {len(stream)}")
        return 0
    header = CereSZ().describe_stream(stream)
    kind = ""
    if header.checksum:
        kind = f" (indexed, checksummed, crc_group={header.crc_group})"
    elif header.indexed:
        kind = " (indexed)"
    print(f"container:    v{header.version}{kind}")
    print(f"shape:        {'x'.join(str(d) for d in header.shape)}")
    print(f"predictor:    {header.predictor}")
    print(f"block size:   {header.block_size}")
    print(f"header width: {header.header_width} B/block")
    print(f"eps (eff.):   {header.eps:g}")
    print(f"constant:     {header.constant}")
    print(f"stream bytes: {len(stream)}")
    return 0


def _cmd_dataset(args) -> int:
    info = get_dataset(args.name)
    field = generate_field(args.name, args.field, seed=args.seed)
    if args.out:
        save_f32(args.out, field)
        print(f"{args.name}[{args.field}] -> {args.out} ({field.nbytes} B)")
    else:
        print(
            f"{args.name}[{args.field}]: shape {field.shape}, domain "
            f"{info.domain}, min {field.min():.4g}, max {field.max():.4g}, "
            f"mean {field.mean():.4g}"
        )
    return 0


def _cmd_table(args) -> int:
    from repro.harness import (
        format_table,
        table1_stage_cycles,
        table2_prequant_breakdown,
        table3_encoding_breakdown,
        table4_datasets,
        table5_compression_ratio,
    )

    n = args.number
    if n == 1:
        rows = table1_stage_cycles()
        print(
            format_table(
                ["Dataset", "fl", "Pre-Quant.", "Loren. Pred.", "FL Encd.",
                 "paper (PQ, LP, FL)"],
                [
                    [r.dataset, r.fixed_length, r.prequant, r.lorenzo,
                     r.fl_encode, r.paper]
                    for r in rows
                ],
                title="Table 1: Execution cycles for three steps",
            )
        )
    elif n == 2:
        rows = table2_prequant_breakdown()
        print(
            format_table(
                ["Dataset", "Pre-Quant.", "Multiplication", "Addition",
                 "paper"],
                [
                    [r.dataset, r.prequant, r.multiplication, r.addition,
                     r.paper]
                    for r in rows
                ],
                title="Table 2: Breakdown cycles for Pre-Quantization",
            )
        )
    elif n == 3:
        rows = table3_encoding_breakdown()
        print(
            format_table(
                ["Dataset", "fl", "FL Encd.", "Sign", "Max", "GetLength",
                 "Bit-shuffle", "paper"],
                [
                    [r.dataset, r.fixed_length, r.fl_encode, r.sign, r.max,
                     r.get_length, r.bit_shuffle, r.paper]
                    for r in rows
                ],
                title="Table 3: Breakdown cycles for Fixed-Length Encoding",
            )
        )
    elif n == 4:
        rows = table4_datasets()
        print(
            format_table(
                ["Dataset", "No. of Fields", "Dim. per Field (paper)",
                 "Dim. per Field (synthetic)", "Domain"],
                [
                    [r["dataset"], r["num_fields"], r["paper_shape"],
                     r["synthetic_shape"], r["domain"]]
                    for r in rows
                ],
                title="Table 4: Datasets for evaluating CereSZ",
            )
        )
    else:
        rows = table5_compression_ratio()
        print(
            format_table(
                ["Compressor", "Dataset", "REL", "range", "avg", "fields"],
                [
                    [r.compressor, r.dataset, f"{r.rel:g}",
                     f"{r.min:.2f}~{r.max:.2f}", f"{r.avg:.2f}",
                     r.num_fields]
                    for r in rows
                ],
                title="Table 5: Compression ratio (measured streams)",
            )
        )
    return 0


def _cmd_figure(args) -> int:
    from repro.harness import (
        fig7_row_scaling,
        fig10_relay_and_execution,
        fig11_compression_throughput,
        fig12_decompression_throughput,
        fig13_pipeline_lengths,
        fig14_wse_sizes,
        fig15_quality,
        format_table,
    )
    from repro.harness.report import ascii_bar_chart

    n = args.number
    if n == 7:
        points = fig7_row_scaling()
        print(
            ascii_bar_chart(
                [f"{p.rows} rows" for p in points],
                [p.throughput_mbs for p in points],
                unit=" MB/s",
                title="Fig 7: Throughput vs PE rows (NYX temperature)",
            )
        )
    elif n == 10:
        prof = fig10_relay_and_execution()
        print(
            format_table(
                ["TC (cols)", "relay cycles (Eq.2)", "relay cycles (sim)"],
                list(
                    zip(
                        prof.cols_swept,
                        prof.relay_cycles_analytic,
                        prof.relay_cycles_simulated,
                    )
                ),
                title="Fig 10a: Relay time per PE vs columns (QMCPack)",
            )
        )
        print()
        print(
            format_table(
                ["pipeline length", "execution cycles per PE (Eq.3)"],
                list(
                    zip(prof.pipeline_lengths, prof.execution_cycles_per_pe)
                ),
                title="Fig 10b: Execution time per PE vs pipeline length",
            )
        )
    elif n in (11, 12):
        bars = (
            fig11_compression_throughput()
            if n == 11
            else fig12_decompression_throughput()
        )
        print(
            format_table(
                ["Dataset", "REL", "Compressor", "GB/s"],
                [
                    [b.dataset, f"{b.rel:g}", b.compressor,
                     f"{b.throughput_gbs:.2f}"]
                    for b in bars
                ],
                title=f"Fig {n}: "
                + ("Compression" if n == 11 else "Decompression")
                + " throughput",
            )
        )
    elif n == 13:
        points = fig13_pipeline_lengths()
        print(
            format_table(
                ["Dataset", "pipeline", "GB/s"],
                [
                    [p.dataset, f"{p.pipeline_length}-PE",
                     f"{p.throughput_gbs:.1f}"]
                    for p in points
                ],
                title="Fig 13: Compression throughput vs pipeline length "
                "(REL 1e-4)",
            )
        )
    elif n == 14:
        points = fig14_wse_sizes()
        print(
            format_table(
                ["Dataset", "WSE size", "GB/s"],
                [
                    [p.dataset, f"{p.rows}x{p.cols}",
                     f"{p.throughput_gbs:.1f}"]
                    for p in points
                ],
                title="Fig 14: Compression throughput vs WSE size (REL 1e-4)",
            )
        )
    else:
        q = fig15_quality()
        print("Fig 15: data quality on NYX velocity_x, REL 1e-4")
        print(f"  reconstructions identical: {q.reconstructions_identical}")
        print(f"  PSNR: CereSZ {q.ceresz_psnr:.2f} dB, cuSZp "
              f"{q.cuszp_psnr:.2f} dB (paper: {q.paper_psnr} dB)")
        print(f"  SSIM: CereSZ {q.ceresz_ssim:.4f}, cuSZp {q.cuszp_ssim:.4f} "
              f"(paper: {q.paper_ssim})")
        print(f"  ratio: CereSZ {q.ceresz_ratio:.2f} vs cuSZp "
              f"{q.cuszp_ratio:.2f} (paper: 3.10 vs 3.35)")
    return 0


def _cmd_stream(args) -> int:
    from repro.core.streaming import FrameWriter

    # Write-through sink: frames land on disk as they are compressed, so
    # arbitrarily long snapshot runs never accumulate in memory.
    with open(args.out, "w+b") as fh:
        with FrameWriter(
            eps=args.eps, out=fh, index=args.index, jobs=args.jobs
        ) as writer:
            for path in args.inputs:
                field = load_f32(path)
                size = writer.add(field)
                print(f"{path}: {field.nbytes} -> {size} bytes")
        print(
            f"{writer.num_frames} frames -> {args.out} "
            f"(aggregate ratio {writer.ratio:.2f}x, eps {args.eps:g})"
        )
    return 0


def _cmd_unstream(args) -> int:
    from repro.core.streaming import FrameReader

    with open(args.input, "rb") as fh:
        reader = FrameReader(fh.read(), jobs=args.jobs)
    for i, field in enumerate(reader):
        out = f"{args.prefix}{i}.f32"
        save_f32(out, field)
        print(f"frame {i}: {field.size} values -> {out}")
    print(f"{reader.num_frames} frames, shared eps {reader.eps:g}")
    return 0


def _cmd_observations(args) -> int:
    from repro.harness.observations import all_observations

    failures = 0
    for v in all_observations():
        status = "HOLDS" if v.holds else "FAILS"
        print(f"Observation {v.observation}: {status}")
        print(f"  claim   : {v.claim}")
        print(f"  evidence: {v.evidence}")
        failures += 0 if v.holds else 1
    return failures


def _cmd_validate(args) -> int:
    from repro.perf.calibration import calibration_report, worst_relative_error
    from repro.perf.validate import (
        validate_against_simulator,
        validation_report,
    )

    print(calibration_report())
    worst = worst_relative_error()
    print(f"\nworst calibration residual: {100 * worst:.2f}%")

    rng = np.random.default_rng(0)
    data = np.cumsum(rng.normal(size=32 * 48)).astype(np.float32)
    points = validate_against_simulator(data=data, eps=0.05)
    print()
    print(validation_report(points))
    bad = [p for p in points if p.relative_gap > 0.15]
    return 1 if (worst > 0.015 or bad) else 0


def _cmd_reproduce(args) -> int:
    from repro.harness.reproduce import reproduce_all

    summary = reproduce_all(args.out, quick=args.quick)
    print(
        f"wrote {len(summary.artifacts)} artifacts to {summary.out_dir} "
        f"in {summary.elapsed_seconds:.1f} s"
    )
    for key, value in summary.headline.items():
        print(f"  {key}: {value}")
    return 0 if summary.headline["observations_hold"] else 1


def _cmd_simulate(args) -> int:
    from repro.config import BLOCK_SIZE
    from repro.core.wse_compressor import WSECereSZ
    from repro.errors import DeadlockError, RepairError

    data = load_f32(args.input)
    n = min(data.size, args.limit_blocks * BLOCK_SIZE)
    data = data[:n]
    trace_level = args.trace_level or (
        "timeline" if args.trace else "off"
    )
    faults = None
    if args.inject_faults:
        from repro.faults import parse_fault_spec

        # The mesh the faults will actually land on includes the spare
        # rows, and supplying it both validates every coordinate at parse
        # time and enables the 'random:<seed>,<n>' grammar.
        faults = parse_fault_spec(
            args.inject_faults,
            mesh=(args.rows + args.spare_rows, args.cols),
        )
        print(f"injecting: {faults.describe()}")
    sim = WSECereSZ(
        rows=args.rows,
        cols=args.cols,
        strategy=args.strategy,
        pipeline_length=args.pipeline_length,
        jobs=args.jobs,
        mode=args.mode,
        trace_level=trace_level,
        sample_every=args.sample_every,
        collect_metrics=args.metrics or bool(args.trace),
        faults=faults,
        on_fault=args.on_fault,
        max_repairs=args.max_repairs,
        spare_rows=args.spare_rows,
        predictor=args.predictor,
        ledger=args.ledger,
        progress=args.progress,
    )
    compress_kwargs = {"rel": args.rel}
    if args.tile_rows:
        compress_kwargs["tile_rows"] = True
    try:
        if args.profile:
            import cProfile
            import pstats

            profiler = cProfile.Profile()
            result = profiler.runcall(
                sim.compress, data, **compress_kwargs
            )
            stats = pstats.Stats(profiler, stream=sys.stdout)
            stats.sort_stats("cumulative").print_stats(25)
        else:
            result = sim.compress(data, **compress_kwargs)
    except DeadlockError as exc:
        print(f"simulation stalled: {exc}")
        if exc.report is not None:
            print(exc.report.describe())
            if args.fault_report:
                with open(args.fault_report, "w") as fh:
                    fh.write(exc.report.to_json())
                print(f"fault report -> {args.fault_report}")
        # Export whatever the observers captured up to the stall — spans
        # close in `finally`, so the partial trace is valid and shows how
        # far the run got before it wedged.
        _finish_observers(args, sim.last_tracer, sim.last_metrics)
        return 2
    except RepairError as exc:
        print(f"self-healing exhausted: {exc}")
        if exc.fault_report is not None:
            print(exc.fault_report.describe())
            if args.fault_report:
                with open(args.fault_report, "w") as fh:
                    fh.write(exc.fault_report.to_json())
                print(f"fault report -> {args.fault_report}")
        if exc.repair_report is not None:
            print(exc.repair_report.describe())
            if args.repair_report:
                with open(args.repair_report, "w") as fh:
                    fh.write(exc.repair_report.to_json())
                print(f"repair report -> {args.repair_report}")
        _finish_observers(args, sim.last_tracer, sim.last_metrics)
        return 2
    if result.repair is not None:
        print(result.repair.describe())
        if args.repair_report:
            with open(args.repair_report, "w") as fh:
                fh.write(result.repair.to_json())
            print(f"repair report -> {args.repair_report}")
    if args.fault_report:
        from repro.faults import FaultReport

        survived = FaultReport(reason="none", last_progress_cycle=0)
        with open(args.fault_report, "w") as fh:
            fh.write(survived.to_json())
        print(f"fault report (clean survival) -> {args.fault_report}")
    report = result.report
    n_simulated = n * args.rows if args.tile_rows else n
    print(
        f"simulated {n_simulated} values on {args.rows}x{args.cols} mesh "
        f"({args.strategy}): makespan {report.makespan_cycles:.0f} cycles, "
        f"{report.events_processed} events, {report.tasks_run} tasks, "
        f"imbalance {report.trace.load_imbalance():.2f}"
    )
    if result.mode == "hybrid":
        total_rows = sum(size for _, size in result.row_classes)
        simulated = len(result.row_classes)
        print(
            f"hybrid: {simulated} row class(es), "
            f"{simulated} representative row(s) event-simulated, "
            f"{total_rows - simulated} synthesized"
        )
    if args.tile_rows:
        # The tiled stream equals the reference compressing the row data
        # repeated across every row (truncated to whole blocks, as the
        # wafer path does).
        n_row = (data.size // BLOCK_SIZE) * BLOCK_SIZE
        reference_field = np.tile(data[:n_row], args.rows)
    else:
        reference_field = data
    reference = CereSZ(predictor=args.predictor).compress(
        reference_field, rel=args.rel
    )
    print(
        "stream matches reference: "
        f"{result.stream == reference.stream}"
    )
    _finish_observers(
        args, result.tracer, result.metrics, recorder=report.trace,
        run_info={
            "mode": result.mode,
            "row_classes": [
                [rep, size] for rep, size in (result.row_classes or ())
            ],
        },
    )
    return 0


# The ``sim`` alias dispatches through args.command, which stores the
# spelling the user typed.
_cmd_sim = _cmd_simulate


def _cmd_trace(args) -> int:
    from repro.obs import load_chrome_trace, summarize_trace

    trace = load_chrome_trace(args.input)
    print(f"{args.input}: {len(trace['traceEvents'])} events")
    print(summarize_trace(trace, top=args.top))
    return 0


def _cmd_report(args) -> int:
    from repro.obs.regress import run_report

    text, ok = run_report(
        args.ledger,
        baselines=args.baseline,
        kind=args.kind,
        verbose=args.verbose,
    )
    print(text)
    if args.gate and not ok:
        return 1
    return 0


def _cmd_plan(args) -> int:
    from repro.config import BLOCK_SIZE
    from repro.core.wse_compressor import WSECereSZ

    data = load_f32(args.input)
    n = min(data.size, args.limit_blocks * BLOCK_SIZE)
    data = data[:n]
    sim = WSECereSZ(
        rows=args.rows,
        cols=args.cols,
        strategy=args.strategy,
        pipeline_length=args.pipeline_length,
        predictor=args.predictor,
    )
    plan = sim.plan_for(data, rel=args.rel)
    plan.validate()
    print(plan.describe())
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
