"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError` so callers
can catch a single base class. The WSE simulator raises its own branch of the
hierarchy (:class:`FabricError` and subclasses) because fabric-configuration
mistakes (bad routing, SRAM overflow, color exhaustion) are programming errors
of the *simulated program*, not of the host library, and tests assert on them
specifically.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class CompressionError(ReproError):
    """A compressor could not encode or decode the given payload."""


class FormatError(CompressionError):
    """A compressed byte stream is malformed or truncated."""


class ErrorBoundError(ReproError):
    """An invalid error bound was supplied (non-positive or non-finite)."""


class DatasetError(ReproError):
    """A dataset name or field is unknown, or generation parameters are bad."""


class FabricError(ReproError):
    """Base class for WSE simulator errors."""


class RoutingError(FabricError):
    """A color route is missing, conflicting, or leaves the mesh."""


class MemoryError_(FabricError):
    """A PE exceeded its 48 KB SRAM budget.

    Named with a trailing underscore to avoid shadowing the builtin.
    """


class ColorExhaustedError(FabricError):
    """More than the 24 available colors were requested on one PE."""


class DeadlockError(FabricError):
    """The discrete-event engine ran out of events with tasks still pending."""


class TaskError(FabricError):
    """A simulated task misbehaved (double-bind, unknown activation, ...)."""


class ScheduleError(ReproError):
    """Sub-stage distribution over PEs is infeasible (Algorithm 1)."""


class ModelError(ReproError):
    """A performance-model query was outside the calibrated domain."""
