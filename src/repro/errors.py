"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError` so callers
can catch a single base class. The WSE simulator raises its own branch of the
hierarchy (:class:`FabricError` and subclasses) because fabric-configuration
mistakes (bad routing, SRAM overflow, color exhaustion) are programming errors
of the *simulated program*, not of the host library, and tests assert on them
specifically.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class CompressionError(ReproError):
    """A compressor could not encode or decode the given payload."""


class FormatError(CompressionError):
    """A compressed byte stream is malformed or truncated."""


class ContainerError(FormatError):
    """A container (CSZX shard table, checksummed CSZ1 stream) failed a
    structural or integrity check.

    Structured: carries *where* the damage is so callers (and the salvage
    decoder) can act on it instead of re-parsing the message. All fields
    are optional — a truncated header has no shard to point at.
    """

    def __init__(
        self,
        message: str,
        *,
        offset: int | None = None,
        shard: int | None = None,
        groups: tuple[int, ...] = (),
        blocks: tuple[int, ...] = (),
    ):
        super().__init__(message)
        #: Byte offset of the first inconsistency, when known.
        self.offset = offset
        #: Shard index inside a CSZX container, when the damage is local.
        self.shard = shard
        #: CRC-group indices that failed verification.
        self.groups = tuple(groups)
        #: Block indices covered by the failing CRC groups.
        self.blocks = tuple(blocks)

    def __reduce__(self):
        # BaseException's default reduce replays *all* positional args into
        # __init__; ours takes one. Rebuild from message + state instead so
        # the exception survives the multiprocessing pickle boundary.
        return (
            self.__class__,
            (self.args[0] if self.args else "",),
            {
                "offset": self.offset,
                "shard": self.shard,
                "groups": self.groups,
                "blocks": self.blocks,
            },
        )


class WorkerError(CompressionError):
    """A shard-engine or simulator worker failed permanently.

    Raised after the retry budget is exhausted (or when a worker dies with
    an unpicklable exception); carries which shards failed and why, so a
    caller can tell a poisoned input from a crashed pool.
    """

    def __init__(
        self,
        message: str,
        *,
        shard: int | None = None,
        rows: tuple[int, ...] = (),
        attempts: int = 0,
        failures: tuple = (),
    ):
        super().__init__(message)
        #: Index of the failing shard / partition (first one, when several).
        self.shard = shard
        #: Mesh rows owned by the failing simulator partition, if any.
        self.rows = tuple(rows)
        #: Attempts consumed before giving up.
        self.attempts = attempts
        #: Per-shard failure descriptions (``ShardFailure`` records).
        self.failures = tuple(failures)

    def __reduce__(self):
        return (
            self.__class__,
            (self.args[0] if self.args else "",),
            {
                "shard": self.shard,
                "rows": self.rows,
                "attempts": self.attempts,
                "failures": self.failures,
            },
        )


class ErrorBoundError(ReproError):
    """An invalid error bound was supplied (non-positive or non-finite)."""


class LedgerError(ReproError):
    """A run-ledger file is malformed or from an incompatible schema."""


class DatasetError(ReproError):
    """A dataset name or field is unknown, or generation parameters are bad."""


class FabricError(ReproError):
    """Base class for WSE simulator errors."""


class RoutingError(FabricError):
    """A color route is missing, conflicting, or leaves the mesh."""


class MemoryError_(FabricError):
    """A PE exceeded its 48 KB SRAM budget.

    Named with a trailing underscore to avoid shadowing the builtin.
    """


class ColorExhaustedError(FabricError):
    """More than the 24 available colors were requested on one PE."""


class DeadlockError(FabricError):
    """The discrete-event engine ran out of events with tasks still pending.

    Carries an optional structured :class:`repro.faults.FaultReport` so
    callers can inspect *which* PEs/colors wedged (and whether an injected
    fault caused it) without parsing the message.
    """

    def __init__(self, message: str = "", *, report=None):
        super().__init__(message)
        self.report = report

    def __reduce__(self):
        # Keep the report across the multiprocessing pickle boundary; the
        # default BaseException reduce drops keyword-only state.
        return (
            self.__class__,
            (self.args[0] if self.args else "",),
            {"report": self.report},
        )


class RepairError(FabricError):
    """The fault-repair loop could not bring a stalled run to completion.

    Raised when ``on_fault="repair"`` exhausts its ``max_repairs`` budget,
    finds no spare rows and no way to shrink, or keeps failing on rows it
    already evacuated. Carries the last stall's
    :class:`repro.faults.FaultReport` and the
    :class:`repro.faults.RepairReport` of everything that was attempted,
    so post-mortems need no message parsing.
    """

    def __init__(self, message: str = "", *, fault_report=None,
                 repair_report=None):
        super().__init__(message)
        self.fault_report = fault_report
        self.repair_report = repair_report

    def __reduce__(self):
        return (
            self.__class__,
            (self.args[0] if self.args else "",),
            {
                "fault_report": self.fault_report,
                "repair_report": self.repair_report,
            },
        )


class TaskError(FabricError):
    """A simulated task misbehaved (double-bind, unknown activation, ...)."""


class ScheduleError(ReproError):
    """Sub-stage distribution over PEs is infeasible (Algorithm 1)."""


class ModelError(ReproError):
    """A performance-model query was outside the calibrated domain."""
