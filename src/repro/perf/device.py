"""Calibrated throughput models for the CPU/GPU baseline compressors.

We do not have the paper's A100 or EPYC 7742 (nor would Python timings of
our reimplementations say anything about CUDA kernels), so baseline bars in
Figs 11-12 come from analytic models calibrated to the magnitudes the paper
and the baselines' own publications report:

=========  =========================  ======================================
Baseline   Base rate (comp / decomp)  Behaviour modeled
=========  =========================  ======================================
cuSZp      104 / 131 GB/s               fused single kernel, memory-bound;
                                      faster when zero blocks skip encoding
cuSZ       22 / 30 GB/s               Huffman codebook construction and the
                                      multi-kernel pipeline dominate
SZp        2.6 / 3.4 GB/s             OpenMP on 64 cores, memory-bound
SZ         0.28 / 0.42 GB/s           single-pass tree + DEFLATE, <1 GB/s
                                      as the paper notes in Section 5.3
=========  =========================  ======================================

The zero-block speedup term mirrors the paper's Section 5.2 explanation for
why SZp/cuSZp (same encoding) also get faster at looser bounds. CereSZ's
own throughput never comes from this module — it comes from the wafer model
fed by the cycle model (:mod:`repro.perf.wafer`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ModelError


@dataclass(frozen=True)
class DeviceThroughputModel:
    """Analytic throughput of one baseline on its evaluation device."""

    name: str
    device: str
    compress_gbs: float
    decompress_gbs: float
    #: Fractional speedup at 100% zero blocks (0 = insensitive).
    zero_block_gain: float

    def throughput_gbs(self, direction: str, zero_fraction: float) -> float:
        if direction not in ("compress", "decompress"):
            raise ModelError(
                f"direction must be compress|decompress: {direction}"
            )
        if not (0.0 <= zero_fraction <= 1.0):
            raise ModelError(f"zero fraction outside [0, 1]: {zero_fraction}")
        base = (
            self.compress_gbs if direction == "compress" else self.decompress_gbs
        )
        return base * (1.0 + self.zero_block_gain * zero_fraction)


DEVICE_MODELS: dict[str, DeviceThroughputModel] = {
    m.name: m
    for m in [
        DeviceThroughputModel(
            name="cuSZp",
            device="A100",
            compress_gbs=104.0,
            decompress_gbs=131.0,
            zero_block_gain=0.5,
        ),
        DeviceThroughputModel(
            name="cuSZ",
            device="A100",
            compress_gbs=22.0,
            decompress_gbs=30.0,
            zero_block_gain=0.25,
        ),
        DeviceThroughputModel(
            name="SZp",
            device="EPYC-7742",
            compress_gbs=2.6,
            decompress_gbs=3.4,
            zero_block_gain=0.9,
        ),
        DeviceThroughputModel(
            name="SZ",
            device="EPYC-7742",
            compress_gbs=0.28,
            decompress_gbs=0.42,
            zero_block_gain=0.4,
        ),
    ]
}


def device_throughput(
    name: str, direction: str, zero_fraction: float
) -> float:
    """Throughput (GB/s) of baseline ``name`` on its paper device."""
    try:
        model = DEVICE_MODELS[name]
    except KeyError:
        raise ModelError(
            f"no device model for {name!r}; known: {sorted(DEVICE_MODELS)}"
        ) from None
    return model.throughput_gbs(direction, zero_fraction)
