"""Calibration audit: cycle-model constants vs the paper's profiled values.

The cycle model's constants are *fit* to the paper's Tables 1-3; this
module recomputes the residuals of that fit so the claim is checkable
rather than asserted. A healthy calibration keeps every relative residual
within the cross-dataset scatter of the paper's own measurements (~1 %).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import BLOCK_SIZE
from repro.wse.cost import CycleModel, PAPER_CYCLE_MODEL

#: Paper Table 2 — (multiplication, addition) per dataset.
PAPER_PREQUANT = {
    "CESM-ATM": (5078.0, 1033.0),
    "HACC": (5081.0, 1038.0),
    "QMCPack": (5063.0, 1049.0),
}

#: Paper Table 3 — (sign, max, get_length, bit_shuffle, fl) per dataset.
PAPER_ENCODING = {
    "CESM-ATM": (1044.0, 1037.0, 1386.0, 33609.0, 17),
    "HACC": (1041.0, 1032.0, 1370.0, 25675.0, 13),
    "QMCPack": (1048.0, 1041.0, 1385.0, 23694.0, 12),
}

#: Paper Table 1 — Lorenzo prediction (identical across datasets).
PAPER_LORENZO = 975.0


@dataclass(frozen=True)
class Residual:
    """One constant's fit against one paper measurement."""

    constant: str
    dataset: str
    paper: float
    model: float

    @property
    def relative_error(self) -> float:
        return abs(self.model - self.paper) / self.paper


def calibration_residuals(
    model: CycleModel = PAPER_CYCLE_MODEL,
) -> list[Residual]:
    """Every (constant, dataset) pair of Tables 1-3 vs the model."""
    residuals: list[Residual] = []
    for dataset, (mult, add) in PAPER_PREQUANT.items():
        residuals.append(
            Residual(
                "multiplication", dataset, mult,
                model.multiplication.cycles(BLOCK_SIZE),
            )
        )
        residuals.append(
            Residual(
                "addition", dataset, add, model.addition.cycles(BLOCK_SIZE)
            )
        )
    for dataset, (sign, mx, gl, shuffle, fl) in PAPER_ENCODING.items():
        residuals.append(
            Residual("sign", dataset, sign, model.sign.cycles(BLOCK_SIZE))
        )
        residuals.append(
            Residual("max", dataset, mx, model.max.cycles(BLOCK_SIZE))
        )
        residuals.append(
            Residual(
                "get_length", dataset, gl,
                model.get_length.cycles(BLOCK_SIZE),
            )
        )
        residuals.append(
            Residual(
                "bit_shuffle", dataset, shuffle,
                model.bit_shuffle.cycles(BLOCK_SIZE, fl),
            )
        )
    for dataset in PAPER_PREQUANT:
        residuals.append(
            Residual(
                "lorenzo", dataset, PAPER_LORENZO,
                model.lorenzo.cycles(BLOCK_SIZE),
            )
        )
    return residuals


def worst_relative_error(model: CycleModel = PAPER_CYCLE_MODEL) -> float:
    """The largest relative residual across all calibrated constants."""
    return max(r.relative_error for r in calibration_residuals(model))


def calibration_report(model: CycleModel = PAPER_CYCLE_MODEL) -> str:
    """Human-readable residual table."""
    from repro.harness.report import format_table

    rows = [
        [r.constant, r.dataset, r.paper, round(r.model, 1),
         f"{100 * r.relative_error:.2f}%"]
        for r in sorted(
            calibration_residuals(model),
            key=lambda r: (r.constant, r.dataset),
        )
    ]
    return format_table(
        ["constant", "dataset", "paper cycles", "model cycles", "residual"],
        rows,
        title="Cycle-model calibration vs paper Tables 1-3",
    )
