"""Performance models: wafer-scale throughput and baseline device throughput.

Two model families regenerate the paper's performance results:

* :mod:`repro.perf.model` / :mod:`repro.perf.wafer` — the paper's own
  analytic model (Section 4.3/4.4, Eqs 2-4) fed by the calibrated cycle
  model and by per-block statistics measured from the actual data. These
  produce CereSZ's curves (Figs 7, 10, 13, 14) and bars (Figs 11-12).
* :mod:`repro.perf.device` — calibrated throughput models for the CPU/GPU
  baselines (the paper measured them on an EPYC 7742 and an A100).

Fidelity note (DESIGN.md): these are *models*, validated for shape against
the paper, driven by real per-block workloads from the synthetic data — not
silicon measurements.
"""

from repro.perf.model import (
    PipelinePerformance,
    relay_cycles_per_round,
    compute_cycles_per_round,
    round_cycles,
    eq4_total_cycles,
)
from repro.perf.wafer import (
    BlockWorkload,
    measure_workload,
    wafer_throughput,
    row_scaling_curve,
    wse_size_curve,
    pipeline_length_curve,
)
from repro.perf.device import DEVICE_MODELS, DeviceThroughputModel, device_throughput
from repro.perf.calibration import (
    calibration_report,
    calibration_residuals,
    worst_relative_error,
)
from repro.perf.validate import (
    ValidationPoint,
    validate_against_simulator,
    validation_report,
)

__all__ = [
    "PipelinePerformance",
    "relay_cycles_per_round",
    "compute_cycles_per_round",
    "round_cycles",
    "eq4_total_cycles",
    "BlockWorkload",
    "measure_workload",
    "wafer_throughput",
    "row_scaling_curve",
    "wse_size_curve",
    "pipeline_length_curve",
    "DEVICE_MODELS",
    "DeviceThroughputModel",
    "device_throughput",
    "calibration_report",
    "calibration_residuals",
    "worst_relative_error",
    "ValidationPoint",
    "validate_against_simulator",
    "validation_report",
]
