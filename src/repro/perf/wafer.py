"""Wafer-scale throughput estimation for CereSZ.

The estimator connects three ingredients:

1. a :class:`BlockWorkload` measured from the *actual data*: per-block fixed
   lengths and zero-block flags (the two quantities all cycle costs depend
   on), obtained by running the reference quantize/predict kernels;
2. the calibrated cycle model (:mod:`repro.wse.cost`, Tables 1-3);
3. the paper's pipeline model (:mod:`repro.perf.model`, Eqs 2-4).

Throughput follows the paper's definition (Section 5.1.4): original bytes
divided by wall time, for compression and decompression alike, with time
measured as the cycles of the slowest PE at 850 MHz.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import (
    BLOCK_BYTES,
    BLOCK_SIZE,
    CERESZ_HEADER_BYTES,
    WaferConfig,
)
from repro.errors import ModelError
from repro.core.blocks import partition_blocks, zero_block_mask
from repro.core.encoding import block_fixed_lengths, record_sizes
from repro.core.lorenzo import lorenzo_predict
from repro.core.quantize import prequantize_verified
from repro.core.schedule import distribute_substages
from repro.core.stages import compression_substages, decompression_substages
from repro.wse.cost import CycleModel, PAPER_CYCLE_MODEL
from repro.perf.model import PipelinePerformance, eq4_total_cycles, round_cycles


@dataclass(frozen=True)
class BlockWorkload:
    """Per-block workload statistics of one field under one error bound."""

    num_blocks: int
    block_size: int
    fixed_lengths: np.ndarray  # int64 per block
    zero_blocks: np.ndarray  # bool per block
    original_bytes: int

    @property
    def zero_fraction(self) -> float:
        if self.num_blocks == 0:
            return 0.0
        return float(np.mean(self.zero_blocks))

    @property
    def representative_fl(self) -> int:
        """The fixed length used to plan pipeline schedules.

        The conservative choice — the maximum over blocks — matches the
        paper's use of the sampled fixed length to size the shuffle stages
        (Section 4.2); Table 3's per-dataset encoding lengths (17/13/12)
        are maxima in the same sense.
        """
        return int(self.fixed_lengths.max(initial=0))

    def mean_cycles(
        self, direction: str, model: CycleModel = PAPER_CYCLE_MODEL
    ) -> float:
        """Average per-block cycles over the real fl / zero-block mix."""
        if direction not in ("compress", "decompress"):
            raise ModelError(f"direction must be compress|decompress: {direction}")
        fls, counts = np.unique(
            np.where(self.zero_blocks, -1, self.fixed_lengths),
            return_counts=True,
        )
        total = 0.0
        for fl, count in zip(fls, counts):
            zero = fl < 0
            f = 0 if zero else int(fl)
            if direction == "compress":
                cycles = model.compress_block_cycles(
                    f, self.block_size, zero=zero
                )
            else:
                cycles = model.decompress_block_cycles(
                    f, self.block_size, zero=zero
                )
            total += cycles * int(count)
        return total / max(self.num_blocks, 1)

    def max_cycles(
        self, direction: str, model: CycleModel = PAPER_CYCLE_MODEL
    ) -> float:
        """Per-block cycles of the worst block (the paper's Table 1 rule)."""
        fl = self.representative_fl
        if direction == "compress":
            return model.compress_block_cycles(fl, self.block_size)
        return model.decompress_block_cycles(fl, self.block_size)

    def mean_compressed_words(self) -> float:
        """Average 32-bit words per compressed block (CereSZ headers).

        Decompression relays these instead of raw blocks, which is part of
        why it is faster (less fabric traffic per block).
        """
        sizes = record_sizes(
            np.where(self.zero_blocks, 0, self.fixed_lengths),
            self.block_size,
            CERESZ_HEADER_BYTES,
        )
        return float(np.mean((sizes + 3) // 4)) if sizes.size else 1.0


def measure_workload(
    data: np.ndarray,
    eps: float,
    *,
    block_size: int = BLOCK_SIZE,
) -> BlockWorkload:
    """Run the reference front half of the pipeline and collect statistics."""
    codes, _ = prequantize_verified(np.asarray(data), eps)
    blocks, n = partition_blocks(codes, block_size)
    residuals = lorenzo_predict(blocks)
    return BlockWorkload(
        num_blocks=blocks.shape[0],
        block_size=block_size,
        fixed_lengths=block_fixed_lengths(residuals),
        zero_blocks=zero_block_mask(residuals),
        original_bytes=n * 4,
    )


def _bottleneck_fraction(
    workload: BlockWorkload,
    pipeline_length: int,
    direction: str,
    model: CycleModel,
) -> float | None:
    """Actual worst-group share from Algorithm 1 (None for pl = 1)."""
    if pipeline_length == 1:
        return None
    fl = max(workload.representative_fl, 1)
    if direction == "compress":
        stages = compression_substages(fl, workload.block_size, model)
    else:
        stages = decompression_substages(fl, workload.block_size, model)
    if pipeline_length > len(stages):
        raise ModelError(
            f"pipeline length {pipeline_length} exceeds the {len(stages)} "
            f"sub-stages available at fixed length {fl}"
        )
    dist = distribute_substages(stages, pipeline_length)
    return dist.bottleneck_cycles / dist.total


def wafer_throughput(
    workload: BlockWorkload,
    wafer: WaferConfig,
    *,
    pipeline_length: int = 1,
    direction: str = "compress",
    model: CycleModel = PAPER_CYCLE_MODEL,
    overlapped: bool = False,
) -> PipelinePerformance:
    """Estimated throughput of one configuration (Figs 11-14 engine).

    Throughput is the *steady-state* rate: bytes emitted per round divided
    by round time. The paper's datasets are hundreds of times larger than
    one wafer round, so its measured numbers are steady-state by
    construction; our scaled-down fields are not, and quoting the eq4
    makespan would charge the pipeline-fill latency against a single round.
    ``overlapped=False`` (default) uses the serialized relay+compute round
    of the paper's Eq. 4; ``overlapped=True`` gives the optimistic bound
    where fabric transfers fully hide behind compute.
    """
    if direction not in ("compress", "decompress"):
        raise ModelError(f"direction must be compress|decompress: {direction}")
    block_cycles = workload.mean_cycles(direction, model)
    # Compression relays full raw input blocks; decompression relays small
    # compressed blocks inbound but full raw blocks outbound, so its relay
    # load is just under one raw block per round. The paper's Fig 11/12
    # ratios (decompression ~1.27x faster overall, up to 920.67 GB/s on
    # RTM) pin this at ~15/16 of a raw block.
    if direction == "compress":
        relay_words = workload.block_size
    else:
        relay_words = max(1, (15 * workload.block_size) // 16)
    frac = _bottleneck_fraction(workload, pipeline_length, direction, model)
    per_round = round_cycles(
        wafer.cols,
        block_cycles,
        pipeline_length,
        model,
        overlapped=overlapped,
        bottleneck_fraction=frac,
        relay_words=relay_words,
        forward_words=workload.block_size,
    )
    total = eq4_total_cycles(
        workload.num_blocks,
        wafer.rows,
        wafer.cols,
        block_cycles,
        pipeline_length,
        model,
        overlapped=overlapped,
        bottleneck_fraction=frac,
        relay_words=relay_words,
        forward_words=workload.block_size,
    )
    pipelines_per_row = max(1, wafer.cols // pipeline_length)
    bytes_per_round = wafer.rows * pipelines_per_row * workload.block_size * 4
    steady_rate = bytes_per_round * wafer.clock_hz / per_round
    return PipelinePerformance(
        rows=wafer.rows,
        total_cols=wafer.cols,
        pipeline_length=pipeline_length,
        block_cycles=block_cycles,
        round_cycles=per_round,
        total_cycles=total,
        throughput_bytes_per_s=steady_rate,
    )


def row_scaling_curve(
    workload: BlockWorkload,
    rows_list,
    *,
    model: CycleModel = PAPER_CYCLE_MODEL,
) -> list[PipelinePerformance]:
    """Fig 7: whole algorithm on the first PE of each row, rows swept."""
    out = []
    for rows in rows_list:
        wafer = WaferConfig(rows=rows, cols=1)
        out.append(
            wafer_throughput(workload, wafer, pipeline_length=1, model=model)
        )
    return out


def wse_size_curve(
    workload: BlockWorkload,
    sizes,
    *,
    direction: str = "compress",
    model: CycleModel = PAPER_CYCLE_MODEL,
) -> list[PipelinePerformance]:
    """Fig 14: square (or explicit (rows, cols)) mesh sweep."""
    out = []
    for size in sizes:
        rows, cols = (size, size) if isinstance(size, int) else size
        wafer = WaferConfig(rows=rows, cols=cols)
        out.append(
            wafer_throughput(
                workload, wafer, pipeline_length=1, direction=direction,
                model=model,
            )
        )
    return out


def pipeline_length_curve(
    workload: BlockWorkload,
    lengths,
    wafer: WaferConfig,
    *,
    direction: str = "compress",
    model: CycleModel = PAPER_CYCLE_MODEL,
) -> list[PipelinePerformance]:
    """Fig 13: pipeline length swept on a fixed mesh."""
    return [
        wafer_throughput(
            workload,
            wafer,
            pipeline_length=pl,
            direction=direction,
            model=model,
        )
        for pl in lengths
    ]
