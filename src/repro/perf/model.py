"""The paper's analytic pipeline model (Section 4.3 / 4.4).

For a row of ``TC`` PE columns running parallel pipelines of length ``pl``:

* **Eq. 2** — relay time per PE per round: ``TC * C1``. Every input block
  destined for pipelines to the east must pass through the PE, and the
  per-hop cost ``C1`` covers one block's fabric transit (Fig 10a measures
  this linear-in-TC behaviour).
* **Eq. 3** — compute time per PE per round: ``C / pl + pl * C2``. The
  block's total work ``C`` splits over ``pl`` PEs (imperfectly — we use the
  *actual* bottleneck group from Algorithm 1 when available) and each
  pipeline hop forwards intermediate state at cost ``C2 > C1``.
* **Eq. 4** — total time per block-row:
  ``O(C/TC + pl*C1 + pl^2*C2)``, the product of rounds and round time.

The paper's Section 2.1 notes fabric transfers run asynchronously with
compute, and the Fig 9 kernel re-activates the relay task before computing;
the steady-state round time is therefore ``max(relay, compute)`` — the
*overlapped* model — which is what keeps Fig 14's scaling linear out to the
full wafer. The serialized sum (their worst-case complexity bound) is also
exposed for the Eq. 4 reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import BLOCK_SIZE
from repro.errors import ModelError
from repro.wse.cost import CycleModel, PAPER_CYCLE_MODEL


def relay_cycles_per_round(
    total_cols: int,
    relay_words: int = BLOCK_SIZE,
    model: CycleModel = PAPER_CYCLE_MODEL,
) -> float:
    """Eq. 2: per-PE relay cycles per round, ``TC * C1``.

    ``relay_words`` scales C1 for payloads other than a raw 32-word block
    (decompression relays *compressed* blocks, which are smaller — one of
    the reasons decompression throughput is higher).
    """
    if total_cols <= 0:
        raise ModelError(f"total_cols must be positive, got {total_cols}")
    return total_cols * model.relay_block_cycles(relay_words)


def compute_cycles_per_round(
    block_cycles: float,
    pipeline_length: int,
    model: CycleModel = PAPER_CYCLE_MODEL,
    *,
    bottleneck_fraction: float | None = None,
    forward_words: int = BLOCK_SIZE,
) -> float:
    """Eq. 3: per-PE compute cycles per round, ``C/pl + pl*C2``.

    ``bottleneck_fraction``, when given, replaces the ideal ``1/pl`` split
    with the actual worst-group share from Algorithm 1 (>= 1/pl) — the
    imperfect-decomposition effect the paper blames for Fig 13's slowdown
    at longer pipelines.
    """
    if pipeline_length <= 0:
        raise ModelError(f"pipeline length must be positive: {pipeline_length}")
    if block_cycles < 0:
        raise ModelError(f"negative block cycles {block_cycles}")
    share = (
        bottleneck_fraction
        if bottleneck_fraction is not None
        else 1.0 / pipeline_length
    )
    if not (0.0 < share <= 1.0):
        raise ModelError(f"bottleneck fraction outside (0, 1]: {share}")
    forwards = (
        (pipeline_length - 1) * model.forward_block_cycles(forward_words)
        if pipeline_length > 1
        else 0.0
    )
    return block_cycles * share + forwards


def round_cycles(
    total_cols: int,
    block_cycles: float,
    pipeline_length: int,
    model: CycleModel = PAPER_CYCLE_MODEL,
    *,
    overlapped: bool = True,
    bottleneck_fraction: float | None = None,
    relay_words: int = BLOCK_SIZE,
    forward_words: int = BLOCK_SIZE,
) -> float:
    """Steady-state cycles for one round (each pipeline emits one block).

    ``overlapped=True`` (the hardware behaviour): relay and compute proceed
    concurrently, round time is their max. ``overlapped=False``: the
    serialized bound used in the paper's Eq. 4 complexity analysis.
    """
    relay = relay_cycles_per_round(total_cols, relay_words, model)
    compute = compute_cycles_per_round(
        block_cycles,
        pipeline_length,
        model,
        bottleneck_fraction=bottleneck_fraction,
        forward_words=forward_words,
    )
    return max(relay, compute) if overlapped else relay + compute


def eq4_total_cycles(
    num_blocks: int,
    rows: int,
    total_cols: int,
    block_cycles: float,
    pipeline_length: int,
    model: CycleModel = PAPER_CYCLE_MODEL,
    **kwargs,
) -> float:
    """Total execution cycles for ``num_blocks`` blocks on a rows x TC mesh.

    rounds = ceil(blocks / (rows * pipelines-per-row)) times the round
    time — the product the paper folds into Eq. 4.
    """
    if num_blocks <= 0:
        raise ModelError(f"num_blocks must be positive: {num_blocks}")
    if rows <= 0:
        raise ModelError(f"rows must be positive: {rows}")
    if pipeline_length > total_cols:
        raise ModelError(
            f"pipeline length {pipeline_length} exceeds {total_cols} columns"
        )
    pipelines_per_row = max(1, total_cols // pipeline_length)
    rounds = -(-num_blocks // (rows * pipelines_per_row))
    per_round = round_cycles(
        total_cols, block_cycles, pipeline_length, model, **kwargs
    )
    # One pipeline-fill latency at the start of the run.
    fill = total_cols * model.c1_relay + block_cycles
    return rounds * per_round + fill


def hybrid_model_gap(
    observed_cycles: float,
    num_blocks: int,
    rows: int,
    total_cols: int,
    block_cycles: float,
    pipeline_length: int = 1,
    model: CycleModel = PAPER_CYCLE_MODEL,
    **kwargs,
) -> float:
    """Relative gap between an observed makespan and the Eq. 4 prediction.

    The hybrid simulator's replicated makespans are cycle-exact against
    full event-driven runs by construction; this cross-checks them against
    the *calibrated analytic model* instead — the independent second
    opinion Fig 10 uses for the event simulator. Returns
    ``(observed - predicted) / predicted``; wafer-scale hybrid runs are
    expected to land within the same few-percent band the event simulator
    does (fill/drain effects the steady-state model folds into one
    pipeline-fill term).
    """
    if observed_cycles <= 0:
        raise ModelError(
            f"observed makespan must be positive: {observed_cycles}"
        )
    predicted = eq4_total_cycles(
        num_blocks, rows, total_cols, block_cycles, pipeline_length, model,
        **kwargs,
    )
    return (observed_cycles - predicted) / predicted


@dataclass(frozen=True)
class PipelinePerformance:
    """Everything the figures need about one configuration."""

    rows: int
    total_cols: int
    pipeline_length: int
    block_cycles: float
    round_cycles: float
    total_cycles: float
    throughput_bytes_per_s: float

    @property
    def throughput_gbs(self) -> float:
        return self.throughput_bytes_per_s / 1e9
