"""Cross-validation of the analytic model against the discrete-event sim.

DESIGN.md's fidelity claim rests on two legs: the cycle model is calibrated
to the paper's tables (audited by :mod:`repro.perf.calibration`), and the
pipeline model's *structure* matches what the simulator actually does at
small scale. This module runs the real on-wafer programs on small meshes
and compares their makespans with the analytic prediction for the same
configuration, reporting the discrepancy per point.

Agreement is expected within ~15 %: the simulator carries real effects the
steady-state model abstracts away (pipeline fill, activation latency,
tail rounds), all of which shrink as the run grows.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import BLOCK_SIZE
from repro.core.wse_compressor import WSECereSZ
from repro.perf.model import round_cycles
from repro.wse.cost import CycleModel, PAPER_CYCLE_MODEL


@dataclass(frozen=True)
class ValidationPoint:
    """One sim-vs-model comparison."""

    strategy: str
    rows: int
    cols: int
    blocks: int
    simulated_cycles: float
    predicted_cycles: float

    @property
    def relative_gap(self) -> float:
        return abs(self.simulated_cycles - self.predicted_cycles) / (
            self.predicted_cycles
        )


def _predict_rows(
    blocks_per_pe: int, block_cycles: float
) -> float:
    """Strategy 'rows': one PE per row processes its blocks back-to-back."""
    return blocks_per_pe * block_cycles


def _predict_multi(
    rounds: int, cols: int, block_cycles: float, model: CycleModel
) -> float:
    """Strategy 'multi': serialized relay + compute per round (Eq. 4)."""
    per_round = round_cycles(
        cols, block_cycles, 1, model, overlapped=False
    )
    fill = cols * model.c1_relay
    return rounds * per_round + fill


def _predict_staged(
    rounds: int,
    cols: int,
    pipeline_length: int,
    block_cycles: float,
    bottleneck_fraction: float,
    model: CycleModel,
) -> float:
    """Staged pipelines: Eq. 4 with the Algorithm 1 bottleneck and C2."""
    per_round = round_cycles(
        cols,
        block_cycles,
        pipeline_length,
        model,
        overlapped=False,
        bottleneck_fraction=bottleneck_fraction,
    )
    fill = cols * model.c1_relay + block_cycles
    return rounds * per_round + fill


def validate_against_simulator(
    *,
    data: np.ndarray,
    eps: float,
    model: CycleModel = PAPER_CYCLE_MODEL,
) -> list[ValidationPoint]:
    """Run both strategies on small meshes and score the model.

    ``data`` should hold a few dozen blocks — enough for steady state to
    mean something, small enough for event-level simulation.
    """
    from repro.perf.wafer import measure_workload

    workload = measure_workload(data, eps)
    block_cycles = workload.mean_cycles("compress", model)
    points: list[ValidationPoint] = []

    for rows in (1, 2, 4):
        sim = WSECereSZ(rows=rows, cols=1, strategy="rows", model=model)
        result = sim.compress(data, eps=eps)
        blocks_per_pe = -(-workload.num_blocks // rows)
        points.append(
            ValidationPoint(
                strategy="rows",
                rows=rows,
                cols=1,
                blocks=workload.num_blocks,
                simulated_cycles=result.makespan_cycles,
                predicted_cycles=_predict_rows(blocks_per_pe, block_cycles),
            )
        )

    for cols in (2, 4):
        sim = WSECereSZ(rows=1, cols=cols, strategy="multi", model=model)
        result = sim.compress(data, eps=eps)
        rounds = -(-workload.num_blocks // cols)
        points.append(
            ValidationPoint(
                strategy="multi",
                rows=1,
                cols=cols,
                blocks=workload.num_blocks,
                simulated_cycles=result.makespan_cycles,
                predicted_cycles=_predict_multi(
                    rounds, cols, block_cycles, model
                ),
            )
        )

    from repro.core.schedule import distribute_substages
    from repro.core.stages import compression_substages

    for cols, pl in ((4, 2), (6, 2)):
        sim = WSECereSZ(
            rows=1, cols=cols, strategy="multi", pipeline_length=pl,
            model=model,
        )
        result = sim.compress(data, eps=eps)
        pipelines = cols // pl
        rounds = -(-workload.num_blocks // pipelines)
        stages = compression_substages(
            max(workload.representative_fl, 1), workload.block_size, model
        )
        dist = distribute_substages(stages, pl)
        frac = dist.bottleneck_cycles / dist.total
        points.append(
            ValidationPoint(
                strategy=f"staged(pl={pl})",
                rows=1,
                cols=cols,
                blocks=workload.num_blocks,
                simulated_cycles=result.makespan_cycles,
                predicted_cycles=_predict_staged(
                    rounds, cols, pl, block_cycles, frac, model
                ),
            )
        )
    return points


def validation_report(points: list[ValidationPoint]) -> str:
    from repro.harness.report import format_table

    return format_table(
        ["strategy", "mesh", "blocks", "simulated", "predicted", "gap"],
        [
            [
                p.strategy,
                f"{p.rows}x{p.cols}",
                p.blocks,
                round(p.simulated_cycles),
                round(p.predicted_cycles),
                f"{100 * p.relative_gap:.1f}%",
            ]
            for p in points
        ],
        title="Analytic model vs discrete-event simulator (compression)",
    )
