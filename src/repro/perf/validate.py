"""Cross-validation of the analytic model against the discrete-event sim.

DESIGN.md's fidelity claim rests on two legs: the cycle model is calibrated
to the paper's tables (audited by :mod:`repro.perf.calibration`), and the
pipeline model's *structure* matches what the simulator actually does at
small scale. This module runs the real on-wafer programs on small meshes
and compares their makespans with the analytic prediction for the same
configuration, reporting the discrepancy per point.

Agreement is expected within ~15 %: the simulator carries real effects the
steady-state model abstracts away (pipeline fill, activation latency,
tail rounds), all of which shrink as the run grows.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import BLOCK_SIZE
from repro.core.wse_compressor import WSECereSZ
from repro.perf.model import round_cycles
from repro.wse.cost import CycleModel, PAPER_CYCLE_MODEL


@dataclass(frozen=True)
class StageGap:
    """Observed vs predicted busy cycles for one coarse pipeline step."""

    step: str  # "prequant" | "lorenzo" | "encode"
    observed_cycles: float
    predicted_cycles: float

    @property
    def relative_gap(self) -> float:
        if self.predicted_cycles == 0:
            return 0.0 if self.observed_cycles == 0 else float("inf")
        return abs(self.observed_cycles - self.predicted_cycles) / (
            self.predicted_cycles
        )


@dataclass(frozen=True)
class ValidationPoint:
    """One sim-vs-model comparison."""

    strategy: str
    rows: int
    cols: int
    blocks: int
    simulated_cycles: float
    predicted_cycles: float
    stage_gaps: tuple[StageGap, ...] = ()

    @property
    def relative_gap(self) -> float:
        return abs(self.simulated_cycles - self.predicted_cycles) / (
            self.predicted_cycles
        )


def _stage_gaps(
    trace, workload, model: CycleModel, *, idle_dispatch: bool = False
) -> tuple[StageGap, ...]:
    """Observed (node counters) vs predicted busy cycles per coarse step.

    Every strategy runs the same per-block arithmetic; what varies is how
    planned-but-idle shuffle bits are treated. Whole-block kernels skip
    them outright; stage-group pipelines (``idle_dispatch=True``) wake for
    each and pay one task dispatch, charged under the encode step.
    """
    from repro.core.stages import compression_substages

    bs = workload.block_size
    n = workload.num_blocks
    planned_fl = max(workload.representative_fl, 1)
    costs = {
        s.name: s.cycles
        for s in compression_substages(planned_fl, bs, model)
        if not s.name.startswith("shuffle_bit_")
    }
    real_fls = np.where(workload.zero_blocks, 0, workload.fixed_lengths)
    per_bit = model.bit_shuffle.cycles(bs, 1)
    predicted = {
        "prequant": n * (costs["multiplication"] + costs["addition"]),
        "lorenzo": n * costs["lorenzo"],
        "encode": n * (costs["sign"] + costs["max"] + costs["get_length"])
        + per_bit * float(real_fls.sum()),
    }
    if idle_dispatch:
        idle_bits = np.maximum(planned_fl - real_fls, 0)
        predicted["encode"] += model.task_dispatch * float(idle_bits.sum())
    observed = {
        step: cycles
        for step, cycles in trace.step_cycle_totals().items()
        if step in predicted
    }
    return tuple(
        StageGap(
            step=step,
            observed_cycles=observed.get(step, 0.0),
            predicted_cycles=predicted[step],
        )
        for step in ("prequant", "lorenzo", "encode")
    )


def _predict_rows(
    blocks_per_pe: int, block_cycles: float
) -> float:
    """Strategy 'rows': one PE per row processes its blocks back-to-back."""
    return blocks_per_pe * block_cycles


def _predict_multi(
    rounds: int, cols: int, block_cycles: float, model: CycleModel
) -> float:
    """Strategy 'multi': serialized relay + compute per round (Eq. 4)."""
    per_round = round_cycles(
        cols, block_cycles, 1, model, overlapped=False
    )
    fill = cols * model.c1_relay
    return rounds * per_round + fill


def _predict_staged(
    rounds: int,
    cols: int,
    pipeline_length: int,
    block_cycles: float,
    bottleneck_fraction: float,
    model: CycleModel,
) -> float:
    """Staged pipelines: Eq. 4 with the Algorithm 1 bottleneck and C2."""
    per_round = round_cycles(
        cols,
        block_cycles,
        pipeline_length,
        model,
        overlapped=False,
        bottleneck_fraction=bottleneck_fraction,
    )
    fill = cols * model.c1_relay + block_cycles
    return rounds * per_round + fill


def validate_against_simulator(
    *,
    data: np.ndarray,
    eps: float,
    model: CycleModel = PAPER_CYCLE_MODEL,
) -> list[ValidationPoint]:
    """Run both strategies on small meshes and score the model.

    ``data`` should hold a few dozen blocks — enough for steady state to
    mean something, small enough for event-level simulation.
    """
    from repro.perf.wafer import measure_workload

    workload = measure_workload(data, eps)
    block_cycles = workload.mean_cycles("compress", model)
    points: list[ValidationPoint] = []

    for rows in (1, 2, 4):
        sim = WSECereSZ(rows=rows, cols=1, strategy="rows", model=model)
        result = sim.compress(data, eps=eps)
        blocks_per_pe = -(-workload.num_blocks // rows)
        points.append(
            ValidationPoint(
                strategy="rows",
                rows=rows,
                cols=1,
                blocks=workload.num_blocks,
                simulated_cycles=result.makespan_cycles,
                predicted_cycles=_predict_rows(blocks_per_pe, block_cycles),
                stage_gaps=_stage_gaps(
                    result.report.trace, workload, model
                ),
            )
        )

    for cols in (2, 4):
        sim = WSECereSZ(rows=1, cols=cols, strategy="multi", model=model)
        result = sim.compress(data, eps=eps)
        rounds = -(-workload.num_blocks // cols)
        points.append(
            ValidationPoint(
                strategy="multi",
                rows=1,
                cols=cols,
                blocks=workload.num_blocks,
                simulated_cycles=result.makespan_cycles,
                predicted_cycles=_predict_multi(
                    rounds, cols, block_cycles, model
                ),
                stage_gaps=_stage_gaps(
                    result.report.trace, workload, model
                ),
            )
        )

    from repro.core.schedule import distribute_substages
    from repro.core.stages import compression_substages

    for cols, pl in ((4, 2), (6, 2)):
        sim = WSECereSZ(
            rows=1, cols=cols, strategy="multi", pipeline_length=pl,
            model=model,
        )
        result = sim.compress(data, eps=eps)
        pipelines = cols // pl
        rounds = -(-workload.num_blocks // pipelines)
        stages = compression_substages(
            max(workload.representative_fl, 1), workload.block_size, model
        )
        dist = distribute_substages(stages, pl)
        frac = dist.bottleneck_cycles / dist.total
        points.append(
            ValidationPoint(
                strategy=f"staged(pl={pl})",
                rows=1,
                cols=cols,
                blocks=workload.num_blocks,
                simulated_cycles=result.makespan_cycles,
                predicted_cycles=_predict_staged(
                    rounds, cols, pl, block_cycles, frac, model
                ),
                stage_gaps=_stage_gaps(
                    result.report.trace, workload, model, idle_dispatch=True
                ),
            )
        )
    return points


def validation_report(points: list[ValidationPoint]) -> str:
    from repro.harness.report import format_table

    table = format_table(
        ["strategy", "mesh", "blocks", "simulated", "predicted", "gap"],
        [
            [
                p.strategy,
                f"{p.rows}x{p.cols}",
                p.blocks,
                round(p.simulated_cycles),
                round(p.predicted_cycles),
                f"{100 * p.relative_gap:.1f}%",
            ]
            for p in points
        ],
        title="Analytic model vs discrete-event simulator (compression)",
    )
    breakdown_rows = [
        [
            f"{p.strategy} {p.rows}x{p.cols}",
            g.step,
            round(g.observed_cycles),
            round(g.predicted_cycles),
            f"{100 * g.relative_gap:.1f}%",
        ]
        for p in points
        for g in p.stage_gaps
    ]
    if breakdown_rows:
        table += "\n" + format_table(
            ["point", "step", "observed", "predicted", "gap"],
            breakdown_rows,
            title="Per-PE busy cycles by pipeline step (observed vs predicted)",
        )
    return table
