"""Raw ``.f32`` field I/O.

SDRBench distributes fields as headerless little-endian float32 binaries
(e.g. ``velocity_x.f32``); these helpers read/write that convention so users
with the real datasets can feed them straight into the compressors.
"""

from __future__ import annotations

import os

import numpy as np

from repro.errors import DatasetError


def save_f32(path: str | os.PathLike, field: np.ndarray) -> None:
    """Write ``field`` as a headerless little-endian float32 binary."""
    arr = np.asarray(field, dtype="<f4")
    arr.tofile(os.fspath(path))


def load_f32(
    path: str | os.PathLike, shape: tuple[int, ...] | None = None
) -> np.ndarray:
    """Read a headerless float32 binary, optionally reshaping.

    Raises :class:`DatasetError` when the byte count does not match the
    requested shape — the classic silent-corruption mode of raw binaries.
    """
    data = np.fromfile(os.fspath(path), dtype="<f4")
    if shape is None:
        return data
    expected = int(np.prod(shape))
    if data.size != expected:
        raise DatasetError(
            f"{os.fspath(path)}: holds {data.size} float32 values, "
            f"shape {shape} needs {expected}"
        )
    return data.reshape(shape)
