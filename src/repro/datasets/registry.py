"""Dataset metadata: the paper's Table 4, plus our synthetic scaling.

``paper_shape`` records the true dimensions the paper evaluated (per field);
``synthetic_shape`` is the scaled-down shape our generators produce so that
the full experiment matrix runs in minutes on a laptop. Scaling preserves
dimensionality and aspect character; compression ratios depend on local
smoothness statistics, not on absolute extent.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DatasetError


@dataclass(frozen=True)
class DatasetInfo:
    """One row of the paper's Table 4 plus generator parameters."""

    name: str
    num_fields: int
    paper_shape: tuple[int, ...]
    synthetic_shape: tuple[int, ...]
    domain: str
    #: Generator family key understood by :mod:`repro.datasets.synthetic`.
    generator: str
    #: Representative fixed length the paper profiled for this dataset
    #: (Table 3 reports 17 / 13 / 12 for CESM-ATM / HACC / QMCPack).
    profiled_fixed_length: int | None = None

    @property
    def elements_per_field(self) -> int:
        n = 1
        for d in self.synthetic_shape:
            n *= d
        return n

    @property
    def bytes_per_field(self) -> int:
        return self.elements_per_field * 4


DATASETS: dict[str, DatasetInfo] = {
    info.name: info
    for info in [
        DatasetInfo(
            name="CESM-ATM",
            num_fields=79,
            paper_shape=(1800, 3600),
            synthetic_shape=(450, 900),
            domain="Climate Simulation",
            generator="climate2d",
            profiled_fixed_length=17,
        ),
        DatasetInfo(
            name="Hurricane",
            num_fields=13,
            paper_shape=(100, 500, 500),
            synthetic_shape=(25, 125, 125),
            domain="Weather Simulation",
            generator="weather3d",
        ),
        DatasetInfo(
            name="QMCPack",
            num_fields=2,
            paper_shape=(33120, 69, 69),
            synthetic_shape=(288, 69, 69),
            domain="Quantum Monte Carlo",
            generator="orbital3d",
            profiled_fixed_length=12,
        ),
        DatasetInfo(
            name="NYX",
            num_fields=6,
            paper_shape=(512, 512, 512),
            synthetic_shape=(96, 96, 96),
            domain="Cosmic Simulation",
            generator="cosmo3d",
        ),
        DatasetInfo(
            name="RTM",
            num_fields=36,
            paper_shape=(449, 449, 235),
            synthetic_shape=(112, 112, 60),
            domain="Seismic Imaging",
            generator="wavefield3d",
        ),
        DatasetInfo(
            name="HACC",
            num_fields=6,
            paper_shape=(280_953_867,),
            synthetic_shape=(2_097_152,),
            domain="Cosmic Simulation",
            generator="particles1d",
            profiled_fixed_length=13,
        ),
    ]
}

#: NYX field names (the paper's Fig 15 visualizes ``velocity_x``).
NYX_FIELDS = (
    "baryon_density",
    "dark_matter_density",
    "temperature",
    "velocity_x",
    "velocity_y",
    "velocity_z",
)


def dataset_names() -> list[str]:
    return list(DATASETS)


def get_dataset(name: str) -> DatasetInfo:
    try:
        return DATASETS[name]
    except KeyError:
        raise DatasetError(
            f"unknown dataset {name!r}; known: {sorted(DATASETS)}"
        ) from None
