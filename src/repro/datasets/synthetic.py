"""Seeded synthetic field generators for the six evaluation datasets.

Each generator family is tuned to reproduce the compression *character* the
paper's Table 5 exhibits for its dataset — how smooth the field is relative
to its value range (which sets the Lorenzo residual width and hence the
fixed length), how much of it is near-constant (zero blocks), and how much
fields differ from one another (the per-dataset ratio ranges):

* ``climate2d`` (CESM-ATM): layered 2-D spectral fields with a per-field
  noise floor — moderate ratios, wide field-to-field spread;
* ``weather3d`` (Hurricane): smooth 3-D spectral fields, light noise;
* ``orbital3d`` (QMCPack): oscillatory orbitals — fine structure that
  compresses well only at loose bounds (ratio falls quickly with eps);
* ``cosmo3d`` (NYX): lognormal density fields (huge dynamic range, so REL
  bounds are loose in absolute terms) and smooth velocity fields;
* ``wavefield3d`` (RTM): expanding Ricker-wavelet shells — early snapshots
  are mostly zeros (ratios pinned at the format cap), late ones dense;
* ``particles1d`` (HACC): cluster-ordered particle coordinates — the
  roughest data and the lowest ratios in the study.

All generation is deterministic in ``(dataset, field_index, seed)``.
"""

from __future__ import annotations

import zlib
from collections.abc import Iterator

import numpy as np

from repro.errors import DatasetError
from repro.datasets.registry import DATASETS, NYX_FIELDS, get_dataset


def _field_rng(dataset: str, field_index: int, seed: int) -> np.random.Generator:
    # zlib.crc32, not hash(): Python string hashing is salted per process
    # (PYTHONHASHSEED), which would make "deterministic" fields differ
    # between runs.
    name_key = zlib.crc32(dataset.encode()) & 0x7FFFFFFF
    return np.random.default_rng(
        np.random.SeedSequence([seed, name_key, field_index])
    )


def _spectral_field(
    shape: tuple[int, ...], slope: float, rng: np.random.Generator
) -> np.ndarray:
    """Isotropic Gaussian random field with power spectrum ~ k^(-2*slope).

    Spectral synthesis: shape white noise in Fourier space by a power-law
    amplitude. Larger ``slope`` = more energy at large scales = smoother.
    Output is normalized to zero mean, unit variance (float64).
    """
    noise = rng.standard_normal(shape)
    spec = np.fft.rfftn(noise)
    axes = [np.fft.fftfreq(n) for n in shape[:-1]]
    axes.append(np.fft.rfftfreq(shape[-1]))
    grids = np.meshgrid(*axes, indexing="ij", sparse=True)
    k2 = sum(g * g for g in grids)
    amp = np.zeros_like(k2)
    nonzero = k2 > 0
    amp[nonzero] = k2[nonzero] ** (-slope / 2.0)
    field = np.fft.irfftn(spec * amp, s=shape, axes=tuple(range(len(shape))))
    std = field.std()
    if std > 0:
        field /= std
    return field


# --- generator families -----------------------------------------------------------


def climate2d(shape, field_index, rng) -> np.ndarray:
    """CESM-ATM-like 2-D atmospheric field.

    Alternates smooth planetary-scale structure with a per-field white-noise
    floor; offsets/scales vary per field like physical units do (pressure,
    temperature, mixing ratios...).
    """
    slope = 1.8 + 1.4 * ((field_index * 7) % 10) / 10.0
    noise_level = 10.0 ** (-4.6 + 2.4 * ((field_index * 3) % 8) / 8.0)
    base = _spectral_field(shape, slope, rng)
    kind = field_index % 3
    if kind == 0:
        # Moisture-like variable: localized plumes over a near-zero
        # background. Mostly-zero fields are what pushes per-field ratios
        # toward the 21.6x top of Table 5's CESM band.
        field = np.maximum(base - 1.0, 0.0)
        field += noise_level * rng.standard_normal(shape)
    elif kind == 1:
        # Temperature/pressure-like variable: a large additive offset eats
        # the quantization budget (the 2.67x bottom of the band).
        field = base * 12.0 + 250.0
        field += 12.0 * noise_level * rng.standard_normal(shape)
    else:
        # Zero-mean dynamic variable (winds, fluxes).
        field = base + noise_level * rng.standard_normal(shape)
    scale = 10.0 ** ((field_index % 7) - 3)
    return (field * scale).astype(np.float32)


def weather3d(shape, field_index, rng) -> np.ndarray:
    """Hurricane-ISABEL-like 3-D weather field: smooth with a storm core."""
    slope = 2.2 + 0.8 * ((field_index * 5) % 9) / 9.0
    noise_level = 10.0 ** (-5.0 + 1.4 * (field_index % 6) / 6.0)
    base = _spectral_field(shape, slope, rng)
    kind = field_index % 4
    if kind in (0, 1, 3):
        # Hydrometeor variables (QCLOUD, QRAIN, QSNOW...): a storm core of
        # positive values over a zero background — most of Hurricane's 13
        # fields are of this type, which is why its Table 5 band tops out
        # near the 28.8x mark.
        threshold = 1.2 + 0.35 * kind
        field = np.maximum(base - threshold, 0.0) * 40.0
        field += 40.0 * noise_level * rng.standard_normal(shape)
    elif kind == 2:
        # Thermodynamic variable with vertical stratification and offset.
        z = np.linspace(-1.0, 1.0, shape[0])[:, None, None]
        field = base * 15.0 + 60.0 * z + 900.0
        field += 80.0 * noise_level * rng.standard_normal(shape)
    else:
        # Zero-mean wind component.
        field = base * 40.0
        field += 40.0 * noise_level * rng.standard_normal(shape)
    return field.astype(np.float32)


def orbital3d(shape, field_index, rng) -> np.ndarray:
    """QMCPack-like orbital: radially oscillating, decaying amplitude."""
    zs = np.linspace(-1, 1, shape[0])[:, None, None]
    ys = np.linspace(-1, 1, shape[1])[None, :, None]
    xs = np.linspace(-1, 1, shape[2])[None, None, :]
    r = np.sqrt(zs * zs + ys * ys + xs * xs)
    k = 14.0 + 6.0 * field_index
    # Sharp exponential decay: away from the nucleus the orbital sits on a
    # near-zero background, so loose REL bounds see mostly zero blocks —
    # matching QMCPack's steep ratio falloff in Table 5 (14.6 -> 7.2 -> 4.2
    # as the bound tightens from 1e-2 to 1e-4).
    envelope = np.exp(-4.5 * r)
    orbital = envelope * np.cos(k * r)
    orbital += 0.0035 * _spectral_field(shape, 1.5, rng)
    orbital += 0.0009 * rng.standard_normal(shape)
    return orbital.astype(np.float32)


def cosmo3d(shape, field_index, rng) -> np.ndarray:
    """NYX-like cosmology field, keyed by the real NYX field list.

    Density fields are lognormal (orders-of-magnitude dynamic range: a REL
    bound is then loose over most of the volume); temperature is lognormal
    but milder; velocities are comparatively smooth Gaussian fields.
    """
    name = NYX_FIELDS[field_index % len(NYX_FIELDS)]
    if name.endswith("density"):
        # Lognormal densities: the value range is set by the rare densest
        # halos, so under a REL bound most of the (near-void) volume
        # quantizes to zero — ratios near the 31.98x format cap.
        g = _spectral_field(shape, 1.8, rng)
        field = np.exp(3.8 * g) * (1.0 if "baryon" in name else 4.0)
    elif name == "temperature":
        g = _spectral_field(shape, 1.9, rng)
        field = np.exp(2.4 * g + 10.0)
    else:  # velocity_[xyz]
        # Zero-mean bulk flows with a rough small-scale component; the
        # paper's Fig 15 measures velocity_x at ratio ~3.1 under REL 1e-4.
        g = _spectral_field(shape, 2.6, rng)
        g += 0.0012 * rng.standard_normal(shape)
        field = g * 2.0e7
    return field.astype(np.float32)


def wavefield3d(shape, field_index, rng) -> np.ndarray:
    """RTM-like seismic snapshot: a Ricker shell expanding with field index.

    Field index plays the role of the simulation timestep: early snapshots
    are silent almost everywhere (zero blocks -> ratios at the format cap),
    later ones fill with reflected energy.
    """
    num_steps = DATASETS["RTM"].num_fields
    t = field_index % num_steps
    zs = np.linspace(-1, 1, shape[0])[:, None, None]
    ys = np.linspace(-1, 1, shape[1])[None, :, None]
    xs = np.linspace(-1, 1, shape[2])[None, None, :]
    r = np.sqrt(zs * zs + ys * ys + xs * xs)
    radius = 0.06 + 1.1 * (t + 1) / num_steps
    width = 0.05
    arg = ((r - radius) / width) ** 2
    shell = (1.0 - 2.0 * arg) * np.exp(-arg)  # Ricker wavelet profile
    # Reverberation tail behind the front grows over time.
    tail_amp = 0.25 * (t / num_steps) ** 1.5
    tail = tail_amp * _spectral_field(shape, 1.6, rng) * (r < radius)
    field = (shell + tail) * 1.0e3
    # The solver's numerical noise floor accumulates over timesteps: early
    # snapshots compress at the format cap even under tight bounds (Table 5
    # shows RTM fields at 31.96x even at REL 1e-4), late ones do not.
    noise_amp = 1.0e-5 + 1.8 * (t / num_steps) ** 2
    field += noise_amp * rng.standard_normal(shape)
    return field.astype(np.float32)


def particles1d(shape, field_index, rng) -> np.ndarray:
    """HACC-like particle coordinate/velocity stream.

    Particles are stored cluster-by-cluster: within a cluster values jitter
    around a slowly wandering center, across clusters the center jumps.
    This is the roughest dataset of the six — exactly why HACC shows the
    smallest ratios in Table 5.
    """
    (n,) = shape
    cluster = 64
    num_clusters = -(-n // cluster)
    if field_index < 3:  # position-like: xx / yy / zz
        centers = np.cumsum(rng.uniform(0.0, 2.0, size=num_clusters))
        centers *= 256.0 / max(float(centers[-1]), 1.0)  # box units first
        jitter = rng.uniform(-0.35, 0.35, size=num_clusters * cluster)
        vals = np.repeat(centers, cluster)[:n] + jitter[:n]
    else:  # velocity-like: vx / vy / vz
        centers = 300.0 * rng.standard_normal(num_clusters)
        jitter = 60.0 * rng.standard_normal(num_clusters * cluster)
        vals = np.repeat(centers, cluster)[:n] + jitter[:n]
        # A sprinkle of high-velocity outliers inflates the value range,
        # which loosens the REL bound for the bulk — velocity fields sit at
        # the 9.18x top of HACC's band, positions at the 4.66x bottom.
        outliers = rng.choice(n, size=max(1, n // 6000), replace=False)
        vals[outliers] *= 6.0
    return vals.astype(np.float32)


_GENERATORS = {
    "climate2d": climate2d,
    "weather3d": weather3d,
    "orbital3d": orbital3d,
    "cosmo3d": cosmo3d,
    "wavefield3d": wavefield3d,
    "particles1d": particles1d,
}


def generate_field(
    dataset: str, field_index: int = 0, *, seed: int = 0
) -> np.ndarray:
    """Generate one synthetic field of ``dataset`` (float32, registry shape)."""
    info = get_dataset(dataset)
    if not (0 <= field_index < info.num_fields):
        raise DatasetError(
            f"{dataset} has {info.num_fields} fields; index {field_index} "
            f"out of range"
        )
    rng = _field_rng(dataset, field_index, seed)
    gen = _GENERATORS[info.generator]
    return gen(info.synthetic_shape, field_index, rng)


def field_name(dataset: str, field_index: int) -> str:
    """Human-readable field name (NYX uses the real field names)."""
    if dataset == "NYX":
        return NYX_FIELDS[field_index % len(NYX_FIELDS)]
    return f"{dataset.lower()}_f{field_index:02d}"


def iter_fields(
    dataset: str, *, limit: int | None = None, seed: int = 0
) -> Iterator[tuple[str, np.ndarray]]:
    """Yield ``(name, array)`` for the dataset's fields (optionally capped).

    The harness caps field counts (e.g. CESM-ATM has 79) to keep the full
    experiment matrix fast; sampling is deterministic — the first ``limit``
    fields.
    """
    info = get_dataset(dataset)
    count = info.num_fields if limit is None else min(limit, info.num_fields)
    for i in range(count):
        yield field_name(dataset, i), generate_field(dataset, i, seed=seed)
