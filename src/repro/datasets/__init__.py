"""Synthetic stand-ins for the six SDRBench datasets of the paper's Table 4.

The real datasets (CESM-ATM, Hurricane-ISABEL, QMCPack, NYX, RTM, HACC) are
multi-gigabyte scientific archives we cannot ship or download. Each synthetic
generator reproduces the *statistical character* that drives compression
behaviour — dimensionality, smoothness spectrum, noise floor, sparsity, and
field-to-field diversity — at a laptop-friendly scale, deterministically
from a seed. Table 4's metadata (field counts, true dimensions, domain) is
kept verbatim in :mod:`repro.datasets.registry` for the harness.
"""

from repro.datasets.registry import (
    DATASETS,
    DatasetInfo,
    dataset_names,
    get_dataset,
)
from repro.datasets.synthetic import generate_field, iter_fields
from repro.datasets.io import load_f32, save_f32

__all__ = [
    "DATASETS",
    "DatasetInfo",
    "dataset_names",
    "get_dataset",
    "generate_field",
    "iter_fields",
    "load_f32",
    "save_f32",
]
