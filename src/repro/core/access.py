"""Random access into CereSZ streams.

Because every block record is self-contained (the paper's block-wise design
exists precisely so PEs never need neighbours), a reader can decode any
subrange of a stream without touching the rest of the payload. Only the
header *scan* is sequential — record sizes are data-dependent — and it
reads 4 bytes per block, so skipping is cheap even for ranges deep into a
large field.

This is a host-side library feature the wafer design enables for free:
post-hoc analysis tools routinely want one slab of a snapshot, not the
whole reconstruction.
"""

from __future__ import annotations

import numpy as np

from repro.errors import CompressionError, FormatError
from repro.core.encoding import decode_blocks, scan_record_offsets
from repro.core.format import StreamHeader
from repro.core.lorenzo import lorenzo_reconstruct
from repro.core.quantize import dequantize


def decompress_range(
    stream: bytes, start: int, stop: int
) -> np.ndarray:
    """Reconstruct elements ``[start, stop)`` of the flattened field.

    Works only for blocked-1D streams (the CereSZ default): the N-D
    predictor needs the whole array for its prefix sums, which is exactly
    the random-access property the paper's block-local design buys.
    """
    header, offset = StreamHeader.unpack(stream)
    if header.predictor != "blocked1d":
        raise CompressionError(
            "random access requires the block-local 1-D predictor; "
            "ND-predicted streams must be decompressed whole"
        )
    n = header.num_elements
    if not (0 <= start <= stop <= n):
        raise CompressionError(
            f"range [{start}, {stop}) outside field of {n} elements"
        )
    out_dtype = np.float64 if header.dtype == "f8" else np.float32
    if stop == start:
        return np.zeros(0, dtype=out_dtype)
    if header.constant is not None:
        return np.full(stop - start, header.constant, dtype=out_dtype)

    L = header.block_size
    first_block = start // L
    last_block = (stop - 1) // L  # inclusive

    offsets, fls = scan_record_offsets(
        stream, header.num_blocks, L, header.header_width, start=offset
    )
    if last_block >= header.num_blocks:
        raise FormatError("stream holds fewer blocks than its header claims")

    # Decode just the needed records: build a contiguous sub-stream view
    # starting at the first wanted block (decode_blocks walks forward).
    sub_start = int(offsets[first_block])
    count = last_block - first_block + 1
    residuals = decode_blocks(stream, count, L, header.header_width, sub_start)
    codes = lorenzo_reconstruct(residuals)
    values = dequantize(codes.reshape(-1), header.eps, dtype=out_dtype)
    lo = start - first_block * L
    hi = stop - first_block * L
    return values[lo:hi]


def block_index(stream: bytes) -> np.ndarray:
    """Per-block byte offsets into the stream (an explicit random-access
    index a caller can cache to skip the header scan on repeated reads)."""
    header, offset = StreamHeader.unpack(stream)
    if header.constant is not None:
        return np.zeros(0, dtype=np.int64)
    offsets, _ = scan_record_offsets(
        stream,
        header.num_blocks,
        header.block_size,
        header.header_width,
        start=offset,
    )
    return offsets
