"""Random access into CereSZ streams.

Because every block record is self-contained (the paper's block-wise design
exists precisely so PEs never need neighbours), a reader can decode any
subrange of a stream without touching the rest of the payload. For v1
streams only the header *scan* is sequential — record sizes are
data-dependent — and it reads 4 bytes per block, so skipping is cheap even
for ranges deep into a large field. Indexed (container v2) streams skip
even that: the fl table yields every offset from one cumsum.

This is a host-side library feature the wafer design enables for free:
post-hoc analysis tools routinely want one slab of a snapshot, not the
whole reconstruction.
"""

from __future__ import annotations

import numpy as np

from repro.errors import CompressionError, FormatError
from repro.core.encoding import (
    decode_blocks,
    index_record_offsets,
    scan_record_offsets,
    unpack_block_index,
)
from repro.core.format import StreamHeader
from repro.core.predictors import get_predictor
from repro.core.quantize import dequantize


def _record_layout(
    stream: bytes, header: StreamHeader, offset: int
) -> tuple[np.ndarray, np.ndarray]:
    """(offsets, fixed lengths) per block, via the index when available."""
    if header.indexed:
        fls, records_start = unpack_block_index(
            stream, header.num_blocks, offset
        )
        offsets = index_record_offsets(
            fls,
            header.block_size,
            header.header_width,
            start=records_start,
            stream_size=len(stream),
        )
        return offsets, fls
    return scan_record_offsets(
        stream,
        header.num_blocks,
        header.block_size,
        header.header_width,
        start=offset,
    )


def decompress_range(
    stream: bytes, start: int, stop: int
) -> np.ndarray:
    """Reconstruct elements ``[start, stop)`` of the flattened field.

    Works for any stream written with a *block-local* predictor (the
    CereSZ default and any registry entry with that locality contract):
    whole-array predictors need the full array for their global inverse,
    which is exactly the random-access property the paper's block-local
    design buys.
    """
    header, offset = StreamHeader.unpack(stream)
    pred = get_predictor(header.predictor)
    if not pred.block_local:
        raise CompressionError(
            f"random access requires a block-local predictor; this stream "
            f"was written with {pred.name!r} (locality {pred.locality!r}) "
            f"and must be decompressed whole"
        )
    n = header.num_elements
    if not (0 <= start <= stop <= n):
        raise CompressionError(
            f"range [{start}, {stop}) outside field of {n} elements"
        )
    out_dtype = np.float64 if header.dtype == "f8" else np.float32
    if stop == start:
        return np.zeros(0, dtype=out_dtype)
    if header.constant is not None:
        return np.full(stop - start, header.constant, dtype=out_dtype)

    L = header.block_size
    first_block = start // L
    last_block = (stop - 1) // L  # inclusive

    offsets, fls = _record_layout(stream, header, offset)
    if last_block >= header.num_blocks:
        raise FormatError("stream holds fewer blocks than its header claims")

    # Decode just the needed records, handing decode_blocks the slice of
    # the already-known layout so it never re-walks headers.
    count = last_block - first_block + 1
    residuals = decode_blocks(
        stream,
        count,
        L,
        header.header_width,
        offsets=offsets[first_block : last_block + 1],
        fls=fls[first_block : last_block + 1],
    )
    codes = pred.reconstruct_blocks(residuals)
    values = dequantize(codes.reshape(-1), header.eps, dtype=out_dtype)
    lo = start - first_block * L
    hi = stop - first_block * L
    return values[lo:hi]


def block_index(stream: bytes) -> np.ndarray:
    """Per-block byte offsets into the stream (an explicit random-access
    index a caller can cache to skip the header scan on repeated reads).

    For indexed v2 streams this is a vectorized cumsum over the embedded
    fl table; v1 streams still pay one sequential header walk.
    """
    header, offset = StreamHeader.unpack(stream)
    if header.constant is not None:
        return np.zeros(0, dtype=np.int64)
    offsets, _ = _record_layout(stream, header, offset)
    return offsets
