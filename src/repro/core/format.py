"""The CereSZ container format.

A compressed stream is a small self-describing global header followed by the
per-block records of :mod:`repro.core.encoding`::

    [ magic "CSZ1" ][ version ][ header_width ][ block_size u16 ]
    [ ndim u8 ][ dims u64 * ndim ][ eps f64 ][ flags u8 ]
    ( [ constant value f64 ]  when flags & CONSTANT )
    ( [ crc_group u16 ]  when flags & CHECKSUM, version 3 )
    ( [ predictor tag u8 ]  when flags & PREDICTOR_ID )
    ( [ fl table: u8 * num_blocks ]  when flags & INDEXED, version 2 )
    [ block records ... ]

The global header exists only on the host side — on the wafer each PE sees
naked block records — but a usable library needs streams that decompress
without out-of-band metadata. ``header_width`` is the per-block header size:
4 bytes for CereSZ proper, 1 byte when the container carries the SZp-format
baseline payload.

A *constant* stream handles the zero-value-range corner: a REL error bound
on a constant field is undefined (range 0), so the field is stored exactly
as a single f64 and the flag short-circuits both directions.

Version 2 ("indexed") streams additionally carry a packed table of every
block's fixed length right after the global header. Record sizes are a pure
function of the fixed length, so the table turns the otherwise sequential
offset scan into one vectorized ``cumsum`` — decoding becomes
embarrassingly parallel, the same trick cuSZ/cuSZp play with partition
metadata. The per-block records themselves are byte-identical to v1 (each
still carries its own header), so a v2 payload remains scannable by a v1
record walker and random access never needs the table to be trusted.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

import numpy as np

from repro.config import BLOCK_SIZE, CERESZ_HEADER_BYTES
from repro.core.predictors import get_predictor, predictor_from_tag
from repro.errors import CompressionError, FormatError

CERESZ_MAGIC = b"CSZ1"
FORMAT_VERSION = 1
#: Container v2: the global header is followed by a packed per-block
#: fixed-length table, making decode offsets a vectorized cumsum.
FORMAT_VERSION_INDEXED = 2
#: Container v3 ("checksummed"): v2 plus CRC32C integrity metadata. The fl
#: table is followed by a per-group table of ``(record_bytes u32, crc u32)``
#: — one entry per ``crc_group`` consecutive blocks, each CRC covering the
#: group's fl-table slice and its record bytes — and a final ``meta_crc
#: u32`` over the packed header and the group table. Records stay
#: byte-identical to v1/v2, so corruption localizes to one group and every
#: intact group remains independently decodable (the salvage path).
FORMAT_VERSION_CHECKSUM = 3
SUPPORTED_VERSIONS = (
    FORMAT_VERSION, FORMAT_VERSION_INDEXED, FORMAT_VERSION_CHECKSUM
)

#: Default blocks per CRC group: 8 bytes of integrity metadata per 64
#: blocks keeps the overhead near 0.1 % on realistic streams (< 2 % even
#: on degenerate all-zero-block streams) while losing at most 64 blocks to
#: one flipped byte.
DEFAULT_CRC_GROUP = 64

FLAG_CONSTANT = 0x01
#: Legacy 1-bit predictor flag: residuals come from the N-D Lorenzo
#: predictor over the full array (the paper's "higher dimensional
#: Lorenzo" extension) instead of the default block-local 1-D
#: difference. Kept so pre-registry ``nd`` streams decode unchanged;
#: every other non-default predictor uses :data:`FLAG_PREDICTOR_ID`.
FLAG_ND_PREDICTOR = 0x02
#: The reconstructed field is float64 (the stream was built from a float64
#: input; SDRBench distributes several datasets in double precision).
FLAG_F64 = 0x04
#: A packed per-block fixed-length table follows the global header
#: (container v2 only; see the module docstring).
FLAG_INDEXED = 0x08
#: CRC32C integrity metadata follows the fl table (container v3; implies
#: FLAG_INDEXED).
FLAG_CHECKSUM = 0x10
#: The header carries an explicit predictor-tag byte (after the
#: crc_group field, when present). The registry's tag space replaces the
#: single legacy nd bit; the two default-able predictors keep their
#: pre-registry encodings (``lorenzo1d`` -> no bits, ``nd`` ->
#: FLAG_ND_PREDICTOR) so existing streams stay byte-identical.
FLAG_PREDICTOR_ID = 0x20

_FIXED = struct.Struct("<4sBBHB")  # magic, version, header_width, block, ndim
_EPS_FLAGS = struct.Struct("<dB")
_DIM = struct.Struct("<Q")
_CONST = struct.Struct("<d")
_CRC_GROUP = struct.Struct("<H")  # blocks per CRC group (v3 only)
_PREDICTOR = struct.Struct("<B")  # predictor tag (FLAG_PREDICTOR_ID only)


@dataclass(frozen=True)
class StreamHeader:
    """Decoded global header of a CereSZ stream."""

    header_width: int
    block_size: int
    shape: tuple[int, ...]
    eps: float
    constant: float | None = None
    #: Canonical registry name (see :mod:`repro.core.predictors`).
    predictor: str = "lorenzo1d"
    dtype: str = "f4"  # "f4" or "f8": reconstruction precision
    indexed: bool = False
    version: int = FORMAT_VERSION
    #: v3 integrity metadata: when True the fl table is followed by a
    #: per-group CRC32C table and a meta CRC (see the module docstring).
    checksum: bool = False
    #: Blocks per CRC group (v3 only; 0 on v1/v2 streams).
    crc_group: int = 0

    @property
    def num_elements(self) -> int:
        n = 1
        for d in self.shape:
            n *= d
        return n if self.shape else 0

    @property
    def num_blocks(self) -> int:
        return -(-self.num_elements // self.block_size)

    @property
    def num_groups(self) -> int:
        """CRC groups in a v3 stream (0 when not checksummed)."""
        if not self.checksum or self.crc_group <= 0:
            return 0
        return -(-self.num_blocks // self.crc_group)

    @property
    def index_bytes(self) -> int:
        """Bytes between the packed header and the first block record.

        v2: the fl table. v3: fl table + group table (8 bytes per group)
        + the 4-byte meta CRC.
        """
        if not self.indexed:
            return 0
        extra = 8 * self.num_groups + 4 if self.checksum else 0
        return self.num_blocks + extra

    def _expected_version(self) -> int:
        if self.checksum:
            return FORMAT_VERSION_CHECKSUM
        return FORMAT_VERSION_INDEXED if self.indexed else FORMAT_VERSION

    def pack(self) -> bytes:
        if not (1 <= len(self.shape) <= 255):
            raise FormatError(f"unsupported ndim {len(self.shape)}")
        if self.checksum and not self.indexed:
            raise FormatError(
                "checksummed streams are always indexed (group CRCs cover "
                "the fl table)"
            )
        if self.version != self._expected_version():
            raise FormatError(
                f"indexed={self.indexed} checksum={self.checksum} requires "
                f"stream version {self._expected_version()}, "
                f"got {self.version}"
            )
        if self.checksum and not (1 <= self.crc_group <= 0xFFFF):
            raise FormatError(
                f"crc_group must be in [1, 65535], got {self.crc_group}"
            )
        if self.indexed and self.constant is not None:
            raise FormatError(
                "constant streams carry no block records to index"
            )
        parts = [
            _FIXED.pack(
                CERESZ_MAGIC,
                self.version,
                self.header_width,
                self.block_size,
                len(self.shape),
            )
        ]
        parts.extend(_DIM.pack(d) for d in self.shape)
        flags = FLAG_CONSTANT if self.constant is not None else 0
        try:
            pred = get_predictor(self.predictor)
        except CompressionError as exc:
            raise FormatError(str(exc)) from None
        predictor_tag: int | None = None
        if pred.name == "nd":
            flags |= FLAG_ND_PREDICTOR
        elif pred.name != "lorenzo1d":
            flags |= FLAG_PREDICTOR_ID
            predictor_tag = pred.tag
        if self.dtype == "f8":
            flags |= FLAG_F64
        elif self.dtype != "f4":
            raise FormatError(f"unknown dtype {self.dtype!r}")
        if self.indexed:
            flags |= FLAG_INDEXED
        if self.checksum:
            flags |= FLAG_CHECKSUM
        parts.append(_EPS_FLAGS.pack(self.eps, flags))
        if self.constant is not None:
            parts.append(_CONST.pack(self.constant))
        if self.checksum:
            parts.append(_CRC_GROUP.pack(self.crc_group))
        if predictor_tag is not None:
            parts.append(_PREDICTOR.pack(predictor_tag))
        return b"".join(parts)

    @classmethod
    def unpack(cls, stream: bytes | memoryview) -> tuple["StreamHeader", int]:
        """Parse the header; returns (header, offset of first block record)."""
        buf = bytes(stream[: _FIXED.size])
        if len(buf) < _FIXED.size:
            raise FormatError("stream shorter than the fixed header")
        magic, version, header_width, block_size, ndim = _FIXED.unpack(buf)
        if magic != CERESZ_MAGIC:
            raise FormatError(f"bad magic {magic!r}, expected {CERESZ_MAGIC!r}")
        if version not in SUPPORTED_VERSIONS:
            raise FormatError(f"unsupported stream version {version}")
        if block_size <= 0 or block_size % 8 or block_size > 8192:
            # 8192 elements = 32 KB of raw data, already beyond what a
            # 48 KB-SRAM PE could stage; larger values indicate corruption.
            raise FormatError(f"corrupt block size {block_size}")
        pos = _FIXED.size
        dims = []
        for _ in range(ndim):
            chunk = bytes(stream[pos : pos + _DIM.size])
            if len(chunk) < _DIM.size:
                raise FormatError("stream truncated in shape dims")
            dims.append(_DIM.unpack(chunk)[0])
            pos += _DIM.size
        chunk = bytes(stream[pos : pos + _EPS_FLAGS.size])
        if len(chunk) < _EPS_FLAGS.size:
            raise FormatError("stream truncated before eps/flags")
        eps, flags = _EPS_FLAGS.unpack(chunk)
        pos += _EPS_FLAGS.size
        constant = None
        if flags & FLAG_CONSTANT:
            chunk = bytes(stream[pos : pos + _CONST.size])
            if len(chunk) < _CONST.size:
                raise FormatError("stream truncated in constant value")
            constant = _CONST.unpack(chunk)[0]
            pos += _CONST.size
        indexed = bool(flags & FLAG_INDEXED)
        checksum = bool(flags & FLAG_CHECKSUM)
        if checksum != (version == FORMAT_VERSION_CHECKSUM):
            raise FormatError(
                f"checksum flag {checksum} inconsistent with stream "
                f"version {version}"
            )
        if checksum and not indexed:
            raise FormatError("checksummed streams must carry a block index")
        if not checksum and indexed != (version == FORMAT_VERSION_INDEXED):
            raise FormatError(
                f"index flag {indexed} inconsistent with stream version "
                f"{version}"
            )
        if indexed and constant is not None:
            raise FormatError("constant streams cannot carry a block index")
        crc_group = 0
        if checksum:
            chunk = bytes(stream[pos : pos + _CRC_GROUP.size])
            if len(chunk) < _CRC_GROUP.size:
                raise FormatError("stream truncated in crc_group field")
            crc_group = _CRC_GROUP.unpack(chunk)[0]
            pos += _CRC_GROUP.size
            if crc_group < 1:
                raise FormatError(f"corrupt crc_group {crc_group}")
        if flags & FLAG_PREDICTOR_ID and flags & FLAG_ND_PREDICTOR:
            raise FormatError(
                "both the legacy nd flag and the predictor-id flag are set"
            )
        if flags & FLAG_PREDICTOR_ID:
            chunk = bytes(stream[pos : pos + _PREDICTOR.size])
            if len(chunk) < _PREDICTOR.size:
                raise FormatError("stream truncated in predictor tag")
            tag = _PREDICTOR.unpack(chunk)[0]
            pos += _PREDICTOR.size
            try:
                pred = predictor_from_tag(tag)
            except CompressionError:
                raise FormatError(
                    f"unknown predictor tag {tag}; the stream needs a "
                    "newer decoder"
                ) from None
            if pred.name in ("lorenzo1d", "nd"):
                raise FormatError(
                    f"predictor {pred.name!r} must use its legacy flag "
                    "encoding, not an explicit tag"
                )
            predictor = pred.name
        elif flags & FLAG_ND_PREDICTOR:
            predictor = "nd"
        else:
            predictor = "lorenzo1d"
        header = cls(
            header_width=header_width,
            block_size=block_size,
            shape=tuple(int(d) for d in dims),
            eps=eps,
            constant=constant,
            predictor=predictor,
            dtype="f8" if flags & FLAG_F64 else "f4",
            indexed=indexed,
            version=version,
            checksum=checksum,
            crc_group=crc_group,
        )
        return header, pos


def make_header(
    shape: tuple[int, ...],
    eps: float,
    *,
    header_width: int = CERESZ_HEADER_BYTES,
    block_size: int = BLOCK_SIZE,
    constant: float | None = None,
    predictor: str = "lorenzo1d",
    dtype: str = "f4",
    indexed: bool = False,
    checksum: bool = False,
    crc_group: int = DEFAULT_CRC_GROUP,
) -> StreamHeader:
    """Convenience constructor used by the compressors."""
    arr_shape = tuple(int(d) for d in np.atleast_1d(np.asarray(shape)).tolist())
    try:
        predictor = get_predictor(predictor).name
    except CompressionError as exc:
        raise FormatError(str(exc)) from None
    if checksum:
        indexed = True
        version = FORMAT_VERSION_CHECKSUM
    else:
        version = FORMAT_VERSION_INDEXED if indexed else FORMAT_VERSION
    return StreamHeader(
        header_width=header_width,
        block_size=block_size,
        shape=arr_shape,
        eps=float(eps),
        constant=constant,
        predictor=predictor,
        dtype=dtype,
        indexed=indexed,
        version=version,
        checksum=checksum,
        crc_group=crc_group if checksum else 0,
    )
