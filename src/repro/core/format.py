"""The CereSZ container format.

A compressed stream is a small self-describing global header followed by the
per-block records of :mod:`repro.core.encoding`::

    [ magic "CSZ1" ][ version ][ header_width ][ block_size u16 ]
    [ ndim u8 ][ dims u64 * ndim ][ eps f64 ][ flags u8 ]
    ( [ constant value f64 ]  when flags & CONSTANT )
    ( [ fl table: u8 * num_blocks ]  when flags & INDEXED, version 2 )
    [ block records ... ]

The global header exists only on the host side — on the wafer each PE sees
naked block records — but a usable library needs streams that decompress
without out-of-band metadata. ``header_width`` is the per-block header size:
4 bytes for CereSZ proper, 1 byte when the container carries the SZp-format
baseline payload.

A *constant* stream handles the zero-value-range corner: a REL error bound
on a constant field is undefined (range 0), so the field is stored exactly
as a single f64 and the flag short-circuits both directions.

Version 2 ("indexed") streams additionally carry a packed table of every
block's fixed length right after the global header. Record sizes are a pure
function of the fixed length, so the table turns the otherwise sequential
offset scan into one vectorized ``cumsum`` — decoding becomes
embarrassingly parallel, the same trick cuSZ/cuSZp play with partition
metadata. The per-block records themselves are byte-identical to v1 (each
still carries its own header), so a v2 payload remains scannable by a v1
record walker and random access never needs the table to be trusted.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

import numpy as np

from repro.config import BLOCK_SIZE, CERESZ_HEADER_BYTES
from repro.errors import FormatError

CERESZ_MAGIC = b"CSZ1"
FORMAT_VERSION = 1
#: Container v2: the global header is followed by a packed per-block
#: fixed-length table, making decode offsets a vectorized cumsum.
FORMAT_VERSION_INDEXED = 2
SUPPORTED_VERSIONS = (FORMAT_VERSION, FORMAT_VERSION_INDEXED)

FLAG_CONSTANT = 0x01
#: Residuals come from the N-D Lorenzo predictor over the full array
#: (the paper's "higher dimensional Lorenzo" extension) instead of the
#: default block-local 1-D difference.
FLAG_ND_PREDICTOR = 0x02
#: The reconstructed field is float64 (the stream was built from a float64
#: input; SDRBench distributes several datasets in double precision).
FLAG_F64 = 0x04
#: A packed per-block fixed-length table follows the global header
#: (container v2 only; see the module docstring).
FLAG_INDEXED = 0x08

_FIXED = struct.Struct("<4sBBHB")  # magic, version, header_width, block, ndim
_EPS_FLAGS = struct.Struct("<dB")
_DIM = struct.Struct("<Q")
_CONST = struct.Struct("<d")


@dataclass(frozen=True)
class StreamHeader:
    """Decoded global header of a CereSZ stream."""

    header_width: int
    block_size: int
    shape: tuple[int, ...]
    eps: float
    constant: float | None = None
    predictor: str = "blocked1d"  # or "nd"
    dtype: str = "f4"  # "f4" or "f8": reconstruction precision
    indexed: bool = False
    version: int = FORMAT_VERSION

    @property
    def num_elements(self) -> int:
        n = 1
        for d in self.shape:
            n *= d
        return n if self.shape else 0

    @property
    def num_blocks(self) -> int:
        return -(-self.num_elements // self.block_size)

    @property
    def index_bytes(self) -> int:
        """Bytes of the packed fl table between the header and the records."""
        return self.num_blocks if self.indexed else 0

    def pack(self) -> bytes:
        if not (1 <= len(self.shape) <= 255):
            raise FormatError(f"unsupported ndim {len(self.shape)}")
        if self.indexed != (self.version == FORMAT_VERSION_INDEXED):
            raise FormatError(
                f"indexed={self.indexed} requires stream version "
                f"{FORMAT_VERSION_INDEXED if self.indexed else FORMAT_VERSION}"
                f", got {self.version}"
            )
        if self.indexed and self.constant is not None:
            raise FormatError(
                "constant streams carry no block records to index"
            )
        parts = [
            _FIXED.pack(
                CERESZ_MAGIC,
                self.version,
                self.header_width,
                self.block_size,
                len(self.shape),
            )
        ]
        parts.extend(_DIM.pack(d) for d in self.shape)
        flags = FLAG_CONSTANT if self.constant is not None else 0
        if self.predictor == "nd":
            flags |= FLAG_ND_PREDICTOR
        elif self.predictor != "blocked1d":
            raise FormatError(f"unknown predictor {self.predictor!r}")
        if self.dtype == "f8":
            flags |= FLAG_F64
        elif self.dtype != "f4":
            raise FormatError(f"unknown dtype {self.dtype!r}")
        if self.indexed:
            flags |= FLAG_INDEXED
        parts.append(_EPS_FLAGS.pack(self.eps, flags))
        if self.constant is not None:
            parts.append(_CONST.pack(self.constant))
        return b"".join(parts)

    @classmethod
    def unpack(cls, stream: bytes | memoryview) -> tuple["StreamHeader", int]:
        """Parse the header; returns (header, offset of first block record)."""
        buf = bytes(stream[: _FIXED.size])
        if len(buf) < _FIXED.size:
            raise FormatError("stream shorter than the fixed header")
        magic, version, header_width, block_size, ndim = _FIXED.unpack(buf)
        if magic != CERESZ_MAGIC:
            raise FormatError(f"bad magic {magic!r}, expected {CERESZ_MAGIC!r}")
        if version not in SUPPORTED_VERSIONS:
            raise FormatError(f"unsupported stream version {version}")
        if block_size <= 0 or block_size % 8 or block_size > 8192:
            # 8192 elements = 32 KB of raw data, already beyond what a
            # 48 KB-SRAM PE could stage; larger values indicate corruption.
            raise FormatError(f"corrupt block size {block_size}")
        pos = _FIXED.size
        dims = []
        for _ in range(ndim):
            chunk = bytes(stream[pos : pos + _DIM.size])
            if len(chunk) < _DIM.size:
                raise FormatError("stream truncated in shape dims")
            dims.append(_DIM.unpack(chunk)[0])
            pos += _DIM.size
        chunk = bytes(stream[pos : pos + _EPS_FLAGS.size])
        if len(chunk) < _EPS_FLAGS.size:
            raise FormatError("stream truncated before eps/flags")
        eps, flags = _EPS_FLAGS.unpack(chunk)
        pos += _EPS_FLAGS.size
        constant = None
        if flags & FLAG_CONSTANT:
            chunk = bytes(stream[pos : pos + _CONST.size])
            if len(chunk) < _CONST.size:
                raise FormatError("stream truncated in constant value")
            constant = _CONST.unpack(chunk)[0]
            pos += _CONST.size
        indexed = bool(flags & FLAG_INDEXED)
        if indexed != (version == FORMAT_VERSION_INDEXED):
            raise FormatError(
                f"index flag {indexed} inconsistent with stream version "
                f"{version}"
            )
        if indexed and constant is not None:
            raise FormatError("constant streams cannot carry a block index")
        header = cls(
            header_width=header_width,
            block_size=block_size,
            shape=tuple(int(d) for d in dims),
            eps=eps,
            constant=constant,
            predictor="nd" if flags & FLAG_ND_PREDICTOR else "blocked1d",
            dtype="f8" if flags & FLAG_F64 else "f4",
            indexed=indexed,
            version=version,
        )
        return header, pos


def make_header(
    shape: tuple[int, ...],
    eps: float,
    *,
    header_width: int = CERESZ_HEADER_BYTES,
    block_size: int = BLOCK_SIZE,
    constant: float | None = None,
    predictor: str = "blocked1d",
    dtype: str = "f4",
    indexed: bool = False,
) -> StreamHeader:
    """Convenience constructor used by the compressors."""
    arr_shape = tuple(int(d) for d in np.atleast_1d(np.asarray(shape)).tolist())
    return StreamHeader(
        header_width=header_width,
        block_size=block_size,
        shape=arr_shape,
        eps=float(eps),
        constant=constant,
        predictor=predictor,
        dtype=dtype,
        indexed=indexed,
        version=FORMAT_VERSION_INDEXED if indexed else FORMAT_VERSION,
    )
