"""Declarative mapping IR: PE-placed stage graphs for the WSE programs.

The paper's contribution is the *mapping* of the compression pipeline onto
the wafer (Section 4, Figs 6/9, Algorithm 1). Historically each mapping was
a hand-wired program builder: colors, routes, relay closures, and recv /
compute tasks created from scratch per strategy. This module factors the
*what* out of the *how*: a :class:`MappingPlan` is a declarative graph of
PE-placed nodes —

* :class:`IngestNode` / :class:`EgressNode` — where data enters the mesh
  from the west edge and where records leave it (descriptive; the host
  boundary of paper Section 5.1.1);
* :class:`ComputeNode` — a whole-algorithm-per-PE kernel (Fig 6 left);
* :class:`RelayNode` — the Fig 9 counted relay: per round, pass ``passing``
  blocks east before consuming one, then either run the whole algorithm
  (``group is None``, Fig 6 right with 1-PE pipelines) or run stage group 0
  and forward intermediate state (a staged pipeline's head);
* :class:`StageNode` — one Algorithm-1 stage group on one PE, receiving
  serialized state from the west and forwarding east (Fig 6 middle), with
  an optional raw-relay side duty when pipelines share a row;
* :class:`HeaderNode` — the decompression head: the two-phase header/body
  receive that data-dependent record lengths force on a dataflow machine —

with typed edges (a color name, a direction, an extent) recorded as
:class:`RouteSpec` rows and host injections as :class:`Feed` rows, all in a
deterministic order. :mod:`repro.core.lower` compiles a plan into Engine
tasks/colors/routes exactly once; every strategy is now a plan constructor,
and a new mapping is a new constructor, not a new closure forest.

Plans are inspectable before any simulation: :meth:`MappingPlan.describe`
prints the placement, color budget, and SRAM footprint (the ``ceresz plan``
subcommand), and :meth:`MappingPlan.snapshot` returns a JSON-able placement
snapshot that the golden tests pin down.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field as dataclass_field, replace

import numpy as np

from repro.config import BLOCK_SIZE, PE_NUM_COLORS
from repro.core.mapping_decompress import records_to_words
from repro.core.predictors import Predictor, get_predictor
from repro.core.schedule import StageDistribution, counted_relay_schedule
from repro.core.stages import SubStage
from repro.errors import CompressionError, ScheduleError

#: Extra bit-plane words a decompression head must be able to buffer: the
#: fixed length of an int64 magnitude is at most 63 bits.
MAX_RECORD_FL = 63

_DTYPE_BYTES = {"float64": 8, "int64": 8}


def wafer_predictor(predictor: str | Predictor) -> Predictor:
    """Resolve a predictor for wafer lowering; block-local only.

    The wafer mapping assigns whole blocks to PEs with no inter-PE data
    dependencies — exactly the ``block_local`` locality contract of
    :mod:`repro.core.predictors`. Whole-array predictors need the full
    field for their global inverse (the trade paper Section 3 declines),
    so they cannot be placed on the mesh and are rejected here with the
    contract spelled out.
    """
    try:
        pred = get_predictor(predictor)
    except CompressionError as exc:
        raise ScheduleError(str(exc)) from exc
    if not pred.block_local:
        raise ScheduleError(
            f"predictor {pred.name!r} declares locality {pred.locality!r}; "
            f"the wafer mapping requires 'block_local' prediction — "
            f"whole-array reconstruction needs inter-PE communication, "
            f"which is the trade the paper's block design declines "
            f"(Section 3). Decompress/compress such streams on the host."
        )
    return pred


def _staged_predictor(predictor: str | Predictor) -> Predictor:
    """Like :func:`wafer_predictor`, plus the staged-pipeline restriction.

    The Algorithm-1 sub-stage decomposition (``compression_substages``)
    models the paper's 1-D Lorenzo pipeline stage for stage; other
    block-local predictors run whole-block on one PE (``rows`` / ``multi``
    strategies) but have no sub-stage split to distribute.
    """
    pred = wafer_predictor(predictor)
    if pred.name != "lorenzo1d":
        raise ScheduleError(
            f"staged pipelines distribute the paper's 1-D Lorenzo "
            f"sub-stages (Algorithm 1) and support only the 'lorenzo1d' "
            f"predictor; {pred.name!r} is block-local and maps onto the "
            f"whole-block strategies ('rows', 'multi' with "
            f"pipeline_length=1) instead"
        )
    return pred


# --- typed edges -----------------------------------------------------------------------


@dataclass(frozen=True)
class RouteSpec:
    """One PE's static router rule for a color (CSL route setup)."""

    row: int
    col: int
    color: str  # name in MappingPlan.colors
    inputs: tuple[str, ...]  # directions: "west"/"east"/"north"/"south"/"ramp"
    output: str

    def arrow(self) -> str:
        return f"{'+'.join(self.inputs)}->{self.output}"


@dataclass(frozen=True)
class BufferSpec:
    """A named SRAM buffer a node needs (extent in elements)."""

    name: str
    extent: int
    dtype: str  # key of _DTYPE_BYTES

    @property
    def nbytes(self) -> int:
        return self.extent * _DTYPE_BYTES[self.dtype]


@dataclass(frozen=True)
class Feed:
    """One host injection at the west edge, serialized in plan order."""

    row: int
    col: int
    color: str
    data: np.ndarray


# --- nodes -----------------------------------------------------------------------------


@dataclass(frozen=True)
class IngestNode:
    """Where off-wafer data enters the mesh (descriptive; feeds do the work)."""

    row: int
    col: int
    color: str

    kind = "ingest"


@dataclass(frozen=True)
class EgressNode:
    """Where finished records/blocks leave the mesh to the host."""

    row: int
    col: int

    kind = "egress"


@dataclass(frozen=True)
class ComputeNode:
    """Whole-algorithm-per-PE compression (Fig 6 left / Fig 7)."""

    row: int
    col: int
    recv: str  # raw-block input color
    go: str  # compute activation color
    blocks: tuple[int, ...]  # block indices in processing order

    kind = "compute"


@dataclass(frozen=True)
class RelayNode:
    """Fig 9 counted relay plus compute: multi-pipeline PE or staged head.

    ``schedule`` holds one ``(passing, own)`` entry per row round: relay
    ``passing`` blocks east, then consume ``own`` (``None`` in tail rounds
    that give this PE nothing). ``group is None`` means the whole algorithm
    runs here (1-PE pipelines); otherwise ``group`` is Algorithm 1's stage
    group 0 and the intermediate state forwards on ``out`` (``None`` when
    the pipeline is a single PE and the record is emitted in place).
    """

    row: int
    col: int
    recv: str  # relay input color (alternating parity)
    send: str  # relay output color
    go: str
    schedule: tuple[tuple[int, int | None], ...]
    blocks: tuple[int, ...]
    group: tuple[SubStage, ...] | None = None
    out: str | None = None

    kind = "relay"


@dataclass(frozen=True)
class StageNode:
    """One Algorithm-1 stage group on one PE (Fig 6 middle).

    ``first`` marks the pipeline head that receives raw blocks instead of
    serialized state. ``send is None`` marks the tail that emits records.
    ``relay`` is the raw pass-through duty ``(recv_raw, send_raw, total)``
    a staged pipeline's interior PEs carry for pipelines east of them —
    such PEs never halt (a raw relay may still be in flight).
    """

    row: int
    col: int
    recv: str
    go: str
    send: str | None
    group: tuple[SubStage, ...]
    blocks: tuple[int, ...]
    first: bool = False
    relay: tuple[str, str, int] | None = None

    kind = "stage"


@dataclass(frozen=True)
class HeaderNode:
    """Decompression head: two-phase header/body receive (Section 4.2).

    Compressed records have data-dependent length, so the PE first receives
    the one-word header on ``recv`` (completion color ``hdr``), learns the
    block's fixed length, then posts the ``1 + fl`` word body receive
    (completion color ``body``). ``group is None`` decodes whole blocks in
    place; otherwise the head runs stage group 0 and forwards on ``send``.
    """

    row: int
    col: int
    recv: str
    hdr: str
    body: str
    blocks: tuple[int, ...]
    group: tuple[SubStage, ...] | None = None
    send: str | None = None

    kind = "header"


Node = IngestNode | EgressNode | ComputeNode | RelayNode | StageNode | HeaderNode


def node_buffers(node: Node, plan: "MappingPlan") -> tuple[BufferSpec, ...]:
    """The SRAM buffers lowering will allocate for ``node``, in order."""
    if isinstance(node, (IngestNode, EgressNode)):
        return ()
    if isinstance(node, (ComputeNode, RelayNode)):
        return (BufferSpec("inbox", plan.block_size, "float64"),)
    if isinstance(node, StageNode):
        extent = plan.block_size if node.first else plan.state_len
        return (BufferSpec("stage_in", extent, "float64"),)
    if isinstance(node, HeaderNode):
        sign_words = plan.block_size // 32
        return (
            BufferSpec("hdr", 1, "int64"),
            BufferSpec("body", sign_words * (1 + MAX_RECORD_FL), "int64"),
        )
    raise ScheduleError(f"unknown node kind {type(node).__name__}")


def _emits(node: Node) -> bool:
    if isinstance(node, ComputeNode):
        return True
    if isinstance(node, RelayNode):
        return node.out is None
    if isinstance(node, (StageNode, HeaderNode)):
        return node.send is None
    return False


# --- the plan --------------------------------------------------------------------------


@dataclass(frozen=True)
class MappingPlan:
    """A PE-placed stage graph, ready for the single lowering pass."""

    strategy: str  # "rows" | "pipeline" | "multi" | "staged"
    direction: str  # "compress" | "decompress"
    rows: int
    cols: int
    block_size: int
    num_blocks: int
    eps: float
    colors: tuple[str, ...]  # allocation order
    routes: tuple[RouteSpec, ...]  # install order
    nodes: tuple[Node, ...]  # buffer-alloc / bind / activation order
    feeds: tuple[Feed, ...]  # injection order
    state_len: int = 0  # serialized inter-stage state extent (0 if unused)
    #: True for a row-partition sub-plan produced by :func:`split_rows`:
    #: it deliberately covers only its own rows' blocks, so validation
    #: skips the whole-field block-coverage check.
    partial: bool = False
    #: Registered block-local predictor the lowered kernels apply between
    #: quantization and encoding (compression direction). Whole-array
    #: predictors never reach a plan — constructors reject them via
    #: :func:`wafer_predictor`.
    predictor: str = "lorenzo1d"

    # -- validation ---------------------------------------------------------------

    def validate(self) -> None:
        """Plan-level checks that catch mapping bugs before any simulation."""
        wafer_predictor(self.predictor)
        if len(self.colors) > PE_NUM_COLORS:
            raise ScheduleError(
                f"plan needs {len(self.colors)} colors, hardware has "
                f"{PE_NUM_COLORS}"
            )
        if len(set(self.colors)) != len(self.colors):
            raise ScheduleError(f"duplicate color names in {self.colors}")
        known = set(self.colors)
        for route in self.routes:
            self._check_coord(route.row, route.col, "route")
            if route.color not in known:
                raise ScheduleError(
                    f"route on unallocated color {route.color!r}"
                )
        for feed in self.feeds:
            self._check_coord(feed.row, feed.col, "feed")
            if feed.color not in known:
                raise ScheduleError(f"feed on unallocated color {feed.color!r}")
        seen: dict[int, tuple[int, int]] = {}
        for node in self.nodes:
            self._check_coord(node.row, node.col, node.kind)
            for name in _node_colors(node):
                if name is not None and name not in known:
                    raise ScheduleError(
                        f"{node.kind} node at PE({node.row},{node.col}) uses "
                        f"unallocated color {name!r}"
                    )
            if _emits(node):
                for idx in node.blocks:
                    if idx in seen:
                        raise ScheduleError(
                            f"block {idx} emitted by both PE{seen[idx]} and "
                            f"PE({node.row},{node.col})"
                        )
                    seen[idx] = (node.row, node.col)
        missing = (
            []
            if self.partial
            else [i for i in range(self.num_blocks) if i not in seen]
        )
        if missing:
            raise ScheduleError(
                f"plan covers no emitting node for blocks {missing[:8]}"
                + ("..." if len(missing) > 8 else "")
            )

    def _check_coord(self, row: int, col: int, what: str) -> None:
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise ScheduleError(
                f"{what} at PE({row},{col}) outside the "
                f"{self.rows}x{self.cols} mesh"
            )

    # -- inspection ---------------------------------------------------------------

    @property
    def color_budget(self) -> tuple[int, int]:
        return (len(self.colors), PE_NUM_COLORS)

    def sram_bytes(self) -> dict[tuple[int, int], int]:
        """Per-PE SRAM footprint of the plan's declared buffers."""
        usage: dict[tuple[int, int], int] = {}
        for node in self.nodes:
            for buf in node_buffers(node, self):
                key = (node.row, node.col)
                usage[key] = usage.get(key, 0) + buf.nbytes
        return usage

    def snapshot(self) -> dict:
        """JSON-able placement/color snapshot (pinned by the golden tests)."""
        return {
            "strategy": self.strategy,
            "direction": self.direction,
            "mesh": [self.rows, self.cols],
            "block_size": self.block_size,
            "num_blocks": self.num_blocks,
            "predictor": self.predictor,
            "state_len": self.state_len,
            "colors": list(self.colors),
            "routes": [
                [r.row, r.col, r.color, r.arrow()] for r in self.routes
            ],
            "nodes": [_node_snapshot(n) for n in self.nodes],
            "feeds": len(self.feeds),
            "sram_bytes": {
                f"{r},{c}": b for (r, c), b in sorted(self.sram_bytes().items())
            },
        }

    def describe(self) -> str:
        """Human-readable placement report (the ``ceresz plan`` output)."""
        used, budget = self.color_budget
        lines = [
            f"mapping plan: strategy={self.strategy} "
            f"direction={self.direction} mesh={self.rows}x{self.cols}",
            f"blocks: {self.num_blocks} x {self.block_size} values "
            f"(eps {self.eps:g}, predictor {self.predictor})",
            f"colors: {used}/{budget} [{', '.join(self.colors)}]",
            f"routes: {len(self.routes)}   feeds: {len(self.feeds)}"
            + (f"   state_len: {self.state_len}" if self.state_len else ""),
            "placement:",
        ]
        for node in self.nodes:
            lines.append("  " + _node_line(node))
        usage = self.sram_bytes()
        if usage:
            (peak_r, peak_c), peak = max(usage.items(), key=lambda kv: kv[1])
            lines.append(
                f"SRAM: {len(usage)} PEs with buffers, peak {peak} B at "
                f"PE({peak_r},{peak_c})"
            )
        return "\n".join(lines)


def _node_colors(node: Node) -> tuple[str | None, ...]:
    if isinstance(node, IngestNode):
        return (node.color,)
    if isinstance(node, EgressNode):
        return ()
    if isinstance(node, ComputeNode):
        return (node.recv, node.go)
    if isinstance(node, RelayNode):
        return (node.recv, node.send, node.go, node.out)
    if isinstance(node, StageNode):
        extra = node.relay[:2] if node.relay else ()
        return (node.recv, node.go, node.send, *extra)
    if isinstance(node, HeaderNode):
        return (node.recv, node.hdr, node.body, node.send)
    return ()


def _group_names(group: tuple[SubStage, ...] | None) -> list[str] | None:
    return None if group is None else [s.name for s in group]


def _node_snapshot(node: Node) -> dict:
    snap: dict = {"kind": node.kind, "pe": [node.row, node.col]}
    if isinstance(node, IngestNode):
        snap["color"] = node.color
    elif isinstance(node, ComputeNode):
        snap.update(recv=node.recv, go=node.go, blocks=[int(b) for b in node.blocks])
    elif isinstance(node, RelayNode):
        snap.update(
            recv=node.recv,
            send=node.send,
            go=node.go,
            out=node.out,
            schedule=[
                [int(p), None if own is None else int(own)]
                for p, own in node.schedule
            ],
            blocks=[int(b) for b in node.blocks],
            stages=_group_names(node.group),
        )
    elif isinstance(node, StageNode):
        snap.update(
            recv=node.recv,
            go=node.go,
            send=node.send,
            first=node.first,
            relay=list(node.relay) if node.relay else None,
            blocks=[int(b) for b in node.blocks],
            stages=_group_names(node.group),
        )
    elif isinstance(node, HeaderNode):
        snap.update(
            recv=node.recv,
            hdr=node.hdr,
            body=node.body,
            send=node.send,
            blocks=[int(b) for b in node.blocks],
            stages=_group_names(node.group),
        )
    return snap


def _node_line(node: Node) -> str:
    if isinstance(node, IngestNode):
        return f"PE({node.row},{node.col}) ingest   west edge on {node.color}"
    if isinstance(node, EgressNode):
        return f"PE({node.row},{node.col}) egress   records to host"
    if isinstance(node, ComputeNode):
        return (
            f"PE({node.row},{node.col}) compute  whole block x"
            f"{len(node.blocks)} (recv {node.recv})"
        )
    if isinstance(node, RelayNode):
        passing = sum(p for p, _ in node.schedule)
        what = (
            "whole block"
            if node.group is None
            else f"group[{len(node.group)} stages]"
        )
        tail = f" -> {node.out}" if node.out else ""
        return (
            f"PE({node.row},{node.col}) relay    pass {passing} east, "
            f"{what} x{len(node.blocks)}{tail}"
        )
    if isinstance(node, StageNode):
        tail = f" -> {node.send}" if node.send else " -> emit"
        duty = f" + relay x{node.relay[2]}" if node.relay else ""
        return (
            f"PE({node.row},{node.col}) stage    "
            f"[{', '.join(s.name for s in node.group)}] "
            f"x{len(node.blocks)}{tail}{duty}"
        )
    if isinstance(node, HeaderNode):
        what = (
            "whole-block decode"
            if node.group is None
            else f"group[{len(node.group)} stages]"
        )
        tail = f" -> {node.send}" if node.send else " -> emit"
        return (
            f"PE({node.row},{node.col}) header   two-phase recv, {what} "
            f"x{len(node.blocks)}{tail}"
        )
    return f"PE({node.row},{node.col}) {node.kind}"


# --- row partitioning ------------------------------------------------------------------

#: Directions a route may use while keeping rows independent: east/west
#: hops stay within a row, ramp enters/leaves the PE. Any north/south hop
#: couples rows and disqualifies the partition.
_ROW_LOCAL_DIRECTIONS = frozenset({"east", "west", "ramp"})


def row_partitionable(plan: MappingPlan) -> bool:
    """True when the plan's rows are provably independent subgraphs.

    Every node, route, and feed is placed on a single row; rows can only
    interact through routes that hop north/south. When every route moves
    data east/west/ramp only, no wavelet ever crosses a row boundary, so
    simulating each row group separately is cycle-exact: the union of the
    per-partition event sets is exactly the serial event set, and events
    from different rows never contend (each PE has its own clock).
    """
    return all(
        set(route.inputs) <= _ROW_LOCAL_DIRECTIONS
        and route.output in _ROW_LOCAL_DIRECTIONS
        for route in plan.routes
    )


def row_chunks(rows: int, parts: int) -> list[tuple[int, ...]]:
    """Deterministic contiguous split of ``range(rows)`` into <= parts groups."""
    if parts < 1:
        raise ScheduleError(f"parts must be >= 1, got {parts}")
    parts = min(parts, rows)
    base, extra = divmod(rows, parts)
    chunks: list[tuple[int, ...]] = []
    start = 0
    for i in range(parts):
        size = base + (1 if i < extra else 0)
        chunks.append(tuple(range(start, start + size)))
        start += size
    return chunks


def split_rows(plan: MappingPlan, parts: int) -> list[MappingPlan]:
    """Cut a row-partitionable plan into per-row-group sub-plans.

    Each sub-plan keeps the full mesh dimensions and the original PE
    coordinates (so traces, counters and labels match the serial run
    verbatim) but carries only its rows' routes, nodes, and feeds. Color
    declarations are kept whole so each worker's allocator assigns the
    same ids the serial lowering would. The sub-plans are ``partial``:
    together they cover every block, individually they do not.
    """
    if not row_partitionable(plan):
        raise ScheduleError(
            f"plan with strategy {plan.strategy!r} routes across rows and "
            f"cannot be row-partitioned"
        )
    subs: list[MappingPlan] = []
    for chunk in row_chunks(plan.rows, parts):
        rowset = set(chunk)
        subs.append(
            MappingPlan(
                strategy=plan.strategy,
                direction=plan.direction,
                rows=plan.rows,
                cols=plan.cols,
                block_size=plan.block_size,
                num_blocks=plan.num_blocks,
                eps=plan.eps,
                colors=plan.colors,
                routes=tuple(r for r in plan.routes if r.row in rowset),
                nodes=tuple(n for n in plan.nodes if n.row in rowset),
                feeds=tuple(f for f in plan.feeds if f.row in rowset),
                state_len=plan.state_len,
                partial=True,
                predictor=plan.predictor,
            )
        )
    return subs


# --- partition classes (hierarchical simulation) ---------------------------------------


def _group_key(group: tuple[SubStage, ...] | None):
    return None if group is None else tuple((s.name, s.cycles) for s in group)


def _ordinal(omap: dict[int, int], idx: int | None) -> int | None:
    """Map a block index to its first-appearance ordinal within one row."""
    if idx is None:
        return None
    out = omap.get(idx)
    if out is None:
        out = omap[idx] = len(omap)
    return out


def _node_identity(node: Node, omap: dict[int, int]) -> str:
    """Canonical per-row serialization of a node, block ids as ordinals.

    Two rows whose node sequences serialize identically run the same task
    graph up to a renaming of block indices and a vertical translation —
    the two transformations the engine's timing is invariant under.
    """
    if isinstance(node, IngestNode):
        return repr(("ingest", node.col, node.color))
    if isinstance(node, EgressNode):
        return repr(("egress", node.col))
    if isinstance(node, ComputeNode):
        return repr(
            (
                "compute",
                node.col,
                node.recv,
                node.go,
                tuple(_ordinal(omap, b) for b in node.blocks),
            )
        )
    if isinstance(node, RelayNode):
        return repr(
            (
                "relay",
                node.col,
                node.recv,
                node.send,
                node.go,
                node.out,
                tuple((p, _ordinal(omap, own)) for p, own in node.schedule),
                tuple(_ordinal(omap, b) for b in node.blocks),
                _group_key(node.group),
            )
        )
    if isinstance(node, StageNode):
        return repr(
            (
                "stage",
                node.col,
                node.recv,
                node.go,
                node.send,
                node.first,
                node.relay,
                tuple(_ordinal(omap, b) for b in node.blocks),
                _group_key(node.group),
            )
        )
    if isinstance(node, HeaderNode):
        return repr(
            (
                "header",
                node.col,
                node.recv,
                node.hdr,
                node.body,
                node.send,
                tuple(_ordinal(omap, b) for b in node.blocks),
                _group_key(node.group),
            )
        )
    raise ScheduleError(f"unknown node kind {type(node).__name__}")


def row_fingerprints(plan: MappingPlan) -> tuple[str, ...]:
    """Per-row structural+data fingerprint for partition-class detection.

    The hash covers, per row: the plan scalars shared by every row
    (strategy, direction, cols, block size, eps, predictor, state extent,
    color order), the row's routes in install order, its nodes in plan
    order with block indices replaced by first-appearance ordinals, and
    its feeds in injection order including the payload bytes. Rows with
    equal fingerprints are isomorphic under block-index renaming plus
    vertical translation, so one event-driven simulation of a
    representative reproduces every member row cycle for cycle.
    """
    header = repr(
        (
            plan.strategy,
            plan.direction,
            plan.cols,
            plan.block_size,
            float(plan.eps),
            plan.predictor,
            plan.state_len,
            plan.colors,
        )
    ).encode()
    hashers = [
        hashlib.blake2b(header, digest_size=16) for _ in range(plan.rows)
    ]
    for route in plan.routes:
        hashers[route.row].update(
            repr(
                ("R", route.col, route.color, route.inputs, route.output)
            ).encode()
        )
    ordinals: list[dict[int, int]] = [{} for _ in range(plan.rows)]
    for node in plan.nodes:
        hashers[node.row].update(
            _node_identity(node, ordinals[node.row]).encode()
        )
    for feed in plan.feeds:
        h = hashers[feed.row]
        h.update(
            repr(
                ("F", feed.col, feed.color, feed.data.dtype.str,
                 feed.data.shape)
            ).encode()
        )
        h.update(feed.data.tobytes())
    return tuple(h.hexdigest() for h in hashers)


def partition_classes(plan: MappingPlan) -> list[tuple[int, tuple[int, ...]]]:
    """Group rows into equivalence classes by fingerprint.

    Returns ``[(representative_row, member_rows), ...]`` ordered by first
    appearance; the representative is the lowest member row. Heterogeneous
    rows (ragged tails, uneven block counts, distinct data) land in
    singleton classes and are event-simulated individually.
    """
    fps = row_fingerprints(plan)
    groups: dict[str, list[int]] = {}
    for row, fp in enumerate(fps):
        groups.setdefault(fp, []).append(row)
    return [(members[0], tuple(members)) for members in groups.values()]


def row_emit_sequences(plan: MappingPlan) -> list[tuple[int, ...]]:
    """Per-row block indices in emit order (plan node order).

    Isomorphic rows emit the same *number* of blocks in the same
    structural positions, so position ``i`` of a member row's sequence
    corresponds to position ``i`` of its representative's — the mapping
    hybrid composition uses to relabel the representative's records.
    """
    seqs: list[list[int]] = [[] for _ in range(plan.rows)]
    for node in plan.nodes:
        if _emits(node):
            seqs[node.row].extend(node.blocks)
    return [tuple(s) for s in seqs]


def row_subplan(plan: MappingPlan, row: int) -> MappingPlan:
    """Rebase one row of a row-partitionable plan onto a 1 x cols mesh.

    Engine timing depends on column distance and per-(row, col) feed
    clocks only, so translating a row to row 0 of a single-row mesh
    simulates identically while the fabric shrinks from rows x cols PEs
    to cols PEs — the step that makes a wafer-scale representative cheap.
    Block indices are kept verbatim (they are inert labels for timing),
    so the sub-plan is ``partial`` like a :func:`split_rows` shard.
    """
    if not row_partitionable(plan):
        raise ScheduleError(
            f"plan with strategy {plan.strategy!r} routes across rows and "
            f"cannot be row-rebased"
        )
    if not (0 <= row < plan.rows):
        raise ScheduleError(f"row {row} outside 0..{plan.rows - 1}")
    return MappingPlan(
        strategy=plan.strategy,
        direction=plan.direction,
        rows=1,
        cols=plan.cols,
        block_size=plan.block_size,
        num_blocks=plan.num_blocks,
        eps=plan.eps,
        colors=plan.colors,
        routes=tuple(
            replace(r, row=0) for r in plan.routes if r.row == row
        ),
        nodes=tuple(replace(n, row=0) for n in plan.nodes if n.row == row),
        feeds=tuple(
            Feed(0, f.col, f.color, f.data)
            for f in plan.feeds
            if f.row == row
        ),
        state_len=plan.state_len,
        partial=True,
        predictor=plan.predictor,
    )


def expand_mesh(plan: MappingPlan, spare_rows: int) -> MappingPlan:
    """Grow the plan's mesh by ``spare_rows`` idle rows below the placement.

    Placement, routes, and feeds are untouched — the extra rows carry no
    nodes and cost the event engine nothing. They exist as repair
    capacity: the self-healing loop (:mod:`repro.faults.repair`) evacuates
    a faulted row onto one of them by row remapping, the way real
    wafer-scale parts keep spare rows to route around defective PEs.
    """
    if spare_rows < 0:
        raise ScheduleError(f"spare_rows must be >= 0, got {spare_rows}")
    if spare_rows == 0:
        return plan
    return replace(plan, rows=plan.rows + spare_rows)


def _shift_node(node: Node, drow: int, dblock: int) -> Node:
    if isinstance(node, IngestNode):
        return IngestNode(node.row + drow, node.col, node.color)
    if isinstance(node, EgressNode):
        return EgressNode(node.row + drow, node.col)
    if isinstance(node, ComputeNode):
        return replace(
            node,
            row=node.row + drow,
            blocks=tuple(b + dblock for b in node.blocks),
        )
    if isinstance(node, RelayNode):
        return replace(
            node,
            row=node.row + drow,
            blocks=tuple(b + dblock for b in node.blocks),
            schedule=tuple(
                (p, None if own is None else own + dblock)
                for p, own in node.schedule
            ),
        )
    if isinstance(node, (StageNode, HeaderNode)):
        return replace(
            node,
            row=node.row + drow,
            blocks=tuple(b + dblock for b in node.blocks),
        )
    raise ScheduleError(f"unknown node kind {type(node).__name__}")


def replicate_rows(template: MappingPlan, copies: int) -> MappingPlan:
    """Tile a row-partitionable template ``copies`` times down the mesh.

    Copy ``k`` occupies rows ``[k * template.rows, (k+1) * template.rows)``
    and emits block indices shifted by ``k * template.num_blocks`` — every
    row's blocks are contiguous per copy, so the composed stream equals the
    template's stream tiled ``copies`` times and matches the host
    compressor run on the row data tiled ``copies`` times. Feed arrays are
    shared between copies (the engine never mutates an in-flight payload),
    which keeps a 750-row wafer plan's feed memory at one row's worth.
    """
    if copies < 1:
        raise ScheduleError(f"copies must be >= 1, got {copies}")
    if template.partial:
        raise ScheduleError("cannot replicate a partial sub-plan")
    if not row_partitionable(template):
        raise ScheduleError(
            f"template with strategy {template.strategy!r} routes across "
            f"rows and cannot be replicated"
        )
    routes: list[RouteSpec] = []
    nodes: list[Node] = []
    feeds: list[Feed] = []
    for k in range(copies):
        if k == 0:
            routes.extend(template.routes)
            nodes.extend(template.nodes)
            feeds.extend(template.feeds)
            continue
        drow = k * template.rows
        dblock = k * template.num_blocks
        routes.extend(replace(r, row=r.row + drow) for r in template.routes)
        nodes.extend(_shift_node(n, drow, dblock) for n in template.nodes)
        feeds.extend(
            Feed(f.row + drow, f.col, f.color, f.data)
            for f in template.feeds
        )
    return MappingPlan(
        strategy=template.strategy,
        direction=template.direction,
        rows=template.rows * copies,
        cols=template.cols,
        block_size=template.block_size,
        num_blocks=template.num_blocks * copies,
        eps=template.eps,
        colors=template.colors,
        routes=tuple(routes),
        nodes=tuple(nodes),
        feeds=tuple(feeds),
        state_len=template.state_len,
        predictor=template.predictor,
    )


def tile_rows(
    row_blocks: np.ndarray,
    rows: int,
    strategy: str,
    *,
    cols: int | None = None,
    pipelines: int | None = None,
) -> np.ndarray:
    """Arrange one row's blocks into a ``rows``-homogeneous full field.

    The plan constructors interleave block indices across rows (``rows`` /
    ``pipeline``: block ``i`` goes to row ``i % rows``; ``multi`` /
    ``staged``: round-major then row-major). This helper places copies of
    ``row_blocks`` so that every row of the resulting plan carries
    identical data — the workload shape under which the whole mesh
    collapses to a single partition class.
    """
    row_blocks = np.asarray(row_blocks)
    if row_blocks.ndim != 2:
        raise ScheduleError("row_blocks must be a (num_blocks, size) array")
    if strategy in ("rows", "pipeline"):
        return np.repeat(row_blocks, rows, axis=0)
    if strategy == "multi":
        slots = cols
    elif strategy == "staged":
        slots = pipelines
    else:
        raise ScheduleError(f"unknown strategy {strategy!r}")
    if slots is None:
        raise ScheduleError(
            f"strategy {strategy!r} needs its per-round slot count "
            f"(cols= for 'multi', pipelines= for 'staged')"
        )
    n = row_blocks.shape[0]
    if n % slots:
        raise ScheduleError(
            f"{n} row blocks do not fill whole rounds of {slots} slots; "
            f"pad or truncate to a multiple of {slots} for homogeneous rows"
        )
    chunks = [
        np.tile(row_blocks[i:i + slots], (rows, 1))
        for i in range(0, n, slots)
    ]
    return np.concatenate(chunks, axis=0)


# --- compression plan constructors -----------------------------------------------------


def _pipeline_state_len(block_size: int, distribution: StageDistribution) -> int:
    """Serialized PipelineState extent: header + values + signs + planes."""
    sign_bytes = block_size // 8
    max_fl = max(
        (
            int(s.name.rsplit("_", 1)[1]) + 1
            for g in distribution.groups
            for s in g
            if s.name.startswith("shuffle_bit_")
        ),
        default=0,
    )
    return 5 + block_size + sign_bytes + max_fl * sign_bytes


def plan_row_parallel(
    blocks: np.ndarray,
    eps: float,
    *,
    rows: int,
    cols: int,
    predictor: str = "lorenzo1d",
) -> MappingPlan:
    """Fig 6 left: the whole algorithm on the first PE of each row."""
    pred = wafer_predictor(predictor)
    num_blocks, block_size = blocks.shape
    routes: list[RouteSpec] = []
    nodes: list[Node] = []
    for row in range(rows):
        routes.append(RouteSpec(row, 0, "input", ("west",), "ramp"))
        my = tuple(range(row, num_blocks, rows))
        nodes.append(IngestNode(row, 0, "input"))
        nodes.append(ComputeNode(row, 0, "input", "compute", my))
        nodes.append(EgressNode(row, 0))
    feeds = tuple(
        Feed(i % rows, 0, "input", blocks[i].astype(np.float32))
        for i in range(num_blocks)
    )
    return MappingPlan(
        strategy="rows",
        direction="compress",
        rows=rows,
        cols=cols,
        block_size=block_size,
        num_blocks=num_blocks,
        eps=eps,
        colors=("input", "compute"),
        routes=tuple(routes),
        nodes=tuple(nodes),
        feeds=feeds,
        predictor=pred.name,
    )


def plan_pipeline(
    blocks: np.ndarray,
    eps: float,
    distribution: StageDistribution,
    *,
    rows: int,
    cols: int,
    predictor: str = "lorenzo1d",
) -> MappingPlan:
    """Fig 6 middle: one Algorithm-1 pipeline per row, state flowing east."""
    pred = _staged_predictor(predictor)
    num_blocks, block_size = blocks.shape
    pl = distribution.length
    if pl > cols:
        raise ScheduleError(
            f"pipeline of {pl} stages needs {pl} columns, mesh has {cols}"
        )
    state_len = _pipeline_state_len(block_size, distribution)
    routes: list[RouteSpec] = []
    nodes: list[Node] = []
    for row in range(rows):
        my = tuple(range(row, num_blocks, rows))
        routes.append(RouteSpec(row, 0, "input", ("west",), "ramp"))
        nodes.append(IngestNode(row, 0, "input"))
        for col in range(pl):
            is_first = col == 0
            is_last = col == pl - 1
            recv = "input" if is_first else f"fwd{(col - 1) % 2}"
            send = None if is_last else f"fwd{col % 2}"
            if not is_first:
                routes.append(RouteSpec(row, col, recv, ("west",), "ramp"))
            if send is not None:
                routes.append(RouteSpec(row, col, send, ("ramp",), "east"))
                routes.append(RouteSpec(row, col + 1, send, ("west",), "ramp"))
            nodes.append(
                StageNode(
                    row,
                    col,
                    recv,
                    "compute",
                    send,
                    distribution.groups[col],
                    my,
                    first=is_first,
                )
            )
        nodes.append(EgressNode(row, pl - 1))
    feeds = tuple(
        Feed(i % rows, 0, "input", blocks[i].astype(np.float32))
        for i in range(num_blocks)
    )
    return MappingPlan(
        strategy="pipeline",
        direction="compress",
        rows=rows,
        cols=cols,
        block_size=block_size,
        num_blocks=num_blocks,
        eps=eps,
        colors=("input", "compute", "fwd0", "fwd1"),
        routes=tuple(routes),
        nodes=tuple(nodes),
        feeds=feeds,
        state_len=state_len,
        predictor=pred.name,
    )


def plan_multi_pipeline(
    blocks: np.ndarray,
    eps: float,
    *,
    rows: int,
    cols: int,
    pipeline_length: int = 1,
    predictor: str = "lorenzo1d",
) -> MappingPlan:
    """Fig 9: every PE of a row relays then compresses whole blocks."""
    pred = wafer_predictor(predictor)
    if pipeline_length != 1:
        raise ScheduleError(
            "the multi-pipeline builder models pipeline_length=1 (the "
            "paper's optimal configuration); longer pipelines compose via "
            "build_pipeline_program"
        )
    num_blocks, block_size = blocks.shape

    rounds = -(-num_blocks // (rows * cols))
    routes: list[RouteSpec] = []
    nodes: list[Node] = []
    for row in range(rows):
        for col in range(cols):
            recv = f"relay{col % 2}"
            send = f"relay{(col + 1) % 2}"
            routes.append(RouteSpec(row, col, recv, ("west",), "ramp"))
            if col + 1 < cols:
                routes.append(RouteSpec(row, col, send, ("ramp",), "east"))
        nodes.append(IngestNode(row, 0, "relay0"))
        bases = tuple(
            rnd * rows * cols + row * cols for rnd in range(rounds)
        )
        for col in range(cols):
            recv = f"relay{col % 2}"
            send = f"relay{(col + 1) % 2}"
            schedule = counted_relay_schedule(col, cols, bases, num_blocks)
            my = tuple(own for _, own in schedule if own is not None)
            nodes.append(
                RelayNode(row, col, recv, send, "compute", schedule, my)
            )
            nodes.append(EgressNode(row, col))
    feeds: list[Feed] = []
    for rnd in range(rounds):
        for row in range(rows):
            # Columns are served east-first, so block indices in one row
            # round are injected in ascending order: base, base+1, ...
            base = rnd * rows * cols + row * cols
            avail = min(max(num_blocks - base, 0), cols)
            for idx in range(base, base + avail):
                feeds.append(
                    Feed(row, 0, "relay0", blocks[idx].astype(np.float32))
                )
    return MappingPlan(
        strategy="multi",
        direction="compress",
        rows=rows,
        cols=cols,
        block_size=block_size,
        num_blocks=num_blocks,
        eps=eps,
        colors=("relay0", "relay1", "compute"),
        routes=tuple(routes),
        nodes=tuple(nodes),
        feeds=tuple(feeds),
        predictor=pred.name,
    )


def plan_staged_multi_pipeline(
    blocks: np.ndarray,
    eps: float,
    distribution: StageDistribution,
    *,
    rows: int,
    cols: int,
    predictor: str = "lorenzo1d",
) -> MappingPlan:
    """Fig 6 right in full generality: P staged pipelines per row."""
    pred = _staged_predictor(predictor)
    num_blocks, block_size = blocks.shape
    pl = distribution.length
    if pl > cols:
        raise ScheduleError(
            f"pipeline of {pl} stages needs {pl} columns, mesh has {cols}"
        )
    num_pipelines = cols // pl
    if num_pipelines < 1:
        raise ScheduleError("mesh too narrow for one pipeline")

    rounds = -(-num_blocks // (rows * num_pipelines))
    state_len = _pipeline_state_len(block_size, distribution)
    used_cols = num_pipelines * pl
    routes: list[RouteSpec] = []
    nodes: list[Node] = []
    for row in range(rows):
        for col in range(used_cols):
            recv_raw = f"raw{col % 2}"
            send_raw = f"raw{(col + 1) % 2}"
            routes.append(RouteSpec(row, col, recv_raw, ("west",), "ramp"))
            if col + 1 < used_cols:
                routes.append(RouteSpec(row, col, send_raw, ("ramp",), "east"))
        nodes.append(IngestNode(row, 0, "raw0"))
        bases = tuple(
            rnd * rows * num_pipelines + row * num_pipelines
            for rnd in range(rounds)
        )
        for q in range(num_pipelines):
            head = q * pl
            schedule = counted_relay_schedule(
                q, num_pipelines, bases, num_blocks
            )
            my = tuple(own for _, own in schedule if own is not None)
            total_passing = sum(p for p, _ in schedule)
            for j in range(pl):
                col = head + j
                recv_raw = f"raw{col % 2}"
                send_raw = f"raw{(col + 1) % 2}"
                is_head = j == 0
                is_last = j == pl - 1
                state_recv = None if is_head else f"fwd{(col - 1) % 2}"
                state_send = None if is_last else f"fwd{col % 2}"
                if state_recv is not None:
                    routes.append(
                        RouteSpec(row, col, state_recv, ("west",), "ramp")
                    )
                if state_send is not None:
                    routes.append(
                        RouteSpec(row, col, state_send, ("ramp",), "east")
                    )
                if is_head:
                    nodes.append(
                        RelayNode(
                            row,
                            col,
                            recv_raw,
                            send_raw,
                            "compute",
                            schedule,
                            my,
                            group=distribution.groups[0],
                            out=state_send,
                        )
                    )
                else:
                    nodes.append(
                        StageNode(
                            row,
                            col,
                            state_recv,
                            "compute",
                            state_send,
                            distribution.groups[j],
                            my,
                            relay=(recv_raw, send_raw, total_passing),
                        )
                    )
            nodes.append(EgressNode(row, head + pl - 1))
    feeds: list[Feed] = []
    for rnd in range(rounds):
        for row in range(rows):
            base = rnd * rows * num_pipelines + row * num_pipelines
            avail = min(max(num_blocks - base, 0), num_pipelines)
            for idx in range(base, base + avail):
                feeds.append(
                    Feed(row, 0, "raw0", blocks[idx].astype(np.float32))
                )
    return MappingPlan(
        strategy="staged",
        direction="compress",
        rows=rows,
        cols=cols,
        block_size=block_size,
        num_blocks=num_blocks,
        eps=eps,
        colors=("raw0", "raw1", "fwd0", "fwd1", "compute"),
        routes=tuple(routes),
        nodes=tuple(nodes),
        feeds=tuple(feeds),
        state_len=state_len,
        predictor=pred.name,
    )


# --- decompression plan constructors ---------------------------------------------------


def _record_feeds(
    packed: list[tuple[np.ndarray, np.ndarray | None]], rows: int, color: str
) -> tuple[Feed, ...]:
    feeds: list[Feed] = []
    for i, (header, words) in enumerate(packed):
        row = i % rows
        feeds.append(Feed(row, 0, color, header.astype(np.uint32)))
        if words is not None:
            feeds.append(Feed(row, 0, color, words.astype(np.uint32)))
    return tuple(feeds)


def plan_row_parallel_decompress(
    body: bytes,
    num_blocks: int,
    eps: float,
    *,
    rows: int,
    cols: int,
    block_size: int = BLOCK_SIZE,
) -> MappingPlan:
    """Whole-block decompression on the first PE of each row."""
    packed = records_to_words(body, num_blocks, block_size)
    routes: list[RouteSpec] = []
    nodes: list[Node] = []
    for row in range(rows):
        routes.append(RouteSpec(row, 0, "input", ("west",), "ramp"))
        my = tuple(range(row, num_blocks, rows))
        nodes.append(IngestNode(row, 0, "input"))
        nodes.append(
            HeaderNode(row, 0, "input", "header_ready", "body_ready", my)
        )
        nodes.append(EgressNode(row, 0))
    return MappingPlan(
        strategy="rows",
        direction="decompress",
        rows=rows,
        cols=cols,
        block_size=block_size,
        num_blocks=num_blocks,
        eps=eps,
        colors=("input", "header_ready", "body_ready"),
        routes=tuple(routes),
        nodes=tuple(nodes),
        feeds=_record_feeds(packed, rows, "input"),
    )


def plan_pipeline_decompress(
    body: bytes,
    num_blocks: int,
    eps: float,
    distribution: StageDistribution,
    *,
    rows: int,
    cols: int,
    block_size: int = BLOCK_SIZE,
) -> MappingPlan:
    """One decompression pipeline per row (Algorithm 1 over reverse stages)."""
    pl = distribution.length
    if pl > cols:
        raise CompressionError(
            f"decompression pipeline of {pl} stages needs {pl} columns"
        )
    packed = records_to_words(body, num_blocks, block_size)
    max_fl = max((int(h[0]) for h, _ in packed), default=0)
    state_len = 4 + block_size + block_size // 8 + max_fl
    routes: list[RouteSpec] = []
    nodes: list[Node] = []
    for row in range(rows):
        my = tuple(range(row, num_blocks, rows))
        routes.append(RouteSpec(row, 0, "input", ("west",), "ramp"))
        nodes.append(IngestNode(row, 0, "input"))
        for col in range(pl):
            is_first = col == 0
            is_last = col == pl - 1
            recv = "input" if is_first else f"fwd{(col - 1) % 2}"
            send = None if is_last else f"fwd{col % 2}"
            if not is_first:
                routes.append(RouteSpec(row, col, recv, ("west",), "ramp"))
            if send is not None:
                routes.append(RouteSpec(row, col, send, ("ramp",), "east"))
                routes.append(RouteSpec(row, col + 1, send, ("west",), "ramp"))
            if is_first:
                nodes.append(
                    HeaderNode(
                        row,
                        col,
                        "input",
                        "header_ready",
                        "body_ready",
                        my,
                        group=distribution.groups[col],
                        send=send,
                    )
                )
            else:
                nodes.append(
                    StageNode(
                        row,
                        col,
                        recv,
                        "compute",
                        send,
                        distribution.groups[col],
                        my,
                    )
                )
        nodes.append(EgressNode(row, pl - 1))
    return MappingPlan(
        strategy="pipeline",
        direction="decompress",
        rows=rows,
        cols=cols,
        block_size=block_size,
        num_blocks=num_blocks,
        eps=eps,
        colors=(
            "input",
            "header_ready",
            "body_ready",
            "compute",
            "fwd0",
            "fwd1",
        ),
        routes=tuple(routes),
        nodes=tuple(nodes),
        feeds=_record_feeds(packed, rows, "input"),
        state_len=state_len,
    )
