"""CereSZ: the paper's block-wise, stage-wise compression algorithm.

The pipeline (paper Section 3) is::

    float32 data
      | (1) pre-quantization        round(e / 2*eps) -> integers
      | (2) 1D Lorenzo prediction   first-order difference within a block
      | (3) fixed-length encoding   sign bits + bit-shuffled payload
      v compressed bytes

Decompression runs the three steps in reverse; pre-quantization is the only
lossy step, so the reconstruction error is bounded by ``eps`` everywhere.

Two execution paths share these kernels:

* :class:`repro.core.compressor.CereSZ` — the vectorized NumPy reference
  (what a host library user calls);
* :mod:`repro.core.wse_compressor` — the same algorithm executed on the
  discrete-event WSE simulator via the mapping of Section 4, validated
  bit-exact against the reference.
"""

from repro.core.quantize import prequantize, dequantize
from repro.core.lorenzo import lorenzo_predict, lorenzo_reconstruct
from repro.core.blocks import partition_blocks, merge_blocks
from repro.core.encoding import (
    block_fixed_lengths,
    encode_blocks,
    decode_blocks,
    index_record_offsets,
    pack_block_index,
    unpack_block_index,
)
from repro.core.format import StreamHeader, CERESZ_MAGIC
from repro.core.compressor import CereSZ, CompressionResult
from repro.core.parallel import (
    compress_sharded,
    decompress_sharded,
    is_sharded,
)
from repro.core.stages import SubStage, compression_substages, decompression_substages
from repro.core.schedule import (
    distribute_substages,
    max_feasible_pipeline_length,
    estimate_fixed_length,
)
from repro.core.access import block_index, decompress_range

__all__ = [
    "prequantize",
    "dequantize",
    "lorenzo_predict",
    "lorenzo_reconstruct",
    "partition_blocks",
    "merge_blocks",
    "block_fixed_lengths",
    "encode_blocks",
    "decode_blocks",
    "index_record_offsets",
    "pack_block_index",
    "unpack_block_index",
    "compress_sharded",
    "decompress_sharded",
    "is_sharded",
    "StreamHeader",
    "CERESZ_MAGIC",
    "CereSZ",
    "CompressionResult",
    "SubStage",
    "compression_substages",
    "decompression_substages",
    "distribute_substages",
    "max_feasible_pipeline_length",
    "estimate_fixed_length",
    "block_index",
    "decompress_range",
]
