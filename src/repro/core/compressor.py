"""The CereSZ compressor: the library's primary public API.

This is the vectorized host reference of the paper's algorithm — the same
three stages the wafer mapping runs, executed with NumPy over all blocks at
once. The on-fabric path (:mod:`repro.core.wse_compressor`) is validated to
produce byte-identical streams.

Example
-------
>>> import numpy as np
>>> from repro import CereSZ
>>> data = np.cumsum(np.random.default_rng(0).normal(size=4096)).astype(np.float32)
>>> codec = CereSZ()
>>> result = codec.compress(data, rel=1e-3)
>>> restored = codec.decompress(result.stream)
>>> bool(np.max(np.abs(restored - data)) <= result.eps)
True
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import BLOCK_SIZE, CERESZ_HEADER_BYTES, SZP_HEADER_BYTES
from repro.errors import (
    CompressionError,
    ContainerError,
    ErrorBoundError,
    FormatError,
)
from repro.core.blocks import merge_blocks, partition_blocks, validate_block_size
from repro.core.encoding import (
    block_fixed_lengths,
    decode_blocks,
    encode_blocks,
    index_record_offsets,
    pack_block_index,
    scan_record_offsets,
    unpack_block_index,
)
from repro.core.format import StreamHeader, make_header
from repro.core.predictors import DEFAULT_PREDICTOR, Predictor, get_predictor
from repro.core.quantize import (
    dequantize,
    prequantize_verified,
    psnr_to_relative,
    relative_to_absolute,
    validate_error_bound,
)


def assemble_stream(
    header: StreamHeader, fl: np.ndarray, body: bytes
) -> bytes:
    """Serialize header (+ index/integrity tables for v2/v3) + records."""
    if header.checksum:
        from repro.core.integrity import build_checksummed_tail

        head = header.pack()
        fl_table = pack_block_index(fl)
        tail = build_checksummed_tail(header, fl_table, body, head)
        return head + fl_table + tail + body
    if header.indexed:
        return header.pack() + pack_block_index(fl) + body
    return header.pack() + body


def stream_block_layout(
    stream: bytes, header: StreamHeader, offset: int
) -> tuple[np.ndarray, np.ndarray]:
    """Discover the record layout of a parsed stream: (offsets, fls).

    Indexed (v2) streams read the fl table and compute every record offset
    with one vectorized cumsum; v1 streams fall back to the sequential
    header walk. Both paths bound-check against the *post-header* stream
    length, so a corrupt header cannot trigger a huge allocation.

    Checksummed (v3) streams are verified before any record is trusted:
    every corrupt CRC group raises :class:`repro.errors.ContainerError`
    naming the groups and blocks hit. Use
    :func:`repro.core.decompressor.salvage_decompress` to recover the
    intact remainder instead.
    """
    if header.checksum:
        from repro.core.integrity import (
            corrupt_blocks_of,
            read_checksum_layout,
            verify_groups,
        )

        layout = read_checksum_layout(stream, header, offset)
        if not layout.meta_ok:
            raise ContainerError(
                "integrity metadata corrupt: meta CRC mismatch over the "
                "stream header and group table",
                offset=offset,
            )
        bad = verify_groups(stream, header, layout)
        if bad.size:
            blocks = corrupt_blocks_of(header, bad)
            raise ContainerError(
                f"checksum mismatch in {bad.size} of {layout.num_groups} "
                f"CRC group(s) ({blocks.size} blocks); salvage_decompress "
                f"can recover the intact remainder",
                groups=bad.tolist(),
                blocks=blocks.tolist(),
            )
        fls = layout.fls
        if (fls > 63).any():
            raise FormatError(
                f"fixed length {int(fls.max())} exceeds 63 in a "
                f"CRC-verified stream (writer bug)"
            )
        offsets = index_record_offsets(
            fls,
            header.block_size,
            header.header_width,
            start=layout.records_start,
            stream_size=len(stream),
        )
    elif header.indexed:
        fls, records_start = unpack_block_index(
            stream, header.num_blocks, offset
        )
        offsets = index_record_offsets(
            fls,
            header.block_size,
            header.header_width,
            start=records_start,
            stream_size=len(stream),
        )
    else:
        # Every record is at least header_width wide; compare against the
        # bytes actually available for records (after the global header),
        # so a header claiming a block count just inside the *total*
        # length cannot slip past and trigger an O(num_blocks) allocation.
        if header.num_blocks * header.header_width > len(stream) - offset:
            raise FormatError(
                f"stream of {len(stream)} bytes cannot describe "
                f"{header.num_blocks} blocks"
            )
        offsets, fls = scan_record_offsets(
            stream,
            header.num_blocks,
            header.block_size,
            header.header_width,
            start=offset,
        )
    return offsets, fls


def decode_stream_blocks(
    stream: bytes, header: StreamHeader, offset: int
) -> tuple[np.ndarray, np.ndarray]:
    """Decode the block records of a parsed stream into residual blocks.

    Layout discovery (and v3 checksum verification) happens in
    :func:`stream_block_layout`. Returns ``(residuals, fls)`` — the
    per-block fixed lengths come out of the layout for free and let the
    caller skip reconstruction work for zero blocks.
    """
    offsets, fls = stream_block_layout(stream, header, offset)
    residuals = decode_blocks(
        stream,
        header.num_blocks,
        header.block_size,
        header.header_width,
        offsets=offsets,
        fls=fls,
    )
    return residuals, fls


@dataclass(frozen=True)
class CompressionResult:
    """Everything a caller wants to know about one compression."""

    stream: bytes
    eps: float
    original_bytes: int
    shape: tuple[int, ...]
    fixed_lengths: np.ndarray  # per-block, int64
    zero_block_fraction: float

    @property
    def compressed_bytes(self) -> int:
        return len(self.stream)

    @property
    def ratio(self) -> float:
        """Compression ratio: original size / compressed size (paper 2.2)."""
        if self.compressed_bytes == 0:
            raise CompressionError("empty compressed stream")
        return self.original_bytes / self.compressed_bytes

    @property
    def num_elements(self) -> int:
        n = 1
        for d in self.shape:
            n *= d
        return n

    @property
    def bit_rate(self) -> float:
        """Bits stored per original element (the rate-distortion x-axis)."""
        n = self.num_elements
        if n == 0:
            return 0.0
        return 8.0 * self.compressed_bytes / n


class CereSZ:
    """Error-bounded lossy compressor (pre-quant + 1D Lorenzo + FL encoding).

    Parameters
    ----------
    block_size:
        Elements per independent block; the paper uses 32.
    header_width:
        Per-block header bytes: 4 (CereSZ, wafer 32-bit message constraint)
        or 1 (the SZp container layout, used by the baseline subclasses).
    fast:
        Use the fused single-pass kernels (:mod:`repro.core.fastpath`) for
        compression and block-local decompression. On by default; the
        reference multi-stage path remains available (``fast=False``, or
        per call) as the bit-exactness oracle. Whole-array predictors run
        a split pipeline: reference prediction over the full array, then
        the fused block encoder over the residuals. Both paths produce
        byte-identical streams and bit-identical decodes.
    predictor:
        Registry name of the prediction stage (see
        :mod:`repro.core.predictors`); the paper's block-local
        ``lorenzo1d`` by default. Block-local predictors keep every
        capability (fast path, sharding, random access, WSE lowering);
        whole-array predictors trade those for ratio and stay host-only.
    """

    name = "CereSZ"
    #: Platform the paper ran this compressor on (keys the throughput model).
    device = "CS-2"

    def __init__(
        self,
        block_size: int = BLOCK_SIZE,
        header_width: int = CERESZ_HEADER_BYTES,
        *,
        fast: bool = True,
        predictor: str | Predictor = DEFAULT_PREDICTOR,
    ):
        self.block_size = validate_block_size(block_size)
        if header_width not in (CERESZ_HEADER_BYTES, SZP_HEADER_BYTES):
            raise FormatError(f"unsupported header width {header_width}")
        self.header_width = header_width
        self.fast = bool(fast)
        self.predictor = get_predictor(predictor)

    def _with_options(
        self,
        *,
        fast: bool | None = None,
        predictor: str | Predictor | None = None,
    ) -> "CereSZ":
        """This codec, with per-call overrides resolved into codec state.

        Shard workers call back into ``codec.compress``/``decompress``
        with no per-call override, so per-call ``fast=``/``predictor=``
        must travel as codec state; a shallow copy keeps the caller's
        codec untouched.
        """
        pred = self.predictor if predictor is None else get_predictor(predictor)
        fast = self.fast if fast is None else bool(fast)
        if fast == self.fast and pred is self.predictor:
            return self
        import copy

        clone = copy.copy(self)
        clone.fast = fast
        clone.predictor = pred
        return clone

    def _with_fast(self, fast: bool | None) -> "CereSZ":
        """Backwards-compatible alias for :meth:`_with_options`."""
        return self._with_options(fast=fast)

    # -- compression ---------------------------------------------------------------

    def resolve_error_bound(
        self,
        data: np.ndarray,
        eps: float | None,
        rel: float | None,
        psnr: float | None = None,
    ) -> float | None:
        """Turn (eps | rel | psnr) into an absolute bound.

        Exactly one of ``eps`` (absolute), ``rel`` (value-range relative,
        the paper's REL mode), or ``psnr`` (target quality in dB, converted
        analytically to a REL bound) must be given. Returns ``None`` for a
        constant field under a relative mode (stored exactly).
        """
        given = sum(x is not None for x in (eps, rel, psnr))
        if given != 1:
            raise ErrorBoundError(
                "specify exactly one of eps=, rel=, or psnr="
            )
        if psnr is not None:
            rel = psnr_to_relative(psnr)
        if eps is not None:
            return validate_error_bound(eps)
        arr = np.asarray(data)
        if arr.size == 0:
            raise CompressionError("cannot compress an empty array")
        vmin = float(arr.min())
        vmax = float(arr.max())
        if vmax == vmin:
            return None  # constant field: stored exactly
        return relative_to_absolute(arr, rel)

    def compress(
        self,
        data: np.ndarray,
        *,
        eps: float | None = None,
        rel: float | None = None,
        psnr: float | None = None,
        index: bool | None = None,
        jobs: int | None = None,
        metrics=None,
        checksum: bool = False,
        crc_group: int | None = None,
        fast: bool | None = None,
        predictor: str | Predictor | None = None,
        ledger=None,
    ) -> CompressionResult:
        """Compress under an absolute bound, a REL bound, or a PSNR target.

        ``index=True`` writes a container-v2 stream whose fl table makes
        decoding embarrassingly parallel (one cumsum instead of a
        sequential header walk) at a cost of one byte per block.
        ``jobs=`` opts into the shard engine: the field is cut into
        super-shards compressed across a worker pool and wrapped in a
        self-describing shard container (see :mod:`repro.core.parallel`).
        Sharded streams default to indexed shards (pass ``index=False`` to
        force v1 shards); plain streams default to v1. ``metrics=`` (a
        :class:`repro.obs.metrics.MetricsRegistry`) records host-side
        shard-engine counters; it only applies to the sharded path.

        ``checksum=True`` writes a container-v3 stream carrying CRC32C
        integrity metadata (implies an index): decoding then detects any
        corrupt byte, ``ceresz verify`` localizes it to a group of
        ``crc_group`` blocks, and salvage decode recovers everything else.
        Constant fields ignore the flag (a 30-byte exact header has
        nothing worth checksumming).

        ``fast=`` overrides the codec's fused-kernel default for this call
        (``fast=False`` forces the reference multi-stage path); the output
        bytes are identical either way. ``predictor=`` overrides the
        codec's prediction stage for this call (a registry name from
        :mod:`repro.core.predictors`); the choice is recorded in the
        stream header, so decompression needs no matching argument.

        ``ledger=`` opts into the run ledger: a path, ``True`` (default
        path), or a :class:`repro.obs.ledger.Ledger` appends one
        provenance-stamped RunRecord (resolved knobs, environment, wall
        time, ratio) per call. ``None`` (the default) costs one branch.
        """
        if ledger is not None:
            return self._compress_ledgered(
                data,
                eps=eps, rel=rel, psnr=psnr, index=index, jobs=jobs,
                metrics=metrics, checksum=checksum, crc_group=crc_group,
                fast=fast, predictor=predictor, ledger=ledger,
            )
        return self._compress_impl(
            data,
            eps=eps, rel=rel, psnr=psnr, index=index, jobs=jobs,
            metrics=metrics, checksum=checksum, crc_group=crc_group,
            fast=fast, predictor=predictor,
        )

    def _compress_ledgered(self, data, *, ledger, metrics, **kw):
        """Timed compress + RunRecord append (the ``ledger=`` slow path)."""
        import time as _time

        from repro.obs import ledger as _ledger_mod

        t0 = _time.perf_counter()
        result = self._compress_impl(data, metrics=metrics, **kw)
        wall = _time.perf_counter() - t0
        pred = (
            self.predictor
            if kw.get("predictor") is None
            else get_predictor(kw["predictor"])
        )
        config = {
            "op": "compress",
            "eps": kw.get("eps"),
            "rel": kw.get("rel"),
            "psnr": kw.get("psnr"),
            "index": kw.get("index"),
            "jobs": kw.get("jobs"),
            "checksum": bool(kw.get("checksum")),
            "crc_group": kw.get("crc_group"),
            "fast": self.fast if kw.get("fast") is None else bool(kw["fast"]),
            "predictor": pred.name,
            "block_size": self.block_size,
            "header_width": self.header_width,
            "shape": list(np.asarray(data).shape),
        }
        ratio = (
            result.original_bytes / len(result.stream)
            if len(result.stream)
            else 0.0
        )
        _ledger_mod.emit(
            ledger,
            "compress",
            "ceresz.compress",
            config,
            timings={"wall_s": wall},
            values={
                "compression_ratio": float(ratio),
                "compressed_bytes": float(len(result.stream)),
            },
            metrics=metrics,
        )
        return result

    def _compress_impl(
        self,
        data: np.ndarray,
        *,
        eps: float | None = None,
        rel: float | None = None,
        psnr: float | None = None,
        index: bool | None = None,
        jobs: int | None = None,
        metrics=None,
        checksum: bool = False,
        crc_group: int | None = None,
        fast: bool | None = None,
        predictor: str | Predictor | None = None,
    ) -> CompressionResult:
        if jobs is not None:
            from repro.core.parallel import compress_sharded

            return compress_sharded(
                data,
                eps=eps,
                rel=rel,
                psnr=psnr,
                codec=self._with_options(fast=fast, predictor=predictor),
                jobs=jobs,
                index=True if index is None else index,
                metrics=metrics,
                checksum=checksum,
                crc_group=crc_group,
            )
        pred = (
            self.predictor if predictor is None else get_predictor(predictor)
        )
        index = True if checksum else bool(index)
        arr = np.asarray(data)
        if arr.size == 0:
            raise CompressionError("cannot compress an empty array")
        if not np.issubdtype(arr.dtype, np.floating):
            raise CompressionError(
                f"CereSZ compresses floating-point fields, got {arr.dtype}"
            )
        bound = self.resolve_error_bound(arr, eps, rel, psnr)
        out_dtype = np.float64 if arr.dtype == np.float64 else np.float32
        if bound is None:
            return self._compress_constant(arr)

        use_fast = self.fast if fast is None else bool(fast)
        if pred.block_local and use_fast:
            from repro.core.fastpath import fused_compress_blocks

            fl, body, eps_eff, n = fused_compress_blocks(
                arr,
                bound,
                block_size=self.block_size,
                header_bytes=self.header_width,
                out_dtype=out_dtype,
                predictor=pred,
            )
        elif pred.block_local:
            codes, eps_eff, n = self._quantize_blocks(arr, bound, out_dtype)
            residuals = pred.predict_blocks(codes)
            fl = block_fixed_lengths(residuals)
            body = encode_blocks(residuals, self.header_width)
        else:
            # Whole-array predictor: predict once over the full N-D code
            # array, then feed the residuals to the block-local encoder —
            # fused when ``fast`` is on (the predict-then-fused-encode
            # split), reference otherwise. Either way the bytes match.
            codes, eps_eff = prequantize_verified(arr, bound, dtype=out_dtype)
            residuals_nd = pred.predict(codes)
            residuals, n = partition_blocks(residuals_nd, self.block_size)
            if use_fast:
                from repro.core.fastpath import fused_encode_blocks

                fl, body = fused_encode_blocks(
                    residuals, header_bytes=self.header_width
                )
            else:
                fl = block_fixed_lengths(residuals)
                body = encode_blocks(residuals, self.header_width)
        # The header carries the *effective* bound the codes were quantized
        # against (slightly inside the requested one, see
        # :func:`repro.core.quantize.effective_error_bound`) — it is what
        # reconstruction must multiply by.
        from repro.core.format import DEFAULT_CRC_GROUP

        header = make_header(
            arr.shape,
            eps_eff,
            header_width=self.header_width,
            block_size=self.block_size,
            predictor=pred.name,
            dtype="f8" if out_dtype == np.float64 else "f4",
            indexed=index,
            checksum=checksum,
            crc_group=(
                DEFAULT_CRC_GROUP if crc_group is None else int(crc_group)
            ),
        )
        stream = assemble_stream(header, fl, body)
        zero_frac = float(np.mean(fl == 0)) if fl.size else 0.0
        return CompressionResult(
            stream=stream,
            eps=bound,
            original_bytes=n * arr.dtype.itemsize,
            shape=tuple(arr.shape),
            fixed_lengths=fl,
            zero_block_fraction=zero_frac,
        )

    def _quantize_blocks(
        self, arr: np.ndarray, bound: float, out_dtype=np.float32
    ) -> tuple[np.ndarray, float, int]:
        codes, eps_eff = prequantize_verified(arr, bound, dtype=out_dtype)
        blocks, n = partition_blocks(codes, self.block_size)
        return blocks, eps_eff, n

    def _compress_constant(self, arr: np.ndarray) -> CompressionResult:
        value = float(arr.flat[0])
        header = make_header(
            arr.shape,
            0.0,
            header_width=self.header_width,
            block_size=self.block_size,
            constant=value,
            dtype="f8" if arr.dtype == np.float64 else "f4",
        )
        stream = header.pack()
        return CompressionResult(
            stream=stream,
            eps=0.0,
            original_bytes=arr.size * arr.dtype.itemsize,
            shape=tuple(arr.shape),
            fixed_lengths=np.zeros(0, dtype=np.int64),
            zero_block_fraction=1.0,
        )

    # -- decompression --------------------------------------------------------------

    def decompress(
        self,
        stream: bytes,
        *,
        jobs: int | None = None,
        metrics=None,
        fast: bool | None = None,
        ledger=None,
    ) -> np.ndarray:
        """Reconstruct the float32 field (original shape restored).

        Dispatches on the stream header's predictor field, so a plain
        ``CereSZ`` instance decodes streams written with *any* registered
        predictor — the codec's own ``predictor=`` setting never affects
        decoding. Shard containers (written with ``compress(jobs=...)``)
        are recognized by magic and decoded shard-parallel; ``jobs=``
        sizes that pool. ``fast=`` overrides the codec's fused-kernel
        default for this call; block-local-predictor streams decode
        through the fused kernel when on, whole-array streams always take
        the reference path. ``ledger=`` appends one RunRecord per call
        (see :meth:`compress`); ``None`` costs one branch.
        """
        if ledger is not None:
            return self._decompress_ledgered(
                stream, jobs=jobs, metrics=metrics, fast=fast, ledger=ledger
            )
        return self._decompress_impl(
            stream, jobs=jobs, metrics=metrics, fast=fast
        )

    def _decompress_ledgered(self, stream, *, jobs, metrics, fast, ledger):
        """Timed decompress + RunRecord append (the ``ledger=`` slow path)."""
        import time as _time

        from repro.obs import ledger as _ledger_mod

        t0 = _time.perf_counter()
        values = self._decompress_impl(
            stream, jobs=jobs, metrics=metrics, fast=fast
        )
        wall = _time.perf_counter() - t0
        config = {
            "op": "decompress",
            "jobs": jobs,
            "fast": self.fast if fast is None else bool(fast),
            "stream_bytes": len(stream),
        }
        _ledger_mod.emit(
            ledger,
            "decompress",
            "ceresz.decompress",
            config,
            timings={"wall_s": wall},
            values={"output_bytes": float(values.nbytes)},
            metrics=metrics,
        )
        return values

    def _decompress_impl(
        self,
        stream: bytes,
        *,
        jobs: int | None = None,
        metrics=None,
        fast: bool | None = None,
    ) -> np.ndarray:
        from repro.core.parallel import decompress_sharded, is_sharded

        if is_sharded(stream):
            return decompress_sharded(
                stream, codec=self._with_options(fast=fast), jobs=jobs,
                metrics=metrics,
            )
        header, offset = StreamHeader.unpack(stream)
        out_dtype = np.float64 if header.dtype == "f8" else np.float32
        if header.constant is not None:
            try:
                return np.full(header.shape, header.constant, dtype=out_dtype)
            except MemoryError as exc:
                raise CompressionError(
                    f"constant stream describes a {header.shape} field that "
                    f"does not fit in memory"
                ) from exc
        n = header.num_elements
        pred = get_predictor(header.predictor)
        use_fast = self.fast if fast is None else bool(fast)
        if use_fast and pred.block_local:
            from repro.core.fastpath import fused_decompress_blocks

            offsets, fls = stream_block_layout(stream, header, offset)
            values = fused_decompress_blocks(
                stream, header, offsets, fls, out_dtype=out_dtype,
                predictor=pred,
            )
            return values.reshape(header.shape)
        residuals, fls = decode_stream_blocks(stream, header, offset)
        if not pred.block_local:
            flat = merge_blocks(residuals, n)
            codes = pred.reconstruct(flat.reshape(header.shape))
            return dequantize(codes, header.eps, dtype=out_dtype).reshape(
                header.shape
            )
        L = header.block_size
        nz = np.nonzero(fls)[0]
        if nz.size < header.num_blocks // 2:
            # Mostly-zero streams (smooth fields under a realistic bound):
            # a zero block reconstructs to exact 0.0 under every (linear)
            # block-local predictor, so invert and dequantize only the
            # blocks that carry payload.
            values = np.zeros(header.num_blocks * L, dtype=out_dtype)
            if nz.size:
                codes = pred.reconstruct_blocks(residuals[nz])
                values.reshape(-1, L)[nz] = dequantize(
                    codes, header.eps, dtype=out_dtype
                )
            values = values[:n]
        else:
            codes = pred.reconstruct_blocks(residuals)
            flat = merge_blocks(codes, n)
            values = dequantize(flat, header.eps, dtype=out_dtype)
        return values.reshape(header.shape)

    # -- introspection ----------------------------------------------------------------

    def describe_stream(self, stream: bytes) -> StreamHeader:
        """Parse and return the global header without decoding payloads."""
        header, _ = StreamHeader.unpack(stream)
        return header
