"""Framed streaming for in-situ compression pipelines.

The paper's motivating applications (RTM snapshot streams, LCLS detector
output) compress a *sequence* of fields, not one array. This module frames
per-snapshot CereSZ streams into a single append-only byte stream:

* frames share one **absolute** error bound fixed up front — a REL bound
  recomputed per snapshot would make the guarantee drift with each frame's
  value range, which is wrong for time-series analysis;
* each frame is length-prefixed, so readers can skip without decoding, and
  carries its own self-describing CereSZ stream (shape may vary between
  frames, e.g. adaptive-mesh output).

Frame layout::

    [ magic "CSZS" ][ version u8 ][ eps f64 ][ frame count u64 ]
    repeated: [ frame length u64 ][ CereSZ stream ]

Writers come in two flavours. The default buffers frames in memory and
serializes on :meth:`FrameWriter.getvalue` — fine for short runs. Long
snapshot campaigns instead pass a seekable binary sink as ``out=``: every
frame is written through immediately and the header's frame count is
patched in place, so process RSS stays flat no matter how many snapshots
stream past. Both flavours accept ``index=``/``jobs=`` and forward them to
the codec, so frames can be indexed container-v2 streams or shard
containers (see :mod:`repro.core.parallel`).
"""

from __future__ import annotations

import io
import struct
from collections.abc import Iterable, Iterator

import numpy as np

from repro.errors import FormatError
from repro.core.compressor import CereSZ
from repro.core.quantize import validate_error_bound

STREAM_MAGIC = b"CSZS"
STREAM_VERSION = 1

_HEAD = struct.Struct("<4sBdQ")
_FRAME = struct.Struct("<Q")
#: Byte offset of the u64 frame count within the stream header — the field
#: the write-through sink backpatches after every frame.
_COUNT_OFFSET = _HEAD.size - 8


class FrameWriter:
    """Accumulates compressed snapshot frames under one absolute bound.

    Parameters
    ----------
    out:
        Optional seekable binary sink (file object, ``io.BytesIO``). When
        given, frames are written through instead of buffered, and
        :meth:`getvalue` becomes unavailable — the bytes already live in
        the sink.
    index / jobs:
        Forwarded to :meth:`CereSZ.compress` per frame: ``index=True``
        writes container-v2 frames, ``jobs=`` compresses each frame
        through the shard engine.
    """

    def __init__(
        self,
        eps: float,
        codec: CereSZ | None = None,
        *,
        out=None,
        index: bool | None = None,
        jobs: int | None = None,
    ):
        self.eps = validate_error_bound(eps)
        self.codec = codec or CereSZ()
        self._index = index
        self._jobs = jobs
        self._frames: list[bytes] | None = None
        self._num_frames = 0
        self._payload_bytes = 0
        self._raw_bytes = 0
        self._out = out
        if out is None:
            self._frames = []
        else:
            if not (hasattr(out, "seekable") and out.seekable()):
                raise FormatError(
                    "the write-through sink must be seekable: the frame "
                    "count in the stream header is patched in place"
                )
            self._head_pos = out.tell()
            out.write(
                _HEAD.pack(STREAM_MAGIC, STREAM_VERSION, self.eps, 0)
            )

    def add(self, field: np.ndarray) -> int:
        """Compress one snapshot; returns its frame's compressed size."""
        kwargs = {}
        if self._index is not None:
            kwargs["index"] = self._index
        if self._jobs is not None:
            kwargs["jobs"] = self._jobs
        result = self.codec.compress(field, eps=self.eps, **kwargs)
        frame = result.stream
        self._num_frames += 1
        if self._frames is not None:
            self._frames.append(frame)
        else:
            self._out.write(_FRAME.pack(len(frame)))
            self._out.write(frame)
            self._patch_count()
        self._payload_bytes += len(frame)
        self._raw_bytes += result.original_bytes
        return len(frame)

    def _patch_count(self) -> None:
        """Rewrite the header's frame count; leaves the sink at its end."""
        end = self._out.tell()
        self._out.seek(self._head_pos + _COUNT_OFFSET)
        self._out.write(struct.pack("<Q", self._num_frames))
        self._out.seek(end)

    @property
    def num_frames(self) -> int:
        return self._num_frames

    @property
    def compressed_bytes(self) -> int:
        return (
            self._payload_bytes
            + _HEAD.size
            + _FRAME.size * self._num_frames
        )

    @property
    def ratio(self) -> float:
        if self._raw_bytes == 0:
            raise FormatError("no frames added yet")
        return self._raw_bytes / self.compressed_bytes

    def getvalue(self) -> bytes:
        """Serialize the container (buffered mode only)."""
        if self._frames is None:
            raise FormatError(
                "frames were written through to the sink; read them from "
                "there instead of getvalue()"
            )
        out = io.BytesIO()
        out.write(
            _HEAD.pack(
                STREAM_MAGIC, STREAM_VERSION, self.eps, self._num_frames
            )
        )
        for frame in self._frames:
            out.write(_FRAME.pack(len(frame)))
            out.write(frame)
        return out.getvalue()

    def close(self) -> None:
        """Flush the sink (write-through mode); no-op when buffered."""
        if self._out is not None and hasattr(self._out, "flush"):
            self._out.flush()

    def __enter__(self) -> "FrameWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class FrameReader:
    """Iterates the snapshots of a framed stream.

    ``jobs=`` is forwarded to the codec per frame — useful when frames are
    shard containers, whose shards then decode across a worker pool.
    """

    def __init__(
        self,
        data: bytes,
        codec: CereSZ | None = None,
        *,
        jobs: int | None = None,
    ):
        if len(data) < _HEAD.size:
            raise FormatError("framed stream shorter than its header")
        magic, version, eps, count = _HEAD.unpack(data[: _HEAD.size])
        if magic != STREAM_MAGIC:
            raise FormatError(f"bad framed-stream magic {magic!r}")
        if version != STREAM_VERSION:
            raise FormatError(f"unsupported framed-stream version {version}")
        # Each frame costs at least its length prefix; a frame count the
        # stream cannot hold is corruption, not a very long stream.
        if count * _FRAME.size > len(data) - _HEAD.size:
            raise FormatError(
                f"framed stream of {len(data)} bytes cannot hold {count} "
                f"frames"
            )
        self.eps = eps
        self.num_frames = count
        self._data = data
        self._codec = codec or CereSZ()
        self._jobs = jobs

    def frames(self) -> Iterator[bytes]:
        """Yield raw per-snapshot CereSZ streams without decoding."""
        pos = _HEAD.size
        for i in range(self.num_frames):
            chunk = self._data[pos : pos + _FRAME.size]
            if len(chunk) < _FRAME.size:
                raise FormatError(f"framed stream truncated at frame {i}")
            (length,) = _FRAME.unpack(chunk)
            pos += _FRAME.size
            frame = self._data[pos : pos + length]
            if len(frame) < length:
                raise FormatError(f"frame {i} truncated")
            pos += length
            yield frame

    def __iter__(self) -> Iterator[np.ndarray]:
        for frame in self.frames():
            if self._jobs is not None:
                yield self._codec.decompress(frame, jobs=self._jobs)
            else:
                yield self._codec.decompress(frame)

    def __len__(self) -> int:
        return self.num_frames


def compress_stream(
    fields: Iterable[np.ndarray],
    eps: float,
    codec: CereSZ | None = None,
    *,
    out=None,
    index: bool | None = None,
    jobs: int | None = None,
) -> bytes | None:
    """One-shot convenience: frame-compress an iterable of snapshots.

    Returns the container bytes, or ``None`` when ``out=`` streams them
    through to a sink instead.
    """
    writer = FrameWriter(eps, codec, out=out, index=index, jobs=jobs)
    for field in fields:
        writer.add(field)
    if out is not None:
        writer.close()
        return None
    return writer.getvalue()


def decompress_stream(
    data: bytes,
    codec: CereSZ | None = None,
    *,
    jobs: int | None = None,
) -> list[np.ndarray]:
    """One-shot convenience: decode every snapshot of a framed stream."""
    return list(FrameReader(data, codec, jobs=jobs))
