"""Framed streaming for in-situ compression pipelines.

The paper's motivating applications (RTM snapshot streams, LCLS detector
output) compress a *sequence* of fields, not one array. This module frames
per-snapshot CereSZ streams into a single append-only byte stream:

* frames share one **absolute** error bound fixed up front — a REL bound
  recomputed per snapshot would make the guarantee drift with each frame's
  value range, which is wrong for time-series analysis;
* each frame is length-prefixed, so readers can skip without decoding, and
  carries its own self-describing CereSZ stream (shape may vary between
  frames, e.g. adaptive-mesh output).

Frame layout::

    [ magic "CSZS" ][ version u8 ][ eps f64 ][ frame count u64 ]
    repeated: [ frame length u64 ][ CereSZ stream ]
"""

from __future__ import annotations

import io
import struct
from collections.abc import Iterable, Iterator

import numpy as np

from repro.errors import FormatError
from repro.core.compressor import CereSZ
from repro.core.quantize import validate_error_bound

STREAM_MAGIC = b"CSZS"
STREAM_VERSION = 1

_HEAD = struct.Struct("<4sBdQ")
_FRAME = struct.Struct("<Q")


class FrameWriter:
    """Accumulates compressed snapshot frames under one absolute bound."""

    def __init__(self, eps: float, codec: CereSZ | None = None):
        self.eps = validate_error_bound(eps)
        self.codec = codec or CereSZ()
        self._frames: list[bytes] = []
        self._raw_bytes = 0

    def add(self, field: np.ndarray) -> int:
        """Compress one snapshot; returns its frame's compressed size."""
        result = self.codec.compress(field, eps=self.eps)
        self._frames.append(result.stream)
        self._raw_bytes += result.original_bytes
        return len(result.stream)

    @property
    def num_frames(self) -> int:
        return len(self._frames)

    @property
    def compressed_bytes(self) -> int:
        return sum(len(f) for f in self._frames) + _HEAD.size + (
            _FRAME.size * len(self._frames)
        )

    @property
    def ratio(self) -> float:
        if self._raw_bytes == 0:
            raise FormatError("no frames added yet")
        return self._raw_bytes / self.compressed_bytes

    def getvalue(self) -> bytes:
        """Serialize the container."""
        out = io.BytesIO()
        out.write(
            _HEAD.pack(
                STREAM_MAGIC, STREAM_VERSION, self.eps, len(self._frames)
            )
        )
        for frame in self._frames:
            out.write(_FRAME.pack(len(frame)))
            out.write(frame)
        return out.getvalue()


class FrameReader:
    """Iterates the snapshots of a framed stream."""

    def __init__(self, data: bytes, codec: CereSZ | None = None):
        if len(data) < _HEAD.size:
            raise FormatError("framed stream shorter than its header")
        magic, version, eps, count = _HEAD.unpack(data[: _HEAD.size])
        if magic != STREAM_MAGIC:
            raise FormatError(f"bad framed-stream magic {magic!r}")
        if version != STREAM_VERSION:
            raise FormatError(f"unsupported framed-stream version {version}")
        # Each frame costs at least its length prefix; a frame count the
        # stream cannot hold is corruption, not a very long stream.
        if count * _FRAME.size > len(data) - _HEAD.size:
            raise FormatError(
                f"framed stream of {len(data)} bytes cannot hold {count} "
                f"frames"
            )
        self.eps = eps
        self.num_frames = count
        self._data = data
        self._codec = codec or CereSZ()

    def frames(self) -> Iterator[bytes]:
        """Yield raw per-snapshot CereSZ streams without decoding."""
        pos = _HEAD.size
        for i in range(self.num_frames):
            chunk = self._data[pos : pos + _FRAME.size]
            if len(chunk) < _FRAME.size:
                raise FormatError(f"framed stream truncated at frame {i}")
            (length,) = _FRAME.unpack(chunk)
            pos += _FRAME.size
            frame = self._data[pos : pos + length]
            if len(frame) < length:
                raise FormatError(f"frame {i} truncated")
            pos += length
            yield frame

    def __iter__(self) -> Iterator[np.ndarray]:
        for frame in self.frames():
            yield self._codec.decompress(frame)

    def __len__(self) -> int:
        return self.num_frames


def compress_stream(
    fields: Iterable[np.ndarray], eps: float, codec: CereSZ | None = None
) -> bytes:
    """One-shot convenience: frame-compress an iterable of snapshots."""
    writer = FrameWriter(eps, codec)
    for field in fields:
        writer.add(field)
    return writer.getvalue()


def decompress_stream(
    data: bytes, codec: CereSZ | None = None
) -> list[np.ndarray]:
    """One-shot convenience: decode every snapshot of a framed stream."""
    return list(FrameReader(data, codec))
