"""Container v3 integrity metadata: layout, writing, and verification.

A checksummed (v3) stream extends the indexed layout with two tables::

    [ packed global header ... crc_group u16 ]
    [ fl table: u8 * num_blocks ]
    [ group table: (record_bytes u32, crc u32) * num_groups ]
    [ meta_crc u32 ]
    [ block records ... ]

Blocks are partitioned into consecutive *groups* of ``crc_group`` blocks.
Each group's CRC32C covers its slice of the fl table concatenated with its
record bytes, so a flipped byte anywhere — fl entry or payload — fails
exactly one group. ``record_bytes`` is the group's total record size,
letting readers locate every group boundary without trusting the fl table.
``meta_crc`` covers the packed header plus the group table (NOT the fl
table: fl corruption must localize to its group, not poison the whole
stream).

Verification is vectorized through :func:`repro.faults.crc32c.crc32c_many`
— all groups advance column-wise in lockstep, the same gather idiom the
block decoder uses.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

import numpy as np

from repro.core.encoding import record_sizes
from repro.core.format import StreamHeader
from repro.errors import ContainerError
from repro.faults.crc32c import crc32c, crc32c_many

_GROUP_ENTRY = struct.Struct("<II")  # record_bytes, crc32c
_META_CRC = struct.Struct("<I")


@dataclass(frozen=True)
class ChecksumLayout:
    """Parsed v3 integrity tables (raw, not yet verified)."""

    #: Per-block fixed lengths as read from the stream — unvalidated;
    #: trust an entry only after its group's CRC checks out.
    fls: np.ndarray
    #: Absolute byte offset of the fl table.
    fl_start: int
    #: Per-group record byte counts from the group table.
    group_bytes: np.ndarray
    #: Stored per-group CRC32C values (uint32).
    group_crcs: np.ndarray
    #: Absolute byte offset of each group's first record (int64,
    #: ``num_groups + 1`` entries — the last is one-past-the-end).
    group_offsets: np.ndarray
    #: Absolute byte offset of the first block record.
    records_start: int
    #: Stored meta CRC and whether it matches the header + group table.
    meta_crc: int
    meta_ok: bool

    @property
    def num_groups(self) -> int:
        return len(self.group_bytes)


def group_block_spans(num_blocks: int, crc_group: int) -> np.ndarray:
    """Block-index boundaries of each CRC group: shape (num_groups + 1,)."""
    edges = np.arange(0, num_blocks + crc_group, crc_group, dtype=np.int64)
    edges[-1] = num_blocks
    return edges[: -(-num_blocks // crc_group) + 1] if num_blocks else edges[:1]


def compute_group_crcs(
    header: StreamHeader,
    fl_table: bytes | memoryview,
    body: bytes | memoryview,
    group_bytes: np.ndarray,
) -> np.ndarray:
    """Actual CRC32C of each group: crc(fl slice ++ record slice).

    ``group_bytes`` supplies the record span of each group (from the
    meta-verified group table on read, or from the fl table on write), so
    groups stay locatable even when their fl entries are corrupt.
    """
    edges = group_block_spans(header.num_blocks, header.crc_group)
    fl_starts = edges[:-1]
    fl_lens = np.diff(edges)
    rec_edges = np.zeros(len(group_bytes) + 1, dtype=np.int64)
    np.cumsum(group_bytes, out=rec_edges[1:])
    fl_crcs = crc32c_many(np.frombuffer(fl_table, dtype=np.uint8),
                          fl_starts, fl_lens)
    return crc32c_many(
        np.frombuffer(body, dtype=np.uint8),
        rec_edges[:-1],
        np.diff(rec_edges),
        init=fl_crcs,
    )


def build_checksummed_tail(
    header: StreamHeader, fl_table: bytes, body: bytes, head: bytes
) -> bytes:
    """Group table + meta CRC for a v3 stream (goes between fl and body)."""
    fls = np.frombuffer(fl_table, dtype=np.uint8).astype(np.int64)
    sizes = record_sizes(fls, header.block_size, header.header_width)
    edges = group_block_spans(header.num_blocks, header.crc_group)
    group_bytes = np.add.reduceat(sizes, edges[:-1]).astype(np.int64)
    crcs = compute_group_crcs(header, fl_table, body, group_bytes)
    table = b"".join(
        _GROUP_ENTRY.pack(int(b), int(c))
        for b, c in zip(group_bytes.tolist(), crcs.tolist())
    )
    meta = crc32c(table, crc=crc32c(head))
    return table + _META_CRC.pack(meta)


def read_checksum_layout(
    stream: bytes | memoryview, header: StreamHeader, offset: int
) -> ChecksumLayout:
    """Parse the fl + group tables of a v3 stream.

    Raises :class:`ContainerError` when the tables themselves are
    truncated (nothing to salvage without them); a bad meta CRC is
    reported via :attr:`ChecksumLayout.meta_ok`, not raised, so salvage
    callers can decide.
    """
    nb = header.num_blocks
    ng = header.num_groups
    fl_start = offset
    table_start = fl_start + nb
    meta_start = table_start + ng * _GROUP_ENTRY.size
    records_start = meta_start + _META_CRC.size
    if len(stream) < records_start:
        raise ContainerError(
            f"stream truncated in integrity tables: need {records_start} "
            f"bytes for header + fl + group tables, have {len(stream)}",
            offset=len(stream),
        )
    fls = np.frombuffer(
        stream, dtype=np.uint8, count=nb, offset=fl_start
    ).astype(np.int64)
    raw = np.frombuffer(
        stream, dtype="<u4", count=2 * ng, offset=table_start
    ).reshape(ng, 2)
    group_bytes = raw[:, 0].astype(np.int64)
    group_crcs = raw[:, 1].astype(np.uint32)
    meta_crc = int(
        _META_CRC.unpack(bytes(stream[meta_start:records_start]))[0]
    )
    head = bytes(stream[:offset])
    table = bytes(stream[table_start:meta_start])
    meta_ok = crc32c(table, crc=crc32c(head)) == meta_crc
    group_offsets = np.zeros(ng + 1, dtype=np.int64)
    np.cumsum(group_bytes, out=group_offsets[1:])
    group_offsets += records_start
    return ChecksumLayout(
        fls=fls,
        fl_start=fl_start,
        group_bytes=group_bytes,
        group_crcs=group_crcs,
        group_offsets=group_offsets,
        records_start=records_start,
        meta_crc=meta_crc,
        meta_ok=meta_ok,
    )


def verify_groups(
    stream: bytes | memoryview, header: StreamHeader, layout: ChecksumLayout
) -> np.ndarray:
    """Indices of groups whose stored CRC does not match the stream.

    A group whose record span runs past the end of the stream is corrupt
    by definition (truncation) and is reported without hashing.
    """
    ng = layout.num_groups
    if ng == 0:
        return np.zeros(0, dtype=np.int64)
    end = len(stream)
    truncated = layout.group_offsets[1:] > end
    fl_table = stream[layout.fl_start : layout.fl_start + header.num_blocks]
    intact = ~truncated
    bad = truncated.copy()
    if intact.any():
        idx = np.nonzero(intact)[0]
        starts = layout.group_offsets[:-1][idx] - layout.records_start
        lens = layout.group_bytes[idx]
        edges = group_block_spans(header.num_blocks, header.crc_group)
        body = stream[layout.records_start :]
        fl_crcs = crc32c_many(
            np.frombuffer(fl_table, dtype=np.uint8),
            edges[:-1][idx],
            np.diff(edges)[idx],
        )
        actual = crc32c_many(
            np.frombuffer(body, dtype=np.uint8), starts, lens, init=fl_crcs
        )
        bad[idx] = actual != layout.group_crcs[idx]
    return np.nonzero(bad)[0].astype(np.int64)


def corrupt_blocks_of(
    header: StreamHeader, corrupt_groups: np.ndarray
) -> np.ndarray:
    """Block indices belonging to the given corrupt groups."""
    if len(corrupt_groups) == 0:
        return np.zeros(0, dtype=np.int64)
    edges = group_block_spans(header.num_blocks, header.crc_group)
    parts = [
        np.arange(edges[g], edges[g + 1], dtype=np.int64)
        for g in corrupt_groups.tolist()
    ]
    return np.concatenate(parts)
