"""The shard engine: host-parallel compression and decompression.

The paper scales CereSZ by giving every PE an independent slice of the
field; the host reference gets the same property by cutting the flattened
field into *super-shards* (many blocks each), compressing every shard as
its own self-describing CereSZ stream across a ``concurrent.futures``
pool, and concatenating the results behind a small shard table::

    [ magic "CSZX" ][ version u8 ][ flags u8 ][ num_shards u32 ]
    [ eps f64 ][ ndim u8 ][ dims u64 * ndim ]
    [ shard length u64 ] * num_shards
    [ shard payloads back-to-back ... ]

Because the length table sits up front, a reader slices every shard in
O(num_shards) and decodes them in any order — decompression is
embarrassingly parallel, like cuSZp's partition metadata. Shard streams
default to the indexed container v2, so even within a shard no sequential
header walk remains.

Determinism: shard boundaries depend only on ``shard_elements`` (never on
the pool size), so ``jobs=1`` and ``jobs=16`` produce byte-identical
containers. Sharded and *unsharded* streams are not byte-identical,
though: each shard quantizes against its own effective bound (the ulp
margin of :func:`repro.core.quantize.effective_error_bound` depends on the
shard's peak magnitude), exactly as every shard honors the requested
bound independently.

The error bound is resolved *once* against the whole field — a REL bound
recomputed per shard would drift with each shard's local value range and
break the global guarantee — then every shard is compressed under the
resulting absolute bound.

Workers run in threads: the hot kernels are NumPy calls that release the
GIL, and threads avoid pickling multi-megabyte streams across process
boundaries.
"""

from __future__ import annotations

import os
import struct
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor

import numpy as np

from repro.errors import CompressionError, FormatError

SHARD_MAGIC = b"CSZX"
SHARD_VERSION = 1

_SHARD_FLAG_F64 = 0x01

#: Default super-shard size: 1 Mi elements (4 MiB of float32) keeps the
#: per-shard container overhead negligible while giving a pool enough
#: shards to balance on fields worth parallelizing.
DEFAULT_SHARD_ELEMENTS = 1 << 20

_HEAD = struct.Struct("<4sBBId B".replace(" ", ""))
_DIM = struct.Struct("<Q")
_LEN = struct.Struct("<Q")


def resolve_jobs(jobs: int | None) -> int:
    """Normalize a ``jobs=`` argument to a positive worker count."""
    if jobs is None:
        return os.cpu_count() or 1
    jobs = int(jobs)
    if jobs < 1:
        raise CompressionError(f"jobs must be >= 1, got {jobs}")
    return jobs


def is_sharded(stream: bytes) -> bool:
    """True when ``stream`` is a shard container (vs a plain CereSZ stream)."""
    return bytes(stream[:4]) == SHARD_MAGIC


def _shard_bounds(n: int, shard_elements: int) -> list[tuple[int, int]]:
    return [
        (lo, min(lo + shard_elements, n))
        for lo in range(0, n, shard_elements)
    ]


def run_pool(fn, items, jobs: int, *, processes: bool = False) -> list:
    """Map ``fn`` over ``items`` preserving order; inline when jobs == 1.

    ``processes=False`` (the shard engine's mode) uses threads — right for
    GIL-releasing NumPy kernels on shared memory. ``processes=True`` uses a
    process pool — required for pure-Python work like the WSE simulator,
    where threads serialize on the GIL; ``fn`` and the items must then be
    picklable module-level objects.
    """
    if jobs == 1 or len(items) <= 1:
        return [fn(item) for item in items]
    pool_cls = ProcessPoolExecutor if processes else ThreadPoolExecutor
    with pool_cls(max_workers=min(jobs, len(items))) as pool:
        return list(pool.map(fn, items))


def _run_pool(fn, items, jobs: int) -> list:
    return run_pool(fn, items, jobs)


def compress_sharded(
    data: np.ndarray,
    *,
    eps: float | None = None,
    rel: float | None = None,
    psnr: float | None = None,
    codec=None,
    jobs: int | None = None,
    shard_elements: int | None = None,
    index: bool = True,
    metrics=None,
):
    """Compress ``data`` into a shard container; returns a CompressionResult.

    A field too small for more than one shard (or a constant field, which
    stores as a bare constant stream) degrades gracefully to the
    single-stream format — ``decompress`` dispatches on magic either way.

    ``metrics`` (a :class:`repro.obs.metrics.MetricsRegistry`) records the
    host-side ``host.shards`` / ``host.bytes_in`` / ``host.bytes_out``
    counters once the container is assembled.
    """
    from repro.core.compressor import CereSZ

    codec = codec if codec is not None else CereSZ()
    arr = np.asarray(data)
    if arr.size == 0:
        raise CompressionError("cannot compress an empty array")
    if not np.issubdtype(arr.dtype, np.floating):
        raise CompressionError(
            f"CereSZ compresses floating-point fields, got {arr.dtype}"
        )
    if not (1 <= arr.ndim <= 255):
        raise FormatError(f"unsupported ndim {arr.ndim}")
    bound = codec.resolve_error_bound(arr, eps, rel, psnr)
    if bound is None:
        return codec._compress_constant(arr)

    if shard_elements is None:
        shard_elements = DEFAULT_SHARD_ELEMENTS
    shard_elements = int(shard_elements)
    if shard_elements < codec.block_size:
        raise CompressionError(
            f"shard_elements must be at least one block "
            f"({codec.block_size}), got {shard_elements}"
        )
    # Align shards to block boundaries so the shard cut never splits a block.
    shard_elements -= shard_elements % codec.block_size

    flat = arr.reshape(-1)
    bounds = _shard_bounds(flat.size, shard_elements)
    jobs = resolve_jobs(jobs)

    def _one(span: tuple[int, int]):
        lo, hi = span
        return codec.compress(flat[lo:hi], eps=bound, index=index)

    results = _run_pool(_one, bounds, jobs)

    from repro.core.compressor import CompressionResult

    flags = _SHARD_FLAG_F64 if arr.dtype == np.float64 else 0
    parts = [
        _HEAD.pack(
            SHARD_MAGIC, SHARD_VERSION, flags, len(results), bound, arr.ndim
        )
    ]
    parts.extend(_DIM.pack(d) for d in arr.shape)
    parts.extend(_LEN.pack(len(r.stream)) for r in results)
    parts.extend(r.stream for r in results)
    stream = b"".join(parts)

    if metrics is not None:
        metrics.counter(
            "host.shards", "super-shards compressed by the shard engine"
        ).inc(len(results), direction="compress")
        metrics.counter("host.bytes_in", "bytes entering the host codec").inc(
            arr.size * arr.dtype.itemsize, direction="compress"
        )
        metrics.counter("host.bytes_out", "bytes leaving the host codec").inc(
            len(stream), direction="compress"
        )

    fl = (
        np.concatenate([r.fixed_lengths for r in results])
        if results
        else np.zeros(0, dtype=np.int64)
    )
    return CompressionResult(
        stream=stream,
        eps=bound,
        original_bytes=arr.size * arr.dtype.itemsize,
        shape=tuple(arr.shape),
        fixed_lengths=fl,
        zero_block_fraction=float(np.mean(fl == 0)) if fl.size else 0.0,
    )


def read_shard_table(
    stream: bytes,
) -> tuple[tuple[int, ...], bool, float, list[tuple[int, int]]]:
    """Parse a shard container's header.

    Returns ``(shape, is_f64, eps, [(start, stop) per shard])`` where the
    spans are byte ranges of the self-describing shard streams.
    """
    if len(stream) < _HEAD.size:
        raise FormatError("shard container shorter than its header")
    magic, version, flags, num_shards, eps, ndim = _HEAD.unpack(
        stream[: _HEAD.size]
    )
    if magic != SHARD_MAGIC:
        raise FormatError(f"bad shard-container magic {magic!r}")
    if version != SHARD_VERSION:
        raise FormatError(f"unsupported shard-container version {version}")
    if num_shards == 0:
        raise FormatError("shard container holds no shards")
    pos = _HEAD.size
    remaining = len(stream) - pos
    if ndim * _DIM.size + num_shards * _LEN.size > remaining:
        raise FormatError(
            f"shard container of {len(stream)} bytes cannot hold {ndim} "
            f"dims and {num_shards} shard lengths"
        )
    dims = []
    for _ in range(ndim):
        dims.append(_DIM.unpack_from(stream, pos)[0])
        pos += _DIM.size
    spans = []
    lengths = []
    for _ in range(num_shards):
        (length,) = _LEN.unpack_from(stream, pos)
        pos += _LEN.size
        if length > len(stream):
            raise FormatError("shard length exceeds the container")
        lengths.append(int(length))
    start = pos
    for length in lengths:
        if start + length > len(stream):
            raise FormatError("shard container truncated in shard payloads")
        spans.append((start, start + length))
        start += length
    return (
        tuple(int(d) for d in dims),
        bool(flags & _SHARD_FLAG_F64),
        float(eps),
        spans,
    )


def decompress_sharded(
    stream: bytes, *, codec=None, jobs: int | None = None, metrics=None
) -> np.ndarray:
    """Decode a shard container back to the original field.

    ``metrics`` records the same host-side counters as
    :func:`compress_sharded`, labeled ``direction=decompress``.
    """
    from repro.core.compressor import CereSZ

    codec = codec if codec is not None else CereSZ()
    shape, is_f64, _eps, spans = read_shard_table(stream)
    jobs = resolve_jobs(jobs)

    def _one(span: tuple[int, int]) -> np.ndarray:
        lo, hi = span
        return codec.decompress(stream[lo:hi]).reshape(-1)

    parts = _run_pool(_one, spans, jobs)
    flat = np.concatenate(parts) if len(parts) > 1 else parts[0]
    n = 1
    for d in shape:
        n *= d
    if flat.size != n:
        raise FormatError(
            f"shards decode to {flat.size} elements, container claims {n}"
        )
    out_dtype = np.float64 if is_f64 else np.float32
    out = flat.astype(out_dtype, copy=False).reshape(shape)
    if metrics is not None:
        metrics.counter(
            "host.shards", "super-shards compressed by the shard engine"
        ).inc(len(spans), direction="decompress")
        metrics.counter("host.bytes_in", "bytes entering the host codec").inc(
            len(stream), direction="decompress"
        )
        metrics.counter("host.bytes_out", "bytes leaving the host codec").inc(
            out.size * out.dtype.itemsize, direction="decompress"
        )
    return out
