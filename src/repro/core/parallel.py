"""The shard engine: host-parallel compression and decompression.

The paper scales CereSZ by giving every PE an independent slice of the
field; the host reference gets the same property by cutting the flattened
field into *super-shards* (many blocks each), compressing every shard as
its own self-describing CereSZ stream across a ``concurrent.futures``
pool, and concatenating the results behind a small shard table::

    [ magic "CSZX" ][ version u8 ][ flags u8 ][ num_shards u32 ]
    [ eps f64 ][ ndim u8 ][ dims u64 * ndim ]
    [ shard length u64 ] * num_shards
    [ shard payloads back-to-back ... ]

Because the length table sits up front, a reader slices every shard in
O(num_shards) and decodes them in any order — decompression is
embarrassingly parallel, like cuSZp's partition metadata. Shard streams
default to the indexed container v2, so even within a shard no sequential
header walk remains.

Determinism: shard boundaries depend only on ``shard_elements`` (never on
the pool size), so ``jobs=1`` and ``jobs=16`` produce byte-identical
containers. Sharded and *unsharded* streams are not byte-identical,
though: each shard quantizes against its own effective bound (the ulp
margin of :func:`repro.core.quantize.effective_error_bound` depends on the
shard's peak magnitude), exactly as every shard honors the requested
bound independently.

The error bound is resolved *once* against the whole field — a REL bound
recomputed per shard would drift with each shard's local value range and
break the global guarantee — then every shard is compressed under the
resulting absolute bound.

Whole-array predictors (``whole_array`` locality in
:mod:`repro.core.predictors`) take a different route entirely: their
prediction cannot be cut at shard boundaries without changing the math,
so the engine predicts once over the full array and parallelizes only
the block-local residual *encode*, emitting one plain CSZ1 stream that
is byte-identical for every ``jobs=`` value (see
:func:`_compress_predicted_sharded`).

Workers run in threads: the hot kernels are NumPy calls that release the
GIL, and threads avoid pickling multi-megabyte streams across process
boundaries.
"""

from __future__ import annotations

import multiprocessing
import os
import random
import struct
import time
from concurrent.futures import (
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    TimeoutError as _FutureTimeout,
)
from dataclasses import dataclass

import numpy as np

from repro.errors import (
    CompressionError,
    ContainerError,
    FormatError,
    WorkerError,
)

SHARD_MAGIC = b"CSZX"
SHARD_VERSION = 1
#: Shard container v2: v1 plus a ``shard_elements u64`` field (elements per
#: shard, so a salvage reader knows each lost shard's span without parsing
#: its stream) and a ``meta_crc u32`` (CRC32C over everything before the
#: payloads). Written only by ``checksum=True`` compressions — the default
#: container stays byte-identical to v1.
SHARD_VERSION_CHECKSUM = 2

_SHARD_FLAG_F64 = 0x01

#: Default super-shard size: 1 Mi elements (4 MiB of float32) keeps the
#: per-shard container overhead negligible while giving a pool enough
#: shards to balance on fields worth parallelizing.
DEFAULT_SHARD_ELEMENTS = 1 << 20

_HEAD = struct.Struct("<4sBBId B".replace(" ", ""))
_DIM = struct.Struct("<Q")
_LEN = struct.Struct("<Q")
_META_CRC = struct.Struct("<I")


def resolve_jobs(jobs: int | None) -> int:
    """Normalize a ``jobs=`` argument to a positive worker count."""
    if jobs is None:
        return os.cpu_count() or 1
    jobs = int(jobs)
    if jobs < 1:
        raise CompressionError(f"jobs must be >= 1, got {jobs}")
    return jobs


def is_sharded(stream: bytes) -> bool:
    """True when ``stream`` is a shard container (vs a plain CereSZ stream)."""
    return bytes(stream[:4]) == SHARD_MAGIC


def _shard_bounds(n: int, shard_elements: int) -> list[tuple[int, int]]:
    return [
        (lo, min(lo + shard_elements, n))
        for lo in range(0, n, shard_elements)
    ]


def run_pool(fn, items, jobs: int, *, processes: bool = False) -> list:
    """Map ``fn`` over ``items`` preserving order; inline when jobs == 1.

    ``processes=False`` (the shard engine's mode) uses threads — right for
    GIL-releasing NumPy kernels on shared memory. ``processes=True`` uses a
    process pool — required for pure-Python work like the WSE simulator,
    where threads serialize on the GIL; ``fn`` and the items must then be
    picklable module-level objects.
    """
    if jobs == 1 or len(items) <= 1:
        return [fn(item) for item in items]
    pool_cls = ProcessPoolExecutor if processes else ThreadPoolExecutor
    with pool_cls(max_workers=min(jobs, len(items))) as pool:
        return list(pool.map(fn, items))


def _run_pool(fn, items, jobs: int) -> list:
    return run_pool(fn, items, jobs)


def run_pool_resilient(
    fn,
    items,
    jobs: int,
    *,
    processes: bool = False,
    timeout: float | None = None,
    retries: int = 2,
    backoff: float = 0.05,
    jitter_seed: int = 0,
    salvage: bool = False,
    metrics=None,
):
    """Map ``fn`` over ``items`` with a watchdog and bounded retries.

    The resilient sibling of :func:`run_pool`: every item gets up to
    ``1 + retries`` attempts; between retry waves the pool sleeps an
    exponentially growing, deterministically jittered backoff
    (``backoff * 2**wave``, jitter seeded by ``jitter_seed`` so runs are
    reproducible). ``timeout`` arms the per-item watchdog:

    - ``processes=True`` — a hung worker is *killed* (the whole
      ``multiprocessing.Pool`` is terminated and rebuilt; completed
      results are kept, unharvested items re-run). ``fn`` and the items
      must be picklable. This is the only true watchdog.
    - ``processes=False`` — the wait is abandoned but the thread cannot
      be killed; fine for bounding tail latency of finite work, wrong
      for workers that genuinely never return.

    Returns ``(results, failures)`` where ``results[i]`` is ``fn(items[i])``
    or ``None`` for terminally failed items, and ``failures`` is a tuple of
    :class:`repro.faults.report.ShardFailure` for exactly those items. With
    ``salvage=False`` (default) any terminal failure raises a
    :class:`repro.errors.WorkerError` naming the first failed shard, its
    attempt count, and every other failure.
    """
    from repro.faults.report import ShardFailure

    items = list(items)
    n = len(items)
    results: list = [None] * n
    done = [False] * n
    attempts = [0] * n
    failures: dict[int, ShardFailure] = {}
    if retries < 0:
        raise CompressionError(f"retries must be >= 0, got {retries}")
    rng = random.Random(jitter_seed)
    pending = list(range(n))
    wave = 0
    while pending:
        if wave > 0:
            delay = backoff * (2 ** (wave - 1)) * (0.5 + rng.random())
            if metrics is not None:
                metrics.counter(
                    "host.pool_retries", "shard attempts re-run after failure"
                ).inc(len(pending))
            time.sleep(delay)
        batch, pending = pending, []

        def _record_failure(i: int, kind: str, detail: str) -> None:
            attempts[i] += 1
            failures[i] = ShardFailure(
                index=i, attempts=attempts[i], kind=kind, error=detail
            )
            if kind == "timeout" and metrics is not None:
                metrics.counter(
                    "host.pool_timeouts", "shard attempts killed by watchdog"
                ).inc()
            if attempts[i] <= retries:
                pending.append(i)

        use_proc_pool = processes and (
            timeout is not None or (jobs > 1 and len(batch) > 1)
        )
        if use_proc_pool:
            pool = multiprocessing.get_context().Pool(
                processes=min(jobs, len(batch))
            )
            killed = False
            try:
                handles = [
                    (i, pool.apply_async(fn, (items[i],))) for i in batch
                ]
                pool.close()
                for i, handle in handles:
                    if killed:
                        # The pool died under this item; its outcome is
                        # unknown, so re-run it without charging an attempt.
                        pending.append(i)
                        continue
                    try:
                        results[i] = handle.get(timeout)
                        done[i] = True
                        failures.pop(i, None)
                    except multiprocessing.TimeoutError:
                        _record_failure(
                            i, "timeout",
                            f"worker exceeded {timeout}s; killed",
                        )
                        pool.terminate()
                        killed = True
                    except Exception as exc:
                        _record_failure(
                            i, "error", f"{type(exc).__name__}: {exc}"
                        )
            finally:
                pool.terminate()
                pool.join()
        elif jobs > 1 and len(batch) > 1 and not processes:
            pool = ThreadPoolExecutor(max_workers=min(jobs, len(batch)))
            futures = [(i, pool.submit(fn, items[i])) for i in batch]
            for i, fut in futures:
                try:
                    results[i] = fut.result(timeout)
                    done[i] = True
                    failures.pop(i, None)
                except _FutureTimeout:
                    fut.cancel()
                    _record_failure(
                        i, "timeout",
                        f"worker exceeded {timeout}s (thread abandoned)",
                    )
                except Exception as exc:
                    _record_failure(
                        i, "error", f"{type(exc).__name__}: {exc}"
                    )
            pool.shutdown(wait=False, cancel_futures=True)
        else:
            # Inline: no watchdog possible, but retries still apply.
            for i in batch:
                try:
                    results[i] = fn(items[i])
                    done[i] = True
                    failures.pop(i, None)
                except Exception as exc:
                    _record_failure(
                        i, "error", f"{type(exc).__name__}: {exc}"
                    )
        wave += 1
    terminal = tuple(
        failures[i] for i in sorted(failures) if not done[i]
    )
    if terminal and not salvage:
        first = terminal[0]
        raise WorkerError(
            f"shard {first.index} failed after {first.attempts} attempt(s) "
            f"({first.kind}: {first.error}); "
            f"{len(terminal)} shard(s) failed in total",
            shard=first.index,
            attempts=first.attempts,
            failures=terminal,
        )
    return results, terminal


def _compress_shard_worker(args):
    """Module-level (hence process-picklable) shard compression."""
    codec, chunk, bound, index, checksum, crc_group = args
    return codec.compress(
        chunk, eps=bound, index=index, checksum=checksum, crc_group=crc_group
    )


def _encode_range_worker(args):
    """Module-level (hence process-picklable) residual-range encode."""
    blocks, header_bytes, fast = args
    if fast:
        from repro.core.fastpath import fused_encode_blocks

        return fused_encode_blocks(blocks, header_bytes=header_bytes)
    from repro.core.encoding import block_fixed_lengths, encode_blocks

    return block_fixed_lengths(blocks), encode_blocks(blocks, header_bytes)


def _compress_predicted_sharded(
    arr: np.ndarray,
    bound: float,
    codec,
    jobs: int,
    shard_elements: int,
    index: bool,
    metrics,
    checksum: bool,
    crc_group: int | None,
    timeout: float | None,
    retries: int,
    processes: bool,
):
    """Whole-array predictors: predict once, shard only the block encode.

    A whole-array predictor's transform spans the full field, so cutting
    the *data* into shards would silently change what gets predicted (the
    old ``CereSZND.compress(jobs=...)`` bug: each shard degenerated to
    1-D prediction over its slice and the stream differed from serial).
    Instead, quantization and prediction run once over the whole array —
    both are vectorized single passes — and the pool parallelizes the
    expensive part that *is* block-local: sign split, bit-length scan,
    and bit-shuffle over ranges of residual blocks. The output is one
    plain CSZ1 stream, byte-identical for every ``jobs=`` value and to
    the serial ``compress()`` under the same container options.
    """
    from repro.core.blocks import partition_blocks
    from repro.core.compressor import CompressionResult, assemble_stream
    from repro.core.format import DEFAULT_CRC_GROUP, make_header
    from repro.core.quantize import prequantize_verified

    out_dtype = np.float64 if arr.dtype == np.float64 else np.float32
    codes, eps_eff = prequantize_verified(arr, bound, dtype=out_dtype)
    residuals_nd = codec.predictor.predict(codes)
    blocks, n = partition_blocks(residuals_nd, codec.block_size)
    num_blocks = int(blocks.shape[0])
    shard_blocks = max(shard_elements // codec.block_size, 1)
    ranges = [
        (b0, min(b0 + shard_blocks, num_blocks))
        for b0 in range(0, num_blocks, shard_blocks)
    ]
    work = [
        (blocks[b0:b1], codec.header_width, codec.fast) for b0, b1 in ranges
    ]
    if timeout is not None or retries > 0 or processes:
        results, _ = run_pool_resilient(
            _encode_range_worker, work, jobs,
            processes=processes, timeout=timeout, retries=retries,
            metrics=metrics,
        )
    else:
        results = run_pool(_encode_range_worker, work, jobs)
    fl = (
        np.concatenate([r[0] for r in results])
        if results
        else np.zeros(0, dtype=np.int64)
    )
    body = b"".join(r[1] for r in results)
    header = make_header(
        arr.shape,
        eps_eff,
        header_width=codec.header_width,
        block_size=codec.block_size,
        predictor=codec.predictor.name,
        dtype="f8" if out_dtype == np.float64 else "f4",
        indexed=index,
        checksum=checksum,
        crc_group=DEFAULT_CRC_GROUP if crc_group is None else int(crc_group),
    )
    stream = assemble_stream(header, fl, body)
    if metrics is not None:
        metrics.counter(
            "host.shards", "super-shards compressed by the shard engine"
        ).inc(len(ranges), direction="compress")
        metrics.counter("host.bytes_in", "bytes entering the host codec").inc(
            arr.size * arr.dtype.itemsize, direction="compress"
        )
        metrics.counter("host.bytes_out", "bytes leaving the host codec").inc(
            len(stream), direction="compress"
        )
    return CompressionResult(
        stream=stream,
        eps=bound,
        original_bytes=n * arr.dtype.itemsize,
        shape=tuple(arr.shape),
        fixed_lengths=fl,
        zero_block_fraction=float(np.mean(fl == 0)) if fl.size else 0.0,
    )


def _decompress_shard_worker(args):
    """Module-level (hence process-picklable) shard decompression."""
    codec, payload = args
    return codec.decompress(payload).reshape(-1)


def compress_sharded(
    data: np.ndarray,
    *,
    eps: float | None = None,
    rel: float | None = None,
    psnr: float | None = None,
    codec=None,
    jobs: int | None = None,
    shard_elements: int | None = None,
    index: bool = True,
    metrics=None,
    checksum: bool = False,
    crc_group: int | None = None,
    timeout: float | None = None,
    retries: int = 0,
    processes: bool = False,
):
    """Compress ``data`` into a shard container; returns a CompressionResult.

    A field too small for more than one shard (or a constant field, which
    stores as a bare constant stream) degrades gracefully to the
    single-stream format — ``decompress`` dispatches on magic either way.

    ``metrics`` (a :class:`repro.obs.metrics.MetricsRegistry`) records the
    host-side ``host.shards`` / ``host.bytes_in`` / ``host.bytes_out``
    counters once the container is assembled.

    ``checksum=True`` writes container v2 (shard table protected by a meta
    CRC, per-shard element count recorded for salvage) around v3 shard
    streams; the default stays bit-identical to the legacy v1 container.

    ``timeout=`` / ``retries=`` engage :func:`run_pool_resilient`: each
    shard gets a watchdog and a bounded retry budget, and exhaustion
    raises a structured :class:`repro.errors.WorkerError` (compression
    never salvages — a container missing a shard would be data loss).
    ``processes=True`` runs workers in processes so the watchdog can
    actually kill a hung one.
    """
    from repro.core.compressor import CereSZ

    codec = codec if codec is not None else CereSZ()
    arr = np.asarray(data)
    if arr.size == 0:
        raise CompressionError("cannot compress an empty array")
    if not np.issubdtype(arr.dtype, np.floating):
        raise CompressionError(
            f"CereSZ compresses floating-point fields, got {arr.dtype}"
        )
    if not (1 <= arr.ndim <= 255):
        raise FormatError(f"unsupported ndim {arr.ndim}")
    bound = codec.resolve_error_bound(arr, eps, rel, psnr)
    if bound is None:
        return codec._compress_constant(arr)

    if shard_elements is None:
        shard_elements = DEFAULT_SHARD_ELEMENTS
    shard_elements = int(shard_elements)
    if shard_elements < codec.block_size:
        raise CompressionError(
            f"shard_elements must be at least one block "
            f"({codec.block_size}), got {shard_elements}"
        )
    # Align shards to block boundaries so the shard cut never splits a block.
    shard_elements -= shard_elements % codec.block_size

    pred = getattr(codec, "predictor", None)
    if pred is not None and not pred.block_local:
        return _compress_predicted_sharded(
            arr, bound, codec, resolve_jobs(jobs), shard_elements, index,
            metrics, checksum, crc_group, timeout, retries, processes,
        )

    flat = arr.reshape(-1)
    bounds = _shard_bounds(flat.size, shard_elements)
    jobs = resolve_jobs(jobs)

    if timeout is not None or retries > 0 or processes:
        work = [
            (codec, flat[lo:hi], bound, index, checksum, crc_group)
            for lo, hi in bounds
        ]
        results, _ = run_pool_resilient(
            _compress_shard_worker, work, jobs,
            processes=processes, timeout=timeout, retries=retries,
            metrics=metrics,
        )
    else:

        def _one(span: tuple[int, int]):
            lo, hi = span
            return codec.compress(
                flat[lo:hi], eps=bound, index=index,
                checksum=checksum, crc_group=crc_group,
            )

        results = _run_pool(_one, bounds, jobs)

    from repro.core.compressor import CompressionResult

    flags = _SHARD_FLAG_F64 if arr.dtype == np.float64 else 0
    version = SHARD_VERSION_CHECKSUM if checksum else SHARD_VERSION
    parts = [
        _HEAD.pack(
            SHARD_MAGIC, version, flags, len(results), bound, arr.ndim
        )
    ]
    parts.extend(_DIM.pack(d) for d in arr.shape)
    if checksum:
        parts.append(_DIM.pack(shard_elements))
    parts.extend(_LEN.pack(len(r.stream)) for r in results)
    if checksum:
        from repro.faults.crc32c import crc32c

        parts.append(_META_CRC.pack(crc32c(b"".join(parts))))
    parts.extend(r.stream for r in results)
    stream = b"".join(parts)

    if metrics is not None:
        metrics.counter(
            "host.shards", "super-shards compressed by the shard engine"
        ).inc(len(results), direction="compress")
        metrics.counter("host.bytes_in", "bytes entering the host codec").inc(
            arr.size * arr.dtype.itemsize, direction="compress"
        )
        metrics.counter("host.bytes_out", "bytes leaving the host codec").inc(
            len(stream), direction="compress"
        )

    fl = (
        np.concatenate([r.fixed_lengths for r in results])
        if results
        else np.zeros(0, dtype=np.int64)
    )
    return CompressionResult(
        stream=stream,
        eps=bound,
        original_bytes=arr.size * arr.dtype.itemsize,
        shape=tuple(arr.shape),
        fixed_lengths=fl,
        zero_block_fraction=float(np.mean(fl == 0)) if fl.size else 0.0,
    )


@dataclass(frozen=True)
class ShardContainer:
    """Parsed shard-container metadata (both versions)."""

    shape: tuple[int, ...]
    is_f64: bool
    eps: float
    #: Byte span ``(start, stop)`` of each shard's self-describing stream.
    spans: tuple[tuple[int, int], ...]
    version: int = SHARD_VERSION
    #: Elements per shard (the last shard may hold fewer); ``None`` on v1
    #: containers, which do not record it.
    shard_elements: int | None = None
    #: v2: whether the stored meta CRC matches the shard table. Always
    #: True on v1 (nothing to check).
    meta_ok: bool = True

    @property
    def checksummed(self) -> bool:
        return self.version >= SHARD_VERSION_CHECKSUM

    @property
    def num_elements(self) -> int:
        n = 1
        for d in self.shape:
            n *= d
        return n if self.shape else 0


def read_shard_container(stream: bytes) -> ShardContainer:
    """Parse a shard container's header and shard table (v1 or v2).

    All structural corruption — truncation, impossible counts, spans past
    the end — raises :class:`repro.errors.ContainerError` with the byte
    offset where parsing failed; no raw ``struct.error`` / ``IndexError``
    escapes. A v2 container whose meta CRC does not match is *parsed
    anyway* with ``meta_ok=False``, so salvage readers can still try the
    spans; strict readers must check the flag.
    """
    if len(stream) < _HEAD.size:
        raise ContainerError(
            "shard container shorter than its header", offset=len(stream)
        )
    try:
        magic, version, flags, num_shards, eps, ndim = _HEAD.unpack(
            bytes(stream[: _HEAD.size])
        )
    except struct.error as exc:  # pragma: no cover - length checked above
        raise ContainerError(f"unreadable shard header: {exc}", offset=0)
    if magic != SHARD_MAGIC:
        raise ContainerError(
            f"bad shard-container magic {magic!r}", offset=0
        )
    if version not in (SHARD_VERSION, SHARD_VERSION_CHECKSUM):
        raise ContainerError(
            f"unsupported shard-container version {version}", offset=4
        )
    if num_shards == 0:
        raise ContainerError("shard container holds no shards", offset=6)
    checksummed = version == SHARD_VERSION_CHECKSUM
    pos = _HEAD.size
    remaining = len(stream) - pos
    table_bytes = ndim * _DIM.size + num_shards * _LEN.size
    if checksummed:
        table_bytes += _DIM.size + _META_CRC.size
    if table_bytes > remaining:
        raise ContainerError(
            f"shard container of {len(stream)} bytes cannot hold {ndim} "
            f"dims and {num_shards} shard lengths",
            offset=pos,
        )
    dims = []
    for _ in range(ndim):
        dims.append(_DIM.unpack_from(stream, pos)[0])
        pos += _DIM.size
    shard_elements = None
    if checksummed:
        shard_elements = int(_DIM.unpack_from(stream, pos)[0])
        pos += _DIM.size
        if shard_elements < 1:
            raise ContainerError(
                f"corrupt shard_elements {shard_elements}", offset=pos
            )
    spans = []
    lengths = []
    for _ in range(num_shards):
        (length,) = _LEN.unpack_from(stream, pos)
        pos += _LEN.size
        if length > len(stream):
            raise ContainerError(
                "shard length exceeds the container", offset=pos
            )
        lengths.append(int(length))
    meta_ok = True
    if checksummed:
        from repro.faults.crc32c import crc32c

        stored = _META_CRC.unpack_from(stream, pos)[0]
        meta_ok = crc32c(bytes(stream[:pos])) == stored
        pos += _META_CRC.size
    start = pos
    for length in lengths:
        if start + length > len(stream):
            raise ContainerError(
                "shard container truncated in shard payloads", offset=start
            )
        spans.append((start, start + length))
        start += length
    return ShardContainer(
        shape=tuple(int(d) for d in dims),
        is_f64=bool(flags & _SHARD_FLAG_F64),
        eps=float(eps),
        spans=tuple(spans),
        version=version,
        shard_elements=shard_elements,
        meta_ok=meta_ok,
    )


def read_shard_table(
    stream: bytes,
) -> tuple[tuple[int, ...], bool, float, list[tuple[int, int]]]:
    """Parse a shard container's header (strict, legacy 4-tuple shape).

    Returns ``(shape, is_f64, eps, [(start, stop) per shard])`` where the
    spans are byte ranges of the self-describing shard streams. A v2
    container whose meta CRC fails raises :class:`ContainerError` here —
    use :func:`read_shard_container` for the salvage-tolerant view.
    """
    table = read_shard_container(stream)
    if not table.meta_ok:
        raise ContainerError(
            "shard table corrupt: meta CRC mismatch (spans untrustworthy; "
            "salvage decode may still recover shards)",
            offset=0,
        )
    return table.shape, table.is_f64, table.eps, list(table.spans)


def decompress_sharded(
    stream: bytes,
    *,
    codec=None,
    jobs: int | None = None,
    metrics=None,
    timeout: float | None = None,
    retries: int = 0,
    processes: bool = False,
    salvage: bool = False,
) -> np.ndarray:
    """Decode a shard container back to the original field.

    ``metrics`` records the same host-side counters as
    :func:`compress_sharded`, labeled ``direction=decompress``.

    ``timeout=`` / ``retries=`` arm the resilient pool (see
    :func:`run_pool_resilient`). ``salvage=True`` additionally converts
    terminal worker failures into zero-filled shard spans instead of a
    :class:`repro.errors.WorkerError` — one dead worker costs its shard,
    not the whole decompression (``salvage.shards_lost`` is counted on
    ``metrics``). For *corrupt-byte* salvage with a full report, use
    :func:`repro.core.decompressor.salvage_decompress`.
    """
    from repro.core.compressor import CereSZ

    codec = codec if codec is not None else CereSZ()
    shape, is_f64, _eps, spans = read_shard_table(stream)
    jobs = resolve_jobs(jobs)

    failures = ()
    if timeout is not None or retries > 0 or processes or salvage:
        work = [(codec, bytes(stream[lo:hi])) for lo, hi in spans]
        parts, failures = run_pool_resilient(
            _decompress_shard_worker, work, jobs,
            processes=processes, timeout=timeout, retries=retries,
            salvage=salvage, metrics=metrics,
        )
    else:

        def _one(span: tuple[int, int]) -> np.ndarray:
            lo, hi = span
            return codec.decompress(stream[lo:hi]).reshape(-1)

        parts = _run_pool(_one, spans, jobs)
    if failures:
        from repro.core.decompressor import _shard_element_counts

        table = read_shard_container(stream)
        counts = _shard_element_counts(stream, table, notes=[])
        fill_dtype = np.float64 if is_f64 else np.float32
        for f in failures:
            parts[f.index] = np.zeros(counts[f.index], dtype=fill_dtype)
        if metrics is not None:
            metrics.counter(
                "salvage.shards_lost",
                "whole shards dropped by salvage decode",
            ).inc(len(failures))
    flat = np.concatenate(parts) if len(parts) > 1 else parts[0]
    n = 1
    for d in shape:
        n *= d
    if flat.size != n:
        raise FormatError(
            f"shards decode to {flat.size} elements, container claims {n}"
        )
    out_dtype = np.float64 if is_f64 else np.float32
    out = flat.astype(out_dtype, copy=False).reshape(shape)
    if metrics is not None:
        metrics.counter(
            "host.shards", "super-shards compressed by the shard engine"
        ).inc(len(spans), direction="decompress")
        metrics.counter("host.bytes_in", "bytes entering the host codec").inc(
            len(stream), direction="decompress"
        )
        metrics.counter("host.bytes_out", "bytes leaving the host codec").inc(
            out.size * out.dtype.itemsize, direction="decompress"
        )
    return out
