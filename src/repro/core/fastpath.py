"""Fused single-pass host kernels for the CereSZ block pipeline.

The reference path (:mod:`repro.core.compressor`) runs the paper's three
stages as separate whole-field passes: cast to float64, finiteness check,
peak scan, scale, round, overflow check, verify round-trip, partition,
Lorenzo predict, sign split, bit-length scan, bit-shuffle — each one a
full-size temporary streamed through DRAM. On a 64 MB field that is well
over 1.5 GB of memory traffic for ~60 MB of useful input.

This module fuses the same chain into one pass over the input. The field
is processed in block-aligned chunks sized to stay cache-resident
(:data:`CHUNK_ELEMS`); every intermediate lives in a handful of
preallocated scratch buffers that are reused for all chunks, so after the
single global min/max scan the input is read exactly once and nothing
full-size is ever materialized. There are no per-block Python loops — the
only Python-level loop is over chunks, and each iteration is a fixed
number of vectorized NumPy calls. The bit-shuffle itself runs through
uint8 byte lanes and ``unpackbits``/``packbits``
(:func:`repro.core.encoding.pack_records`) instead of shift-and-mask over
uint64 — about an eighth of the memory traffic per payload bit.

**Oracle contract.** The fused kernels are *not* a relaxation of the
format. Per element they execute the identical float64 operation chain
the reference runs (true division by ``2*eps_eff``, ``floor(x+0.5)``,
the same overflow guard) and derive the identical ``eps_eff`` through
:func:`repro.core.quantize.effective_bound_from_peak`, so the codes —
and therefore the records — match the reference bit for bit. Block
records are independent, so per-chunk outputs concatenate into exactly
the bytes a whole-field encode would produce. The reference path stays
in the tree as the independent bit-exactness oracle: the property suite
in ``tests/core/test_fastpath.py`` asserts fused and reference streams
are byte-identical (plain, indexed, checksummed, and sharded containers)
and fused decodes bit-equal to reference decodes.

One reference safeguard is intentionally *not* repeated here: the
dequantize-and-compare assertion of ``prequantize_verified``. The bound
holds by construction (quantization error ≤ ``eps_eff`` plus cast error
≤ the ulp margin ``eps - eps_eff``), the assertion cannot fail unless the
model itself is wrong, and the reference path — which the property suite
holds this path byte-equal to — still runs it on every call.

The fused decoder mirrors the strategy: chunk over blocks, decode only
records with a nonzero fixed length, prefix-sum and dequantize in
scratch, and scatter into the output field. Zero blocks cost nothing and
the reference's full ``(num_blocks, L)`` int64 residual array is never
allocated. Record payloads are read by the same
:func:`repro.core.encoding.decode_blocks` gather the reference uses,
chunk by chunk into one reused scratch buffer (``out=``).
"""

from __future__ import annotations

import numpy as np

from repro.config import CERESZ_HEADER_BYTES
from repro.errors import CompressionError, FormatError
from repro.core.encoding import (
    decode_blocks,
    exact_bit_lengths,
    pack_records,
    record_sizes,
)
from repro.core.quantize import (
    MAX_QUANT_BITS,
    effective_bound_from_peak,
    validate_error_bound,
)

#: Elements per fused chunk. The working set per element is ~26 bytes of
#: scratch (two float64, two int64, one sign byte), so 256 Ki elements
#: keep the whole chunk state under 8 MB — resident in a modern L3 —
#: while amortizing the fixed cost of the ~25 NumPy calls per chunk down
#: to noise.
CHUNK_ELEMS = 1 << 18

_MAX_FL = 63


def _resolve_block_local(predictor):
    """Default and validate the fused kernels' predictor argument."""
    from repro.core.predictors import LORENZO_1D, get_predictor

    pred = LORENZO_1D if predictor is None else get_predictor(predictor)
    if not pred.block_local:
        raise CompressionError(
            f"predictor {pred.name!r} declares locality {pred.locality!r}; "
            "the fused kernels require a block-local predictor — predict "
            "first, then use fused_encode_blocks on the residuals"
        )
    return pred


def fused_encode_blocks(
    residuals: np.ndarray,
    *,
    header_bytes: int = CERESZ_HEADER_BYTES,
    chunk_elems: int = CHUNK_ELEMS,
) -> tuple[np.ndarray, bytes]:
    """Chunked sign split + bit-length scan + bit-shuffle over residuals.

    The encode half of :func:`fused_compress_blocks`, for pipelines whose
    prediction already happened elsewhere — whole-array predictors run
    their global transform on the full code array, then feed the
    partitioned residual blocks here so they stop paying the reference
    encoder's whole-field temporaries. Returns ``(fixed_lengths, body)``,
    byte-identical to :func:`repro.core.encoding.encode_blocks`.
    """
    arr = np.asarray(residuals)
    if arr.ndim != 2:
        raise CompressionError(
            f"fused_encode_blocks expects a (blocks, block_size) array, "
            f"got shape {arr.shape}"
        )
    num_blocks, L = arr.shape
    bpc = max(int(chunk_elems) // max(L, 1), 1)
    mags_buf = np.empty((bpc, L), dtype=np.int64)
    negs = np.empty((bpc, L), dtype=bool)
    fl_all = np.empty(num_blocks, dtype=np.int64)
    parts: list[bytes] = []
    for b0 in range(0, num_blocks, bpc):
        b1 = min(b0 + bpc, num_blocks)
        cb = b1 - b0
        r2 = mags_buf[:cb]
        np.copyto(r2, arr[b0:b1])
        ng = negs[:cb]
        np.less(r2, 0, out=ng)
        np.abs(r2, out=r2)
        mags = r2.view(np.uint64)
        fl = exact_bit_lengths(mags.max(axis=1))
        fl_all[b0:b1] = fl
        parts.append(pack_records(mags, ng, fl, header_bytes).tobytes())
    return fl_all, b"".join(parts)


def fused_compress_blocks(
    data: np.ndarray,
    eps: float,
    *,
    block_size: int,
    header_bytes: int = CERESZ_HEADER_BYTES,
    out_dtype=np.float32,
    chunk_elems: int = CHUNK_ELEMS,
    predictor=None,
) -> tuple[np.ndarray, bytes, float, int]:
    """Quantize + predict + encode ``data`` in one fused pass.

    ``predictor`` is any *block-local* predictor from
    :mod:`repro.core.predictors` (default: the paper's ``lorenzo1d``);
    its per-block transform runs on the cache-resident chunk exactly
    where the inlined Lorenzo difference used to. Whole-array predictors
    cannot fuse with quantization (their transform needs the full code
    array) and are rejected — the codec routes them through
    :func:`fused_encode_blocks` instead.

    Returns ``(fixed_lengths, body, eps_eff, num_elements)`` — exactly the
    quantities the reference pipeline produces, byte- and value-identical,
    ready for :func:`repro.core.compressor.assemble_stream`.
    """
    predictor = _resolve_block_local(predictor)
    eps = validate_error_bound(eps)
    flat = np.asarray(data).reshape(-1)
    n = int(flat.size)
    if n == 0:
        raise CompressionError("cannot compress an empty array")

    # Peak magnitude via min/max reductions: no |data| temporary, and any
    # non-finite element propagates into ``peak``, which then surfaces as
    # the same ErrorBoundError the reference raises (a non-finite peak
    # makes the derived effective bound non-finite).
    fmin = float(flat.min())
    fmax = float(flat.max())
    peak = max(abs(fmin), abs(fmax))
    if np.isnan(fmin) or np.isnan(fmax):
        peak = float("nan")
    eps_eff = validate_error_bound(
        effective_bound_from_peak(peak, eps, out_dtype)
    )

    two_eps = 2.0 * eps_eff
    limit = float(2**MAX_QUANT_BITS)
    # The quantizer is monotone in the data, so the extreme codes come
    # from the extreme values: the reference's whole-field max|code|
    # overflow guard reduces to the same float64 arithmetic on two
    # scalars (Python floats are IEEE doubles, so the bits agree).
    code_hi = float(np.floor(fmax / two_eps + 0.5))
    code_lo = float(np.floor(fmin / two_eps + 0.5))
    if max(code_hi, -code_lo) >= limit:
        raise CompressionError(
            f"quantization overflow: |code| >= 2**{MAX_QUANT_BITS}; "
            f"the error bound {eps_eff:g} is too small for data of "
            f"this magnitude"
        )
    L = int(block_size)
    num_blocks = -(-n // L)
    bpc = max(int(chunk_elems) // L, 1)  # blocks per chunk
    ce_max = bpc * L

    # Scratch, allocated once and reused by every chunk.
    work = np.empty(ce_max, dtype=np.float64)
    codes = np.empty(ce_max, dtype=np.int64)
    res = np.empty(ce_max, dtype=np.int64)
    negs = np.empty((bpc, L), dtype=bool)

    fl_all = np.empty(num_blocks, dtype=np.int64)
    parts: list[bytes] = []

    for b0 in range(0, num_blocks, bpc):
        b1 = min(b0 + bpc, num_blocks)
        cb = b1 - b0
        ce = cb * L
        lo = b0 * L
        hi = min(b1 * L, n)
        m = hi - lo

        # Pre-quantization: floor(x / 2eps + 0.5) in float64, exactly as
        # the reference does (true division, not reciprocal multiply).
        # ``dtype=`` pins the float64 loop, widening float32 input on the
        # fly — the one read of DRAM-resident data this kernel performs.
        w = work[:ce]
        if m < ce:
            np.copyto(w[:m], flat[lo:hi])
            w[m:] = 0.0  # the reference's zero tail padding
            np.divide(w, two_eps, out=w)
        else:
            np.divide(flat[lo:hi], two_eps, out=w, dtype=np.float64)
        np.add(w, 0.5, out=w)
        np.floor(w, out=w)
        c = codes[:ce]
        np.copyto(c, w, casting="unsafe")

        # Block-local prediction (1D Lorenzo by default): each row of the
        # chunk transforms independently into the residual scratch.
        c2 = c.reshape(cb, L)
        r2 = res[:ce].reshape(cb, L)
        predictor.predict_blocks(c2, out=r2)

        # Sign split + exact per-block bit lengths, then the packing core.
        ng = negs[:cb]
        np.less(r2, 0, out=ng)
        np.abs(r2, out=r2)
        mags = r2.view(np.uint64)
        fl = exact_bit_lengths(mags.max(axis=1))
        fl_all[b0:b1] = fl
        parts.append(pack_records(mags, ng, fl, header_bytes).tobytes())

    return fl_all, b"".join(parts), eps_eff, n


def fused_decompress_blocks(
    stream: bytes | np.ndarray,
    header,
    offsets: np.ndarray,
    fls: np.ndarray,
    *,
    out_dtype=np.float32,
    chunk_elems: int = CHUNK_ELEMS,
    predictor=None,
) -> np.ndarray:
    """Decode + reconstruct + dequantize a block-local stream, fused.

    ``offsets``/``fls`` come from the container's layout discovery
    (:func:`repro.core.compressor.stream_block_layout`); checksummed
    streams are verified there before this runs. ``predictor`` must be
    block-local (default ``lorenzo1d``) and should match the stream
    header's predictor field — the caller dispatches. Returns the flat
    ``(num_elements,)`` value array, bit-identical to the reference
    decode.
    """
    predictor = _resolve_block_local(predictor)
    nb = int(header.num_blocks)
    L = int(header.block_size)
    n = int(header.num_elements)
    fls = np.asarray(fls, dtype=np.int64)
    offsets = np.asarray(offsets, dtype=np.int64)
    nz_total = int(np.count_nonzero(fls))
    # Error-bound validation mirrors the reference exactly: its sparse
    # branch only touches the header bound when some block has payload,
    # and its dense branch (taken when nonzero blocks are not a minority)
    # always does.
    if nz_total or nz_total >= nb // 2:
        validate_error_bound(header.eps)

    values = np.zeros(nb * L, dtype=out_dtype)
    if nz_total:
        buf = (
            stream
            if isinstance(stream, np.ndarray)
            else np.frombuffer(stream, dtype=np.uint8)
        )
        _validate_layout(buf, offsets, fls, L, header.header_width, nb)
        two_eps = 2.0 * header.eps
        bpc = max(int(chunk_elems) // L, 1)
        res = np.empty((bpc, L), dtype=np.int64)
        q = np.empty((bpc, L), dtype=np.float64)
        v2 = values.reshape(nb, L)
        for b0 in range(0, nb, bpc):
            b1 = min(b0 + bpc, nb)
            f_c = fls[b0:b1]
            nz = np.nonzero(f_c)[0]
            k = int(nz.size)
            if not k:
                continue
            decode_blocks(
                buf,
                k,
                L,
                header.header_width,
                offsets=offsets[b0:b1][nz],
                fls=f_c[nz],
                out=res[:k],
            )
            predictor.reconstruct_blocks(res[:k], out=res[:k])
            np.multiply(res[:k], two_eps, out=q[:k])
            v2[b0 + nz] = q[:k]
    return values[:n]


def _validate_layout(
    buf: np.ndarray,
    offsets: np.ndarray,
    fls: np.ndarray,
    block_size: int,
    header_bytes: int,
    num_blocks: int,
) -> None:
    """The same layout sanity checks ``decode_blocks`` performs."""
    if offsets.shape != (num_blocks,) or fls.shape != (num_blocks,):
        raise FormatError(
            f"block index shape mismatch: {num_blocks} blocks, "
            f"{offsets.shape[0]} offsets, {fls.shape[0]} fixed lengths"
        )
    if fls.size and (int(fls.min()) < 0 or int(fls.max()) > _MAX_FL):
        raise FormatError("invalid fixed length in block index")
    ends = offsets + record_sizes(fls, block_size, header_bytes)
    if num_blocks and (int(offsets.min()) < 0 or int(ends.max()) > buf.size):
        raise FormatError("block index points outside the stream")
