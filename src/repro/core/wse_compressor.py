"""CereSZ executed end-to-end on the WSE simulator.

:class:`WSECereSZ` compresses through one of the three Section-4 mappings
on a real (small) simulated mesh and returns both the compressed stream —
byte-identical to the NumPy reference — and the simulation report with
per-PE cycle accounting. This is the validation path for the mapping logic:
if relay counting, stage distribution, or dataflow triggering were wrong,
records would interleave or go missing and the stream equality would break.

Meshes here are test-scale (a few rows/columns); wafer-scale *throughput*
comes from the analytic model (:mod:`repro.perf.wafer`), which this module's
simulations are used to validate at small scale.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.config import BLOCK_SIZE
from repro.errors import CompressionError, ScheduleError
from repro.core.blocks import partition_blocks
from repro.core.compressor import CereSZ, CompressionResult
from repro.core.format import make_header
from repro.core.lower import host_block_records
from repro.core.plan import (
    MappingPlan,
    expand_mesh,
    plan_multi_pipeline,
    plan_pipeline,
    plan_pipeline_decompress,
    plan_row_parallel,
    plan_row_parallel_decompress,
    plan_staged_multi_pipeline,
    replicate_rows,
    wafer_predictor,
)
from repro.core.quantize import prequantize_verified
from repro.core.schedule import distribute_substages, estimate_fixed_length
from repro.core.simulate import SIM_MODES, simulate_plan, simulate_replicated
from repro.core.stages import compression_substages, decompression_substages
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import TRACE_LEVELS, Tracer
from repro.wse.cost import CycleModel, PAPER_CYCLE_MODEL
from repro.wse.engine import SimulationReport

STRATEGIES = ("rows", "pipeline", "multi")


@dataclass(frozen=True)
class WSECompressionResult:
    """A reference-compatible result plus the simulation's cycle report."""

    result: CompressionResult
    report: SimulationReport
    #: Observability capture of the run (None unless the compressor was
    #: built with ``trace_level`` / ``collect_metrics``).
    tracer: Tracer | None = None
    metrics: MetricsRegistry | None = None
    #: Simulation mode that actually ran ("event" or "hybrid") and, for
    #: hybrid runs, the ``(representative_row, class_size)`` partition
    #: classes the mesh collapsed to.
    mode: str = "event"
    row_classes: tuple[tuple[int, int], ...] = ()
    #: Self-healing outcome (:class:`repro.faults.repair.RepairReport`),
    #: or None when the run needed no fault recovery.
    repair: object | None = None

    @property
    def stream(self) -> bytes:
        return self.result.stream

    @property
    def makespan_cycles(self) -> float:
        return self.report.makespan_cycles


class WSECereSZ:
    """CereSZ running on the discrete-event wafer simulator."""

    name = "CereSZ/WSE-sim"
    device = "CS-2"

    def __init__(
        self,
        rows: int = 4,
        cols: int = 4,
        *,
        strategy: str = "multi",
        pipeline_length: int = 1,
        block_size: int = BLOCK_SIZE,
        model: CycleModel = PAPER_CYCLE_MODEL,
        jobs: int | str = 1,
        mode: str = "event",
        trace_level: str = "off",
        sample_every: int = 1,
        collect_metrics: bool = False,
        faults=None,
        on_fault: str = "raise",
        max_repairs: int = 2,
        spare_rows: int = 0,
        predictor: str = "lorenzo1d",
        ledger=None,
        progress: bool = False,
    ):
        if strategy not in STRATEGIES:
            raise ScheduleError(
                f"strategy must be one of {STRATEGIES}, got {strategy!r}"
            )
        if trace_level not in TRACE_LEVELS:
            raise ValueError(
                f"trace_level must be one of {TRACE_LEVELS}, got "
                f"{trace_level!r}"
            )
        if strategy == "pipeline" and pipeline_length > cols:
            raise ScheduleError(
                f"pipeline length {pipeline_length} exceeds {cols} columns"
            )
        if strategy == "multi" and pipeline_length > cols:
            raise ScheduleError(
                f"pipeline length {pipeline_length} exceeds {cols} columns"
            )
        if mode not in SIM_MODES:
            raise ValueError(
                f"mode must be one of {SIM_MODES}, got {mode!r}"
            )
        self.rows = rows
        self.cols = cols
        self.strategy = strategy
        self.pipeline_length = pipeline_length
        self.block_size = block_size
        self.model = model
        #: Worker-process budget for row-parallel simulation ("auto" lets
        #: the simulator pick); results are identical for any value (see
        #: repro.core.simulate).
        self.jobs = jobs if jobs == "auto" else int(jobs)
        #: Simulation mode: "event" covers every PE with the discrete-event
        #: engine; "hybrid" event-simulates one representative row per
        #: partition class and replicates (cycle-exact; see
        #: repro.core.simulate).
        self.mode = mode
        #: Observability knobs: each run builds a fresh Tracer/registry so
        #: captures never bleed between runs; the latest pair is kept on
        #: ``last_tracer`` / ``last_metrics`` (decompress_on_wafer has no
        #: room in its return signature for them).
        self.trace_level = trace_level
        self.sample_every = int(sample_every)
        self.collect_metrics = bool(collect_metrics)
        self.last_tracer: Tracer | None = None
        self.last_metrics: MetricsRegistry | None = None
        #: Optional :class:`repro.faults.FaultPlan` injected into every
        #: simulated run (compress and decompress alike). Faulted runs that
        #: stall raise :class:`repro.errors.DeadlockError` with a
        #: structured ``report``; clean completion under injection means
        #: the mapping absorbed the fault.
        self.faults = faults
        if on_fault not in ("raise", "repair", "fallback"):
            raise ValueError(
                f"on_fault must be 'raise', 'repair' or 'fallback', got "
                f"{on_fault!r}"
            )
        if int(spare_rows) < 0:
            raise ScheduleError(
                f"spare_rows must be >= 0, got {spare_rows}"
            )
        #: Self-healing knobs: ``on_fault`` selects stall handling
        #: ("raise" propagates DeadlockError; "repair" runs the bounded
        #: plan-repair loop; "fallback" routes condemned rows' blocks
        #: through the host fast path immediately), ``max_repairs`` bounds
        #: wafer-side repair attempts, and ``spare_rows`` grows the mesh
        #: by that many idle rows for remapping to land on.
        self.on_fault = on_fault
        self.max_repairs = int(max_repairs)
        self.spare_rows = int(spare_rows)
        if faults is not None:
            # Fail at construction, naming the offending fault — not as a
            # stall (or silent no-op) deep inside a simulated run.
            faults.validate_mesh(rows + self.spare_rows, cols)
        #: Block-local predictor the lowered kernels apply (whole-array
        #: predictors are rejected here, before any plan is built).
        self.predictor = wafer_predictor(predictor).name
        #: Run-ledger destination (None off, True default path, or a path/
        #: Ledger): every compress/decompress_on_wafer appends one
        #: provenance-stamped RunRecord. ``progress=True`` emits periodic
        #: rows-done/ETA lines during hybrid composition.
        self.ledger = ledger
        self.progress = bool(progress)
        self._reference = CereSZ(block_size=block_size, predictor=self.predictor)

    def _observers(self) -> tuple[Tracer | None, MetricsRegistry | None]:
        tracer = (
            Tracer(level=self.trace_level, sample_every=self.sample_every)
            if self.trace_level != "off"
            else None
        )
        metrics = MetricsRegistry() if self.collect_metrics else None
        self.last_tracer = tracer
        self.last_metrics = metrics
        return tracer, metrics

    @property
    def _progress(self):
        # simulate_plan/simulate_replicated normalize True into a fresh
        # per-run ProgressReporter sized to the composition loop.
        return True if self.progress else None

    @property
    def _repair_ledger(self):
        # Thread the run ledger into the self-healing retry loop so each
        # repair attempt leaves a provenance record; plain runs keep their
        # single codec-level record.
        if self.faults is not None and self.on_fault != "raise":
            return self.ledger
        return None

    def _emit_ledger(
        self, op, *, wall_s, run, metrics, config_extra=None, values=None
    ) -> None:
        """Append one RunRecord for a finished wafer run (ledger on only)."""
        from repro.obs import ledger as _ledger_mod

        config = {
            "op": op,
            "strategy": self.strategy,
            "rows": self.rows,
            "cols": self.cols,
            "pipeline_length": self.pipeline_length,
            "block_size": self.block_size,
            "mode": self.mode,
            "jobs": self.jobs,
            "predictor": self.predictor,
            "faults": self.faults is not None,
            "on_fault": self.on_fault,
            "spare_rows": self.spare_rows,
        }
        repair = getattr(run, "repair", None)
        if repair is not None:
            config["repair_outcome"] = repair.outcome
            values = dict(values or {})
            values["repair.attempts"] = float(repair.attempts)
            values["repair.rows"] = float(repair.repaired_rows)
            values["repair.fallback_blocks"] = float(
                len(repair.fallback_blocks)
            )
        if config_extra:
            config.update(config_extra)
        _ledger_mod.emit(
            self.ledger,
            "sim",
            f"wse.{op}",
            config,
            timings={
                "wall_s": wall_s,
                "makespan_cycles": float(run.report.makespan_cycles),
            },
            values=dict(values or {}),
            metrics=metrics,
        )

    def compress(
        self,
        data: np.ndarray,
        *,
        eps: float | None = None,
        rel: float | None = None,
        tile_rows: bool = False,
    ) -> WSECompressionResult:
        """Compress on the simulated mesh; stream matches the reference.

        With ``tile_rows=True``, ``data`` is treated as *one row's* input
        (truncated to whole blocks) and replicated across all ``rows`` —
        the homogeneous wafer-scale workload. The simulator then runs one
        row's template and composes the full mesh without materializing
        it (:func:`repro.core.simulate.simulate_replicated`), so a full
        750 x 994 run costs one row plus composition; the stream equals
        the reference compressor run on the tiled field
        ``np.tile(row_values, rows)``.
        """
        arr = np.asarray(data)
        if tile_rows:
            return self._compress_tiled(arr, eps, rel)
        bound = self._reference.resolve_error_bound(arr, eps, rel)
        if bound is None:
            raise CompressionError(
                "constant fields bypass the wafer (stored exactly by the "
                "host); use the reference CereSZ for them"
            )
        tracer, metrics = self._observers()
        t0 = time.perf_counter() if self.ledger is not None else 0.0
        # Quantize on the host only to learn eps_eff; the wafer kernels
        # redo the arithmetic from the raw floats.
        _, eps_eff = prequantize_verified(arr, bound)
        raw_blocks, n = partition_blocks(
            arr.astype(np.float64), self.block_size
        )

        if tracer is not None:
            with tracer.span("plan", strategy=self.strategy):
                plan = self._compress_plan(raw_blocks, eps_eff)
        else:
            plan = self._compress_plan(raw_blocks, eps_eff)
        plan = expand_mesh(plan, self.spare_rows)
        run = simulate_plan(
            plan, model=self.model, jobs=self.jobs, mode=self.mode,
            tracer=tracer, metrics=metrics, faults=self.faults,
            on_fault=self.on_fault, max_repairs=self.max_repairs,
            replan=lambda n: self._compress_plan(raw_blocks, eps_eff, rows=n),
            verify=self._make_verify(raw_blocks, eps_eff),
            host_fallback=self._make_host_fallback(raw_blocks, eps_eff),
            ledger=self._repair_ledger,
            progress=self._progress,
        )
        outputs, report = run.outputs, run.report

        body = outputs.stream(raw_blocks.shape[0])
        header = make_header(
            arr.shape,
            eps_eff,
            header_width=self._reference.header_width,
            block_size=self.block_size,
            predictor=self.predictor,
        )
        stream = header.pack() + body
        result = CompressionResult(
            stream=stream,
            eps=bound,
            original_bytes=n * 4,
            shape=tuple(arr.shape),
            fixed_lengths=np.zeros(0, dtype=np.int64),
            zero_block_fraction=0.0,
        )
        if self.ledger is not None:
            self._emit_ledger(
                "compress",
                wall_s=time.perf_counter() - t0,
                run=run,
                metrics=metrics,
                config_extra={"eps": bound, "shape": list(arr.shape)},
                values={
                    "compression_ratio": result.original_bytes
                    / len(result.stream),
                    "compressed_bytes": float(len(result.stream)),
                },
            )
        return WSECompressionResult(
            result=result, report=report, tracer=tracer, metrics=metrics,
            mode=run.mode, row_classes=run.row_classes, repair=run.repair,
        )

    def _make_verify(self, raw_blocks: np.ndarray, eps_eff: float):
        """Byte-identity check against a fault-free host reference.

        The reference body is the host replay of the wafer kernel
        (:func:`repro.core.lower.host_block_records`) over every block —
        computed lazily, once, only if the repair loop actually needs to
        verify a completed run (SRAM flips corrupt output *without*
        stalling, so completion alone proves nothing).
        """
        nblocks = raw_blocks.shape[0]
        cache: list[bytes] = []

        def verify(run) -> bool:
            if not cache:
                cache.append(
                    b"".join(
                        host_block_records(
                            raw_blocks, eps_eff, range(nblocks),
                            predictor=self.predictor,
                        ).values()
                    )
                )
            return run.outputs.stream(nblocks) == cache[0]

        return verify

    def _make_host_fallback(self, raw_blocks: np.ndarray, eps_eff: float):
        """Degraded-mode encoder: condemned rows' blocks, host-encoded.

        Every record is audited against the error bound before it is
        accepted — the fallback must meet the same ``eps`` contract the
        wafer path proves by stream equality.
        """

        def host_fallback(blocks) -> dict[int, bytes]:
            records = host_block_records(
                raw_blocks, eps_eff, blocks, predictor=self.predictor,
            )
            self._audit_bound(raw_blocks, eps_eff, blocks)
            return records

        return host_fallback

    @staticmethod
    def _audit_bound(raw_blocks: np.ndarray, eps_eff: float, blocks) -> None:
        """Assert the quantized reconstruction honors ``eps_eff``.

        Same arithmetic the decompressor will apply (codes * 2*eps on the
        float32-cast input), checked block by block so a violation names
        the offending block index.
        """
        for idx in blocks:
            vals = np.asarray(
                raw_blocks[int(idx)], dtype=np.float64
            ).astype(np.float32).astype(np.float64)
            codes = np.floor(vals / (2.0 * eps_eff) + 0.5)
            err = float(np.abs(vals - codes * (2.0 * eps_eff)).max())
            if err > eps_eff * (1.0 + 1e-12):
                raise CompressionError(
                    f"host-fallback block {int(idx)} violates the error "
                    f"bound: max error {err:.3e} > eps {eps_eff:.3e}"
                )

    def _compress_tiled(
        self, arr: np.ndarray, eps: float | None, rel: float | None
    ) -> WSECompressionResult:
        flat = arr.reshape(-1)
        n_row = (flat.size // self.block_size) * self.block_size
        if n_row == 0:
            raise CompressionError(
                f"tiled compression needs at least one whole "
                f"{self.block_size}-value block of row data, got "
                f"{flat.size} values"
            )
        row_values = flat[:n_row]
        bound = self._reference.resolve_error_bound(row_values, eps, rel)
        if bound is None:
            raise CompressionError(
                "constant fields bypass the wafer (stored exactly by the "
                "host); use the reference CereSZ for them"
            )
        tracer, metrics = self._observers()
        t0 = time.perf_counter() if self.ledger is not None else 0.0
        _, eps_eff = prequantize_verified(row_values, bound)
        raw_blocks, _ = partition_blocks(
            row_values.astype(np.float64), self.block_size
        )
        if tracer is not None:
            with tracer.span("plan", strategy=self.strategy, tiled=True):
                template = self._compress_plan(raw_blocks, eps_eff, rows=1)
        else:
            template = self._compress_plan(raw_blocks, eps_eff, rows=1)
        if self.faults is not None:
            # Faults target specific rows, which replication cannot
            # honor; materialize the full plan and event-simulate it.
            num = raw_blocks.shape[0]

            def _tiled_fallback(blocks) -> dict[int, bytes]:
                # Global block b is row b // num running the template's
                # block b % num — encode the template block, key globally.
                recs = host_block_records(
                    raw_blocks, eps_eff,
                    sorted({int(b) % num for b in blocks}),
                    predictor=self.predictor,
                )
                self._audit_bound(
                    raw_blocks, eps_eff, sorted({int(b) % num for b in blocks})
                )
                return {int(b): recs[int(b) % num] for b in blocks}

            run = simulate_plan(
                expand_mesh(replicate_rows(template, self.rows),
                            self.spare_rows),
                model=self.model, jobs=self.jobs,
                tracer=tracer, metrics=metrics, faults=self.faults,
                on_fault=self.on_fault, max_repairs=self.max_repairs,
                host_fallback=_tiled_fallback,
                ledger=self._repair_ledger,
                progress=self._progress,
            )
        else:
            run = simulate_replicated(
                template, self.rows, model=self.model,
                tracer=tracer, metrics=metrics, progress=self._progress,
            )
        total_blocks = raw_blocks.shape[0] * self.rows
        body = run.outputs.stream(total_blocks)
        header = make_header(
            (self.rows * n_row,),
            eps_eff,
            header_width=self._reference.header_width,
            block_size=self.block_size,
            predictor=self.predictor,
        )
        result = CompressionResult(
            stream=header.pack() + body,
            eps=bound,
            original_bytes=self.rows * n_row * 4,
            shape=(self.rows * n_row,),
            fixed_lengths=np.zeros(0, dtype=np.int64),
            zero_block_fraction=0.0,
        )
        if self.ledger is not None:
            self._emit_ledger(
                "compress",
                wall_s=time.perf_counter() - t0,
                run=run,
                metrics=metrics,
                config_extra={
                    "eps": bound,
                    "shape": [self.rows * n_row],
                    "tile_rows": True,
                },
                values={
                    "compression_ratio": result.original_bytes
                    / len(result.stream),
                    "compressed_bytes": float(len(result.stream)),
                },
            )
        return WSECompressionResult(
            result=result, report=run.report, tracer=tracer,
            metrics=metrics, mode=run.mode, row_classes=run.row_classes,
            repair=run.repair,
        )

    def decompress(self, stream: bytes) -> np.ndarray:
        """Streams are format-identical to the reference; decode with it."""
        return self._reference.decompress(stream)

    def decompress_on_wafer(
        self, stream: bytes
    ) -> tuple[np.ndarray, SimulationReport]:
        """Decompress on the simulated mesh.

        Uses the compressor's configured ``strategy``: ``"rows"`` maps
        whole-block decompression onto the first PE of each row,
        ``"pipeline"`` distributes the reverse sub-stages with Algorithm 1
        over ``pipeline_length`` columns (the paper's Section 4.2
        decompression mapping). Returns the reconstructed field and the
        simulation report; values are identical to :meth:`decompress`.
        """
        from repro.core.format import StreamHeader
        from repro.core.mapping_decompress import records_to_words

        tracer, metrics = self._observers()
        t0 = time.perf_counter() if self.ledger is not None else 0.0
        header, offset = StreamHeader.unpack(stream)
        if header.constant is not None:
            raise CompressionError(
                "constant streams bypass the wafer; use decompress()"
            )
        if header.header_width != 4:
            raise CompressionError(
                "wafer decompression handles the CereSZ 4-byte-header format"
            )
        if header.predictor != "lorenzo1d":
            raise CompressionError(
                f"wafer decompression models the 1-D Lorenzo inverse; this "
                f"stream was written with predictor {header.predictor!r} — "
                f"decode it on the host with decompress()"
            )
        if header.checksum:
            # Verify on the host, then skip the integrity tables: the
            # records behind them are byte-identical to v1, which is what
            # the wafer walks.
            from repro.core.decompressor import verify_stream
            from repro.errors import ContainerError

            integrity = verify_stream(stream)
            if not integrity.ok:
                raise ContainerError(
                    f"stream failed verification before wafer decode: "
                    f"{integrity.describe()}",
                    groups=integrity.corrupt_groups,
                    blocks=integrity.corrupt_blocks,
                )
            offset += header.index_bytes
        elif header.indexed:
            # The wafer walks record headers itself; skip the host-side fl
            # table (records are byte-identical to v1 behind it).
            from repro.core.encoding import unpack_block_index

            _, offset = unpack_block_index(stream, header.num_blocks, offset)
        if self.strategy == "pipeline":
            packed = records_to_words(
                stream[offset:], header.num_blocks, header.block_size
            )
            max_fl = max((int(h[0]) for h, _ in packed), default=0)
            stages = decompression_substages(
                max_fl, header.block_size, self.model
            )
            dist = distribute_substages(
                stages, min(self.pipeline_length, len(stages))
            )
            plan = plan_pipeline_decompress(
                stream[offset:],
                header.num_blocks,
                header.eps,
                dist,
                rows=self.rows,
                cols=self.cols,
                block_size=header.block_size,
            )
        else:
            plan = plan_row_parallel_decompress(
                stream[offset:],
                header.num_blocks,
                header.eps,
                rows=self.rows,
                cols=self.cols,
                block_size=header.block_size,
            )
        run = simulate_plan(
            expand_mesh(plan, self.spare_rows),
            model=self.model, jobs=self.jobs, mode=self.mode,
            tracer=tracer, metrics=metrics, faults=self.faults,
            on_fault=self.on_fault, max_repairs=self.max_repairs,
            ledger=self._repair_ledger,
            progress=self._progress,
        )
        outputs, report = run.outputs, run.report
        blocks = outputs.assemble(header.num_blocks, header.block_size)
        flat = blocks.reshape(-1)[: header.num_elements]
        if self.ledger is not None:
            self._emit_ledger(
                "decompress",
                wall_s=time.perf_counter() - t0,
                run=run,
                metrics=metrics,
                config_extra={
                    "eps": header.eps,
                    "num_blocks": header.num_blocks,
                },
                values={"output_bytes": float(flat.nbytes)},
            )
        return flat.reshape(header.shape), report

    def plan_for(
        self,
        data: np.ndarray,
        *,
        eps: float | None = None,
        rel: float | None = None,
    ) -> MappingPlan:
        """The mapping plan :meth:`compress` would lower for ``data``.

        Pure planning — no fabric, no simulation. Useful for inspecting
        placement, color budget, and SRAM footprint before committing to a
        run (the ``ceresz plan`` subcommand).
        """
        arr = np.asarray(data)
        bound = self._reference.resolve_error_bound(arr, eps, rel)
        if bound is None:
            raise CompressionError(
                "constant fields bypass the wafer (stored exactly by the "
                "host); use the reference CereSZ for them"
            )
        _, eps_eff = prequantize_verified(arr, bound)
        raw_blocks, _ = partition_blocks(
            arr.astype(np.float64), self.block_size
        )
        return self._compress_plan(raw_blocks, eps_eff)

    # -- internals ------------------------------------------------------------------

    def _compress_plan(
        self, raw_blocks: np.ndarray, eps_eff: float,
        rows: int | None = None,
    ) -> MappingPlan:
        rows = self.rows if rows is None else rows
        if self.strategy == "rows":
            return plan_row_parallel(
                raw_blocks,
                eps_eff,
                rows=rows,
                cols=self.cols,
                predictor=self.predictor,
            )
        if self.strategy == "pipeline":
            return plan_pipeline(
                raw_blocks,
                eps_eff,
                self._distribution(raw_blocks, eps_eff),
                rows=rows,
                cols=self.cols,
                predictor=self.predictor,
            )
        if self.pipeline_length == 1:
            return plan_multi_pipeline(
                raw_blocks,
                eps_eff,
                rows=rows,
                cols=self.cols,
                pipeline_length=1,
                predictor=self.predictor,
            )
        # Fig 6 right in full generality: several staged pipelines per row.
        return plan_staged_multi_pipeline(
            raw_blocks,
            eps_eff,
            self._distribution(raw_blocks, eps_eff),
            rows=rows,
            cols=self.cols,
            predictor=self.predictor,
        )

    def _distribution(self, raw_blocks: np.ndarray, eps_eff: float):
        fl = _plan_fixed_length(raw_blocks, eps_eff, self.block_size)
        stages = compression_substages(fl, self.block_size, self.model)
        return distribute_substages(
            stages, min(self.pipeline_length, len(stages))
        )


def _plan_fixed_length(
    raw_blocks: np.ndarray, eps_eff: float, block_size: int
) -> int:
    """Plan the shuffle stage count from the data (conservative maximum).

    The paper estimates this by 5 % sampling before launch
    (:func:`repro.core.schedule.estimate_fixed_length`); planning here uses
    the full input so the simulated pipeline is provably sufficient — an
    undersized plan would silently truncate high bits.
    """
    fl = estimate_fixed_length(
        raw_blocks.reshape(-1), eps_eff, block_size=block_size, fraction=1.0
    )
    return max(fl, 1)
