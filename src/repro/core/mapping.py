"""Mapping CereSZ onto the simulated wafer (paper Section 4).

Three program builders, one per parallelization strategy of Fig 6:

* :func:`build_row_parallel_program` — data parallelism across rows: the
  whole compression runs on the first PE of each row, blocks round-robin
  over rows (Fig 6 left, profiled in Fig 7);
* :func:`build_pipeline_program` — pipeline parallelism across columns:
  Algorithm 1's stage groups run on consecutive PEs of each row,
  intermediate state forwarded east (Fig 6 middle);
* :func:`build_multi_pipeline_program` — data parallelism across pipelines:
  several pipelines per row, with head PEs relaying input blocks eastward
  and counting ``(TC - i) / pipeline_length`` blocks before taking their
  own, exactly the Fig 9 kernel.

All three run the *real* kernels on the real data: the compressed records
they emit are asserted byte-identical to the NumPy reference compressor.
Compute cycles are charged per sub-stage from the calibrated cost model, so
the same simulation also yields the timing behaviour of Figs 7/10.

Pipeline state between PEs is serialized into a single float64 array (the
fabric moves wavelets, not Python objects); float64 carries the int64
quantization codes exactly because the quantizer guards ``|code| < 2**50``.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field

import numpy as np

from repro.config import BLOCK_SIZE, CERESZ_HEADER_BYTES
from repro.errors import CompressionError, ScheduleError
from repro.core.encoding import encode_blocks
from repro.core.schedule import StageDistribution, distribute_substages
from repro.core.stages import SubStage, compression_substages
from repro.wse.color import Color, ColorAllocator
from repro.wse.cost import CycleModel, PAPER_CYCLE_MODEL
from repro.wse.dsd import FabinDsd, FaboutDsd, Mem1dDsd
from repro.wse.engine import Engine
from repro.wse.fabric import Fabric
from repro.wse.pe import Task, TaskContext
from repro.wse.wavelet import Direction

# --- pipeline state ------------------------------------------------------------------

_PHASES = (
    "raw",        # float values, pre-quantization pending
    "scaled",     # after Multiplication (value / 2 eps)
    "codes",      # after Addition (+0.5, floor): integer codes
    "residuals",  # after Lorenzo
    "mags",       # after Sign: magnitudes + sign bytes
    "maxed",      # after Max: + max magnitude
    "lengthed",   # after GetLength: + fixed length
    "encoded",    # after the final 1-bit shuffle: + payload bytes
)


@dataclass
class PipelineState:
    """Everything one data block carries between pipeline sub-stages."""

    phase: str
    block_size: int
    values: np.ndarray  # meaning depends on phase (raw/scaled/codes/...)
    signs: np.ndarray | None = None  # uint8, block_size/8 bytes
    max_mag: int | None = None
    fl: int | None = None
    shuffled: list[np.ndarray] = dataclass_field(default_factory=list)
    bits_done: int = 0

    def to_array(self) -> np.ndarray:
        """Serialize into one float64 vector for fabric transport."""
        if self.phase not in _PHASES:
            raise CompressionError(
                f"cannot serialize pipeline state in unknown phase "
                f"{self.phase!r} (expected one of {_PHASES})"
            )
        sign_bytes = self.block_size // 8
        header = np.array(
            [
                _PHASES.index(self.phase),
                self.block_size,
                -1 if self.max_mag is None else self.max_mag,
                -1 if self.fl is None else self.fl,
                self.bits_done,
            ],
            dtype=np.float64,
        )
        parts = [header, np.asarray(self.values, dtype=np.float64)]
        parts.append(
            np.zeros(sign_bytes)
            if self.signs is None
            else self.signs.astype(np.float64)
        )
        for chunk in self.shuffled:
            parts.append(chunk.astype(np.float64))
        return np.concatenate(parts)

    @classmethod
    def from_array(cls, arr: np.ndarray) -> "PipelineState":
        """Deserialize a fabric-transported state vector.

        Corrupted or truncated vectors raise :class:`CompressionError`
        naming the offending header value — on the device a bad forward
        would silently decode garbage, here it fails loudly.
        """
        arr = np.asarray(arr)
        if arr.ndim != 1 or arr.size < 5:
            raise CompressionError(
                f"pipeline state vector needs at least the 5-word header, "
                f"got shape {arr.shape}"
            )
        raw_phase = float(arr[0])
        if (
            not np.isfinite(raw_phase)
            or not raw_phase.is_integer()
            or not 0 <= int(raw_phase) < len(_PHASES)
        ):
            raise CompressionError(
                f"pipeline state header has invalid phase index {raw_phase!r} "
                f"(expected 0..{len(_PHASES) - 1})"
            )
        raw_bs = float(arr[1])
        if (
            not np.isfinite(raw_bs)
            or not raw_bs.is_integer()
            or int(raw_bs) <= 0
            or int(raw_bs) % 8
        ):
            raise CompressionError(
                f"pipeline state header has invalid block size {raw_bs!r} "
                f"(expected a positive multiple of 8)"
            )
        raw_bits = float(arr[4])
        if (
            not np.isfinite(raw_bits)
            or not raw_bits.is_integer()
            or int(raw_bits) < 0
        ):
            raise CompressionError(
                f"pipeline state header has invalid bits_done {raw_bits!r}"
            )
        phase = _PHASES[int(raw_phase)]
        block_size = int(raw_bs)
        max_mag = int(arr[2])
        fl = int(arr[3])
        bits_done = int(raw_bits)
        sign_bytes = block_size // 8
        needed = 5 + block_size + sign_bytes + bits_done * sign_bytes
        if arr.size < needed:
            raise CompressionError(
                f"pipeline state vector truncated: phase {phase!r} with "
                f"block size {block_size} and {bits_done} shuffled planes "
                f"needs {needed} words, got {arr.size}"
            )
        pos = 5
        values = arr[pos : pos + block_size].copy()
        pos += block_size
        signs = arr[pos : pos + sign_bytes].astype(np.uint8)
        pos += sign_bytes
        shuffled = []
        for _ in range(bits_done):
            shuffled.append(arr[pos : pos + sign_bytes].astype(np.uint8))
            pos += sign_bytes
        return cls(
            phase=phase,
            block_size=block_size,
            values=values,
            signs=signs if phase in ("mags", "maxed", "lengthed", "encoded") else None,
            max_mag=None if max_mag < 0 else max_mag,
            fl=None if fl < 0 else fl,
            shuffled=shuffled,
            bits_done=bits_done,
        )


def run_substage(
    stage: SubStage, state: PipelineState, eps: float
) -> PipelineState:
    """Execute one sub-stage's semantics on one block's state.

    The arithmetic mirrors the PE kernels: the quantization division is
    the Multiplication sub-stage (multiply by the reciprocal of 2 eps,
    realized as float64 division for exactness), Addition adds 0.5 and
    floors, and each ``shuffle_bit_k`` packs bit k of every magnitude into
    ``block_size/8`` bytes, little-endian within bytes (paper Fig 8).
    """
    name = stage.name
    if name == "multiplication":
        if state.phase != "raw":
            raise CompressionError(f"multiplication applied to {state.phase}")
        state.values = state.values / (2.0 * eps)
        state.phase = "scaled"
    elif name == "addition":
        if state.phase != "scaled":
            raise CompressionError(f"addition applied to {state.phase}")
        state.values = np.floor(state.values + 0.5)
        state.phase = "codes"
    elif name == "lorenzo":
        if state.phase != "codes":
            raise CompressionError(f"lorenzo applied to {state.phase}")
        out = state.values.copy()
        out[1:] -= state.values[:-1]
        state.values = out
        state.phase = "residuals"
    elif name == "sign":
        if state.phase != "residuals":
            raise CompressionError(f"sign applied to {state.phase}")
        negs = (state.values < 0).astype(np.uint8)
        state.signs = np.packbits(
            negs.reshape(-1, 8), axis=-1, bitorder="little"
        ).reshape(-1)
        state.values = np.abs(state.values)
        state.phase = "mags"
    elif name == "max":
        if state.phase != "mags":
            raise CompressionError(f"max applied to {state.phase}")
        state.max_mag = int(state.values.max())
        state.phase = "maxed"
    elif name == "get_length":
        if state.phase != "maxed":
            raise CompressionError(f"get_length applied to {state.phase}")
        state.fl = int(state.max_mag).bit_length()
        state.phase = "lengthed"
    elif name.startswith("shuffle_bit_"):
        if state.phase not in ("lengthed", "encoded"):
            raise CompressionError(f"{name} applied to {state.phase}")
        k = int(name.rsplit("_", 1)[1])
        if k < state.fl:
            mags = state.values.astype(np.int64)
            bits = ((mags >> k) & 1).astype(np.uint8)
            state.shuffled.append(
                np.packbits(
                    bits.reshape(-1, 8), axis=-1, bitorder="little"
                ).reshape(-1)
            )
            state.bits_done += 1
        # Bits beyond the block's own fixed length are planned-but-idle
        # stages (the schedule is sized for the sampled maximum fl).
        state.phase = "encoded" if state.bits_done >= (state.fl or 0) else state.phase
        if state.fl == 0:
            state.phase = "encoded"
    else:
        raise ScheduleError(f"unknown sub-stage {name!r}")
    return state


def finalize_record(state: PipelineState) -> bytes:
    """Assemble the on-stream block record from a fully processed state."""
    if state.fl is None or state.signs is None:
        raise CompressionError(
            f"cannot finalize a block in phase {state.phase!r}"
        )
    header = int(state.fl).to_bytes(CERESZ_HEADER_BYTES, "little")
    if state.fl == 0:
        return header
    payload = b"".join(chunk.tobytes() for chunk in state.shuffled)
    return header + state.signs.tobytes() + payload


def substage_cycles(
    stage: SubStage, state_fl: int | None, model: CycleModel, block_size: int
) -> float:
    """Cycles a sub-stage costs for a given block (idle shuffles are ~free)."""
    if stage.name.startswith("shuffle_bit_"):
        k = int(stage.name.rsplit("_", 1)[1])
        if state_fl is not None and k >= state_fl:
            return model.task_dispatch  # planned stage with no work
        return model.bit_shuffle.cycles(block_size, 1)
    return stage.cycles


# --- strategy 1: data parallelism across rows -------------------------------------


@dataclass
class ProgramOutputs:
    """Host-side collection of per-block results from a simulated run."""

    records: dict[int, bytes] = dataclass_field(default_factory=dict)

    def stream(self, num_blocks: int) -> bytes:
        """Concatenate records in block order (fails on gaps)."""
        missing = [i for i in range(num_blocks) if i not in self.records]
        if missing:
            raise CompressionError(
                f"simulation produced no record for blocks {missing[:8]}"
                + ("..." if len(missing) > 8 else "")
            )
        return b"".join(self.records[i] for i in range(num_blocks))


# --- program builders (thin wrappers over the plan/lower layer) ---------------------
#
# Each strategy is now a plan constructor in repro.core.plan plus the single
# lowering pass in repro.core.lower; these wrappers keep the original build_*
# entry points (and their exact behavior) for callers and tests.


def build_row_parallel_program(
    fabric: Fabric,
    engine: Engine,
    blocks: np.ndarray,
    eps: float,
    *,
    model: CycleModel = PAPER_CYCLE_MODEL,
) -> ProgramOutputs:
    """Whole-algorithm-per-PE over the first column (Fig 6 left / Fig 7).

    Block ``i`` goes to row ``i % rows``; each row's PE 0 receives its
    blocks from the west edge in order and compresses them back-to-back.
    """
    from repro.core.lower import lower_plan
    from repro.core.plan import plan_row_parallel

    plan = plan_row_parallel(blocks, eps, rows=fabric.rows, cols=fabric.cols)
    return lower_plan(plan, fabric, engine, model=model).outputs


def build_pipeline_program(
    fabric: Fabric,
    engine: Engine,
    blocks: np.ndarray,
    eps: float,
    distribution: StageDistribution,
    *,
    model: CycleModel = PAPER_CYCLE_MODEL,
) -> ProgramOutputs:
    """One pipeline per row across the first ``len(distribution)`` columns.

    Stage group ``g`` runs on column ``g``; between groups the serialized
    :class:`PipelineState` travels east on a dedicated color (two colors
    alternate so consecutive hops do not conflict).
    """
    from repro.core.lower import lower_plan
    from repro.core.plan import plan_pipeline

    plan = plan_pipeline(
        blocks, eps, distribution, rows=fabric.rows, cols=fabric.cols
    )
    return lower_plan(plan, fabric, engine, model=model).outputs


def build_multi_pipeline_program(
    fabric: Fabric,
    engine: Engine,
    blocks: np.ndarray,
    eps: float,
    *,
    model: CycleModel = PAPER_CYCLE_MODEL,
    pipeline_length: int = 1,
) -> ProgramOutputs:
    """Fig 9: multiple single-PE pipelines per row with counted relays.

    Every PE of a row both relays raw blocks east and compresses its own;
    the relay schedule counts down per round exactly as Algorithm Fig 9
    prescribes, so no flow control is needed.
    """
    from repro.core.lower import lower_plan
    from repro.core.plan import plan_multi_pipeline

    plan = plan_multi_pipeline(
        blocks,
        eps,
        rows=fabric.rows,
        cols=fabric.cols,
        pipeline_length=pipeline_length,
    )
    return lower_plan(plan, fabric, engine, model=model).outputs


def build_staged_multi_pipeline_program(
    fabric: Fabric,
    engine: Engine,
    blocks: np.ndarray,
    eps: float,
    distribution: StageDistribution,
    *,
    model: CycleModel = PAPER_CYCLE_MODEL,
) -> ProgramOutputs:
    """Fig 6 right in full generality: P staged pipelines per row.

    Raw blocks relay through pipeline heads (Fig 9's counted schedule);
    within a pipeline the serialized state flows east through the stage
    groups of ``distribution``.
    """
    from repro.core.lower import lower_plan
    from repro.core.plan import plan_staged_multi_pipeline

    plan = plan_staged_multi_pipeline(
        blocks, eps, distribution, rows=fabric.rows, cols=fabric.cols
    )
    return lower_plan(plan, fabric, engine, model=model).outputs
