"""Mapping CereSZ onto the simulated wafer (paper Section 4).

Three program builders, one per parallelization strategy of Fig 6:

* :func:`build_row_parallel_program` — data parallelism across rows: the
  whole compression runs on the first PE of each row, blocks round-robin
  over rows (Fig 6 left, profiled in Fig 7);
* :func:`build_pipeline_program` — pipeline parallelism across columns:
  Algorithm 1's stage groups run on consecutive PEs of each row,
  intermediate state forwarded east (Fig 6 middle);
* :func:`build_multi_pipeline_program` — data parallelism across pipelines:
  several pipelines per row, with head PEs relaying input blocks eastward
  and counting ``(TC - i) / pipeline_length`` blocks before taking their
  own, exactly the Fig 9 kernel.

All three run the *real* kernels on the real data: the compressed records
they emit are asserted byte-identical to the NumPy reference compressor.
Compute cycles are charged per sub-stage from the calibrated cost model, so
the same simulation also yields the timing behaviour of Figs 7/10.

Pipeline state between PEs is serialized into a single float64 array (the
fabric moves wavelets, not Python objects); float64 carries the int64
quantization codes exactly because the quantizer guards ``|code| < 2**50``.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field

import numpy as np

from repro.config import BLOCK_SIZE, CERESZ_HEADER_BYTES
from repro.errors import CompressionError, ScheduleError
from repro.core.encoding import encode_blocks
from repro.core.schedule import StageDistribution, distribute_substages
from repro.core.stages import SubStage, compression_substages
from repro.wse.color import Color, ColorAllocator
from repro.wse.cost import CycleModel, PAPER_CYCLE_MODEL
from repro.wse.dsd import FabinDsd, FaboutDsd, Mem1dDsd
from repro.wse.engine import Engine
from repro.wse.fabric import Fabric
from repro.wse.pe import Task, TaskContext
from repro.wse.wavelet import Direction

# --- pipeline state ------------------------------------------------------------------

_PHASES = (
    "raw",        # float values, pre-quantization pending
    "scaled",     # after Multiplication (value / 2 eps)
    "codes",      # after Addition (+0.5, floor): integer codes
    "residuals",  # after Lorenzo
    "mags",       # after Sign: magnitudes + sign bytes
    "maxed",      # after Max: + max magnitude
    "lengthed",   # after GetLength: + fixed length
    "encoded",    # after the final 1-bit shuffle: + payload bytes
)


@dataclass
class PipelineState:
    """Everything one data block carries between pipeline sub-stages."""

    phase: str
    block_size: int
    values: np.ndarray  # meaning depends on phase (raw/scaled/codes/...)
    signs: np.ndarray | None = None  # uint8, block_size/8 bytes
    max_mag: int | None = None
    fl: int | None = None
    shuffled: list[np.ndarray] = dataclass_field(default_factory=list)
    bits_done: int = 0

    def to_array(self) -> np.ndarray:
        """Serialize into one float64 vector for fabric transport."""
        sign_bytes = self.block_size // 8
        header = np.array(
            [
                _PHASES.index(self.phase),
                self.block_size,
                -1 if self.max_mag is None else self.max_mag,
                -1 if self.fl is None else self.fl,
                self.bits_done,
            ],
            dtype=np.float64,
        )
        parts = [header, np.asarray(self.values, dtype=np.float64)]
        parts.append(
            np.zeros(sign_bytes)
            if self.signs is None
            else self.signs.astype(np.float64)
        )
        for chunk in self.shuffled:
            parts.append(chunk.astype(np.float64))
        return np.concatenate(parts)

    @classmethod
    def from_array(cls, arr: np.ndarray) -> "PipelineState":
        phase = _PHASES[int(arr[0])]
        block_size = int(arr[1])
        max_mag = int(arr[2])
        fl = int(arr[3])
        bits_done = int(arr[4])
        sign_bytes = block_size // 8
        pos = 5
        values = arr[pos : pos + block_size].copy()
        pos += block_size
        signs = arr[pos : pos + sign_bytes].astype(np.uint8)
        pos += sign_bytes
        shuffled = []
        for _ in range(bits_done):
            shuffled.append(arr[pos : pos + sign_bytes].astype(np.uint8))
            pos += sign_bytes
        return cls(
            phase=phase,
            block_size=block_size,
            values=values,
            signs=signs if phase in ("mags", "maxed", "lengthed", "encoded") else None,
            max_mag=None if max_mag < 0 else max_mag,
            fl=None if fl < 0 else fl,
            shuffled=shuffled,
            bits_done=bits_done,
        )


def run_substage(
    stage: SubStage, state: PipelineState, eps: float
) -> PipelineState:
    """Execute one sub-stage's semantics on one block's state.

    The arithmetic mirrors the PE kernels: the quantization division is
    the Multiplication sub-stage (multiply by the reciprocal of 2 eps,
    realized as float64 division for exactness), Addition adds 0.5 and
    floors, and each ``shuffle_bit_k`` packs bit k of every magnitude into
    ``block_size/8`` bytes, little-endian within bytes (paper Fig 8).
    """
    name = stage.name
    if name == "multiplication":
        if state.phase != "raw":
            raise CompressionError(f"multiplication applied to {state.phase}")
        state.values = state.values / (2.0 * eps)
        state.phase = "scaled"
    elif name == "addition":
        if state.phase != "scaled":
            raise CompressionError(f"addition applied to {state.phase}")
        state.values = np.floor(state.values + 0.5)
        state.phase = "codes"
    elif name == "lorenzo":
        if state.phase != "codes":
            raise CompressionError(f"lorenzo applied to {state.phase}")
        out = state.values.copy()
        out[1:] -= state.values[:-1]
        state.values = out
        state.phase = "residuals"
    elif name == "sign":
        if state.phase != "residuals":
            raise CompressionError(f"sign applied to {state.phase}")
        negs = (state.values < 0).astype(np.uint8)
        state.signs = np.packbits(
            negs.reshape(-1, 8), axis=-1, bitorder="little"
        ).reshape(-1)
        state.values = np.abs(state.values)
        state.phase = "mags"
    elif name == "max":
        if state.phase != "mags":
            raise CompressionError(f"max applied to {state.phase}")
        state.max_mag = int(state.values.max())
        state.phase = "maxed"
    elif name == "get_length":
        if state.phase != "maxed":
            raise CompressionError(f"get_length applied to {state.phase}")
        state.fl = int(state.max_mag).bit_length()
        state.phase = "lengthed"
    elif name.startswith("shuffle_bit_"):
        if state.phase not in ("lengthed", "encoded"):
            raise CompressionError(f"{name} applied to {state.phase}")
        k = int(name.rsplit("_", 1)[1])
        if k < state.fl:
            mags = state.values.astype(np.int64)
            bits = ((mags >> k) & 1).astype(np.uint8)
            state.shuffled.append(
                np.packbits(
                    bits.reshape(-1, 8), axis=-1, bitorder="little"
                ).reshape(-1)
            )
            state.bits_done += 1
        # Bits beyond the block's own fixed length are planned-but-idle
        # stages (the schedule is sized for the sampled maximum fl).
        state.phase = "encoded" if state.bits_done >= (state.fl or 0) else state.phase
        if state.fl == 0:
            state.phase = "encoded"
    else:
        raise ScheduleError(f"unknown sub-stage {name!r}")
    return state


def finalize_record(state: PipelineState) -> bytes:
    """Assemble the on-stream block record from a fully processed state."""
    if state.fl is None or state.signs is None:
        raise CompressionError(
            f"cannot finalize a block in phase {state.phase!r}"
        )
    header = int(state.fl).to_bytes(CERESZ_HEADER_BYTES, "little")
    if state.fl == 0:
        return header
    payload = b"".join(chunk.tobytes() for chunk in state.shuffled)
    return header + state.signs.tobytes() + payload


def substage_cycles(
    stage: SubStage, state_fl: int | None, model: CycleModel, block_size: int
) -> float:
    """Cycles a sub-stage costs for a given block (idle shuffles are ~free)."""
    if stage.name.startswith("shuffle_bit_"):
        k = int(stage.name.rsplit("_", 1)[1])
        if state_fl is not None and k >= state_fl:
            return model.task_dispatch  # planned stage with no work
        return model.bit_shuffle.cycles(block_size, 1)
    return stage.cycles


# --- strategy 1: data parallelism across rows -------------------------------------


@dataclass
class ProgramOutputs:
    """Host-side collection of per-block results from a simulated run."""

    records: dict[int, bytes] = dataclass_field(default_factory=dict)

    def stream(self, num_blocks: int) -> bytes:
        """Concatenate records in block order (fails on gaps)."""
        missing = [i for i in range(num_blocks) if i not in self.records]
        if missing:
            raise CompressionError(
                f"simulation produced no record for blocks {missing[:8]}"
                + ("..." if len(missing) > 8 else "")
            )
        return b"".join(self.records[i] for i in range(num_blocks))


def build_row_parallel_program(
    fabric: Fabric,
    engine: Engine,
    blocks: np.ndarray,
    eps: float,
    *,
    model: CycleModel = PAPER_CYCLE_MODEL,
) -> ProgramOutputs:
    """Whole-algorithm-per-PE over the first column (Fig 6 left / Fig 7).

    Block ``i`` goes to row ``i % rows``; each row's PE 0 receives its
    blocks from the west edge in order and compresses them back-to-back.
    """
    num_blocks, block_size = blocks.shape
    outputs = ProgramOutputs()
    colors = ColorAllocator()
    c_in = colors.allocate("input")
    c_go = colors.allocate("compute")

    stages = compression_substages(64, block_size, model)  # superset plan

    for row in range(fabric.rows):
        pe = fabric.pe(row, 0)
        fabric.set_route(row, 0, c_in, Direction.WEST, Direction.RAMP)
        pe.alloc_buffer("inbox", np.zeros(block_size, dtype=np.float64))
        my_blocks = list(range(row, num_blocks, fabric.rows))
        progress = {"next": 0}

        def make_recv(pe=pe, my_blocks=my_blocks):
            def recv(ctx: TaskContext) -> None:
                ctx.mov32(
                    Mem1dDsd("inbox"),
                    FabinDsd(c_in, extent=block_size),
                    on_complete=c_go,
                )

            return recv

        def make_compute(pe=pe, my_blocks=my_blocks, progress=progress):
            def compute(ctx: TaskContext) -> None:
                idx = my_blocks[progress["next"]]
                progress["next"] += 1
                state = PipelineState(
                    phase="raw",
                    block_size=block_size,
                    values=ctx.buffer("inbox").copy(),
                )
                for stage in stages:
                    fl_known = state.fl
                    if stage.name.startswith("shuffle_bit_") and (
                        fl_known is not None
                        and int(stage.name.rsplit("_", 1)[1]) >= fl_known
                    ):
                        continue  # skip unneeded planned bits entirely
                    state = run_substage(stage, state, eps)
                    ctx.spend(
                        substage_cycles(stage, state.fl, model, block_size)
                    )
                outputs.records[idx] = finalize_record(state)
                if progress["next"] < len(my_blocks):
                    ctx.activate(c_in)
                else:
                    ctx.halt()

            return compute

        pe.bind_task(c_in, Task("recv", make_recv()))
        pe.bind_task(c_go, Task("compute", make_compute()))
        if my_blocks:
            engine.schedule_activation(pe, c_in.id, 0.0)

    # Feed the west edge: row-major round-robin, serialized per row.
    per_row_time = [0.0] * fabric.rows
    for i in range(num_blocks):
        row = i % fabric.rows
        engine.inject(
            row, 0, c_in, blocks[i].astype(np.float32), at=per_row_time[row]
        )
        per_row_time[row] += block_size  # one wavelet per cycle per row port
    return outputs


# --- strategy 2: pipeline parallelism across columns --------------------------------


def build_pipeline_program(
    fabric: Fabric,
    engine: Engine,
    blocks: np.ndarray,
    eps: float,
    distribution: StageDistribution,
    *,
    model: CycleModel = PAPER_CYCLE_MODEL,
) -> ProgramOutputs:
    """One pipeline per row across the first ``len(distribution)`` columns.

    Stage group ``g`` runs on column ``g``; between groups the serialized
    :class:`PipelineState` travels east on a dedicated color (two colors
    alternate so consecutive hops do not conflict).
    """
    num_blocks, block_size = blocks.shape
    pl = distribution.length
    if pl > fabric.cols:
        raise ScheduleError(
            f"pipeline of {pl} stages needs {pl} columns, mesh has {fabric.cols}"
        )
    outputs = ProgramOutputs()
    colors = ColorAllocator()
    c_in = colors.allocate("input")
    c_go = colors.allocate("compute")
    # Inter-stage forwarding colors, alternating by column parity.
    c_fwd = [colors.allocate(f"fwd{p}") for p in range(2)]

    # Maximum serialized state length: header + values + signs + fl chunks.
    sign_bytes = block_size // 8
    max_fl = max(
        (int(s.name.rsplit("_", 1)[1]) + 1
         for g in distribution.groups
         for s in g
         if s.name.startswith("shuffle_bit_")),
        default=0,
    )
    state_len = 5 + block_size + sign_bytes + max_fl * sign_bytes

    for row in range(fabric.rows):
        my_blocks = list(range(row, num_blocks, fabric.rows))
        fabric.set_route(row, 0, c_in, Direction.WEST, Direction.RAMP)
        for col in range(pl):
            pe = fabric.pe(row, col)
            group = distribution.groups[col]
            is_first = col == 0
            is_last = col == pl - 1
            recv_color = c_in if is_first else c_fwd[(col - 1) % 2]
            send_color = None if is_last else c_fwd[col % 2]
            if not is_first:
                fabric.set_route(
                    row, col, recv_color, Direction.WEST, Direction.RAMP
                )
            if send_color is not None:
                fabric.set_route(row, col, send_color, Direction.RAMP, Direction.EAST)
                fabric.set_route(
                    row, col + 1, send_color, Direction.WEST, Direction.RAMP
                )
            extent = block_size if is_first else state_len
            pe.alloc_buffer("stage_in", np.zeros(extent, dtype=np.float64))
            progress = {"done": 0}

            def make_recv(recv_color=recv_color, extent=extent):
                def recv(ctx: TaskContext) -> None:
                    ctx.mov32(
                        Mem1dDsd("stage_in"),
                        FabinDsd(recv_color, extent=extent),
                        on_complete=c_go,
                    )

                return recv

            def make_compute(
                group=group,
                is_first=is_first,
                is_last=is_last,
                send_color=send_color,
                recv_color=recv_color,
                my_blocks=my_blocks,
                progress=progress,
            ):
                def compute(ctx: TaskContext) -> None:
                    raw = ctx.buffer("stage_in")
                    if is_first:
                        state = PipelineState(
                            phase="raw",
                            block_size=block_size,
                            values=raw.copy(),
                        )
                    else:
                        state = PipelineState.from_array(raw)
                    for stage in group:
                        state = run_substage(stage, state, eps)
                        ctx.spend(
                            substage_cycles(stage, state.fl, model, block_size)
                        )
                    idx = my_blocks[progress["done"]]
                    progress["done"] += 1
                    if is_last:
                        outputs.records[idx] = finalize_record(state)
                    else:
                        vec = state.to_array()
                        padded = np.zeros(state_len, dtype=np.float64)
                        padded[: vec.size] = vec
                        ctx.spend(model.forward_block_cycles(block_size))
                        ctx.send(send_color, padded)
                    if progress["done"] < len(my_blocks):
                        ctx.activate(recv_color)
                    else:
                        ctx.halt()

                return compute

            pe.bind_task(recv_color, Task("recv", make_recv()))
            pe.bind_task(c_go, Task("compute", make_compute()))
            if my_blocks:
                engine.schedule_activation(pe, recv_color.id, 0.0)

    per_row_time = [0.0] * fabric.rows
    for i in range(num_blocks):
        row = i % fabric.rows
        engine.inject(
            row, 0, c_in, blocks[i].astype(np.float32), at=per_row_time[row]
        )
        per_row_time[row] += block_size
    return outputs


# --- strategy 3: multiple pipelines per row with relay -----------------------------


def build_multi_pipeline_program(
    fabric: Fabric,
    engine: Engine,
    blocks: np.ndarray,
    eps: float,
    *,
    pipeline_length: int = 1,
    model: CycleModel = PAPER_CYCLE_MODEL,
) -> ProgramOutputs:
    """Several whole-block pipelines per row, input relayed east (Fig 9).

    With ``pipeline_length=1`` every PE of a row compresses whole blocks.
    The PE at column ``i`` relays the blocks destined for the ``TC - 1 - i``
    columns east of it, then keeps one for itself — the relay-count logic
    of the paper's Fig 9 pseudocode. Following Fig 9's kernel, receiving
    and forwarding use *different* colors (``din``'s color vs ``dout``'s
    ``sendColor``): here two relay colors alternate by column parity, so a
    PE receives on one and re-sends east on the other.

    Blocks are dealt east-first within each row round, matching the paper's
    countdown ``(TC - i) / pipeline_length``: the first block injected into
    a row travels all the way to the last column.
    """
    if pipeline_length != 1:
        raise ScheduleError(
            "the multi-pipeline builder models pipeline_length=1 (the "
            "paper's optimal configuration); longer pipelines compose via "
            "build_pipeline_program"
        )
    num_blocks, block_size = blocks.shape
    outputs = ProgramOutputs()
    colors = ColorAllocator()
    c_rel = [colors.allocate("relay0"), colors.allocate("relay1")]
    c_go = colors.allocate("compute")

    rows, cols = fabric.rows, fabric.cols
    stages = compression_substages(64, block_size, model)

    def block_for(row: int, rnd: int, col: int) -> int | None:
        base = rnd * rows * cols + row * cols
        idx = base + (cols - 1 - col)
        return idx if idx < num_blocks else None

    rounds = -(-num_blocks // (rows * cols))

    for row in range(rows):
        for col in range(cols):
            recv = c_rel[col % 2]
            send = c_rel[(col + 1) % 2]
            fabric.set_route(row, col, recv, Direction.WEST, Direction.RAMP)
            if col + 1 < cols:
                fabric.set_route(row, col, send, Direction.RAMP, Direction.EAST)

        for col in range(cols):
            pe = fabric.pe(row, col)
            recv = c_rel[col % 2]
            send = c_rel[(col + 1) % 2]
            pe.alloc_buffer("inbox", np.zeros(block_size, dtype=np.float64))
            my = [
                block_for(row, rnd, col)
                for rnd in range(rounds)
                if block_for(row, rnd, col) is not None
            ]
            # Per-round plan: how many blocks pass through before this PE's
            # own block (None when the tail round gives it none). The final
            # round of a dataset is usually partial, so the Fig 9 countdown
            # must count actual blocks, not columns.
            plan = []
            for rnd in range(rounds):
                passing = sum(
                    1
                    for c in range(col + 1, cols)
                    if block_for(row, rnd, c) is not None
                )
                plan.append((passing, block_for(row, rnd, col)))
            state_box = {"round": 0, "relayed": 0, "done": 0}

            def make_relay(
                recv=recv, send=send, state_box=state_box, plan=plan
            ):
                def relay(ctx: TaskContext) -> None:
                    rnd = state_box["round"]
                    while rnd < len(plan) and plan[rnd] == (0, None):
                        rnd += 1
                    state_box["round"] = rnd
                    if rnd >= len(plan):
                        ctx.halt()
                        return
                    to_relay, own = plan[rnd]
                    if state_box["relayed"] < to_relay:
                        # Pass one block east untouched (Fig 9 lines 26-28),
                        # then re-arm the relay task.
                        ctx.mov32(
                            FaboutDsd(send, extent=block_size),
                            FabinDsd(recv, extent=block_size),
                            on_complete=recv,
                            relay=True,
                        )
                        # The engine charges the 32-wavelet injection when
                        # the forward fires; spend only C1's router/queueing
                        # overhead here so the per-block relay cost totals
                        # exactly C1.
                        ctx.spend(
                            max(
                                0.0,
                                model.relay_block_cycles(block_size)
                                - block_size,
                            ),
                            relay=True,
                        )
                        state_box["relayed"] += 1
                        if state_box["relayed"] == to_relay and own is None:
                            state_box["round"] += 1
                            state_box["relayed"] = 0
                    elif own is not None:
                        # This PE's own block of the round (Fig 9 lines
                        # 21-23): receive into local memory, then compute.
                        ctx.mov32(
                            Mem1dDsd("inbox"),
                            FabinDsd(recv, extent=block_size),
                            on_complete=c_go,
                        )
                    else:  # pragma: no cover - unreachable by construction
                        state_box["round"] += 1
                        state_box["relayed"] = 0
                        ctx.activate(recv)

                return relay

            def make_compute(
                recv=recv, my=my, state_box=state_box, plan=plan
            ):
                def compute(ctx: TaskContext) -> None:
                    idx = my[state_box["done"]]
                    state_box["done"] += 1
                    state = PipelineState(
                        phase="raw",
                        block_size=block_size,
                        values=ctx.buffer("inbox").copy(),
                    )
                    for stage in stages:
                        fl_known = state.fl
                        if stage.name.startswith("shuffle_bit_") and (
                            fl_known is not None
                            and int(stage.name.rsplit("_", 1)[1]) >= fl_known
                        ):
                            continue
                        state = run_substage(stage, state, eps)
                        ctx.spend(
                            substage_cycles(stage, state.fl, model, block_size)
                        )
                    outputs.records[idx] = finalize_record(state)
                    state_box["round"] += 1
                    state_box["relayed"] = 0
                    remaining = any(
                        p != (0, None)
                        for p in plan[state_box["round"]:]
                    )
                    if remaining:
                        ctx.activate(recv)
                    else:
                        ctx.halt()

                return compute

            pe.bind_task(recv, Task("relay", make_relay()))
            pe.bind_task(c_go, Task("compute", make_compute()))
            if any(p != (0, None) for p in plan):
                engine.schedule_activation(pe, recv.id, 0.0)

    per_row_time = [0.0] * rows
    for rnd in range(rounds):
        for row in range(rows):
            for col in range(cols - 1, -1, -1):
                idx = block_for(row, rnd, col)
                if idx is None:
                    continue
                engine.inject(
                    row,
                    0,
                    c_rel[0],
                    blocks[idx].astype(np.float32),
                    at=per_row_time[row],
                )
                per_row_time[row] += block_size
    return outputs


def build_staged_multi_pipeline_program(
    fabric: Fabric,
    engine: Engine,
    blocks: np.ndarray,
    eps: float,
    distribution: StageDistribution,
    *,
    model: CycleModel = PAPER_CYCLE_MODEL,
) -> ProgramOutputs:
    """Fig 6 right in full generality: P staged pipelines per row.

    Columns are partitioned into ``P = cols // pl`` pipelines of length
    ``pl``. Raw input blocks flow eastward through *every* PE (the Fig 9
    relay, alternating colors); each pipeline's head PE counts the blocks
    destined for pipelines east of it, relays them, then peels off its own
    and runs stage group 0; intermediate :class:`PipelineState` forwards
    within the pipeline on a second color pair; the last stage PE emits the
    record. This composes strategies 2 and 3 exactly as the paper's
    complexity analysis (Section 4.4) assumes.
    """
    num_blocks, block_size = blocks.shape
    pl = distribution.length
    cols = fabric.cols
    if pl > cols:
        raise ScheduleError(
            f"pipeline of {pl} stages needs {pl} columns, mesh has {cols}"
        )
    num_pipelines = cols // pl
    if num_pipelines < 1:
        raise ScheduleError("mesh too narrow for one pipeline")

    outputs = ProgramOutputs()
    colors = ColorAllocator()
    c_raw = [colors.allocate("raw0"), colors.allocate("raw1")]
    c_fwd = [colors.allocate("fwd0"), colors.allocate("fwd1")]
    c_go = colors.allocate("compute")

    rows = fabric.rows

    def block_for(row: int, rnd: int, q: int) -> int | None:
        base = rnd * rows * num_pipelines + row * num_pipelines
        idx = base + (num_pipelines - 1 - q)
        return idx if idx < num_blocks else None

    rounds = -(-num_blocks // (rows * num_pipelines))
    sign_bytes = block_size // 8
    max_fl = max(
        (
            int(s.name.rsplit("_", 1)[1]) + 1
            for g in distribution.groups
            for s in g
            if s.name.startswith("shuffle_bit_")
        ),
        default=0,
    )
    state_len = 5 + block_size + sign_bytes + max_fl * sign_bytes
    used_cols = num_pipelines * pl

    for row in range(rows):
        # Raw relay routes: alternating parity along every used column.
        for col in range(used_cols):
            recv_raw = c_raw[col % 2]
            send_raw = c_raw[(col + 1) % 2]
            fabric.set_route(row, col, recv_raw, Direction.WEST, Direction.RAMP)
            if col + 1 < used_cols:
                fabric.set_route(
                    row, col, send_raw, Direction.RAMP, Direction.EAST
                )

        for q in range(num_pipelines):
            head = q * pl
            my = [
                block_for(row, rnd, q)
                for rnd in range(rounds)
                if block_for(row, rnd, q) is not None
            ]
            # Blocks passing through this pipeline's PEs per round.
            passing_plan = [
                sum(
                    1
                    for q2 in range(q + 1, num_pipelines)
                    if block_for(row, rnd, q2) is not None
                )
                for rnd in range(rounds)
            ]
            own_plan = [block_for(row, rnd, q) for rnd in range(rounds)]

            for j in range(pl):
                col = head + j
                pe = fabric.pe(row, col)
                recv_raw = c_raw[col % 2]
                send_raw = c_raw[(col + 1) % 2]
                is_head = j == 0
                is_last = j == pl - 1
                state_recv = None if is_head else c_fwd[(col - 1) % 2]
                state_send = None if is_last else c_fwd[col % 2]
                if state_recv is not None:
                    fabric.set_route(
                        row, col, state_recv, Direction.WEST, Direction.RAMP
                    )
                if state_send is not None:
                    fabric.set_route(
                        row, col, state_send, Direction.RAMP, Direction.EAST
                    )
                if is_head:
                    pe.alloc_buffer(
                        "inbox", np.zeros(block_size, dtype=np.float64)
                    )
                else:
                    pe.alloc_buffer(
                        "stage_in", np.zeros(state_len, dtype=np.float64)
                    )
                box = {"round": 0, "relayed": 0, "done": 0}
                group = distribution.groups[j]

                def run_group(
                    ctx: TaskContext,
                    state: PipelineState,
                    group=group,
                    is_last=is_last,
                    state_send=state_send,
                    my=my,
                    box=box,
                ) -> PipelineState:
                    for stage in group:
                        fl_known = state.fl
                        if stage.name.startswith("shuffle_bit_") and (
                            fl_known is not None
                            and int(stage.name.rsplit("_", 1)[1]) >= fl_known
                        ):
                            ctx.spend(model.task_dispatch)
                            continue
                        state = run_substage(stage, state, eps)
                        ctx.spend(
                            substage_cycles(stage, state.fl, model, block_size)
                        )
                    idx = my[box["done"]]
                    box["done"] += 1
                    if is_last:
                        outputs.records[idx] = finalize_record(state)
                    else:
                        vec = state.to_array()
                        padded = np.zeros(state_len, dtype=np.float64)
                        padded[: vec.size] = vec
                        ctx.spend(model.forward_block_cycles(block_size))
                        ctx.send(state_send, padded)
                    return state

                if is_head:

                    def make_relay(
                        recv_raw=recv_raw,
                        send_raw=send_raw,
                        box=box,
                        passing_plan=passing_plan,
                        own_plan=own_plan,
                    ):
                        def relay(ctx: TaskContext) -> None:
                            rnd = box["round"]
                            while rnd < rounds and (
                                passing_plan[rnd] == 0
                                and own_plan[rnd] is None
                            ):
                                rnd += 1
                            box["round"] = rnd
                            if rnd >= rounds:
                                ctx.halt()
                                return
                            if box["relayed"] < passing_plan[rnd]:
                                ctx.mov32(
                                    FaboutDsd(send_raw, extent=block_size),
                                    FabinDsd(recv_raw, extent=block_size),
                                    on_complete=recv_raw,
                                    relay=True,
                                )
                                ctx.spend(
                                    max(
                                        0.0,
                                        model.relay_block_cycles(block_size)
                                        - block_size,
                                    ),
                                    relay=True,
                                )
                                box["relayed"] += 1
                                if (
                                    box["relayed"] == passing_plan[rnd]
                                    and own_plan[rnd] is None
                                ):
                                    box["round"] += 1
                                    box["relayed"] = 0
                            elif own_plan[rnd] is not None:
                                ctx.mov32(
                                    Mem1dDsd("inbox"),
                                    FabinDsd(recv_raw, extent=block_size),
                                    on_complete=c_go,
                                )
                            else:  # pragma: no cover
                                box["round"] += 1
                                box["relayed"] = 0
                                ctx.activate(recv_raw)

                        return relay

                    def make_head_compute(
                        recv_raw=recv_raw,
                        box=box,
                        run_group=run_group,
                        my=my,
                        passing_plan=passing_plan,
                        own_plan=own_plan,
                    ):
                        def compute(ctx: TaskContext) -> None:
                            state = PipelineState(
                                phase="raw",
                                block_size=block_size,
                                values=ctx.buffer("inbox").copy(),
                            )
                            run_group(ctx, state)
                            box["round"] += 1
                            box["relayed"] = 0
                            # The head keeps running while *any* duty
                            # remains — its own blocks or tail-round relays
                            # for pipelines east (halting early would starve
                            # them, the Fig 9 countdown's whole point).
                            remaining = any(
                                passing_plan[r] > 0 or own_plan[r] is not None
                                for r in range(box["round"], rounds)
                            )
                            if remaining:
                                ctx.activate(recv_raw)
                            else:
                                ctx.halt()

                        return compute

                    pe.bind_task(recv_raw, Task("relay", make_relay()))
                    pe.bind_task(c_go, Task("compute", make_head_compute()))
                    if my or any(passing_plan):
                        engine.schedule_activation(pe, recv_raw.id, 0.0)
                else:
                    # Stage PE: relays raw blocks (pass-through for
                    # pipelines east) and processes forwarded state. The
                    # raw relay is pure fabric work on this PE — its route
                    # is WEST->RAMP here because the software relay re-sends
                    # (same as the head), keeping the per-PE relay cost
                    # observable.
                    def make_stage_relay(
                        recv_raw=recv_raw,
                        send_raw=send_raw,
                        box=box,
                        passing_plan=passing_plan,
                    ):
                        def relay(ctx: TaskContext) -> None:
                            total = sum(passing_plan)
                            if box["relayed"] >= total:
                                return
                            ctx.mov32(
                                FaboutDsd(send_raw, extent=block_size),
                                FabinDsd(recv_raw, extent=block_size),
                                on_complete=(
                                    recv_raw
                                    if box["relayed"] + 1 < total
                                    else None
                                ),
                                relay=True,
                            )
                            ctx.spend(
                                max(
                                    0.0,
                                    model.relay_block_cycles(block_size)
                                    - block_size,
                                ),
                                relay=True,
                            )
                            box["relayed"] += 1

                        return relay

                    def make_recv_state(state_recv=state_recv):
                        def recv_state(ctx: TaskContext) -> None:
                            ctx.mov32(
                                Mem1dDsd("stage_in"),
                                FabinDsd(state_recv, extent=state_len),
                                on_complete=c_go,
                            )

                        return recv_state

                    def make_stage_compute(
                        state_recv=state_recv,
                        run_group=run_group,
                        my=my,
                        box=box,
                    ):
                        def compute(ctx: TaskContext) -> None:
                            state = PipelineState.from_array(
                                ctx.buffer("stage_in")
                            )
                            run_group(ctx, state)
                            if box["done"] < len(my):
                                ctx.activate(state_recv)
                            else:
                                pass  # raw relay may still be in flight

                        return compute

                    pe.bind_task(recv_raw, Task("raw_relay", make_stage_relay()))
                    pe.bind_task(state_recv, Task("recv_state", make_recv_state()))
                    pe.bind_task(c_go, Task("compute", make_stage_compute()))
                    if sum(passing_plan):
                        engine.schedule_activation(pe, recv_raw.id, 0.0)
                    if my:
                        engine.schedule_activation(pe, state_recv.id, 0.0)

    per_row_time = [0.0] * rows
    for rnd in range(rounds):
        for row in range(rows):
            for q in range(num_pipelines - 1, -1, -1):
                idx = block_for(row, rnd, q)
                if idx is None:
                    continue
                engine.inject(
                    row,
                    0,
                    c_raw[0],
                    blocks[idx].astype(np.float32),
                    at=per_row_time[row],
                )
                per_row_time[row] += block_size
    return outputs
