"""Pre-quantization (compression step 1) and its inverse.

Given an error bound ``eps``, each value is mapped to the integer

.. math:: p_i = \\mathrm{round}(e_i / (2 \\epsilon)) = \\lfloor e_i/(2\\epsilon) + 0.5 \\rfloor

and reconstructed as ``p_i * 2 * eps``. Because ``|p_i - e_i/(2 eps)| <= 0.5``
the reconstruction error is at most ``eps`` — this is the *only* lossy step
in the whole pipeline (paper Section 3, step 1).

The paper's PE kernel implements the division as a multiplication with the
reciprocal of ``2 eps`` followed by an add-0.5 and a floor (that split is
exactly the Multiplication/Addition sub-stage boundary of Table 2). The host
reference here computes in float64 with a true division so the error-bound
guarantee holds for the full float32 input domain; the cycle model still
charges the two sub-stages separately.
"""

from __future__ import annotations

import numpy as np

from repro.errors import CompressionError, ErrorBoundError

#: Quantized magnitudes at or above 2**MAX_QUANT_BITS are rejected: they
#: cannot arise from a sane (eps, data) pairing and would lose exactness in
#: the float64 bit-length computation downstream.
MAX_QUANT_BITS = 50


def validate_error_bound(eps: float) -> float:
    """Check that ``eps`` is a usable absolute error bound and return it."""
    eps = float(eps)
    if not np.isfinite(eps) or eps <= 0.0:
        raise ErrorBoundError(f"error bound must be finite and > 0, got {eps}")
    return eps


def prequantize(data: np.ndarray, eps: float) -> np.ndarray:
    """Quantize ``data`` to int64 codes with absolute error bound ``eps``.

    Parameters
    ----------
    data:
        Any real-valued array; it is flattened-agnostic (shape preserved).
        Non-finite values are rejected — an error-bounded compressor cannot
        bound the error of an infinity.
    eps:
        Absolute error bound (> 0).

    Returns
    -------
    Integer codes ``p`` with ``|p * 2*eps - data| <= eps`` elementwise.
    """
    eps = validate_error_bound(eps)
    arr = np.asarray(data, dtype=np.float64)
    if arr.size and not np.all(np.isfinite(arr)):
        raise CompressionError("input contains non-finite values")
    scaled = arr / (2.0 * eps)
    codes = np.floor(scaled + 0.5)
    limit = float(2**MAX_QUANT_BITS)
    if codes.size and float(np.max(np.abs(codes))) >= limit:
        raise CompressionError(
            f"quantization overflow: |code| >= 2**{MAX_QUANT_BITS}; "
            f"the error bound {eps:g} is too small for data of this magnitude"
        )
    return codes.astype(np.int64)


def effective_error_bound(
    data: np.ndarray, eps: float, dtype=np.float32
) -> float:
    """The internal bound that makes the *float32* round trip honor ``eps``.

    :func:`prequantize` bounds the exact reconstruction ``p * 2 eps`` within
    ``eps``, but the decompressor emits ``dtype`` (float32) values: the final
    cast adds up to half a ulp of rounding, which can push a value sitting
    exactly between two quantization bins just past the bound. Quantizing
    against ``eps_eff = eps - 0.5 * ulp(max |value|)`` absorbs the cast:
    quantization error (<= eps_eff) plus cast error (<= margin) never
    exceeds the requested ``eps``. ``eps_eff`` is what gets stored in the
    stream header and used for reconstruction.

    Raises :class:`ErrorBoundError` when ``eps`` is at or below the float32
    resolution at the data's magnitude — no compressor emitting float32 can
    honor such a bound.
    """
    eps = validate_error_bound(eps)
    arr = np.asarray(data, dtype=np.float64)
    if arr.size == 0:
        return eps
    return effective_bound_from_peak(float(np.max(np.abs(arr))), eps, dtype)


def effective_bound_from_peak(
    peak_abs: float, eps: float, dtype=np.float32
) -> float:
    """:func:`effective_error_bound` given a precomputed ``max |value|``.

    The fused fast path computes the peak magnitude with min/max reductions
    (no ``|data|`` temporary) and must land on the *same* ``eps_eff`` the
    reference stores in its headers, so both derive it here.
    """
    eps = validate_error_bound(eps)
    # The 1e-6 headroom keeps the ulp estimate valid even when the cast of
    # ``peak`` itself rounds down across a binade boundary.
    peak = (float(peak_abs) + eps) * (1.0 + 1e-6)
    margin = 0.5 * float(np.spacing(np.asarray(peak, dtype=dtype)))
    eps_eff = eps - margin
    if eps_eff <= 0:
        raise ErrorBoundError(
            f"error bound {eps:g} is below the {np.dtype(dtype).name} "
            f"resolution ({2 * margin:g}) at magnitude {peak:g}"
        )
    return eps_eff


def prequantize_verified(
    data: np.ndarray, eps: float, dtype=np.float32
) -> tuple[np.ndarray, float]:
    """Quantize with a verified bound on the round-tripped ``dtype`` values.

    Returns ``(codes, eps_eff)``: the codes quantized against the effective
    bound of :func:`effective_error_bound`, post-verified against the
    requested ``eps``. The verification is a single vectorized dequantize +
    compare; by construction it cannot fail, so a failure indicates a model
    error and raises :class:`CompressionError` rather than shipping a
    stream that silently violates its contract.
    """
    eps = validate_error_bound(eps)
    arr = np.asarray(data, dtype=np.float64)
    eps_eff = effective_error_bound(arr, eps, dtype)
    codes = prequantize(arr, eps_eff)
    recon = dequantize(codes, eps_eff, dtype=dtype).astype(np.float64)
    if codes.size and float(np.max(np.abs(recon - arr))) > eps:
        raise CompressionError(
            "internal error: verified quantization exceeded the requested "
            "bound; please report this as a bug"
        )
    return codes, eps_eff


def dequantize(codes: np.ndarray, eps: float, dtype=np.float32) -> np.ndarray:
    """Reconstruct values from quantization codes: ``p * 2 * eps``."""
    eps = validate_error_bound(eps)
    # Single fused pass: the ufunc widens the integer codes to float64 on
    # the fly, so no intermediate float64 copy of the whole field exists.
    out = np.multiply(np.asarray(codes), 2.0 * eps, dtype=np.float64)
    return out.astype(dtype)


def psnr_to_relative(target_psnr_db: float) -> float:
    r"""REL bound that yields (approximately) a target PSNR.

    Uniform quantization noise on bins of width ``2 eps`` has mean squared
    error ``eps^2 / 3``; with the range-based PSNR definition this gives

    .. math:: \mathrm{PSNR} = 20 \log_{10}(1/\mathrm{REL}) + 10 \log_{10} 3

    (the identity behind the paper's Fig 15: REL 1e-4 -> 84.77 dB). The
    inverse lets callers ask for quality instead of a bound. The model is
    exact in the high-resolution limit; sparse data whose codes are mostly
    zero lands slightly above the target (the error there is smaller than
    the uniform-noise assumption).
    """
    target = float(target_psnr_db)
    if not np.isfinite(target) or target <= 0:
        raise ErrorBoundError(
            f"target PSNR must be finite and positive, got {target}"
        )
    return float(np.sqrt(3.0) * 10.0 ** (-target / 20.0))


def relative_to_absolute(data: np.ndarray, rel: float) -> float:
    """Convert a value-range-based relative bound to an absolute one.

    The paper evaluates all compressors with REL bounds: for a dataset with
    value range ``r``, ``REL lambda`` means every pointwise error stays
    within ``lambda * r`` (Section 5.1.3). A constant field has zero range;
    callers must special-case it (see :class:`repro.core.compressor.CereSZ`),
    so this helper refuses to fabricate a bound for it.
    """
    rel = float(rel)
    if not np.isfinite(rel) or rel <= 0:
        raise ErrorBoundError(f"relative bound must be finite and > 0: {rel}")
    arr = np.asarray(data)
    if arr.size == 0:
        raise ErrorBoundError("cannot derive a REL bound from empty data")
    # max/min commute with the (monotonic) cast to float64, so reducing on
    # the native dtype gives the same vrange bit-for-bit without copying
    # the whole array to float64 first.
    vrange = float(np.float64(np.max(arr)) - np.float64(np.min(arr)))
    if vrange == 0.0:
        raise ErrorBoundError(
            "data has zero value range; REL bound undefined (constant field)"
        )
    return rel * vrange
