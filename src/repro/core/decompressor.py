"""Integrity verification and salvage decoding.

Two entry points over both container families (plain CereSZ streams and
CSZX shard containers):

- :func:`verify_stream` walks every checksum **without decoding payloads**
  and returns an :class:`~repro.faults.report.IntegrityReport` naming the
  corrupt CRC groups/blocks/shards. Pre-CRC (v1/v2) streams get a
  structural walk only.
- :func:`salvage_decompress` decodes everything that still verifies and
  fills what doesn't, returning the reconstruction plus a
  :class:`~repro.faults.report.SalvageReport`. On a checksummed stream the
  blast radius of one flipped byte is one CRC group (``crc_group`` blocks,
  64 by default); every other block comes back bit-exact.

Salvage leans on two v3 design decisions: the group table stores each
group's *record byte count* (so groups stay locatable when their fl
entries are the corrupted bytes), and the meta CRC deliberately excludes
the fl table (so fl corruption fails one group, not the whole stream).
"""

from __future__ import annotations

import numpy as np

from repro.core.encoding import (
    decode_blocks,
    index_record_offsets,
    record_sizes,
    scan_record_offsets,
    unpack_block_index,
)
from repro.core.format import StreamHeader
from repro.core.integrity import (
    corrupt_blocks_of,
    group_block_spans,
    read_checksum_layout,
    verify_groups,
)
from repro.core.predictors import get_predictor
from repro.core.quantize import dequantize
from repro.errors import ContainerError, FormatError
from repro.faults.report import IntegrityReport, SalvageReport

_MAX_FL = 63


# -- verification (no payload decode) ---------------------------------------


def verify_stream(stream: bytes, *, ledger=None) -> IntegrityReport:
    """Walk a container's checksums; report without decoding payloads.

    Raises :class:`FormatError` only when the outermost header is
    unparseable (nothing to report *about*); every verifiable-but-corrupt
    condition comes back in the report instead.

    ``ledger=`` appends one provenance-stamped RunRecord with the
    verification outcome (a path, ``True`` for the default ledger, or a
    :class:`repro.obs.ledger.Ledger`).
    """
    from repro.core.parallel import is_sharded, read_shard_container

    if ledger is not None:
        import time as _time

        from repro.obs import ledger as _ledger_mod

        t0 = _time.perf_counter()
        report = verify_stream(stream)
        _ledger_mod.emit(
            ledger,
            "verify",
            "verify_stream",
            {
                "op": "verify",
                "kind": report.kind,
                "checksummed": report.checksummed,
                "stream_bytes": len(stream),
            },
            timings={"wall_s": _time.perf_counter() - t0},
            values={
                "verify.ok": float(report.ok),
                "verify.total_blocks": float(report.total_blocks),
                "verify.corrupt_blocks": float(len(report.corrupt_blocks)),
                "verify.corrupt_groups": float(len(report.corrupt_groups)),
            },
        )
        return report
    if is_sharded(stream):
        table = read_shard_container(stream)
        shards = []
        corrupt = []
        total = 0
        for i, (lo, hi) in enumerate(table.spans):
            try:
                sub = verify_stream(stream[lo:hi])
            except FormatError as exc:
                sub = IntegrityReport(
                    kind="ceresz",
                    checksummed=table.checksummed,
                    total_blocks=0,
                    meta_ok=False,
                    note=f"unparseable shard: {exc}",
                )
            shards.append(sub)
            total += sub.total_blocks
            if not sub.ok:
                corrupt.append(i)
        return IntegrityReport(
            kind="sharded",
            checksummed=table.checksummed,
            total_blocks=total,
            shards=tuple(shards),
            corrupt_shards=tuple(corrupt),
            meta_ok=table.meta_ok,
            note="" if table.meta_ok else "shard table meta CRC mismatch",
        )
    return _verify_plain(stream)


def _verify_plain(stream: bytes) -> IntegrityReport:
    header, offset = StreamHeader.unpack(stream)
    if header.constant is not None:
        return IntegrityReport(
            kind="ceresz",
            checksummed=False,
            total_blocks=0,
            note="constant stream (stored exactly; nothing to checksum)",
        )
    if header.checksum:
        try:
            layout = read_checksum_layout(stream, header, offset)
        except ContainerError as exc:
            return IntegrityReport(
                kind="ceresz",
                checksummed=True,
                total_blocks=header.num_blocks,
                meta_ok=False,
                note=str(exc),
            )
        bad = verify_groups(stream, header, layout)
        return IntegrityReport(
            kind="ceresz",
            checksummed=True,
            total_blocks=header.num_blocks,
            corrupt_blocks=tuple(corrupt_blocks_of(header, bad).tolist()),
            corrupt_groups=tuple(bad.tolist()),
            meta_ok=layout.meta_ok,
            note="" if layout.meta_ok else "meta CRC mismatch",
        )
    # Pre-CRC stream: the best we can do is check the layout is walkable.
    try:
        _structural_offsets(stream, header, offset)
        note = "layout walk OK (no checksums to verify)"
        meta_ok = True
    except FormatError as exc:
        note = f"layout walk failed: {exc}"
        meta_ok = False
    return IntegrityReport(
        kind="ceresz",
        checksummed=False,
        total_blocks=header.num_blocks,
        meta_ok=meta_ok,
        note=note,
    )


def _structural_offsets(
    stream: bytes, header: StreamHeader, offset: int
) -> tuple[np.ndarray, np.ndarray]:
    """(offsets, fls) of a v1/v2 stream, strict (raises FormatError)."""
    if header.indexed:
        fls, records_start = unpack_block_index(
            stream, header.num_blocks, offset
        )
        offsets = index_record_offsets(
            fls,
            header.block_size,
            header.header_width,
            start=records_start,
            stream_size=len(stream),
        )
        return offsets, fls
    return scan_record_offsets(
        stream,
        header.num_blocks,
        header.block_size,
        header.header_width,
        start=offset,
    )


# -- salvage decode ---------------------------------------------------------


def salvage_decompress(
    stream: bytes,
    *,
    codec=None,
    fill: str = "zero",
    original: np.ndarray | None = None,
    metrics=None,
    ledger=None,
) -> tuple[np.ndarray, SalvageReport]:
    """Decode what verifies, fill what doesn't; never raise on bad bytes.

    Returns ``(reconstruction, SalvageReport)``. Intact blocks come back
    bit-exact; blocks in corrupt CRC groups are filled (``fill="zero"`` or
    ``"previous"``, which extends the last intact value forward). A corrupt
    *leading* region has no intact predecessor to extend, so under
    ``fill="previous"`` it falls back to zero fill — per shard, since CSZX
    shards are independent streams with no cross-shard carry. The fill each
    contiguous lost region actually received is recorded in
    :attr:`SalvageReport.fill_regions`. Only a
    stream whose outermost header or shard table is destroyed still raises
    (:class:`FormatError` / :class:`ContainerError`): with no trustworthy
    geometry there is nothing to salvage *into*.

    ``original=`` (the uncompressed field) additionally audits the error
    bound over the intact region — :attr:`SalvageReport.bound` then says
    whether the lossy guarantee still holds everywhere that was recovered.
    ``metrics=`` records ``salvage.blocks_lost`` / ``salvage.shards_lost``
    counters. ``ledger=`` appends one RunRecord with the salvage outcome.
    """
    from repro.core.parallel import is_sharded

    if ledger is not None:
        import time as _time

        from repro.obs import ledger as _ledger_mod

        t0 = _time.perf_counter()
        values, report = salvage_decompress(
            stream, codec=codec, fill=fill, original=original,
            metrics=metrics,
        )
        _ledger_mod.emit(
            ledger,
            "salvage",
            "salvage_decompress",
            {
                "op": "salvage",
                "fill": fill,
                "stream_bytes": len(stream),
                "audited": original is not None,
            },
            timings={"wall_s": _time.perf_counter() - t0},
            values={
                "salvage.total_blocks": float(report.total_blocks),
                "salvage.blocks_lost": float(report.blocks_lost),
                "salvage.elements_lost": float(report.elements_lost),
                "salvage.shards_lost": float(len(report.shards_lost)),
            },
            metrics=metrics,
        )
        return values, report
    if fill not in ("zero", "previous"):
        raise FormatError(f"fill must be 'zero' or 'previous', got {fill!r}")
    if is_sharded(stream):
        values, intact_mask, report = _salvage_sharded(stream, codec, fill)
    else:
        values, intact_mask, report = _salvage_plain(stream, fill)
    if original is not None:
        from dataclasses import replace

        from repro.metrics.errorbound import locate_bound_violations

        # The header stores eps_eff, tightened by effective_error_bound so
        # the *float32-rounded* reconstruction honors the caller's requested
        # bound; the audit must test that promise, not bare eps_eff, or a
        # healthy value sitting half a ulp past eps_eff reads as corrupt.
        orig = np.asarray(original, dtype=np.float64).reshape(-1)
        audit_eps = report.eps
        if orig.size:
            peak = (float(np.max(np.abs(orig))) + report.eps) * (1.0 + 1e-6)
            audit_eps += 0.5 * float(
                np.spacing(np.asarray(peak, dtype=values.dtype))
            )
        report = replace(
            report,
            bound=locate_bound_violations(
                orig,
                values.reshape(-1),
                audit_eps,
                mask=intact_mask,
            ),
        )
    if metrics is not None:
        metrics.counter(
            "salvage.blocks_lost", "blocks dropped by salvage decode"
        ).inc(report.blocks_lost)
        metrics.counter(
            "salvage.shards_lost", "whole shards dropped by salvage decode"
        ).inc(len(report.shards_lost))
    return values, report


def _salvage_plain(
    stream: bytes, fill: str
) -> tuple[np.ndarray, np.ndarray, SalvageReport]:
    """Salvage one CereSZ stream; returns (values, intact mask, report)."""
    header, offset = StreamHeader.unpack(stream)
    out_dtype = np.float64 if header.dtype == "f8" else np.float32
    n = header.num_elements
    if header.constant is not None:
        values = np.full(n, header.constant, dtype=out_dtype)
        report = SalvageReport(
            total_elements=n, total_blocks=0, blocks_lost=0,
            elements_lost=0, fill=fill, eps=header.eps,
        )
        return values.reshape(header.shape), np.ones(n, dtype=bool), report

    nb = header.num_blocks
    L = header.block_size
    notes: list[str] = []
    if header.checksum:
        fls, offsets, valid = _checksummed_salvage_layout(
            stream, header, offset, notes
        )
    else:
        fls, offsets, valid = _structural_salvage_layout(
            stream, header, offset, notes
        )

    residuals = np.zeros((nb, L), dtype=np.int64)
    intact = np.nonzero(valid)[0]
    if intact.size:
        decoded = decode_blocks(
            stream,
            int(intact.size),
            L,
            header.header_width,
            offsets=offsets[intact],
            fls=fls[intact],
        )
        residuals[intact] = decoded

    values = np.zeros(nb * L, dtype=out_dtype)
    fill_regions: list[tuple[int, int, str]] = []
    pred = get_predictor(header.predictor)
    if not pred.block_local:
        flat = residuals.reshape(-1)[:n]
        codes = pred.reconstruct(flat.reshape(header.shape))
        values[:n] = dequantize(
            codes, header.eps, dtype=out_dtype
        ).reshape(-1)
        if intact.size < nb:
            notes.append(
                f"{pred.name} predictor is whole-array: reconstruction "
                f"may drift after the first lost block (global "
                f"dependency)"
            )
            # Lost whole-array blocks reconstruct from zero residuals;
            # there is no meaningful "previous" carry under a global
            # dependency.
            fill_regions = [
                (a, b, "zero") for a, b in _lost_runs(np.nonzero(~valid)[0])
            ]
            if fill == "previous":
                notes.append(
                    f"{pred.name} predictor: 'previous' fill not "
                    f"applicable, lost regions reconstructed from zero "
                    f"residuals"
                )
    else:
        if intact.size:
            codes = pred.reconstruct_blocks(residuals[intact])
            values.reshape(-1, L)[intact] = dequantize(
                codes, header.eps, dtype=out_dtype
            )
        lost = np.nonzero(~valid)[0]
        blocks = values.reshape(-1, L)
        for start, stop in _lost_runs(lost):
            effective = "zero"
            if fill == "previous":
                # The nearest intact predecessor is shared by the whole
                # contiguous run (no intact block sits inside it).
                p = int(np.searchsorted(intact, start)) - 1
                if p >= 0:
                    blocks[start:stop] = blocks[intact[p], -1]
                    effective = "previous"
                else:
                    # Defined fallback: a corrupt *leading* run has no
                    # intact predecessor to carry forward, so it is
                    # explicitly zero-filled (the buffer is already
                    # zeroed) rather than left to incidental behavior.
                    notes.append(
                        f"leading corrupt region [0, {stop}): no intact "
                        f"predecessor, zero-filled"
                    )
            fill_regions.append((start, stop, effective))

    values = values[:n]
    elem_mask = np.zeros(nb * L, dtype=bool)
    elem_mask.reshape(-1, L)[intact] = True
    elem_mask = elem_mask[:n]
    lost_blocks = np.nonzero(~valid)[0]
    report = SalvageReport(
        total_elements=n,
        total_blocks=nb,
        blocks_lost=int(lost_blocks.size),
        elements_lost=int(n - np.count_nonzero(elem_mask)),
        lost_block_indices=tuple(lost_blocks.tolist()),
        fill=fill,
        fill_regions=tuple(fill_regions),
        eps=header.eps,
        notes=tuple(notes),
    )
    return values.reshape(header.shape), elem_mask, report


def _lost_runs(lost: np.ndarray) -> list[tuple[int, int]]:
    """Contiguous runs of lost block indices as half-open ``(start, stop)``."""
    if lost.size == 0:
        return []
    breaks = np.nonzero(np.diff(lost) > 1)[0]
    starts = lost[np.concatenate(([0], breaks + 1))]
    stops = lost[np.concatenate((breaks, [lost.size - 1]))] + 1
    return [(int(a), int(b)) for a, b in zip(starts, stops)]


def _checksummed_salvage_layout(
    stream: bytes, header: StreamHeader, offset: int, notes: list[str]
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(fls, offsets, valid-block mask) of a v3 stream under salvage.

    With a good meta CRC every group is independently locatable from the
    stored record byte counts, so offsets inside intact groups are exact
    even when *other* groups' fl entries are the corrupt bytes. A failed
    meta CRC demotes the stream to the structural (fl-cumsum) walk.
    """
    layout = read_checksum_layout(stream, header, offset)
    nb = header.num_blocks
    if not layout.meta_ok:
        notes.append(
            "meta CRC mismatch: group table untrustworthy, falling back "
            "to structural fl walk"
        )
        return _indexed_salvage_walk(
            stream, header, layout.fls, layout.records_start, notes
        )
    bad_groups = verify_groups(stream, header, layout)
    valid = np.ones(nb, dtype=bool)
    if bad_groups.size:
        valid[corrupt_blocks_of(header, bad_groups)] = False
        notes.append(
            f"{bad_groups.size} of {layout.num_groups} CRC groups corrupt"
        )
    sizes = record_sizes(layout.fls, header.block_size, header.header_width)
    within = np.cumsum(sizes, dtype=np.int64) - sizes
    edges = group_block_spans(nb, header.crc_group)
    group_of = np.repeat(
        np.arange(layout.num_groups, dtype=np.int64), np.diff(edges)
    )
    base = within[edges[:-1]]
    offsets = (
        layout.group_offsets[:-1][group_of] + within - base[group_of]
    )
    return layout.fls, offsets, valid


def _structural_salvage_layout(
    stream: bytes, header: StreamHeader, offset: int, notes: list[str]
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Best-effort layout of a pre-CRC stream (truncation salvage only)."""
    nb = header.num_blocks
    if header.indexed:
        fl_end = offset + nb
        if len(stream) < fl_end:
            notes.append("fl table truncated: nothing salvageable")
            return (
                np.zeros(nb, dtype=np.int64),
                np.zeros(nb, dtype=np.int64),
                np.zeros(nb, dtype=bool),
            )
        fls = np.frombuffer(
            stream, dtype=np.uint8, count=nb, offset=offset
        ).astype(np.int64)
        return _indexed_salvage_walk(stream, header, fls, fl_end, notes)
    # v1: records only discoverable by the sequential header walk, which
    # either succeeds completely or leaves no trustworthy geometry.
    try:
        offsets, fls = scan_record_offsets(
            stream, nb, header.block_size, header.header_width, start=offset
        )
        return offsets, fls, np.ones(nb, dtype=bool)
    except FormatError as exc:
        notes.append(
            f"v1 stream walk failed ({exc}): no index to salvage from"
        )
        return (
            np.zeros(nb, dtype=np.int64),
            np.zeros(nb, dtype=np.int64),
            np.zeros(nb, dtype=bool),
        )


def _indexed_salvage_walk(
    stream: bytes,
    header: StreamHeader,
    fls: np.ndarray,
    records_start: int,
    notes: list[str],
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Offsets from an (untrusted) fl table: valid up to the first bad fl,
    and only where the record span still fits inside the stream."""
    nb = header.num_blocks
    valid = np.ones(nb, dtype=bool)
    bad_fl = np.nonzero(fls > _MAX_FL)[0]
    if bad_fl.size:
        # Offsets are a cumsum over record sizes: one corrupt fl entry
        # shifts every later offset, so trust ends there.
        first = int(bad_fl[0])
        valid[first:] = False
        notes.append(
            f"fl table corrupt at block {first}: blocks {first}..{nb - 1} "
            f"unlocatable without checksums"
        )
    sizes = record_sizes(
        np.clip(fls, 0, _MAX_FL), header.block_size, header.header_width
    )
    offsets = records_start + np.cumsum(sizes, dtype=np.int64) - sizes
    overrun = offsets + sizes > len(stream)
    if overrun.any() and valid[overrun].any():
        notes.append(
            f"{int(np.count_nonzero(overrun & valid))} block records "
            f"truncated off the end of the stream"
        )
    valid &= ~overrun
    return fls, offsets, valid


def _salvage_sharded(
    stream: bytes, codec, fill: str
) -> tuple[np.ndarray, np.ndarray, SalvageReport]:
    from repro.core.compressor import CereSZ
    from repro.core.parallel import read_shard_container

    codec = codec if codec is not None else CereSZ()
    table = read_shard_container(stream)
    n = table.num_elements
    out_dtype = np.float64 if table.is_f64 else np.float32
    notes: list[str] = []
    if not table.meta_ok:
        notes.append(
            "shard table meta CRC mismatch: spans taken on faith"
        )
    k = len(table.spans)
    elems = _shard_element_counts(stream, table, notes)
    values = np.zeros(n, dtype=out_dtype)
    intact = np.zeros(n, dtype=bool)
    shards_lost: list[int] = []
    lost_blocks: list[int] = []
    fill_regions: list[tuple[int, int, str]] = []
    blocks_lost = 0
    total_blocks = 0
    elements_lost = 0
    block_base = 0
    lo_elem = 0
    for i in range(k):
        lo, hi = table.spans[i]
        count = elems[i]
        hi_elem = lo_elem + count
        shard_blocks = -(-count // codec.block_size)
        total_blocks += shard_blocks
        try:
            flat = codec.decompress(bytes(stream[lo:hi])).reshape(-1)
            if flat.size != count:
                raise FormatError(
                    f"shard {i} decodes to {flat.size} elements, "
                    f"expected {count}"
                )
            values[lo_elem:hi_elem] = flat
            intact[lo_elem:hi_elem] = True
        except FormatError:
            try:
                part, mask, sub = _salvage_plain(bytes(stream[lo:hi]), fill)
                flat = part.reshape(-1)
                if flat.size != count:
                    raise FormatError(
                        f"shard {i} salvages to {flat.size} elements, "
                        f"expected {count}"
                    )
                values[lo_elem:hi_elem] = flat
                intact[lo_elem:hi_elem] = mask
                blocks_lost += sub.blocks_lost
                elements_lost += sub.elements_lost
                lost_blocks.extend(
                    block_base + b for b in sub.lost_block_indices
                )
                # Shards are independent streams: a corrupt leading group
                # of *any* shard has no intact predecessor within its own
                # stream and zero-fills, which the sub-report's effective
                # fill already records — only the block numbering shifts.
                fill_regions.extend(
                    (block_base + a, block_base + b, eff)
                    for a, b, eff in sub.fill_regions
                )
                if sub.blocks_lost:
                    notes.append(
                        f"shard {i}: lost {sub.blocks_lost}/"
                        f"{sub.total_blocks} blocks"
                    )
            except FormatError as exc:
                shards_lost.append(i)
                blocks_lost += shard_blocks
                elements_lost += count
                lost_blocks.extend(
                    range(block_base, block_base + shard_blocks)
                )
                fill_regions.append(
                    (block_base, block_base + shard_blocks, "zero")
                )
                notes.append(f"shard {i} unrecoverable: {exc}")
        block_base += shard_blocks
        lo_elem = hi_elem
    report = SalvageReport(
        total_elements=n,
        total_blocks=total_blocks,
        blocks_lost=blocks_lost,
        elements_lost=elements_lost,
        lost_block_indices=tuple(lost_blocks),
        shards_lost=tuple(shards_lost),
        fill=fill,
        fill_regions=tuple(fill_regions),
        eps=table.eps,
        notes=tuple(notes),
    )
    return values.reshape(table.shape), intact, report


def _shard_element_counts(
    stream: bytes, table, notes: list[str]
) -> list[int]:
    """Elements per shard, robust to unparseable shard headers.

    v2 containers record ``shard_elements`` directly. For v1, every shard
    but the last holds the same count by construction, so one parseable
    non-final shard header pins them all; the last shard takes the
    remainder.
    """
    n = table.num_elements
    k = len(table.spans)
    se = table.shard_elements
    if se is None:
        for i, (lo, hi) in enumerate(table.spans[: max(k - 1, 1)]):
            try:
                sub, _ = StreamHeader.unpack(stream[lo:hi])
                se = sub.num_elements
                break
            except FormatError:
                continue
        if se is None:
            notes.append(
                "no shard header parseable: assuming equal shard sizes"
            )
            se = -(-n // k)
    if k == 1:
        return [n]
    counts = [min(se, n - i * se) for i in range(k)]
    if any(c <= 0 for c in counts) or sum(counts) != n:
        notes.append(
            f"shard geometry inconsistent (shard_elements={se}, "
            f"n={n}, shards={k}); proportional split assumed"
        )
        base = n // k
        counts = [base] * k
        counts[-1] = n - base * (k - 1)
    return counts
