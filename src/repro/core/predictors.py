"""Pluggable predictors: the registry behind compression step 2.

The paper ships the 1-D block-local Lorenzo predictor because the wafer
mapping demands *block locality* — each PE must be able to transform its
block without talking to neighbours. But prediction is a composable stage
(SZ3 makes it a first-class pipeline step), and multi-dimensional
predictors buy real ratio on smooth 2-D/3-D fields. This module makes the
predictor an explicit, registry-backed axis instead of a hardcoded branch.

Every predictor declares a **locality contract**:

``block_local``
    The transform of one ``(block_size,)`` block depends only on that
    block. These predictors run through the fused fast path, shard under
    ``jobs=`` with byte-identical output, support random access, and
    lower onto the WSE plan IR. API: :meth:`Predictor.predict_blocks` /
    :meth:`Predictor.reconstruct_blocks` over ``(num_blocks, L)`` views.

``whole_array``
    The transform needs the full N-D array (a global prefix/interpolation
    dependency). These predictors trade wafer-mappability for ratio — the
    paper's Section 3 trade — so they are host-only: the codec predicts
    once over the whole array, then the *residuals* flow through the
    block encoder (and can be sharded/fused freely, because encoding is
    block-local even when prediction is not). API:
    :meth:`Predictor.predict` / :meth:`Predictor.reconstruct` over the
    N-D code array.

Each predictor also carries a stable integer ``tag`` stored in the
container header (see :mod:`repro.core.format`), which is what makes
streams self-describing: decode dispatch is purely header-driven.
"""

from __future__ import annotations

import numpy as np

from repro.errors import CompressionError

from repro.core.lorenzo import (
    lorenzo_predict_nd,
    lorenzo_reconstruct_nd,
)

#: Locality contract names (see the module docstring).
BLOCK_LOCAL = "block_local"
WHOLE_ARRAY = "whole_array"


class Predictor:
    """Base class: a named, tagged prediction transform.

    Subclasses implement exactly one of the two API pairs, matching their
    declared locality. Calling the wrong pair raises with a message that
    names the contract, so misuse surfaces as a diagnostic rather than a
    silently wrong stream.
    """

    #: Canonical registry name (also what ``--predictor`` accepts).
    name: str = ""
    #: Stable container tag (u8) stored in stream headers. Never reuse.
    tag: int = -1
    #: ``block_local`` or ``whole_array``.
    locality: str = ""
    #: One-line summary for docs/CLI listings.
    summary: str = ""

    @property
    def block_local(self) -> bool:
        return self.locality == BLOCK_LOCAL

    # -- block-local API ---------------------------------------------------
    def predict_blocks(
        self, codes: np.ndarray, out: np.ndarray | None = None
    ) -> np.ndarray:
        """Residuals of a ``(num_blocks, L)`` code array, row-independent."""
        raise CompressionError(
            f"predictor {self.name!r} declares locality {self.locality!r}; "
            "it has no per-block transform — use predict() on the full array"
        )

    def reconstruct_blocks(
        self, residuals: np.ndarray, out: np.ndarray | None = None
    ) -> np.ndarray:
        """Exact inverse of :meth:`predict_blocks`."""
        raise CompressionError(
            f"predictor {self.name!r} declares locality {self.locality!r}; "
            "it has no per-block inverse — use reconstruct() on the full array"
        )

    # -- whole-array API ---------------------------------------------------
    def predict(self, codes: np.ndarray) -> np.ndarray:
        """Residuals of the full N-D code array (int64 in, int64 out)."""
        raise CompressionError(
            f"predictor {self.name!r} declares locality {self.locality!r}; "
            "apply it per block via predict_blocks()"
        )

    def reconstruct(self, residuals: np.ndarray) -> np.ndarray:
        """Exact inverse of :meth:`predict`."""
        raise CompressionError(
            f"predictor {self.name!r} declares locality {self.locality!r}; "
            "invert it per block via reconstruct_blocks()"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Predictor {self.name} tag={self.tag} {self.locality}>"


class Lorenzo1D(Predictor):
    """Block-local first-order difference — the paper's default.

    The transform here is bit-for-bit the one the fused fast path inlined
    before the registry existed; ``lorenzo1d`` streams are byte-identical
    to pre-refactor streams.
    """

    name = "lorenzo1d"
    tag = 0
    locality = BLOCK_LOCAL
    summary = "1-D block-local Lorenzo (paper default; wafer-mappable)"

    def predict_blocks(self, codes, out=None):
        c = np.asarray(codes)
        if out is None:
            out = np.empty_like(c)
        out[:, 0] = c[:, 0]
        np.subtract(c[:, 1:], c[:, :-1], out=out[:, 1:])
        return out

    def reconstruct_blocks(self, residuals, out=None):
        r = np.asarray(residuals)
        if out is None:
            out = np.empty_like(r)
        np.cumsum(r, axis=1, out=out)
        return out


class LorenzoND(Predictor):
    """Full N-D Lorenzo over every axis (the legacy ``CereSZND`` variant)."""

    name = "nd"
    tag = 1
    locality = WHOLE_ARRAY
    summary = "N-D Lorenzo over all axes (legacy CereSZND; host-only)"

    def predict(self, codes):
        return lorenzo_predict_nd(codes)

    def reconstruct(self, residuals):
        return lorenzo_reconstruct_nd(residuals)


class _LorenzoKD(Predictor):
    """K-D Lorenzo over the *last* ``min(k, ndim)`` axes.

    On data with at least ``k`` dimensions this matches SZ3's k-D Lorenzo
    operator; on lower-dimensional data it degrades gracefully to the
    widest operator the shape supports (so ``lorenzo3d`` on a 2-D field
    behaves like ``lorenzo2d``, not like an error).
    """

    locality = WHOLE_ARRAY
    _k = 0

    def _axes(self, ndim: int) -> range:
        return range(max(0, ndim - self._k), ndim)

    def predict(self, codes):
        arr = np.asarray(codes)
        if arr.ndim < 1:
            raise CompressionError(f"{self.name} needs at least 1-D data")
        out = arr.astype(np.int64, copy=True)
        for axis in self._axes(arr.ndim):
            out = np.diff(out, axis=axis, prepend=0)
        return out

    def reconstruct(self, residuals):
        arr = np.asarray(residuals, dtype=np.int64)
        out = arr
        for axis in reversed(self._axes(arr.ndim)):
            out = np.cumsum(out, axis=axis, dtype=np.int64)
        return out


class Lorenzo2D(_LorenzoKD):
    name = "lorenzo2d"
    tag = 2
    summary = "2-D Lorenzo over the last two axes (host-only)"
    _k = 2


class Lorenzo3D(_LorenzoKD):
    name = "lorenzo3d"
    tag = 3
    summary = "3-D Lorenzo over the last three axes (host-only)"
    _k = 3


class Regression(Predictor):
    """Block-local linear extrapolation: ``pred_i = 2 c_{i-1} - c_{i-2}``.

    Equivalent to applying the first-order difference twice, so the
    residual is the within-block second derivative — zero wherever the
    quantized field is locally linear, which the plain Lorenzo predictor
    only achieves on locally *constant* fields. It stays block-local
    (each row transforms independently), so it runs the fused fast path,
    shards, random-accesses, and lowers onto the WSE like ``lorenzo1d``.
    """

    name = "regression"
    tag = 4
    locality = BLOCK_LOCAL
    summary = "block-local linear extrapolation (2nd difference; mappable)"

    def predict_blocks(self, codes, out=None):
        c = np.asarray(codes)
        if out is None:
            out = np.empty_like(c)
        out[:, 0] = c[:, 0]
        np.subtract(c[:, 1:], c[:, :-1], out=out[:, 1:])
        # Second pass; the copy pins the first-pass values so the
        # in-place subtraction reads them, not partially updated ones.
        out[:, 1:] -= out[:, :-1].copy()
        return out

    def reconstruct_blocks(self, residuals, out=None):
        r = np.asarray(residuals)
        if out is None:
            out = np.empty_like(r)
        np.cumsum(r, axis=1, out=out)
        np.cumsum(out, axis=1, out=out)
        return out


class Interpolation(Predictor):
    """SZ3-style binary interpolation along the last axis.

    Anchors index 0, then fills in points level by level: at stride ``s``
    every odd multiple of ``s`` is predicted as the floor-average of its
    two stride-``s`` neighbours (or copied from the left neighbour at the
    boundary). Those neighbours are even multiples of ``s`` — i.e. points
    of a *coarser* level — so decompression reconstructs coarse-to-fine
    and the transform is exactly invertible in int64. The dependency
    spans the whole axis, hence ``whole_array``.
    """

    name = "interpolation"
    tag = 5
    locality = WHOLE_ARRAY
    summary = "binary interpolation along the last axis (SZ3-style; host-only)"

    @staticmethod
    def _levels(n: int) -> list[int]:
        """Strides from coarsest down to 1 (empty for n <= 1)."""
        if n <= 1:
            return []
        s = 1
        while s * 2 < n:
            s *= 2
        levels = []
        while s >= 1:
            levels.append(s)
            s //= 2
        return levels

    @staticmethod
    def _predicted(known: np.ndarray, idx: np.ndarray, s: int, n: int):
        """Predictions for the level-``s`` points ``idx`` from ``known``."""
        pred = known[..., idx - s].copy()
        has_right = idx + s < n
        if has_right.any():
            ridx = idx[has_right]
            pair = known[..., ridx - s] + known[..., ridx + s]
            pred[..., has_right] = pair >> 1  # arithmetic shift = floor/2
        return pred

    def predict(self, codes):
        arr = np.asarray(codes)
        if arr.ndim < 1:
            raise CompressionError(f"{self.name} needs at least 1-D data")
        c = arr.astype(np.int64, copy=False)
        out = c.copy()
        n = arr.shape[-1]
        for s in self._levels(n):
            idx = np.arange(s, n, 2 * s)
            out[..., idx] = c[..., idx] - self._predicted(c, idx, s, n)
        return out

    def reconstruct(self, residuals):
        arr = np.asarray(residuals)
        out = arr.astype(np.int64, copy=True)
        n = arr.shape[-1] if arr.ndim else 0
        for s in self._levels(n):
            idx = np.arange(s, n, 2 * s)
            out[..., idx] += self._predicted(out, idx, s, n)
        return out


_REGISTRY: dict[str, Predictor] = {}
_BY_TAG: dict[int, Predictor] = {}
#: Historical spellings still accepted everywhere a name is.
PREDICTOR_ALIASES = {"blocked1d": "lorenzo1d"}


def register_predictor(predictor: Predictor) -> Predictor:
    """Add a predictor to the registry; names and tags must be unique."""
    if not predictor.name or predictor.tag < 0 or not predictor.locality:
        raise CompressionError(
            f"predictor {predictor!r} is missing a name, tag, or locality"
        )
    if predictor.locality not in (BLOCK_LOCAL, WHOLE_ARRAY):
        raise CompressionError(
            f"unknown locality {predictor.locality!r} for {predictor.name!r}"
        )
    if predictor.name in _REGISTRY or predictor.name in PREDICTOR_ALIASES:
        raise CompressionError(f"duplicate predictor name {predictor.name!r}")
    if predictor.tag in _BY_TAG:
        raise CompressionError(f"duplicate predictor tag {predictor.tag}")
    _REGISTRY[predictor.name] = predictor
    _BY_TAG[predictor.tag] = predictor
    return predictor


def get_predictor(name: str | Predictor) -> Predictor:
    """Resolve a predictor by name (aliases accepted) or pass one through."""
    if isinstance(name, Predictor):
        return name
    canonical = PREDICTOR_ALIASES.get(name, name)
    try:
        return _REGISTRY[canonical]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise CompressionError(
            f"unknown predictor {name!r}; registered: {known}"
        ) from None


def predictor_from_tag(tag: int) -> Predictor:
    """Resolve a container predictor tag; raises on unknown tags."""
    try:
        return _BY_TAG[int(tag)]
    except KeyError:
        raise CompressionError(f"unknown predictor tag {tag}") from None


def registered_predictors() -> tuple[Predictor, ...]:
    """All registered predictors, ordered by container tag."""
    return tuple(_BY_TAG[t] for t in sorted(_BY_TAG))


def predictor_names() -> tuple[str, ...]:
    """Canonical names, tag order (what ``--predictor`` advertises)."""
    return tuple(p.name for p in registered_predictors())


LORENZO_1D = register_predictor(Lorenzo1D())
LORENZO_ND = register_predictor(LorenzoND())
LORENZO_2D = register_predictor(Lorenzo2D())
LORENZO_3D = register_predictor(Lorenzo3D())
REGRESSION = register_predictor(Regression())
INTERPOLATION = register_predictor(Interpolation())

#: The paper's default.
DEFAULT_PREDICTOR = LORENZO_1D.name
