"""Pipeline load balancing: the paper's Algorithm 1 and its helpers.

Given the sub-stage list for one block and a pipeline of *m* PEs, the greedy
balancer fills PE groups in stage order until each group reaches the ideal
share ``C / m`` of the total runtime ``C``; the last group takes whatever
remains. The pipeline's throughput is set by its *bottleneck* group, so the
quality of a distribution is ``max_group / (C / m)`` (1.0 = perfect).

Two further results from Section 4.2 live here:

* the maximum feasible pipeline length is ``floor(C / t1)`` where ``t1`` is
  the longest indivisible sub-stage (Multiplication in practice) — a longer
  pipeline cannot help because that stage alone already exceeds the ideal
  share;
* the distribution depends on the data only through the fixed length, which
  is estimated before launch by quantizing a 5 % random sample of blocks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import BLOCK_SIZE
from repro.errors import ScheduleError
from repro.core.blocks import partition_blocks
from repro.core.encoding import block_fixed_lengths
from repro.core.lorenzo import lorenzo_predict
from repro.core.quantize import prequantize
from repro.core.stages import SubStage, total_cycles


@dataclass(frozen=True)
class StageDistribution:
    """Result of distributing sub-stages across a pipeline."""

    groups: tuple[tuple[SubStage, ...], ...]

    @property
    def length(self) -> int:
        return len(self.groups)

    @property
    def group_cycles(self) -> tuple[float, ...]:
        return tuple(sum(s.cycles for s in g) for g in self.groups)

    @property
    def bottleneck_cycles(self) -> float:
        """Runtime of the slowest group — the pipeline's rate limiter."""
        return max(self.group_cycles)

    @property
    def total(self) -> float:
        return sum(self.group_cycles)

    @property
    def imbalance(self) -> float:
        """bottleneck / ideal share; 1.0 means a perfectly even split."""
        ideal = self.total / self.length
        return self.bottleneck_cycles / ideal if ideal else 1.0

    def stage_names(self) -> list[list[str]]:
        return [[s.name for s in g] for g in self.groups]


def distribute_substages(
    stages: list[SubStage], num_pes: int
) -> StageDistribution:
    """Algorithm 1: evenly distribute sub-stages across ``num_pes`` PEs.

    Groups are filled in stage order (stages must execute in sequence on
    consecutive PEs, so no reordering is possible); a group stops accepting
    stages once its accumulated runtime reaches ``C / num_pes``; the final
    group absorbs the remainder.
    """
    if num_pes <= 0:
        raise ScheduleError(f"pipeline needs at least one PE, got {num_pes}")
    if not stages:
        raise ScheduleError("no sub-stages to distribute")
    if num_pes > len(stages):
        raise ScheduleError(
            f"pipeline of {num_pes} PEs longer than the {len(stages)} "
            f"sub-stages available"
        )
    if num_pes == 1:
        return StageDistribution(groups=(tuple(stages),))

    target = total_cycles(stages) / num_pes
    groups: list[tuple[SubStage, ...]] = []
    current: list[SubStage] = []
    current_cycles = 0.0
    remaining = list(stages)

    for gi in range(num_pes - 1):
        later_groups = num_pes - 1 - gi  # groups still to fill after this one
        current = []
        current_cycles = 0.0
        while remaining and current_cycles < target:
            # Never drain so far that a later group would go empty; the
            # num_pes <= len(stages) precondition keeps this satisfiable.
            if current and len(remaining) <= later_groups:
                break
            current.append(remaining.pop(0))
            current_cycles += current[-1].cycles
        groups.append(tuple(current))
    groups.append(tuple(remaining))
    return StageDistribution(groups=tuple(groups))


def counted_relay_schedule(
    position: int,
    slots: int,
    round_bases: "list[int] | tuple[int, ...]",
    total_blocks: int,
) -> tuple[tuple[int, int | None], ...]:
    """Closed-form Fig 9 counted-relay schedule for one relay position.

    A row round with block-index base ``b`` carries blocks
    ``b + (slots - 1 - p)`` for every position ``p`` whose index is still in
    range — i.e. the easternmost ``avail`` positions, where
    ``avail = clamp(total_blocks - b, 0, slots)``. From that, position
    ``position`` passes ``min(slots - 1 - position, avail)`` blocks east
    before (possibly) consuming its own. This replaces the O(slots)
    membership scan per schedule entry in the plan builders with two
    min/max expressions; the schedules are identical entry for entry
    (pinned by the golden snapshot tests), which is what makes full-wafer
    plan construction O(cols) per PE instead of O(cols^2).
    """
    if not (0 <= position < slots):
        raise ScheduleError(
            f"relay position {position} outside 0..{slots - 1}"
        )
    entries: list[tuple[int, int | None]] = []
    own_idx = slots - 1 - position
    for base in round_bases:
        avail = min(max(total_blocks - base, 0), slots)
        own = base + own_idx if own_idx < avail else None
        entries.append((min(slots - 1 - position, avail), own))
    return tuple(entries)


def max_feasible_pipeline_length(stages: list[SubStage]) -> int:
    """``floor(C / t1)``: beyond this, the longest stage is the bottleneck."""
    if not stages:
        raise ScheduleError("no sub-stages")
    t1 = max(s.cycles for s in stages)
    if t1 <= 0:
        raise ScheduleError("all sub-stages have zero cycles")
    return max(1, int(total_cycles(stages) // t1))


def estimate_fixed_length(
    data: np.ndarray,
    eps: float,
    *,
    block_size: int = BLOCK_SIZE,
    fraction: float = 0.05,
    seed: int = 0,
) -> int:
    """Estimate the dominant fixed length from a 5 % sample of blocks.

    The paper samples 5 % of the data points to approximate the fixed
    length "for various configurations, allowing for an estimation of the
    total execution time C" (end of Section 4.2). We sample whole blocks
    (a block is the unit the length belongs to) and return the *maximum*
    sampled fixed length — the conservative choice, since undersizing the
    shuffle stage count would leave bits with no pipeline stage to run on.
    """
    if not (0 < fraction <= 1):
        raise ScheduleError(f"sample fraction outside (0, 1]: {fraction}")
    codes = prequantize(np.asarray(data), eps)
    blocks, _ = partition_blocks(codes, block_size)
    num_blocks = blocks.shape[0]
    if num_blocks == 0:
        raise ScheduleError("no blocks to sample")
    rng = np.random.default_rng(seed)
    sample = max(1, int(round(num_blocks * fraction)))
    idx = rng.choice(num_blocks, size=min(sample, num_blocks), replace=False)
    residuals = lorenzo_predict(blocks[np.sort(idx)])
    fl = block_fixed_lengths(residuals)
    return int(fl.max(initial=0))
