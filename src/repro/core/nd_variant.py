"""CereSZ-ND: the higher-dimensional Lorenzo variant (thin alias).

The paper (Section 3, step 2) notes that CereSZ *can* support
multi-dimensional Lorenzo prediction — which aggregates more spatial
information and improves the ratio — but ships the 1-D block-local form
because it needs only the preceding point and keeps memory access
coalesced. This variant is now just the base codec with the registered
``nd`` whole-array predictor selected (see :mod:`repro.core.predictors`);
the former copy-paste ``compress`` override is gone, so CereSZ-ND gains
everything the base class has — the fused encode split, psnr/checksum
modes, and jobs-invariant sharding (whole-array predictors predict once,
then the shard engine parallelizes the block encode).

What changes and what does not:

* *Ratio*: on multi-dimensional fields the N-D residuals are narrower and
  blocks no longer carry an absolute "leader" value, so many more blocks
  hit the zero-block fast path — ratios rise toward the 32x cap.
* *Mapping*: decompression needs the N-D prefix-sum reconstruction over
  the full array, which is **not** block-local — this predictor cannot
  run block-parallel on the wafer without inter-PE communication. That is
  precisely the trade the paper declines (the ``whole_array`` locality
  contract); CereSZ-ND is a host-side extension, and its existence
  documents the cost of the wafer's constraint.

Streams carry the predictor in the container header, so either
compressor's ``decompress`` reconstructs correctly.
"""

from __future__ import annotations

from repro.config import BLOCK_SIZE, CERESZ_HEADER_BYTES
from repro.core.compressor import CereSZ


class CereSZND(CereSZ):
    """CereSZ with full-array N-D Lorenzo prediction (host-side extension).

    Equivalent to ``CereSZ(predictor="nd")``; kept as a named class for
    the benchmark tables and backwards compatibility.
    """

    name = "CereSZ-ND"
    device = "CS-2"

    def __init__(
        self,
        block_size: int = BLOCK_SIZE,
        header_width: int = CERESZ_HEADER_BYTES,
        *,
        fast: bool = True,
        predictor: str = "nd",
    ):
        super().__init__(
            block_size, header_width, fast=fast, predictor=predictor
        )
