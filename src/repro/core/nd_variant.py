"""CereSZ-ND: the higher-dimensional Lorenzo variant.

The paper (Section 3, step 2) notes that CereSZ *can* support
multi-dimensional Lorenzo prediction — which aggregates more spatial
information and improves the ratio — but ships the 1-D block-local form
because it needs only the preceding point and keeps memory access
coalesced. This module implements the extension: the same container and
fixed-length block encoding, with residuals produced by the N-D Lorenzo
operator over the whole array.

What changes and what does not:

* *Ratio*: on multi-dimensional fields the N-D residuals are narrower and
  blocks no longer carry an absolute "leader" value, so many more blocks
  hit the zero-block fast path — ratios rise toward the 32x cap.
* *Mapping*: decompression now needs the N-D prefix-sum reconstruction
  over the full array, which is **not** block-local — this variant cannot
  run block-parallel on the wafer without inter-PE communication. That is
  precisely the trade the paper declines; CereSZ-ND is a host-side
  extension, and its existence documents the cost of the wafer's
  constraint.

Streams are tagged with the ND-predictor flag so either compressor's
``decompress`` reconstructs correctly.
"""

from __future__ import annotations

import numpy as np

from repro.config import BLOCK_SIZE, CERESZ_HEADER_BYTES
from repro.errors import CompressionError
from repro.core.blocks import partition_blocks
from repro.core.compressor import CereSZ, CompressionResult, assemble_stream
from repro.core.encoding import block_fixed_lengths, encode_blocks
from repro.core.format import make_header
from repro.core.lorenzo import lorenzo_predict_nd
from repro.core.quantize import prequantize_verified


class CereSZND(CereSZ):
    """CereSZ with full-array N-D Lorenzo prediction (host-side extension)."""

    name = "CereSZ-ND"
    device = "CS-2"

    def compress(
        self,
        data: np.ndarray,
        *,
        eps: float | None = None,
        rel: float | None = None,
        index: bool | None = None,
        jobs: int | None = None,
    ) -> CompressionResult:
        if jobs is not None:
            from repro.core.parallel import compress_sharded

            # Shards are flat slices, so each shard's "N-D" prediction
            # degenerates to 1-D over its slice — self-consistent, but a
            # different stream than whole-array prediction.
            return compress_sharded(
                data,
                eps=eps,
                rel=rel,
                codec=self,
                jobs=jobs,
                index=True if index is None else index,
            )
        index = bool(index)
        arr = np.asarray(data)
        if arr.size == 0:
            raise CompressionError("cannot compress an empty array")
        if not np.issubdtype(arr.dtype, np.floating):
            raise CompressionError(
                f"CereSZ-ND compresses floating-point fields, got {arr.dtype}"
            )
        bound = self.resolve_error_bound(arr, eps, rel)
        out_dtype = np.float64 if arr.dtype == np.float64 else np.float32
        if bound is None:
            return self._compress_constant(arr)

        codes, eps_eff = prequantize_verified(arr, bound, dtype=out_dtype)
        residuals_nd = lorenzo_predict_nd(codes.reshape(arr.shape))
        blocks, n = partition_blocks(residuals_nd, self.block_size)
        fl = block_fixed_lengths(blocks)
        body = encode_blocks(blocks, self.header_width)
        header = make_header(
            arr.shape,
            eps_eff,
            header_width=self.header_width,
            block_size=self.block_size,
            predictor="nd",
            dtype="f8" if out_dtype == np.float64 else "f4",
            indexed=index,
        )
        return CompressionResult(
            stream=assemble_stream(header, fl, body),
            eps=bound,
            original_bytes=n * arr.dtype.itemsize,
            shape=tuple(arr.shape),
            fixed_lengths=fl,
            zero_block_fraction=float(np.mean(fl == 0)) if fl.size else 0.0,
        )

    # decompress is inherited: the base CereSZ dispatches on the stream's
    # predictor flag (and handles indexed v2 and sharded containers).
