"""CereSZ-ND: the higher-dimensional Lorenzo variant.

The paper (Section 3, step 2) notes that CereSZ *can* support
multi-dimensional Lorenzo prediction — which aggregates more spatial
information and improves the ratio — but ships the 1-D block-local form
because it needs only the preceding point and keeps memory access
coalesced. This module implements the extension: the same container and
fixed-length block encoding, with residuals produced by the N-D Lorenzo
operator over the whole array.

What changes and what does not:

* *Ratio*: on multi-dimensional fields the N-D residuals are narrower and
  blocks no longer carry an absolute "leader" value, so many more blocks
  hit the zero-block fast path — ratios rise toward the 32x cap.
* *Mapping*: decompression now needs the N-D prefix-sum reconstruction
  over the full array, which is **not** block-local — this variant cannot
  run block-parallel on the wafer without inter-PE communication. That is
  precisely the trade the paper declines; CereSZ-ND is a host-side
  extension, and its existence documents the cost of the wafer's
  constraint.

Streams are tagged with the ND-predictor flag so either compressor's
``decompress`` reconstructs correctly.
"""

from __future__ import annotations

import numpy as np

from repro.config import BLOCK_SIZE, CERESZ_HEADER_BYTES
from repro.errors import CompressionError
from repro.core.blocks import merge_blocks, partition_blocks
from repro.core.compressor import CereSZ, CompressionResult
from repro.core.encoding import (
    block_fixed_lengths,
    decode_blocks,
    encode_blocks,
)
from repro.core.format import StreamHeader, make_header
from repro.core.lorenzo import lorenzo_predict_nd, lorenzo_reconstruct_nd
from repro.core.quantize import dequantize, prequantize_verified


class CereSZND(CereSZ):
    """CereSZ with full-array N-D Lorenzo prediction (host-side extension)."""

    name = "CereSZ-ND"
    device = "CS-2"

    def compress(
        self,
        data: np.ndarray,
        *,
        eps: float | None = None,
        rel: float | None = None,
    ) -> CompressionResult:
        arr = np.asarray(data)
        if arr.size == 0:
            raise CompressionError("cannot compress an empty array")
        if not np.issubdtype(arr.dtype, np.floating):
            raise CompressionError(
                f"CereSZ-ND compresses floating-point fields, got {arr.dtype}"
            )
        bound = self.resolve_error_bound(arr, eps, rel)
        out_dtype = np.float64 if arr.dtype == np.float64 else np.float32
        if bound is None:
            return self._compress_constant(arr)

        codes, eps_eff = prequantize_verified(arr, bound, dtype=out_dtype)
        residuals_nd = lorenzo_predict_nd(codes.reshape(arr.shape))
        blocks, n = partition_blocks(residuals_nd, self.block_size)
        fl = block_fixed_lengths(blocks)
        body = encode_blocks(blocks, self.header_width)
        header = make_header(
            arr.shape,
            eps_eff,
            header_width=self.header_width,
            block_size=self.block_size,
            predictor="nd",
            dtype="f8" if out_dtype == np.float64 else "f4",
        )
        stream = header.pack() + body
        return CompressionResult(
            stream=stream,
            eps=bound,
            original_bytes=n * arr.dtype.itemsize,
            shape=tuple(arr.shape),
            fixed_lengths=fl,
            zero_block_fraction=float(np.mean(fl == 0)) if fl.size else 0.0,
        )

    def decompress(self, stream: bytes) -> np.ndarray:
        header, offset = StreamHeader.unpack(stream)
        out_dtype = np.float64 if header.dtype == "f8" else np.float32
        if header.constant is not None:
            return np.full(header.shape, header.constant, dtype=out_dtype)
        if header.predictor != "nd":
            # A blocked-1D stream: defer to the base reconstruction.
            return super().decompress(stream)
        residual_blocks = decode_blocks(
            stream,
            header.num_blocks,
            header.block_size,
            header.header_width,
            start=offset,
        )
        flat = merge_blocks(residual_blocks, header.num_elements)
        codes = lorenzo_reconstruct_nd(flat.reshape(header.shape))
        return dequantize(codes, header.eps, dtype=out_dtype).reshape(
            header.shape
        )
