"""Block partitioning.

CereSZ divides the flattened input into fixed-size blocks of consecutive
elements (paper Section 3; block size 32 in the evaluated configuration,
chosen because the fabric moves 16/32-bit units and 32 gave the best ratio).
A short tail is zero-padded to a full block; the original element count in
the stream header lets decompression trim the padding.
"""

from __future__ import annotations

import numpy as np

from repro.config import BLOCK_SIZE
from repro.errors import CompressionError


def validate_block_size(block_size: int) -> int:
    """Block sizes must be positive multiples of 8.

    Multiples of 8 keep sign/payload bit-packing byte-aligned; the device
    additionally wants multiples of 16 for its transfer granularity, which
    the default of 32 satisfies.
    """
    block_size = int(block_size)
    if block_size <= 0 or block_size % 8 != 0:
        raise CompressionError(
            f"block size must be a positive multiple of 8, got {block_size}"
        )
    return block_size


def partition_blocks(
    data: np.ndarray, block_size: int = BLOCK_SIZE
) -> tuple[np.ndarray, int]:
    """Flatten ``data`` and reshape to ``(num_blocks, block_size)``.

    Returns the 2-D block view and the original element count. The tail
    block, if partial, is padded with zeros (zeros quantize to zero codes,
    so padding compresses to nothing and never violates the error bound of
    real elements).
    """
    block_size = validate_block_size(block_size)
    flat = np.asarray(data).reshape(-1)
    n = flat.size
    num_blocks = -(-n // block_size) if n else 0
    padded = np.zeros(num_blocks * block_size, dtype=flat.dtype)
    padded[:n] = flat
    return padded.reshape(num_blocks, block_size), n


def merge_blocks(blocks: np.ndarray, n: int) -> np.ndarray:
    """Inverse of :func:`partition_blocks`: flatten and trim padding."""
    arr = np.asarray(blocks)
    if arr.ndim != 2:
        raise CompressionError(
            f"merge_blocks expects a 2-D block array, got shape {arr.shape}"
        )
    flat = arr.reshape(-1)
    if n > flat.size:
        raise CompressionError(
            f"cannot trim to {n} elements, blocks only hold {flat.size}"
        )
    return flat[:n]


def zero_block_mask(residuals: np.ndarray) -> np.ndarray:
    """Boolean mask of blocks whose residuals are entirely zero.

    Zero blocks store only their header (fixed length 0) — the paper's
    explanation for why looser error bounds *increase* throughput
    (Section 5.2): more zero blocks means less encoding work.
    """
    arr = np.asarray(residuals)
    if arr.ndim != 2:
        raise CompressionError(
            f"zero_block_mask expects a 2-D block array, got shape {arr.shape}"
        )
    return ~np.any(arr, axis=1)
