"""Fixed-length encoding (compression step 3) and its decoder.

Per block the encoder runs the four sub-stages of the paper's Table 3:

``Sign``
    split residuals into sign bits and magnitudes;
``Max``
    find the maximum magnitude;
``GetLength``
    its effective bit count *f* — the block's "fixed length";
``Bit-shuffle``
    transpose the low *f* bits of all magnitudes into *f* groups of
    ``L/8`` bytes: byte group *k* holds bit *k* of every element
    (paper Figure 8).

The on-stream record for a block is::

    [ header: fixed length f ][ L/8 sign bytes ][ f * L/8 payload bytes ]

where the header is 4 bytes for CereSZ (the wafer's 32-bit message
granularity, Section 5.1.1) or 1 byte for the SZp/cuSZp baselines. A zero
block (f = 0) stores the header only — no signs, no payload — capping the
best-case ratio at 32x for CereSZ and 128x for SZp (visible as the 31.99 /
127.94 ceilings in the paper's Table 5).

Everything is vectorized by grouping blocks with equal fixed length, so the
encoder performs O(distinct fixed lengths) numpy passes rather than one per
block. Decoding of a bare v1 stream must walk the headers sequentially
(record sizes are data dependent) but unpacks payloads group-wise the same
way. Indexed (container v2) streams ship the fixed lengths up front, so
:func:`index_record_offsets` replaces the walk with one ``cumsum``.

Group writes and reads move bytes column-by-column within a group (all
records of a group share one length), so the transient state per group is
one ``(g,)`` offset vector — not the ``(g, record_len)`` int64 fancy-index
matrix an all-at-once gather would need, which costs 8x the payload it
moves and dominated peak memory on large fields.
"""

from __future__ import annotations

import numpy as np

from repro.config import CERESZ_HEADER_BYTES, SZP_HEADER_BYTES
from repro.errors import CompressionError, FormatError

#: Residual magnitudes must fit below 2**63 for the sign/magnitude split;
#: the quantizer's MAX_QUANT_BITS guard keeps us far away from this anyway.
_MAX_FL = 63

#: Power-of-two table driving the exact bit-length computation: for a
#: uint64 magnitude m >= 1, the number of table entries <= m is exactly
#: ``m.bit_length()`` (and 0 for m == 0, since no power is <= 0).
_POW2 = np.uint64(1) << np.arange(64, dtype=np.uint64)


def exact_bit_lengths(mags: np.ndarray) -> np.ndarray:
    """Exact integer bit length of each uint64 magnitude, vectorized.

    ``floor(log2(float64(m))) + 1`` is wrong at the float64 rounding edge:
    ``log2(2**k - 1)`` rounds up to exactly ``k`` once ``k >= 49`` (and all
    integers at or above ``2**53`` lose bits in the cast), misreporting the
    fixed length by one. A binary search against the power-of-two table is
    exact over the full uint64 range and still one vectorized call.
    """
    mags = np.asarray(mags, dtype=np.uint64)
    return np.searchsorted(_POW2, mags, side="right").astype(np.int64)


def block_fixed_lengths(residuals: np.ndarray) -> np.ndarray:
    """The per-block fixed length: effective bits of the max |residual|.

    Returns an int64 array of shape ``(num_blocks,)``; zero blocks get 0.
    Exact for every int64 residual: magnitudes are compared as uint64 (so
    even ``|int64 min| = 2**63`` reports 64 bits and is rejected downstream
    rather than silently encoding as a zero block).
    """
    arr = _as_blocks(residuals)
    # abs(int64 min) wraps to itself; the uint64 view reads that bit
    # pattern as the true magnitude 2**63, and every other magnitude
    # unchanged — no value range is silently misreported.
    mags = np.abs(arr).view(np.uint64)
    maxima = (
        mags.max(axis=1) if arr.size else np.zeros(arr.shape[0], dtype=np.uint64)
    )
    return exact_bit_lengths(maxima)


def record_sizes(
    fl: np.ndarray, block_size: int, header_bytes: int
) -> np.ndarray:
    """Stream bytes of each block record given its fixed length."""
    fl = np.asarray(fl, dtype=np.int64)
    sign_bytes = block_size // 8
    sizes = np.full(fl.shape, header_bytes, dtype=np.int64)
    nz = fl > 0
    sizes[nz] += sign_bytes + fl[nz] * (block_size // 8)
    return sizes


def pack_block_index(fl: np.ndarray) -> bytes:
    """Pack per-block fixed lengths into the container-v2 index table.

    One byte per block: fl <= 63 always fits (``_MAX_FL`` is enforced at
    encode time), and at block size 32 the table costs 1/128 of the raw
    data — cheaper than the 4-byte record headers it duplicates.
    """
    fl = np.asarray(fl, dtype=np.int64)
    if fl.size and (int(fl.min()) < 0 or int(fl.max()) > _MAX_FL):
        raise FormatError("fixed length outside [0, 63]; cannot build index")
    return fl.astype(np.uint8).tobytes()


def unpack_block_index(
    stream: bytes | np.ndarray, num_blocks: int, start: int = 0
) -> tuple[np.ndarray, int]:
    """Read the v2 fl table; returns (fixed lengths, offset past the table)."""
    buf = _as_u8(stream)
    if num_blocks < 0:
        raise FormatError(f"negative block count {num_blocks}")
    if start + num_blocks > buf.size:
        raise FormatError(
            f"stream truncated in block index (need {num_blocks} bytes at "
            f"offset {start}, stream {buf.size} bytes)"
        )
    fls = buf[start : start + num_blocks].astype(np.int64)
    if fls.size and int(fls.max()) > _MAX_FL:
        raise FormatError("invalid fixed length in block index")
    return fls, start + num_blocks


def index_record_offsets(
    fls: np.ndarray,
    block_size: int,
    header_bytes: int = CERESZ_HEADER_BYTES,
    start: int = 0,
    stream_size: int | None = None,
) -> np.ndarray:
    """Vectorized counterpart of :func:`scan_record_offsets`.

    Given the fixed lengths from a container-v2 index table, every record
    offset is one ``cumsum`` away — no per-block Python loop. When
    ``stream_size`` is supplied the computed extent is bounds-checked, so
    downstream decoding can trust the offsets without re-validating.
    """
    _check_header_bytes(header_bytes)
    fls = np.asarray(fls, dtype=np.int64)
    if fls.size and (int(fls.min()) < 0 or int(fls.max()) > _MAX_FL):
        raise FormatError("invalid fixed length in block index")
    sizes = record_sizes(fls, block_size, header_bytes)
    ends = start + np.cumsum(sizes)
    if stream_size is not None and fls.size and int(ends[-1]) > stream_size:
        raise FormatError(
            f"stream truncated: indexed records need {int(ends[-1])} bytes, "
            f"have {stream_size}"
        )
    return ends - sizes


def pack_records(
    mags: np.ndarray,
    negs: np.ndarray,
    fl: np.ndarray,
    header_bytes: int = CERESZ_HEADER_BYTES,
) -> np.ndarray:
    """Pack prepared sign/magnitude blocks into fixed-length record bytes.

    The optimized packing core of the fused fast path
    (``core.fastpath``). It emits records byte-identical to
    :func:`encode_blocks`, but the two deliberately do *not* share the
    bit-shuffle implementation: ``encode_blocks`` stays the readable
    shift-and-mask reference that serves as the independent oracle, while
    this core routes the shuffle through uint8 byte lanes and
    ``unpackbits``/``packbits`` (an order of magnitude less memory
    traffic). The equivalence is enforced by the property suite in
    ``tests/core/test_fastpath.py``.

    ``mags`` is the ``(num_blocks, L)`` uint64 magnitude array, ``negs``
    the matching sign mask (bool or uint8), ``fl`` the per-block fixed
    lengths. Returns the packed uint8 record array (records laid out back
    to back).
    """
    mags = np.ascontiguousarray(mags, dtype=np.uint64)
    fl = np.asarray(fl, dtype=np.int64)
    _check_header_bytes(header_bytes)
    num_blocks, block_size = mags.shape
    if block_size % 8:
        raise CompressionError("block size must be a multiple of 8")
    if header_bytes == SZP_HEADER_BYTES and int(fl.max(initial=0)) > 0xFF:
        raise FormatError("fixed length does not fit the 1-byte SZp header")
    if int(fl.max(initial=0)) > _MAX_FL:
        raise FormatError(f"fixed length exceeds {_MAX_FL} bits")
    if int(fl.min(initial=0)) < 0:
        raise FormatError("negative fixed length")

    sizes = record_sizes(fl, block_size, header_bytes)
    offsets = np.zeros(num_blocks + 1, dtype=np.int64)
    np.cumsum(sizes, out=offsets[1:])
    out = np.zeros(int(offsets[-1]), dtype=np.uint8)

    # Headers (vectorized little-endian write).
    for byte in range(header_bytes):
        out[offsets[:-1] + byte] = (fl >> (8 * byte)).astype(np.uint8)

    sign_bytes = block_size // 8

    negs = np.ascontiguousarray(negs)
    # Little-endian byte lanes of each magnitude: lane b of element j is
    # bits 8b..8b+7 — the raw material of the bit-shuffle.
    lanes = mags.astype("<u8", copy=False).view(np.uint8).reshape(
        num_blocks, block_size, 8
    )

    # ``bincount`` beats ``unique`` here (no sort), and zero blocks — the
    # majority on well-compressed fields — never touch the sign/payload
    # machinery at all: their records are header-only.
    present = np.nonzero(np.bincount(fl, minlength=_MAX_FL + 1))[0]
    for f in present:
        f = int(f)
        if f == 0:
            continue
        idx = np.nonzero(fl == f)[0]
        g = len(idx)
        # Sign bytes for this group only (element j -> bit j%8 of sign
        # byte j//8). Packing per group instead of once over every block
        # skips the zero blocks entirely.
        signs = np.packbits(
            np.ascontiguousarray(negs[idx]).reshape(g, sign_bytes, 8),
            axis=-1,
            bitorder="little",
        ).reshape(g, sign_bytes)
        # Bit-shuffle: byte group k carries bit k of all elements (Fig 8).
        # Unpack only the lanes that hold the low f bits, transpose so the
        # bit-plane axis leads, and re-pack along elements — this moves
        # ~f*L bits per block instead of the 64*f*L a shift-mask over
        # uint64 magnitudes would stream.
        nlanes = (f + 7) // 8
        bits = np.unpackbits(
            lanes[idx, :, :nlanes], axis=-1, bitorder="little"
        )  # (g, L, nlanes*8): bit j of element, little-endian
        planes = np.ascontiguousarray(bits.transpose(0, 2, 1)[:, :f, :])
        payload = np.packbits(
            planes.reshape(g, f, sign_bytes, 8), axis=-1, bitorder="little"
        ).reshape(g, f * sign_bytes)

        body = np.concatenate([signs, payload], axis=1)
        # Column-wise scatter: the loop is bounded by the record length
        # (<= 256 iterations at block size 32), not the block count.
        starts = offsets[idx] + header_bytes
        for col in range(body.shape[1]):
            out[starts + col] = body[:, col]

    return out


def encode_blocks(
    residuals: np.ndarray, header_bytes: int = CERESZ_HEADER_BYTES
) -> bytes:
    """Fixed-length-encode a ``(num_blocks, L)`` residual array.

    ``header_bytes`` selects the CereSZ (4) or SZp (1) header width.
    This is the reference encoder — a direct shift-and-mask transcription
    of the paper's bit-shuffle, kept independent of the fast path's
    :func:`pack_records` so each can serve as the other's oracle.
    """
    arr = _as_blocks(residuals)
    _check_header_bytes(header_bytes)
    num_blocks, block_size = arr.shape
    if block_size % 8:
        raise CompressionError("block size must be a multiple of 8")
    fl = block_fixed_lengths(arr)
    if header_bytes == SZP_HEADER_BYTES and int(fl.max(initial=0)) > 0xFF:
        raise FormatError("fixed length does not fit the 1-byte SZp header")
    if int(fl.max(initial=0)) > _MAX_FL:
        raise FormatError(f"fixed length exceeds {_MAX_FL} bits")

    sizes = record_sizes(fl, block_size, header_bytes)
    offsets = np.zeros(num_blocks + 1, dtype=np.int64)
    np.cumsum(sizes, out=offsets[1:])
    out = np.zeros(int(offsets[-1]), dtype=np.uint8)

    # Headers (vectorized little-endian write).
    for byte in range(header_bytes):
        out[offsets[:-1] + byte] = (fl >> (8 * byte)).astype(np.uint8)

    mags = np.abs(arr).view(np.uint64)
    negs = (arr < 0).astype(np.uint8)
    sign_bytes = block_size // 8

    for f in np.unique(fl):
        f = int(f)
        if f == 0:
            continue
        idx = np.nonzero(fl == f)[0]
        # Sign bytes: element j -> bit j%8 of sign byte j//8.
        packed_signs = np.packbits(
            negs[idx].reshape(len(idx), sign_bytes, 8), axis=-1, bitorder="little"
        ).reshape(len(idx), sign_bytes)
        # Bit-shuffle: byte group k carries bit k of all elements (Fig 8).
        shifts = np.arange(f, dtype=np.uint64)[None, :, None]
        bits = ((mags[idx][:, None, :] >> shifts) & 1).astype(np.uint8)
        payload = np.packbits(
            bits.reshape(len(idx), f, sign_bytes, 8), axis=-1, bitorder="little"
        ).reshape(len(idx), f * sign_bytes)

        body = np.concatenate([packed_signs, payload], axis=1)
        # Column-wise scatter: the loop is bounded by the record length
        # (<= 256 iterations at block size 32), not the block count.
        starts = offsets[idx] + header_bytes
        for col in range(body.shape[1]):
            out[starts + col] = body[:, col]

    return out.tobytes()


def scan_record_offsets(
    stream: bytes | np.ndarray,
    num_blocks: int,
    block_size: int,
    header_bytes: int = CERESZ_HEADER_BYTES,
    start: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Walk the headers and return (offsets, fixed lengths) per block.

    This is the sequential part of decoding: record sizes depend on the
    headers, so offsets are discovered one block at a time — but it is the
    *only* sequential part, and it reads headers, not payloads.
    """
    _check_header_bytes(header_bytes)
    buf = _as_u8(stream)
    if num_blocks < 0:
        raise FormatError(f"negative block count {num_blocks}")
    # Every block record is at least one header wide; a block count that
    # cannot fit the stream indicates corruption and must be rejected
    # before any O(num_blocks) allocation happens.
    if num_blocks * header_bytes > max(0, buf.size - start):
        raise FormatError(
            f"stream of {buf.size} bytes cannot hold {num_blocks} block "
            f"records"
        )
    sign_bytes = block_size // 8
    offsets = np.empty(num_blocks, dtype=np.int64)
    fls = np.empty(num_blocks, dtype=np.int64)
    pos = start
    n = buf.size
    for i in range(num_blocks):
        if pos + header_bytes > n:
            raise FormatError(
                f"stream truncated in header of block {i} "
                f"(offset {pos}, stream {n} bytes)"
            )
        f = 0
        for byte in range(header_bytes):
            f |= int(buf[pos + byte]) << (8 * byte)
        if f > _MAX_FL:
            raise FormatError(f"block {i}: invalid fixed length {f}")
        offsets[i] = pos
        fls[i] = f
        pos += header_bytes
        if f:
            pos += sign_bytes + f * sign_bytes
    if pos > n:
        raise FormatError(
            f"stream truncated in payload of final block (need {pos}, have {n})"
        )
    return offsets, fls


def decode_blocks(
    stream: bytes | np.ndarray,
    num_blocks: int,
    block_size: int,
    header_bytes: int = CERESZ_HEADER_BYTES,
    start: int = 0,
    *,
    offsets: np.ndarray | None = None,
    fls: np.ndarray | None = None,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Decode a fixed-length-encoded stream back to int64 residuals.

    Without ``offsets``/``fls`` the record layout is discovered by the
    sequential header walk of :func:`scan_record_offsets`. Callers holding
    a container-v2 index pass both (from :func:`unpack_block_index` and
    :func:`index_record_offsets`) and skip the walk entirely.

    ``out`` accepts a preallocated ``(num_blocks, block_size)`` int64
    buffer (the fused decoder reuses one scratch chunk across the whole
    stream); rows of zero blocks are cleared, so stale contents are safe.
    """
    buf = _as_u8(stream)
    if offsets is None or fls is None:
        offsets, fls = scan_record_offsets(
            buf, num_blocks, block_size, header_bytes, start
        )
    else:
        offsets = np.asarray(offsets, dtype=np.int64)
        fls = np.asarray(fls, dtype=np.int64)
        if offsets.shape != (num_blocks,) or fls.shape != (num_blocks,):
            raise FormatError(
                f"block index shape mismatch: {num_blocks} blocks, "
                f"{offsets.shape[0]} offsets, {fls.shape[0]} fixed lengths"
            )
        if fls.size and (int(fls.min()) < 0 or int(fls.max()) > _MAX_FL):
            raise FormatError("invalid fixed length in block index")
        ends = offsets + record_sizes(fls, block_size, header_bytes)
        if num_blocks and (
            int(offsets.min()) < 0 or int(ends.max()) > buf.size
        ):
            raise FormatError("block index points outside the stream")
    if out is None:
        out = np.zeros((num_blocks, block_size), dtype=np.int64)
    else:
        if out.shape != (num_blocks, block_size) or out.dtype != np.int64:
            raise FormatError(
                f"decode buffer must be int64 {(num_blocks, block_size)}, "
                f"got {out.dtype} {out.shape}"
            )
        zero_rows = fls == 0
        if zero_rows.any():
            out[zero_rows] = 0
    sign_bytes = block_size // 8

    for f in np.unique(fls):
        f = int(f)
        if f == 0:
            continue
        idx = np.nonzero(fls == f)[0]
        body_len = sign_bytes + f * sign_bytes
        # Column-wise gather (see the module docstring): transient state is
        # one (g,) offset vector, not a (g, body_len) int64 index matrix.
        starts = offsets[idx] + header_bytes
        body = np.empty((len(idx), body_len), dtype=np.uint8)
        for col in range(body_len):
            body[:, col] = buf[starts + col]
        sign_part = body[:, :sign_bytes]
        payload = body[:, sign_bytes:]

        negs = np.unpackbits(sign_part, axis=-1, bitorder="little")
        bits = np.unpackbits(
            payload.reshape(len(idx), f, sign_bytes), axis=-1, bitorder="little"
        ).reshape(len(idx), f, block_size)
        # Reassemble magnitudes bytewise: OR each run of eight bit planes
        # into one byte lane, then view the eight lanes per element as a
        # little-endian uint64 — f uint8 passes and one widening instead
        # of f int64 passes (or a (g, f, L) int64 tensor).
        lanes = np.zeros((len(idx), block_size, 8), dtype=np.uint8)
        for b in range((f + 7) // 8):
            lo = 8 * b
            acc = bits[:, lo, :].copy()
            for k in range(lo + 1, min(lo + 8, f)):
                acc |= bits[:, k, :] << np.uint8(k - lo)
            lanes[:, :, b] = acc
        mags = (
            lanes.reshape(len(idx), block_size * 8)
            .view(np.dtype("<u8"))
            .astype(np.int64)
        )
        np.negative(mags, out=mags, where=negs.view(bool))
        out[idx] = mags

    return out


def _as_u8(stream: bytes | np.ndarray) -> np.ndarray:
    if isinstance(stream, (bytes, bytearray, memoryview)):
        return np.frombuffer(stream, dtype=np.uint8)
    return np.asarray(stream, dtype=np.uint8)


def _as_blocks(residuals: np.ndarray) -> np.ndarray:
    arr = np.asarray(residuals)
    if arr.ndim != 2:
        raise CompressionError(
            f"expected a (num_blocks, block_size) array, got shape {arr.shape}"
        )
    if not np.issubdtype(arr.dtype, np.integer):
        raise CompressionError(f"residuals must be integers, got {arr.dtype}")
    return arr.astype(np.int64, copy=False)


def _check_header_bytes(header_bytes: int) -> None:
    if header_bytes not in (CERESZ_HEADER_BYTES, SZP_HEADER_BYTES):
        raise FormatError(
            f"header width must be {CERESZ_HEADER_BYTES} (CereSZ) or "
            f"{SZP_HEADER_BYTES} (SZp), got {header_bytes}"
        )
