"""Mapping CereSZ *decompression* onto the simulated wafer.

The paper's Section 4.2 closes with the decompression mapping: the reverse
Bit-shuffle splits per byte group, while the prefix sum (reverse Lorenzo)
and the de-quantization multiply are indivisible; Algorithm 1 distributes
those sub-stages the same way. This module implements the row-parallel
decompression program with the wrinkle that makes it interesting on a
dataflow machine: *compressed records have data-dependent length*, so a PE
cannot post one fixed-extent receive per block. Instead it receives in two
phases — the 4-byte header word first (one wavelet), which tells it the
block's fixed length, then the ``1 + fl`` words of signs and payload.
Zero blocks (fl = 0) have no second phase at all, which is exactly the
short-circuit that makes decompression faster at loose bounds.

Record-to-wavelet packing (CereSZ's 32-bit message rule, block size 32):

* word 0: the fixed length (the 4-byte little-endian header);
* word 1: the 4 sign bytes (absent when fl = 0);
* words 2..fl+1: one 4-byte bit-plane group each (paper Fig 8).
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field

import numpy as np

from repro.config import BLOCK_SIZE, CERESZ_HEADER_BYTES
from repro.errors import CompressionError
from repro.core.encoding import scan_record_offsets
from repro.core.stages import decompression_substages
from repro.wse.color import ColorAllocator
from repro.wse.cost import CycleModel, PAPER_CYCLE_MODEL
from repro.wse.dsd import FabinDsd, Mem1dDsd
from repro.wse.engine import Engine
from repro.wse.fabric import Fabric
from repro.wse.pe import Task, TaskContext
from repro.wse.wavelet import Direction


@dataclass
class DecompressOutputs:
    """Host-side collection of reconstructed blocks."""

    blocks: dict[int, np.ndarray] = dataclass_field(default_factory=dict)

    def assemble(self, num_blocks: int, block_size: int) -> np.ndarray:
        missing = [i for i in range(num_blocks) if i not in self.blocks]
        if missing:
            raise CompressionError(
                f"simulation produced no output for blocks {missing[:8]}"
                + ("..." if len(missing) > 8 else "")
            )
        out = np.empty((num_blocks, block_size), dtype=np.float32)
        for i in range(num_blocks):
            out[i] = self.blocks[i]
        return out


def records_to_words(
    body: bytes, num_blocks: int, block_size: int
) -> list[tuple[np.ndarray, np.ndarray | None]]:
    """Split a CereSZ body into per-block (header word, body words).

    Requires the 4-byte-header format with a word-aligned block size.
    """
    if block_size % 32:
        raise CompressionError(
            "wafer decompression requires a 32-multiple block size "
            "(word-aligned sign bytes)"
        )
    buf = np.frombuffer(body, dtype=np.uint8)
    offsets, fls = scan_record_offsets(
        buf, num_blocks, block_size, CERESZ_HEADER_BYTES
    )
    out = []
    sign_words = block_size // 32
    for off, fl in zip(offsets, fls):
        header = buf[off : off + 4].view(np.uint32).copy()
        if fl == 0:
            out.append((header, None))
            continue
        body_bytes = (sign_words + int(fl) * sign_words) * 4
        start = int(off) + 4
        words = buf[start : start + body_bytes].view(np.uint32).copy()
        out.append((header, words))
    return out


def decode_block_from_words(
    fl: int, words: np.ndarray | None, eps: float, block_size: int
) -> np.ndarray:
    """The PE decode kernel: words -> float32 values (exact reference math)."""
    if fl == 0 or words is None:
        return np.zeros(block_size, dtype=np.float32)
    sign_words = block_size // 32
    raw = words.astype(np.uint32).tobytes()
    body = np.frombuffer(raw, dtype=np.uint8)
    signs = np.unpackbits(
        body[: sign_words * 4], bitorder="little"
    ).astype(bool)
    planes = body[sign_words * 4 :].reshape(fl, sign_words * 4)
    bits = np.unpackbits(planes, axis=-1, bitorder="little")
    weights = (np.int64(1) << np.arange(fl, dtype=np.int64))[:, None]
    mags = (bits.astype(np.int64) * weights).sum(axis=0)
    mags[signs] = -mags[signs]
    codes = np.cumsum(mags, dtype=np.int64)  # reverse Lorenzo (prefix sum)
    return (codes.astype(np.float64) * (2.0 * eps)).astype(np.float32)


def build_row_parallel_decompress_program(
    fabric: Fabric,
    engine: Engine,
    body: bytes,
    num_blocks: int,
    eps: float,
    *,
    block_size: int = BLOCK_SIZE,
    model: CycleModel = PAPER_CYCLE_MODEL,
) -> DecompressOutputs:
    """Whole-block decompression on the first PE of each row.

    Block ``i`` goes to row ``i % rows``. Each PE alternates between the
    ``header`` task (receive one word, learn ``fl``) and the ``body`` task
    (receive ``1 + fl`` words, decode, emit) — the data-dependent receive
    chain that fixed-extent compression does not need.
    """
    from repro.core.lower import lower_plan
    from repro.core.plan import plan_row_parallel_decompress

    plan = plan_row_parallel_decompress(
        body,
        num_blocks,
        eps,
        rows=fabric.rows,
        cols=fabric.cols,
        block_size=block_size,
    )
    return lower_plan(plan, fabric, engine, model=model).outputs


# --- pipeline-parallel decompression (Algorithm 1 over reverse sub-stages) ---

_D_PHASES = ("encoded", "mags", "signed", "codes", "values")


@dataclass
class DecompressState:
    """One block's state between decompression pipeline sub-stages.

    Starts as the raw record (fixed length, sign bytes, bit-plane words);
    per-bit unshuffle stages accumulate magnitudes, then signs are applied,
    the prefix sum reverses Lorenzo, and the de-quantization multiply
    produces values.
    """

    phase: str
    block_size: int
    fl: int
    values: np.ndarray  # mags -> residuals -> codes -> float values
    signs: np.ndarray  # uint8 sign bytes (block_size / 8)
    planes: np.ndarray  # uint32 bit-plane words, fl entries
    bits_done: int = 0

    def to_array(self) -> np.ndarray:
        header = np.array(
            [
                _D_PHASES.index(self.phase),
                self.block_size,
                self.fl,
                self.bits_done,
            ],
            dtype=np.float64,
        )
        return np.concatenate(
            [
                header,
                np.asarray(self.values, dtype=np.float64),
                self.signs.astype(np.float64),
                self.planes.astype(np.float64),
            ]
        )

    @classmethod
    def from_array(cls, arr: np.ndarray) -> "DecompressState":
        phase = _D_PHASES[int(arr[0])]
        block_size = int(arr[1])
        fl = int(arr[2])
        bits_done = int(arr[3])
        pos = 4
        values = arr[pos : pos + block_size].copy()
        pos += block_size
        sign_bytes = block_size // 8
        signs = arr[pos : pos + sign_bytes].astype(np.uint8)
        pos += sign_bytes
        planes = arr[pos : pos + fl].astype(np.uint32)
        return cls(
            phase=phase,
            block_size=block_size,
            fl=fl,
            values=values,
            signs=signs,
            planes=planes,
            bits_done=bits_done,
        )

    @classmethod
    def from_record(
        cls, fl: int, words: np.ndarray | None, block_size: int
    ) -> "DecompressState":
        sign_words = block_size // 32
        if fl == 0 or words is None:
            return cls(
                phase="signed",  # nothing to unshuffle or sign-restore
                block_size=block_size,
                fl=0,
                values=np.zeros(block_size, dtype=np.float64),
                signs=np.zeros(block_size // 8, dtype=np.uint8),
                planes=np.zeros(0, dtype=np.uint32),
            )
        raw = words.astype(np.uint32).tobytes()
        body = np.frombuffer(raw, dtype=np.uint8)
        return cls(
            phase="encoded",
            block_size=block_size,
            fl=fl,
            values=np.zeros(block_size, dtype=np.float64),
            signs=body[: sign_words * 4].copy(),
            planes=words[sign_words:].astype(np.uint32).copy(),
        )


def run_decompress_substage(
    stage, state: DecompressState, eps: float
) -> DecompressState:
    """Execute one reverse sub-stage's semantics (mirror of run_substage)."""
    name = stage.name
    if name.startswith("unshuffle_bit_"):
        if state.phase not in ("encoded", "mags"):
            raise CompressionError(f"{name} applied to {state.phase}")
        k = int(name.rsplit("_", 1)[1])
        if k < state.fl:
            plane = int(state.planes[k])
            plane_bytes = np.frombuffer(
                np.uint32(plane).tobytes(), dtype=np.uint8
            )
            bits = np.unpackbits(plane_bytes, bitorder="little").astype(
                np.int64
            )
            state.values += bits.astype(np.float64) * float(1 << k)
            state.bits_done += 1
        state.phase = "mags"
    elif name == "sign_restore":
        if state.phase not in ("encoded", "mags", "signed"):
            raise CompressionError(f"sign_restore applied to {state.phase}")
        if state.fl:
            negs = np.unpackbits(state.signs, bitorder="little").astype(bool)
            state.values = np.where(negs, -state.values, state.values)
        state.phase = "signed"
    elif name == "prefix_sum":
        if state.phase != "signed":
            raise CompressionError(f"prefix_sum applied to {state.phase}")
        state.values = np.cumsum(state.values.astype(np.int64)).astype(
            np.float64
        )
        state.phase = "codes"
    elif name == "dequant_mult":
        if state.phase != "codes":
            raise CompressionError(f"dequant_mult applied to {state.phase}")
        state.values = state.values * (2.0 * eps)
        state.phase = "values"
    else:
        raise CompressionError(f"unknown decompression sub-stage {name!r}")
    return state


def finalize_decompressed(state: DecompressState) -> np.ndarray:
    if state.phase != "values":
        raise CompressionError(
            f"block not fully decompressed (phase {state.phase!r})"
        )
    return state.values.astype(np.float32)


def build_pipeline_decompress_program(
    fabric: Fabric,
    engine: Engine,
    body: bytes,
    num_blocks: int,
    eps: float,
    distribution,
    *,
    block_size: int = BLOCK_SIZE,
    model: CycleModel = PAPER_CYCLE_MODEL,
) -> DecompressOutputs:
    """One decompression pipeline per row (Algorithm 1 stage groups).

    The head PE of each row performs the two-phase header/body receive and
    runs the first stage group; intermediate :class:`DecompressState`
    travels east; the last group's PE emits the reconstructed block. Zero
    blocks enter the pipeline pre-collapsed (phase "signed") so later PEs
    only pay the prefix-sum and de-quantization stages, exactly like the
    device's fast path.
    """
    from repro.core.lower import lower_plan
    from repro.core.plan import plan_pipeline_decompress

    plan = plan_pipeline_decompress(
        body,
        num_blocks,
        eps,
        distribution,
        rows=fabric.rows,
        cols=fabric.cols,
        block_size=block_size,
    )
    return lower_plan(plan, fabric, engine, model=model).outputs
