"""Plan simulation entry point: serial, or row-parallel across processes.

One function, :func:`simulate_plan`, owns the fabric/engine/lowering
boilerplate every simulation shares. When asked for ``jobs > 1`` it checks
whether the plan's rows are provably independent
(:func:`repro.core.plan.row_partitionable` — every route moves data
east/west/ramp only, so no wavelet ever crosses a row boundary), cuts the
plan into per-row-group sub-plans, simulates each partition in its own
process on the shard-engine pool, and merges the results:

* block records/outputs: disjoint dict union (each block is emitted by
  exactly one row);
* makespan: max over partitions (the paper's timing rule is already a max
  over PEs);
* events/tasks: sums (every event belongs to exactly one row);
* traces and node counters: folded in row order, reproducing the serial
  run's row-major recording exactly.

Because partitions share no state, the merge is cycle- and byte-exact
against the serial run — asserted over the whole plan matrix by
``tests/core/test_simulate_parallel.py``. Plans that do route across rows
(none of the current strategies do) or single-row plans silently fall back
to the serial path, which is itself the single-process fallback when
``jobs=1``.

Processes, not threads: the simulator is pure Python, so a thread pool
would serialize on the GIL. Workers receive the (picklable) sub-plan and
cost model, build their own fabric/engine, and return outputs + report.

Observability rides along the same split. Pass ``tracer=`` (a
:class:`repro.obs.tracing.Tracer`) and/or ``metrics=`` (a
:class:`repro.obs.metrics.MetricsRegistry`) and the run records host
spans, sampled per-PE timeline events, and a full metrics snapshot.
Row-parallel workers each build their own tracer/registry (from a
picklable config), collect the metrics only *they* can see (their fabric
and engine), and ship both back; the parent folds tracers in row order
(``Tracer.merge_partition`` keeps exactly the rows each worker owns, so
the merged capture equals the serial one) and sums the registry
snapshots. Trace-derived metrics are collected once, in the parent, from
the already-merged recorder — which is why counter totals are identical
for any ``jobs`` value. The one documented exception is the
``sim.engine.queue_depth.max`` gauge: event-heap depth depends on how
rows interleave in one heap, which is genuinely different between one
engine and N.
"""

from __future__ import annotations

import os
import pickle
from contextlib import nullcontext
from dataclasses import dataclass, replace

from repro.core.lower import lower_plan
from repro.errors import (
    DeadlockError,
    RepairError,
    ReproError,
    ScheduleError,
    WorkerError,
)
from repro.faults.plan import FaultPlan
from repro.core.mapping import ProgramOutputs
from repro.core.mapping_decompress import DecompressOutputs
from repro.core.parallel import run_pool, run_pool_resilient
from repro.core.plan import (
    MappingPlan,
    partition_classes,
    row_chunks,
    row_emit_sequences,
    row_partitionable,
    row_subplan,
    split_rows,
)
from repro.obs.metrics import (
    MetricsRegistry,
    collect_engine_metrics,
    collect_fabric_metrics,
    collect_fault_metrics,
    collect_repair_metrics,
    collect_trace_metrics,
)
from repro.obs.tracing import Tracer
from repro.wse.cost import CycleModel, PAPER_CYCLE_MODEL
from repro.wse.engine import Engine, SimulationReport
from repro.wse.fabric import Fabric
from repro.wse.trace import TraceRecorder


#: Simulation modes :func:`simulate_plan` accepts. ``"event"`` runs the
#: discrete-event engine over every PE; ``"hybrid"`` event-simulates one
#: representative row per partition class and replicates the result.
SIM_MODES = ("event", "hybrid")

#: Minimum rows a row-parallel worker must own before ``jobs="auto"``
#: spends a process spawn on it (pool setup costs tens of milliseconds;
#: a one-row shard of a small mesh simulates faster than that).
_AUTO_MIN_ROWS_PER_WORKER = 2


@dataclass(frozen=True)
class SimulatedRun:
    """Outputs plus the simulation report for one executed plan."""

    outputs: ProgramOutputs | DecompressOutputs
    report: SimulationReport
    partitions: int = 1
    #: The tracer/registry the caller passed in (or None) — returned so
    #: result consumers don't have to carry them separately.
    tracer: Tracer | None = None
    metrics: MetricsRegistry | None = None
    #: Mode that actually executed: a ``mode="hybrid"`` request falls back
    #: to ``"event"`` when the plan is single-row, routes across rows, or
    #: carries fault injections (faults target specific rows, which breaks
    #: the rows-are-interchangeable premise of replication).
    mode: str = "event"
    #: For hybrid runs: ``(representative_row, class_size)`` per partition
    #: class, in first-appearance order. Empty for event-mode runs.
    row_classes: tuple[tuple[int, int], ...] = ()
    #: Structured record of the self-healing retry loop's decisions
    #: (:class:`repro.faults.repair.RepairReport`), or None when the run
    #: executed without fault recovery.
    repair: object | None = None


def _span(tracer: Tracer | None, name: str, **args):
    """A tracer span, or a no-op context when tracing is off/absent."""
    if tracer is not None and tracer.enabled:
        return tracer.span(name, **args)
    return nullcontext()


def _simulate_one(
    plan: MappingPlan,
    model: CycleModel,
    optimize: bool,
    fast_kernels: bool,
    tracer: Tracer | None = None,
    faults: FaultPlan | None = None,
) -> tuple[ProgramOutputs | DecompressOutputs, SimulationReport, Fabric, Engine]:
    fabric = Fabric(plan.rows, plan.cols, cache_routes=optimize)
    engine = Engine(fabric, optimize=optimize, tracer=tracer, faults=faults)
    lowered = lower_plan(
        plan, fabric, engine, model=model, fast_kernels=fast_kernels,
        tracer=tracer,
    )
    with _span(tracer, "engine.run", rows=plan.rows, cols=plan.cols):
        try:
            report = engine.run()
        except DeadlockError as exc:
            # Hand the caller the (unpicklable) fabric/engine so it can
            # still collect metrics from the failed run; callers strip
            # these before the exception crosses any process boundary.
            exc._fabric = fabric
            exc._engine = engine
            raise
    return lowered.outputs, report, fabric, engine


def _collect_worker_metrics(fabric, engine) -> dict:
    metrics = MetricsRegistry()
    collect_fabric_metrics(metrics, fabric)
    collect_engine_metrics(metrics, engine)
    collect_fault_metrics(metrics, engine.faults)
    return metrics.snapshot()


def _partition_worker(
    args: tuple[
        MappingPlan, CycleModel, bool, bool,
        tuple[str, int] | None, bool, FaultPlan | None,
    ],
) -> tuple:
    """Module-level so the process pool can pickle it.

    ``trace_cfg`` is ``(level, sample_every)`` or None; the worker builds
    its own :class:`Tracer` from it (tracers cross the pickle boundary
    whole on the way *back*). With ``want_metrics`` the worker collects
    the fabric/engine metrics only it can observe and returns the
    registry snapshot; trace-derived metrics are left to the parent,
    which has the exactly-merged recorder.

    Returns ``("ok", outputs, report, tracer, snapshot)`` or
    ``("err", exception, snapshot)``. Failures are *returned*, never
    raised: raising through ``pool.map`` loses the structured exception
    behind ``RemoteTraceback`` noise, and would discard the metrics the
    failed partition already gathered.
    """
    plan, model, optimize, fast_kernels, trace_cfg, want_metrics, faults = (
        args
    )
    tracer = (
        Tracer(level=trace_cfg[0], sample_every=trace_cfg[1])
        if trace_cfg is not None
        else None
    )
    try:
        outputs, report, fabric, engine = _simulate_one(
            plan, model, optimize, fast_kernels, tracer, faults
        )
    except Exception as exc:
        snapshot = None
        fabric = getattr(exc, "_fabric", None)
        engine = getattr(exc, "_engine", None)
        if want_metrics and engine is not None:
            snapshot = _collect_worker_metrics(fabric, engine)
        for attr in ("_fabric", "_engine"):
            if hasattr(exc, attr):
                delattr(exc, attr)
        try:
            pickle.dumps(exc)
            payload: Exception = exc
        except Exception:
            payload = WorkerError(f"{type(exc).__name__}: {exc}")
        return ("err", payload, snapshot)
    snapshot = (
        _collect_worker_metrics(fabric, engine) if want_metrics else None
    )
    return ("ok", outputs, report, tracer, snapshot)


def _auto_jobs(plan: MappingPlan) -> int:
    """The ``jobs="auto"`` heuristic, keyed on the useful partition count.

    Row-parallel workers pay a process spawn each; a worker is only worth
    that when it owns at least :data:`_AUTO_MIN_ROWS_PER_WORKER` rows. So
    auto resolves to ``min(cpu_count, rows // 2)`` for partitionable
    multi-row plans and to 1 (in-process) everywhere else — in particular
    on single-CPU hosts and for the small meshes where
    BENCH_sim_speed.json showed the pool costing more than it saved.
    """
    cpus = os.cpu_count() or 1
    if cpus <= 1 or plan.rows <= 1 or not row_partitionable(plan):
        return 1
    return max(1, min(cpus, plan.rows // _AUTO_MIN_ROWS_PER_WORKER))


def simulate_plan(
    plan: MappingPlan,
    *,
    model: CycleModel = PAPER_CYCLE_MODEL,
    jobs: int | str = 1,
    mode: str = "event",
    optimize: bool = True,
    fast_kernels: bool = True,
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
    faults: FaultPlan | None = None,
    on_fault: str = "raise",
    max_repairs: int = 2,
    replan=None,
    verify=None,
    host_fallback=None,
    ledger=None,
    progress=None,
) -> SimulatedRun:
    """Execute ``plan`` and return its outputs and simulation report.

    ``jobs`` is the maximum number of worker processes for row-parallel
    simulation; it never changes results, only wall time. Pass
    ``jobs="auto"`` to let :func:`_auto_jobs` pick a worker count from the
    CPU count and the plan's useful partition count (1 whenever the pool
    would cost more than it saves). ``optimize`` and
    ``fast_kernels`` select the engine/kernel fast paths (both default on;
    the benchmark harness disables them to measure the difference).

    ``mode`` selects how the mesh is covered. ``"event"`` (default) runs
    the discrete-event engine over every PE. ``"hybrid"`` fingerprints the
    plan's rows (:func:`repro.core.plan.partition_classes`), event-
    simulates one representative row per equivalence class on a rebased
    1 x cols mesh, and composes the full result by replication — exact,
    not approximate, because equal fingerprints mean isomorphic task
    graphs and the engine's timing is invariant under row translation.
    Heterogeneous rows (ragged tails, uneven block counts) form singleton
    classes and are event-simulated individually, fanned out over the
    resilient process pool when ``jobs > 1``. Hybrid falls back to event
    mode for single-row or non-partitionable plans and whenever ``faults``
    are present; the returned :attr:`SimulatedRun.mode` records what ran.

    ``tracer``/``metrics`` opt the run into observability capture (see the
    module docstring for how the row-parallel path merges them). Both are
    mutated in place and also attached to the returned
    :class:`SimulatedRun`.

    ``faults`` is an optional seeded :class:`repro.faults.FaultPlan`; the
    row-parallel path hands each worker exactly the faults whose rows it
    owns, so injections, FaultReports, and ``faults.*`` metrics are
    identical for any ``jobs`` value. A stall detected under injection
    raises :class:`DeadlockError` carrying a structured
    :class:`repro.faults.FaultReport`; with ``jobs > 1`` the originating
    shard id and rows are prefixed to the message and reports from all
    failed partitions are merged.

    ``on_fault`` selects what happens to that stall: ``"raise"`` (default)
    propagates the :class:`DeadlockError`; ``"repair"`` and ``"fallback"``
    delegate to :func:`simulate_with_repair`, the bounded self-healing
    retry loop (``max_repairs``, ``replan``, ``verify`` and
    ``host_fallback`` parameterize it — see its docstring).

    ``ledger=`` opts the run into the run ledger (a path, ``True``, or a
    :class:`repro.obs.ledger.Ledger`): one provenance-stamped RunRecord
    with the resolved plan knobs, wall time, makespan, and the metrics
    snapshot. ``progress=`` (a :class:`repro.obs.log.ProgressReporter`
    or ``True``) emits periodic rows-done/ETA lines during hybrid
    composition — the only phase long enough to need them. Both default
    off at the cost of one branch each.
    """
    if on_fault not in ("raise", "repair", "fallback"):
        raise ValueError(
            f"on_fault must be 'raise', 'repair' or 'fallback', "
            f"got {on_fault!r}"
        )
    if faults is not None and on_fault != "raise":
        return simulate_with_repair(
            plan, faults=faults, on_fault=on_fault, max_repairs=max_repairs,
            replan=replan, verify=verify, host_fallback=host_fallback,
            model=model, jobs=jobs, mode=mode, optimize=optimize,
            fast_kernels=fast_kernels, tracer=tracer, metrics=metrics,
            ledger=ledger, progress=progress,
        )
    if ledger is not None:
        import time as _time

        from repro.obs import ledger as _ledger_mod

        t0 = _time.perf_counter()
        run = simulate_plan(
            plan, model=model, jobs=jobs, mode=mode, optimize=optimize,
            fast_kernels=fast_kernels, tracer=tracer, metrics=metrics,
            faults=faults, progress=progress,
        )
        wall = _time.perf_counter() - t0
        _ledger_mod.emit(
            ledger,
            "sim",
            "simulate_plan",
            {
                "op": "sim",
                "strategy": plan.strategy,
                "rows": plan.rows,
                "cols": plan.cols,
                "num_blocks": plan.num_blocks,
                "direction": plan.direction,
                "mode": mode,
                "jobs": jobs,
                "optimize": bool(optimize),
                "fast_kernels": bool(fast_kernels),
                "faults": faults is not None,
            },
            timings={
                "wall_s": wall,
                "makespan_cycles": float(run.report.makespan_cycles),
            },
            values={
                "sim_events": float(run.report.events_processed),
                "sim_tasks": float(run.report.tasks_run),
            },
            metrics=metrics,
        )
        return run
    if progress is True:
        from repro.obs.log import ProgressReporter

        progress = ProgressReporter(plan.rows, label="rows")
    if mode not in SIM_MODES:
        raise ValueError(f"mode must be one of {SIM_MODES}, got {mode!r}")
    if jobs == "auto":
        jobs = _auto_jobs(plan)
    else:
        jobs = int(jobs)
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if (
        mode == "hybrid"
        and faults is None
        and plan.rows > 1
        and row_partitionable(plan)
    ):
        return _simulate_hybrid(
            plan,
            model=model,
            jobs=jobs,
            optimize=optimize,
            fast_kernels=fast_kernels,
            tracer=tracer,
            metrics=metrics,
            progress=progress,
        )
    if jobs > 1 and plan.rows > 1 and row_partitionable(plan):
        subs = split_rows(plan, jobs)
        if len(subs) > 1:
            chunks = row_chunks(plan.rows, jobs)
            trace_cfg = (
                (tracer.level, tracer.sample_every)
                if tracer is not None and tracer.enabled
                else None
            )
            with _span(tracer, "simulate", jobs=len(subs), rows=plan.rows):
                results = run_pool(
                    _partition_worker,
                    [
                        (sub, model, optimize, fast_kernels, trace_cfg,
                         metrics is not None,
                         faults.for_rows(rows) if faults is not None
                         else None)
                        for sub, rows in zip(subs, chunks)
                    ],
                    len(subs),
                    processes=True,
                )
                _raise_partition_failures(results, chunks, metrics)
                return _merge(
                    plan, chunks, [r[1:] for r in results], tracer, metrics
                )
    with _span(tracer, "simulate", jobs=1, rows=plan.rows):
        try:
            outputs, report, fabric, engine = _simulate_one(
                plan, model, optimize, fast_kernels, tracer, faults
            )
        except DeadlockError as exc:
            failed_engine = getattr(exc, "_engine", None)
            if metrics is not None and failed_engine is not None:
                collect_fabric_metrics(metrics, exc._fabric)
                collect_engine_metrics(metrics, failed_engine)
                collect_fault_metrics(metrics, failed_engine.faults)
            for attr in ("_fabric", "_engine"):
                if hasattr(exc, attr):
                    delattr(exc, attr)
            raise
    if metrics is not None:
        collect_fabric_metrics(metrics, fabric)
        collect_engine_metrics(metrics, engine)
        collect_fault_metrics(metrics, engine.faults)
        collect_trace_metrics(metrics, report.trace)
    return SimulatedRun(
        outputs=outputs, report=report, tracer=tracer, metrics=metrics
    )


def simulate_with_repair(
    plan: MappingPlan,
    *,
    faults: FaultPlan,
    on_fault: str = "repair",
    max_repairs: int = 2,
    replan=None,
    verify=None,
    host_fallback=None,
    model: CycleModel = PAPER_CYCLE_MODEL,
    jobs: int | str = 1,
    mode: str = "event",
    optimize: bool = True,
    fast_kernels: bool = True,
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
    ledger=None,
    progress=None,
) -> SimulatedRun:
    """Run ``plan`` under ``faults``, repairing the mapping until it works.

    The self-healing orchestrator: each round simulates the current plan
    and, when the run stalls (:class:`DeadlockError`) or completes but
    fails ``verify`` (silent corruption — SRAM flips), classifies the
    fault plan against the current mapping
    (:func:`repro.faults.repair.classify_faults`), condemns the harmful
    rows, and rewrites the plan:

    1. **remap** — condemned rows move onto idle spare rows of the same
       mesh (:func:`repro.faults.repair.remap_rows`) when enough exist;
    2. **shrink** — with no spares left, ``replan(n_good)`` builds a
       rebalanced plan over the surviving row count, which is then placed
       onto the surviving physical rows (the mesh keeps its original
       height so fault coordinates stay valid);
    3. **fallback** — when wafer-side repair is impossible (or after
       ``max_repairs`` failed attempts, or immediately with
       ``on_fault="fallback"``), the condemned rows are dropped from the
       plan (:func:`repro.faults.repair.drop_rows`) and their block
       indices are handed to ``host_fallback(blocks) -> dict[int, bytes]``
       — the degraded mode where the host fast path carries the work the
       wafer cannot.

    Row evacuation is byte-safe (records are keyed by block index, not by
    emitting PE), so a successful repair reproduces the fault-free stream
    byte for byte; pass ``verify=`` (``SimulatedRun -> bool``) to have
    that checked and recorded. When every avenue is exhausted the loop
    raises :class:`~repro.errors.RepairError` carrying both the last
    :class:`~repro.faults.FaultReport` and the partial
    :class:`~repro.faults.repair.RepairReport`.

    The returned :class:`SimulatedRun` carries the final
    :attr:`~SimulatedRun.repair` report. Every decision derives from the
    fault plan and mapping plans alone — never from engine state — so the
    RepairReport is identical for ``jobs=1`` and ``jobs=N``.
    """
    from repro.faults.repair import (
        RepairReport,
        RowRepair,
        classify_faults,
        drop_rows,
        remap_rows,
        row_blocks,
        spare_rows,
        used_rows,
    )

    if on_fault not in ("repair", "fallback"):
        raise ValueError(
            f"on_fault must be 'repair' or 'fallback', got {on_fault!r}"
        )
    if max_repairs < 0:
        raise ValueError(f"max_repairs must be >= 0, got {max_repairs}")

    tolerated = classify_faults(faults, plan).tolerated
    current = plan
    all_bad: set[int] = set()
    repairs: list = []
    spare_used: list[int] = []
    fallback_blocks: set[int] = set()
    host_records: dict[int, bytes] = {}
    attempts = 0
    fallback_mode = on_fault == "fallback"
    last_fault_report = None

    def _partial_report(outcome: str) -> "RepairReport":
        return RepairReport(
            outcome=outcome,
            attempts=attempts,
            unusable_rows=tuple(sorted(all_bad)),
            spare_rows_used=tuple(sorted(spare_used)),
            repairs=tuple(repairs),
            tolerated=tolerated,
            fallback_blocks=tuple(sorted(fallback_blocks)),
            seed=faults.seed,
        )

    def _fail(message: str):
        raise RepairError(
            message,
            fault_report=last_fault_report,
            repair_report=_partial_report("exhausted"),
        )

    def _emit_attempt(action: str, bad_rows) -> None:
        if ledger is None:
            return
        from repro.obs import ledger as _ledger_mod

        _ledger_mod.emit(
            ledger,
            "sim",
            "sim.repair",
            {
                "op": "repair",
                "attempt": attempts,
                "action": action,
                "bad_rows": sorted(int(r) for r in bad_rows),
                "on_fault": on_fault,
                "max_repairs": max_repairs,
                "fault_seed": faults.seed,
            },
            values={"repair.bad_rows": float(len(bad_rows))},
        )

    # Each round either succeeds or condemns at least one fresh row, so
    # the loop is bounded by the mesh height; the +2 covers the initial
    # run and one final post-repair run.
    for _ in range(plan.rows + 2):
        try:
            run = simulate_plan(
                current, model=model, jobs=jobs, mode=mode,
                optimize=optimize, fast_kernels=fast_kernels, tracer=tracer,
                metrics=metrics, faults=faults, ledger=ledger,
                progress=progress,
            )
        except DeadlockError as exc:
            last_fault_report = exc.report
            run = None
            ok = False
        else:
            if host_records:
                run.outputs.records.update(host_records)
            ok = bool(verify(run)) if verify is not None else True
        if ok:
            outcome = "clean"
            if any(r.action == "fallback" for r in repairs):
                outcome = "fallback"
            elif repairs:
                outcome = "repaired"
            report = RepairReport(
                outcome=outcome,
                attempts=attempts,
                unusable_rows=tuple(sorted(all_bad)),
                spare_rows_used=tuple(sorted(spare_used)),
                repairs=tuple(repairs),
                tolerated=tolerated,
                fallback_blocks=tuple(sorted(fallback_blocks)),
                verified=(True if verify is not None else None),
                seed=faults.seed,
            )
            if metrics is not None:
                collect_repair_metrics(metrics, report)
            return replace(run, repair=report)

        # The run stalled (or verified corrupt): condemn the rows the
        # fault plan harms under the *current* mapping and rewrite.
        attempts += 1
        cls = classify_faults(faults, current)
        bad_now = set(cls.unusable_rows) - all_bad
        if not bad_now:
            _fail(
                "run failed but no harmful fault maps to a repairable "
                "row (classification found nothing new to evacuate)"
            )
        all_bad |= bad_now
        blocks_by_row = {r: row_blocks(current, {r}) for r in bad_now}

        repaired = False
        if not fallback_mode and attempts <= max_repairs:
            avail = [s for s in spare_rows(current) if s not in all_bad]
            if len(avail) >= len(bad_now):
                mapping = dict(zip(sorted(bad_now), avail))
                for src, dst in sorted(mapping.items()):
                    repairs.append(
                        RowRepair(
                            row=src, action="remap", target_row=dst,
                            blocks=blocks_by_row[src],
                            reason=cls.row_reason(src),
                        )
                    )
                    spare_used.append(dst)
                current = remap_rows(current, mapping)
                _emit_attempt("remap", bad_now)
                repaired = True
            elif replan is not None:
                usable = [r for r in range(plan.rows) if r not in all_bad]
                if usable:
                    fresh = replan(len(usable))
                    fresh_used = used_rows(fresh)
                    if len(fresh_used) > len(usable):
                        _fail(
                            f"replan({len(usable)}) produced a plan using "
                            f"{len(fresh_used)} rows — more than survive"
                        )
                    mapping = {
                        src: usable[i] for i, src in enumerate(fresh_used)
                    }
                    current = remap_rows(fresh, mapping, rows=plan.rows)
                    for r in sorted(bad_now):
                        repairs.append(
                            RowRepair(
                                row=r, action="shrink", target_row=None,
                                blocks=blocks_by_row[r],
                                reason=cls.row_reason(r),
                            )
                        )
                    _emit_attempt("shrink", bad_now)
                    repaired = True
        if repaired:
            continue

        # Degraded mode: drop the condemned rows from the wafer and let
        # the host fast path carry their blocks.
        if host_fallback is None or plan.direction != "compress":
            why = (
                f"wafer repair exhausted after {attempts - 1} attempt(s) "
                f"(max_repairs={max_repairs})"
                if attempts > max_repairs and not fallback_mode
                else "no spare rows and no replan available"
            )
            if fallback_mode:
                why = "fallback requested"
            _fail(
                f"cannot recover rows {sorted(bad_now)}: {why} and no "
                f"host fallback was provided"
            )
        blocks = row_blocks(current, bad_now)
        for r in sorted(bad_now):
            repairs.append(
                RowRepair(
                    row=r, action="fallback", target_row=None,
                    blocks=blocks_by_row[r], reason=cls.row_reason(r),
                )
            )
        host_records.update(host_fallback(blocks))
        fallback_blocks.update(int(b) for b in blocks)
        current = drop_rows(current, bad_now)
        _emit_attempt("fallback", bad_now)

    _fail("repair loop did not converge (internal invariant)")


def _raise_partition_failures(results, chunks, metrics) -> None:
    """Re-raise worker failures with the originating shard id attached.

    Merges every partition's metrics snapshot first (the failed run's
    counters are exactly what a post-mortem needs), then raises one
    exception: a :class:`DeadlockError` whose report is the merge of all
    failed partitions' FaultReports, the original :class:`ReproError`
    annotated with its shard, or a :class:`WorkerError` for anything else.
    """
    failures = [
        (i, res) for i, res in enumerate(results) if res[0] == "err"
    ]
    if not failures:
        return
    if metrics is not None:
        for res in results:
            snap = res[2] if res[0] == "err" else res[4]
            if snap:
                metrics.merge(snap)
    index, (_, exc, _) = failures[0]
    rows = chunks[index]
    prefix = f"[shard {index}, rows {rows[0]}-{rows[-1]}] "
    suffix = (
        f" (+{len(failures) - 1} more failed partitions)"
        if len(failures) > 1
        else ""
    )
    if isinstance(exc, DeadlockError):
        report = exc.report
        for j, res in failures[1:]:
            other = res[1]
            if isinstance(other, DeadlockError) and other.report is not None:
                report = (
                    other.report if report is None
                    else report.merged_with(other.report)
                )
        raise DeadlockError(
            prefix + (exc.args[0] if exc.args else "") + suffix,
            report=report,
        ) from None
    if isinstance(exc, WorkerError):
        exc.shard = index
        exc.rows = tuple(rows)
        raise exc from None
    if isinstance(exc, ReproError):
        # Preserve the concrete type (tests catch TaskError & co.); the
        # shard annotation rides along as attributes.
        exc.shard = index
        exc.shard_rows = tuple(rows)
        raise exc from None
    raise WorkerError(
        prefix + f"{type(exc).__name__}: {exc}" + suffix,
        shard=index,
        rows=tuple(rows),
    ) from exc


def _merge(
    plan: MappingPlan,
    chunks: list[tuple[int, ...]],
    results: list[
        tuple[
            ProgramOutputs | DecompressOutputs,
            SimulationReport,
            Tracer | None,
            dict | None,
        ]
    ],
    tracer: Tracer | None,
    metrics: MetricsRegistry | None,
) -> SimulatedRun:
    outputs: ProgramOutputs | DecompressOutputs
    if plan.direction == "compress":
        outputs = ProgramOutputs()
        for part_outputs, _, _, _ in results:
            outputs.records.update(part_outputs.records)
    else:
        outputs = DecompressOutputs()
        for part_outputs, _, _, _ in results:
            outputs.blocks.update(part_outputs.blocks)
    trace = TraceRecorder()
    for i, (rows, (_, part_report, part_tracer, part_snap)) in enumerate(
        zip(chunks, results)
    ):
        trace.merge_partition(rows, part_report.trace)
        if tracer is not None and part_tracer is not None:
            tracer.merge_partition(rows, part_tracer, tid=i + 1)
        if metrics is not None and part_snap is not None:
            metrics.merge(part_snap)
    if metrics is not None:
        # Trace-derived metrics come from the exactly-merged recorder, so
        # their totals equal the serial run's for any number of workers.
        collect_trace_metrics(metrics, trace)
    report = SimulationReport(
        makespan_cycles=max(r.makespan_cycles for _, r, _, _ in results),
        events_processed=sum(r.events_processed for _, r, _, _ in results),
        tasks_run=sum(r.tasks_run for _, r, _, _ in results),
        trace=trace,
    )
    return SimulatedRun(
        outputs=outputs,
        report=report,
        partitions=len(results),
        tracer=tracer,
        metrics=metrics,
    )


# --- hybrid (hierarchical) simulation --------------------------------------------------


def _trace_cfg(tracer: Tracer | None) -> tuple[str, int] | None:
    if tracer is not None and tracer.enabled:
        return (tracer.level, tracer.sample_every)
    return None


def _simulate_hybrid(
    plan: MappingPlan,
    *,
    model: CycleModel,
    jobs: int,
    optimize: bool,
    fast_kernels: bool,
    tracer: Tracer | None,
    metrics: MetricsRegistry | None,
    progress=None,
) -> SimulatedRun:
    """Event-simulate one representative per row class, replicate the rest.

    Each representative runs on a rebased ``1 x cols`` mesh
    (:func:`repro.core.plan.row_subplan`), so the event-driven cost is
    proportional to the number of *distinct* rows, not the mesh height —
    a homogeneous 750-row wafer costs one row plus composition. Classes
    fan out over the resilient process pool when ``jobs > 1``; simulation
    failures keep their structured error path (same handling as the
    row-parallel shards), pool infrastructure failures are retried.
    """
    classes = partition_classes(plan)
    emit_seqs = row_emit_sequences(plan)
    cfg = _trace_cfg(tracer)
    items = [
        (row_subplan(plan, rep), model, optimize, fast_kernels, cfg,
         metrics is not None, None)
        for rep, _ in classes
    ]
    with _span(
        tracer, "simulate.hybrid", classes=len(classes), rows=plan.rows
    ):
        if jobs > 1 and len(items) > 1:
            results, _ = run_pool_resilient(
                _partition_worker, items, jobs, processes=True
            )
        else:
            results = [_partition_worker(item) for item in items]
        _raise_partition_failures(
            results, [members for _, members in classes], metrics
        )
        return _compose_hybrid(
            plan, classes, emit_seqs, [r[1:] for r in results], tracer,
            metrics, progress=progress,
        )


def _replica_records(plan, outputs, rep_seq, rep_outputs):
    """Emit-ordered record values of one representative, plus the stores."""
    if plan.direction == "compress":
        rep_records = rep_outputs.records
        store = outputs.records
    else:
        rep_records = rep_outputs.blocks
        store = outputs.blocks
    if set(rep_records) != set(rep_seq):
        raise ScheduleError(
            "hybrid composition: representative emitted blocks "
            "disagree with the plan's emit sequence (internal invariant)"
        )
    return [rep_records[idx] for idx in rep_seq], store


def _compose_hybrid(
    plan: MappingPlan,
    classes: list[tuple[int, tuple[int, ...]]],
    emit_seqs: list[tuple[int, ...]],
    results: list,
    tracer: Tracer | None,
    metrics: MetricsRegistry | None,
    progress=None,
) -> SimulatedRun:
    """Compose a full-mesh result from per-class representative runs.

    Everything scales exactly: records map position-for-position through
    the emit sequences, traces/counters are the representative's with the
    row coordinate rewritten (folded in row-major order, matching the
    serial run's recording loop), events/tasks multiply by class size,
    the makespan is the max over classes (replication cannot change a
    row's finish time), and metric counters/histograms scale linearly
    while gauges are replication-invariant. The known inexactness is the
    same as for row-parallel runs: ``sim.engine.queue_depth.max`` (heap
    depth depends on how rows share one event heap) and the *ordering* of
    sampled timeline events (multiset-equal to the serial capture).
    """
    outputs: ProgramOutputs | DecompressOutputs
    outputs = (
        ProgramOutputs() if plan.direction == "compress"
        else DecompressOutputs()
    )
    class_of: dict[int, int] = {}
    for ci, (_, members) in enumerate(classes):
        for row in members:
            class_of[row] = ci
    for ci, (rep, members) in enumerate(classes):
        rep_vals, store = _replica_records(
            plan, outputs, emit_seqs[rep], results[ci][0]
        )
        for member in members:
            seq = emit_seqs[member]
            if len(seq) != len(rep_vals):
                raise ScheduleError(
                    "hybrid composition: member row emit count diverges "
                    "from its representative (internal invariant)"
                )
            for idx, val in zip(seq, rep_vals):
                store[idx] = val
    trace = TraceRecorder()
    for row in range(plan.rows):
        trace.merge_replica(results[class_of[row]][1].trace, row)
        if progress is not None:
            progress.update(row + 1, phase="compose")
    trace.events_processed = sum(
        len(members) * results[ci][1].trace.events_processed
        for ci, (_, members) in enumerate(classes)
    )
    if tracer is not None:
        for ci, (_, members) in enumerate(classes):
            part_tracer = results[ci][2]
            if part_tracer is None:
                continue
            for j, member in enumerate(members):
                tracer.merge_replica(
                    part_tracer, member, spans=(j == 0), tid=ci + 1
                )
    if metrics is not None:
        for ci, (_, members) in enumerate(classes):
            snap = results[ci][3]
            if snap:
                metrics.merge_scaled(snap, len(members))
        # Trace-derived metrics come from the composed recorder, exactly
        # as the row-parallel merge does it.
        collect_trace_metrics(metrics, trace)
    report = SimulationReport(
        makespan_cycles=max(r[1].makespan_cycles for r in results),
        events_processed=trace.events_processed,
        tasks_run=sum(
            len(members) * results[ci][1].tasks_run
            for ci, (_, members) in enumerate(classes)
        ),
        trace=trace,
    )
    return SimulatedRun(
        outputs=outputs,
        report=report,
        partitions=len(classes),
        tracer=tracer,
        metrics=metrics,
        mode="hybrid",
        row_classes=tuple(
            (rep, len(members)) for rep, members in classes
        ),
    )


def simulate_replicated(
    template: MappingPlan,
    copies: int,
    *,
    model: CycleModel = PAPER_CYCLE_MODEL,
    optimize: bool = True,
    fast_kernels: bool = True,
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
    progress=None,
) -> SimulatedRun:
    """Simulate ``replicate_rows(template, copies)`` without building it.

    The wafer-scale fast path: a full 750 x 994 plan is ~4.5 M IR objects
    before the first event fires, which alone would eat the wall-time
    budget. This entry point event-simulates the template once and
    composes the ``copies``-fold result directly — copy ``k`` occupies
    rows ``[k*R, (k+1)*R)`` with block indices shifted by
    ``k * template.num_blocks``, exactly the layout
    :func:`repro.core.plan.replicate_rows` materializes (the equivalence
    is asserted at small scale by the hybrid test suite). Composition
    semantics match :func:`simulate_plan(mode="hybrid")
    <simulate_plan>`; the composed stream equals the template's stream
    tiled ``copies`` times.
    """
    if copies < 1:
        raise ValueError(f"copies must be >= 1, got {copies}")
    if progress is True:
        from repro.obs.log import ProgressReporter

        progress = ProgressReporter(copies, label="copies")
    if template.partial:
        raise ScheduleError("cannot replicate a partial sub-plan")
    if not row_partitionable(template):
        raise ScheduleError(
            f"template with strategy {template.strategy!r} routes across "
            f"rows and cannot be replicated"
        )
    with _span(
        tracer, "simulate.replicated", copies=copies, rows=template.rows
    ):
        result = _partition_worker(
            (template, model, optimize, fast_kernels, _trace_cfg(tracer),
             metrics is not None, None)
        )
        _raise_partition_failures(
            [result], [tuple(range(template.rows))], metrics
        )
        _, rep_outputs, rep_report, part_tracer, snap = result
        outputs: ProgramOutputs | DecompressOutputs
        outputs = (
            ProgramOutputs() if template.direction == "compress"
            else DecompressOutputs()
        )
        if template.direction == "compress":
            rep_records, store = rep_outputs.records, outputs.records
        else:
            rep_records, store = rep_outputs.blocks, outputs.blocks
        num = template.num_blocks
        for k in range(copies):
            shift = k * num
            for idx, val in rep_records.items():
                store[idx + shift] = val
        trace = TraceRecorder()
        for k in range(copies):
            trace.merge_replica(rep_report.trace, k * template.rows)
            if progress is not None:
                progress.update(k + 1, phase="compose")
        trace.events_processed = copies * rep_report.trace.events_processed
        if tracer is not None and part_tracer is not None:
            for k in range(copies):
                tracer.merge_replica(
                    part_tracer, k * template.rows, spans=(k == 0), tid=1
                )
        if metrics is not None:
            if snap:
                metrics.merge_scaled(snap, copies)
            collect_trace_metrics(metrics, trace)
        report = SimulationReport(
            makespan_cycles=rep_report.makespan_cycles,
            events_processed=trace.events_processed,
            tasks_run=copies * rep_report.tasks_run,
            trace=trace,
        )
    return SimulatedRun(
        outputs=outputs,
        report=report,
        partitions=1,
        tracer=tracer,
        metrics=metrics,
        mode="hybrid",
        row_classes=tuple(
            (row, copies) for row in range(template.rows)
        ),
    )
