"""Plan simulation entry point: serial, or row-parallel across processes.

One function, :func:`simulate_plan`, owns the fabric/engine/lowering
boilerplate every simulation shares. When asked for ``jobs > 1`` it checks
whether the plan's rows are provably independent
(:func:`repro.core.plan.row_partitionable` — every route moves data
east/west/ramp only, so no wavelet ever crosses a row boundary), cuts the
plan into per-row-group sub-plans, simulates each partition in its own
process on the shard-engine pool, and merges the results:

* block records/outputs: disjoint dict union (each block is emitted by
  exactly one row);
* makespan: max over partitions (the paper's timing rule is already a max
  over PEs);
* events/tasks: sums (every event belongs to exactly one row);
* traces and node counters: folded in row order, reproducing the serial
  run's row-major recording exactly.

Because partitions share no state, the merge is cycle- and byte-exact
against the serial run — asserted over the whole plan matrix by
``tests/core/test_simulate_parallel.py``. Plans that do route across rows
(none of the current strategies do) or single-row plans silently fall back
to the serial path, which is itself the single-process fallback when
``jobs=1``.

Processes, not threads: the simulator is pure Python, so a thread pool
would serialize on the GIL. Workers receive the (picklable) sub-plan and
cost model, build their own fabric/engine, and return outputs + report.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.lower import lower_plan
from repro.core.mapping import ProgramOutputs
from repro.core.mapping_decompress import DecompressOutputs
from repro.core.parallel import run_pool
from repro.core.plan import (
    MappingPlan,
    row_chunks,
    row_partitionable,
    split_rows,
)
from repro.wse.cost import CycleModel, PAPER_CYCLE_MODEL
from repro.wse.engine import Engine, SimulationReport
from repro.wse.fabric import Fabric
from repro.wse.trace import TraceRecorder


@dataclass(frozen=True)
class SimulatedRun:
    """Outputs plus the simulation report for one executed plan."""

    outputs: ProgramOutputs | DecompressOutputs
    report: SimulationReport
    partitions: int = 1


def _simulate_one(
    plan: MappingPlan,
    model: CycleModel,
    optimize: bool,
    fast_kernels: bool,
) -> tuple[ProgramOutputs | DecompressOutputs, SimulationReport]:
    fabric = Fabric(plan.rows, plan.cols, cache_routes=optimize)
    engine = Engine(fabric, optimize=optimize)
    lowered = lower_plan(
        plan, fabric, engine, model=model, fast_kernels=fast_kernels
    )
    report = engine.run()
    return lowered.outputs, report


def _partition_worker(
    args: tuple[MappingPlan, CycleModel, bool, bool],
) -> tuple[ProgramOutputs | DecompressOutputs, SimulationReport]:
    """Module-level so the process pool can pickle it."""
    return _simulate_one(*args)


def simulate_plan(
    plan: MappingPlan,
    *,
    model: CycleModel = PAPER_CYCLE_MODEL,
    jobs: int = 1,
    optimize: bool = True,
    fast_kernels: bool = True,
) -> SimulatedRun:
    """Execute ``plan`` and return its outputs and simulation report.

    ``jobs`` is the maximum number of worker processes for row-parallel
    simulation; it never changes results, only wall time. ``optimize`` and
    ``fast_kernels`` select the engine/kernel fast paths (both default on;
    the benchmark harness disables them to measure the difference).
    """
    jobs = int(jobs)
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if jobs > 1 and plan.rows > 1 and row_partitionable(plan):
        subs = split_rows(plan, jobs)
        if len(subs) > 1:
            chunks = row_chunks(plan.rows, jobs)
            results = run_pool(
                _partition_worker,
                [(sub, model, optimize, fast_kernels) for sub in subs],
                len(subs),
                processes=True,
            )
            return _merge(plan, chunks, results)
    outputs, report = _simulate_one(plan, model, optimize, fast_kernels)
    return SimulatedRun(outputs=outputs, report=report)


def _merge(
    plan: MappingPlan,
    chunks: list[tuple[int, ...]],
    results: list[tuple[ProgramOutputs | DecompressOutputs, SimulationReport]],
) -> SimulatedRun:
    outputs: ProgramOutputs | DecompressOutputs
    if plan.direction == "compress":
        outputs = ProgramOutputs()
        for part_outputs, _ in results:
            outputs.records.update(part_outputs.records)
    else:
        outputs = DecompressOutputs()
        for part_outputs, _ in results:
            outputs.blocks.update(part_outputs.blocks)
    trace = TraceRecorder()
    for rows, (_, part_report) in zip(chunks, results):
        trace.merge_partition(rows, part_report.trace)
    report = SimulationReport(
        makespan_cycles=max(r.makespan_cycles for _, r in results),
        events_processed=sum(r.events_processed for _, r in results),
        tasks_run=sum(r.tasks_run for _, r in results),
        trace=trace,
    )
    return SimulatedRun(
        outputs=outputs, report=report, partitions=len(results)
    )
