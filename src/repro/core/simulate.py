"""Plan simulation entry point: serial, or row-parallel across processes.

One function, :func:`simulate_plan`, owns the fabric/engine/lowering
boilerplate every simulation shares. When asked for ``jobs > 1`` it checks
whether the plan's rows are provably independent
(:func:`repro.core.plan.row_partitionable` — every route moves data
east/west/ramp only, so no wavelet ever crosses a row boundary), cuts the
plan into per-row-group sub-plans, simulates each partition in its own
process on the shard-engine pool, and merges the results:

* block records/outputs: disjoint dict union (each block is emitted by
  exactly one row);
* makespan: max over partitions (the paper's timing rule is already a max
  over PEs);
* events/tasks: sums (every event belongs to exactly one row);
* traces and node counters: folded in row order, reproducing the serial
  run's row-major recording exactly.

Because partitions share no state, the merge is cycle- and byte-exact
against the serial run — asserted over the whole plan matrix by
``tests/core/test_simulate_parallel.py``. Plans that do route across rows
(none of the current strategies do) or single-row plans silently fall back
to the serial path, which is itself the single-process fallback when
``jobs=1``.

Processes, not threads: the simulator is pure Python, so a thread pool
would serialize on the GIL. Workers receive the (picklable) sub-plan and
cost model, build their own fabric/engine, and return outputs + report.

Observability rides along the same split. Pass ``tracer=`` (a
:class:`repro.obs.tracing.Tracer`) and/or ``metrics=`` (a
:class:`repro.obs.metrics.MetricsRegistry`) and the run records host
spans, sampled per-PE timeline events, and a full metrics snapshot.
Row-parallel workers each build their own tracer/registry (from a
picklable config), collect the metrics only *they* can see (their fabric
and engine), and ship both back; the parent folds tracers in row order
(``Tracer.merge_partition`` keeps exactly the rows each worker owns, so
the merged capture equals the serial one) and sums the registry
snapshots. Trace-derived metrics are collected once, in the parent, from
the already-merged recorder — which is why counter totals are identical
for any ``jobs`` value. The one documented exception is the
``sim.engine.queue_depth.max`` gauge: event-heap depth depends on how
rows interleave in one heap, which is genuinely different between one
engine and N.
"""

from __future__ import annotations

import pickle
from contextlib import nullcontext
from dataclasses import dataclass

from repro.core.lower import lower_plan
from repro.errors import DeadlockError, ReproError, WorkerError
from repro.faults.plan import FaultPlan
from repro.core.mapping import ProgramOutputs
from repro.core.mapping_decompress import DecompressOutputs
from repro.core.parallel import run_pool
from repro.core.plan import (
    MappingPlan,
    row_chunks,
    row_partitionable,
    split_rows,
)
from repro.obs.metrics import (
    MetricsRegistry,
    collect_engine_metrics,
    collect_fabric_metrics,
    collect_fault_metrics,
    collect_trace_metrics,
)
from repro.obs.tracing import Tracer
from repro.wse.cost import CycleModel, PAPER_CYCLE_MODEL
from repro.wse.engine import Engine, SimulationReport
from repro.wse.fabric import Fabric
from repro.wse.trace import TraceRecorder


@dataclass(frozen=True)
class SimulatedRun:
    """Outputs plus the simulation report for one executed plan."""

    outputs: ProgramOutputs | DecompressOutputs
    report: SimulationReport
    partitions: int = 1
    #: The tracer/registry the caller passed in (or None) — returned so
    #: result consumers don't have to carry them separately.
    tracer: Tracer | None = None
    metrics: MetricsRegistry | None = None


def _span(tracer: Tracer | None, name: str, **args):
    """A tracer span, or a no-op context when tracing is off/absent."""
    if tracer is not None and tracer.enabled:
        return tracer.span(name, **args)
    return nullcontext()


def _simulate_one(
    plan: MappingPlan,
    model: CycleModel,
    optimize: bool,
    fast_kernels: bool,
    tracer: Tracer | None = None,
    faults: FaultPlan | None = None,
) -> tuple[ProgramOutputs | DecompressOutputs, SimulationReport, Fabric, Engine]:
    fabric = Fabric(plan.rows, plan.cols, cache_routes=optimize)
    engine = Engine(fabric, optimize=optimize, tracer=tracer, faults=faults)
    lowered = lower_plan(
        plan, fabric, engine, model=model, fast_kernels=fast_kernels,
        tracer=tracer,
    )
    with _span(tracer, "engine.run", rows=plan.rows, cols=plan.cols):
        try:
            report = engine.run()
        except DeadlockError as exc:
            # Hand the caller the (unpicklable) fabric/engine so it can
            # still collect metrics from the failed run; callers strip
            # these before the exception crosses any process boundary.
            exc._fabric = fabric
            exc._engine = engine
            raise
    return lowered.outputs, report, fabric, engine


def _collect_worker_metrics(fabric, engine) -> dict:
    metrics = MetricsRegistry()
    collect_fabric_metrics(metrics, fabric)
    collect_engine_metrics(metrics, engine)
    collect_fault_metrics(metrics, engine.faults)
    return metrics.snapshot()


def _partition_worker(
    args: tuple[
        MappingPlan, CycleModel, bool, bool,
        tuple[str, int] | None, bool, FaultPlan | None,
    ],
) -> tuple:
    """Module-level so the process pool can pickle it.

    ``trace_cfg`` is ``(level, sample_every)`` or None; the worker builds
    its own :class:`Tracer` from it (tracers cross the pickle boundary
    whole on the way *back*). With ``want_metrics`` the worker collects
    the fabric/engine metrics only it can observe and returns the
    registry snapshot; trace-derived metrics are left to the parent,
    which has the exactly-merged recorder.

    Returns ``("ok", outputs, report, tracer, snapshot)`` or
    ``("err", exception, snapshot)``. Failures are *returned*, never
    raised: raising through ``pool.map`` loses the structured exception
    behind ``RemoteTraceback`` noise, and would discard the metrics the
    failed partition already gathered.
    """
    plan, model, optimize, fast_kernels, trace_cfg, want_metrics, faults = (
        args
    )
    tracer = (
        Tracer(level=trace_cfg[0], sample_every=trace_cfg[1])
        if trace_cfg is not None
        else None
    )
    try:
        outputs, report, fabric, engine = _simulate_one(
            plan, model, optimize, fast_kernels, tracer, faults
        )
    except Exception as exc:
        snapshot = None
        fabric = getattr(exc, "_fabric", None)
        engine = getattr(exc, "_engine", None)
        if want_metrics and engine is not None:
            snapshot = _collect_worker_metrics(fabric, engine)
        for attr in ("_fabric", "_engine"):
            if hasattr(exc, attr):
                delattr(exc, attr)
        try:
            pickle.dumps(exc)
            payload: Exception = exc
        except Exception:
            payload = WorkerError(f"{type(exc).__name__}: {exc}")
        return ("err", payload, snapshot)
    snapshot = (
        _collect_worker_metrics(fabric, engine) if want_metrics else None
    )
    return ("ok", outputs, report, tracer, snapshot)


def simulate_plan(
    plan: MappingPlan,
    *,
    model: CycleModel = PAPER_CYCLE_MODEL,
    jobs: int = 1,
    optimize: bool = True,
    fast_kernels: bool = True,
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
    faults: FaultPlan | None = None,
) -> SimulatedRun:
    """Execute ``plan`` and return its outputs and simulation report.

    ``jobs`` is the maximum number of worker processes for row-parallel
    simulation; it never changes results, only wall time. ``optimize`` and
    ``fast_kernels`` select the engine/kernel fast paths (both default on;
    the benchmark harness disables them to measure the difference).

    ``tracer``/``metrics`` opt the run into observability capture (see the
    module docstring for how the row-parallel path merges them). Both are
    mutated in place and also attached to the returned
    :class:`SimulatedRun`.

    ``faults`` is an optional seeded :class:`repro.faults.FaultPlan`; the
    row-parallel path hands each worker exactly the faults whose rows it
    owns, so injections, FaultReports, and ``faults.*`` metrics are
    identical for any ``jobs`` value. A stall detected under injection
    raises :class:`DeadlockError` carrying a structured
    :class:`repro.faults.FaultReport`; with ``jobs > 1`` the originating
    shard id and rows are prefixed to the message and reports from all
    failed partitions are merged.
    """
    jobs = int(jobs)
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if jobs > 1 and plan.rows > 1 and row_partitionable(plan):
        subs = split_rows(plan, jobs)
        if len(subs) > 1:
            chunks = row_chunks(plan.rows, jobs)
            trace_cfg = (
                (tracer.level, tracer.sample_every)
                if tracer is not None and tracer.enabled
                else None
            )
            with _span(tracer, "simulate", jobs=len(subs), rows=plan.rows):
                results = run_pool(
                    _partition_worker,
                    [
                        (sub, model, optimize, fast_kernels, trace_cfg,
                         metrics is not None,
                         faults.for_rows(rows) if faults is not None
                         else None)
                        for sub, rows in zip(subs, chunks)
                    ],
                    len(subs),
                    processes=True,
                )
                _raise_partition_failures(results, chunks, metrics)
                return _merge(
                    plan, chunks, [r[1:] for r in results], tracer, metrics
                )
    with _span(tracer, "simulate", jobs=1, rows=plan.rows):
        try:
            outputs, report, fabric, engine = _simulate_one(
                plan, model, optimize, fast_kernels, tracer, faults
            )
        except DeadlockError as exc:
            failed_engine = getattr(exc, "_engine", None)
            if metrics is not None and failed_engine is not None:
                collect_fabric_metrics(metrics, exc._fabric)
                collect_engine_metrics(metrics, failed_engine)
                collect_fault_metrics(metrics, failed_engine.faults)
            for attr in ("_fabric", "_engine"):
                if hasattr(exc, attr):
                    delattr(exc, attr)
            raise
    if metrics is not None:
        collect_fabric_metrics(metrics, fabric)
        collect_engine_metrics(metrics, engine)
        collect_fault_metrics(metrics, engine.faults)
        collect_trace_metrics(metrics, report.trace)
    return SimulatedRun(
        outputs=outputs, report=report, tracer=tracer, metrics=metrics
    )


def _raise_partition_failures(results, chunks, metrics) -> None:
    """Re-raise worker failures with the originating shard id attached.

    Merges every partition's metrics snapshot first (the failed run's
    counters are exactly what a post-mortem needs), then raises one
    exception: a :class:`DeadlockError` whose report is the merge of all
    failed partitions' FaultReports, the original :class:`ReproError`
    annotated with its shard, or a :class:`WorkerError` for anything else.
    """
    failures = [
        (i, res) for i, res in enumerate(results) if res[0] == "err"
    ]
    if not failures:
        return
    if metrics is not None:
        for res in results:
            snap = res[2] if res[0] == "err" else res[4]
            if snap:
                metrics.merge(snap)
    index, (_, exc, _) = failures[0]
    rows = chunks[index]
    prefix = f"[shard {index}, rows {rows[0]}-{rows[-1]}] "
    suffix = (
        f" (+{len(failures) - 1} more failed partitions)"
        if len(failures) > 1
        else ""
    )
    if isinstance(exc, DeadlockError):
        report = exc.report
        for j, res in failures[1:]:
            other = res[1]
            if isinstance(other, DeadlockError) and other.report is not None:
                report = (
                    other.report if report is None
                    else report.merged_with(other.report)
                )
        raise DeadlockError(
            prefix + (exc.args[0] if exc.args else "") + suffix,
            report=report,
        ) from None
    if isinstance(exc, WorkerError):
        exc.shard = index
        exc.rows = tuple(rows)
        raise exc from None
    if isinstance(exc, ReproError):
        # Preserve the concrete type (tests catch TaskError & co.); the
        # shard annotation rides along as attributes.
        exc.shard = index
        exc.shard_rows = tuple(rows)
        raise exc from None
    raise WorkerError(
        prefix + f"{type(exc).__name__}: {exc}" + suffix,
        shard=index,
        rows=tuple(rows),
    ) from exc


def _merge(
    plan: MappingPlan,
    chunks: list[tuple[int, ...]],
    results: list[
        tuple[
            ProgramOutputs | DecompressOutputs,
            SimulationReport,
            Tracer | None,
            dict | None,
        ]
    ],
    tracer: Tracer | None,
    metrics: MetricsRegistry | None,
) -> SimulatedRun:
    outputs: ProgramOutputs | DecompressOutputs
    if plan.direction == "compress":
        outputs = ProgramOutputs()
        for part_outputs, _, _, _ in results:
            outputs.records.update(part_outputs.records)
    else:
        outputs = DecompressOutputs()
        for part_outputs, _, _, _ in results:
            outputs.blocks.update(part_outputs.blocks)
    trace = TraceRecorder()
    for i, (rows, (_, part_report, part_tracer, part_snap)) in enumerate(
        zip(chunks, results)
    ):
        trace.merge_partition(rows, part_report.trace)
        if tracer is not None and part_tracer is not None:
            tracer.merge_partition(rows, part_tracer, tid=i + 1)
        if metrics is not None and part_snap is not None:
            metrics.merge(part_snap)
    if metrics is not None:
        # Trace-derived metrics come from the exactly-merged recorder, so
        # their totals equal the serial run's for any number of workers.
        collect_trace_metrics(metrics, trace)
    report = SimulationReport(
        makespan_cycles=max(r.makespan_cycles for _, r, _, _ in results),
        events_processed=sum(r.events_processed for _, r, _, _ in results),
        tasks_run=sum(r.tasks_run for _, r, _, _ in results),
        trace=trace,
    )
    return SimulatedRun(
        outputs=outputs,
        report=report,
        partitions=len(results),
        tracer=tracer,
        metrics=metrics,
    )
