"""1D Lorenzo prediction (compression step 2) and its inverse.

Within each block ``(p_1, ..., p_L)`` the predictor emits the first-order
difference ``(p_1, p_2 - p_1, ..., p_L - p_{L-1})``; smooth scientific data
turns into near-zero residuals that need few effective bits. The inverse is
a block-local prefix sum (paper's decompression step: "a sequential prefix
sum task within each data block").

Both directions operate on a 2-D ``(num_blocks, block_size)`` view so the
whole field is transformed with two vectorized operations — no Python-level
loop per block. Blocks are fully independent (the first element of every
block is stored verbatim), which is precisely what lets the paper map blocks
to PE rows with zero inter-PE communication.
"""

from __future__ import annotations

import numpy as np

from repro.errors import CompressionError


def lorenzo_predict(codes: np.ndarray) -> np.ndarray:
    """First-order difference within each row of a ``(blocks, L)`` array."""
    arr = np.asarray(codes)
    if arr.ndim != 2:
        raise CompressionError(
            f"lorenzo_predict expects a (blocks, block_size) array, "
            f"got shape {arr.shape}"
        )
    out = arr.copy()
    out[:, 1:] -= arr[:, :-1]
    return out


def lorenzo_reconstruct(residuals: np.ndarray) -> np.ndarray:
    """Block-local prefix sum: the exact inverse of :func:`lorenzo_predict`."""
    arr = np.asarray(residuals)
    if arr.ndim != 2:
        raise CompressionError(
            f"lorenzo_reconstruct expects a (blocks, block_size) array, "
            f"got shape {arr.shape}"
        )
    return np.cumsum(arr, axis=1, dtype=arr.dtype)


def lorenzo_predict_nd(codes: np.ndarray) -> np.ndarray:
    """Higher-dimensional Lorenzo predictor (supported but not default).

    The paper notes CereSZ *can* support multi-dimensional Lorenzo (their
    Section 3, step 2 discussion) but prioritizes the 1D form for
    throughput. This N-D variant — residual = value minus the inclusion-
    exclusion sum of the already-visited corner neighbors — is used by the
    SZ3 baseline and by the ablation benchmark comparing ratio vs speed.
    """
    arr = np.asarray(codes)
    if arr.ndim < 1:
        raise CompressionError("lorenzo_predict_nd needs at least 1-D data")
    out = arr.astype(np.int64, copy=True)
    # Apply the 1-D difference along each axis in turn; the composition of
    # per-axis first-order differences is the N-D Lorenzo operator.
    for axis in range(arr.ndim):
        out = np.diff(out, axis=axis, prepend=0)
    return out


def lorenzo_reconstruct_nd(residuals: np.ndarray) -> np.ndarray:
    """Inverse of :func:`lorenzo_predict_nd` (per-axis prefix sums)."""
    arr = np.asarray(residuals, dtype=np.int64)
    out = arr
    for axis in range(arr.ndim - 1, -1, -1):
        out = np.cumsum(out, axis=axis, dtype=np.int64)
    return out
