"""The single lowering pass: MappingPlan -> Engine tasks/colors/routes.

Where :mod:`repro.core.plan` says *what* runs *where*, this module says how
that becomes a runnable program — exactly once, for every strategy. The
pass walks the plan deterministically:

1. allocate the plan's colors in declaration order;
2. install every :class:`~repro.core.plan.RouteSpec`;
3. per node (in plan order): allocate its SRAM buffers eagerly (so a
   too-small fabric fails at build time, like the hand-written builders
   did), attach a :class:`~repro.wse.trace.NodeCounters`, bind its tasks,
   and schedule its t=0 activations;
4. inject the plan's feeds with a per-edge-port running clock (one wavelet
   per cycle per row port).

The task closures reproduce the retired per-strategy builders cycle for
cycle: the counted relay of Fig 9, the two-phase header/body receive of the
decompression mapping, the staged head's combined relay-then-stage-group-0
duty, and the serialized :class:`~repro.core.mapping.PipelineState`
forwarding of Fig 6's pipelines. The one intentional unification: idle
shuffle sub-stages (bit index >= the block's fixed length) are charged one
task dispatch and skipped without entering the state machine, for every
pipeline variant — the charge is identical to what ``run_substage`` on an
idle bit cost, and the serialized phase difference ("lengthed" vs
"encoded") is invisible to both downstream stage groups and record
finalization.

Instrumentation: every lowered node counts blocks relayed, wavelets sent,
blocks emitted, and busy cycles per sub-stage into its
:class:`~repro.wse.trace.NodeCounters`, which the engine's trace recorder
aggregates for the per-stage validation breakdowns.

Whole-block fast path: nodes that run the *entire* compression on one PE
(the rows strategy's ComputeNode, the multi-pipeline RelayNode with no
stage group) use a fused kernel instead of stepping the per-sub-stage
state machine. The kernel performs the identical arithmetic in one pass
(all ``fl`` bit planes shuffled with a single vectorized pack) and then
replays the exact per-stage accounting — the same ``ctx.spend`` calls with
the same per-stage rounding and the same ``NodeCounters.add_stage``
entries the stepped path would have made — so makespans, stage breakdowns
and output bytes are bit-identical while the per-block Python overhead
(64-entry superset scans, name parsing, phase checks) disappears.
``lower_plan(..., fast_kernels=False)`` keeps the stepped path for
differential testing and benchmarking.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field

import numpy as np

from repro.core.mapping import (
    PipelineState,
    ProgramOutputs,
    finalize_record,
    run_substage,
    substage_cycles,
)
from repro.core.mapping_decompress import (
    DecompressOutputs,
    DecompressState,
    decode_block_from_words,
    finalize_decompressed,
    run_decompress_substage,
)
from repro.core.plan import (
    ComputeNode,
    EgressNode,
    HeaderNode,
    IngestNode,
    MappingPlan,
    RelayNode,
    StageNode,
    node_buffers,
)
from repro.config import CERESZ_HEADER_BYTES
from repro.core.predictors import get_predictor
from repro.core.stages import compression_substages, decompression_substages
from repro.errors import ScheduleError
from repro.wse.color import Color, ColorAllocator
from repro.wse.cost import CycleModel, PAPER_CYCLE_MODEL
from repro.wse.dsd import FabinDsd, FaboutDsd, Mem1dDsd
from repro.wse.engine import Engine
from repro.wse.fabric import Fabric
from repro.wse.pe import Task, TaskContext
from repro.wse.trace import NodeCounters
from repro.wse.wavelet import Direction, wavelet_count

_DIRECTIONS = {
    "west": Direction.WEST,
    "east": Direction.EAST,
    "north": Direction.NORTH,
    "south": Direction.SOUTH,
    "ramp": Direction.RAMP,
}

_NP_DTYPES = {"float64": np.float64, "int64": np.int64}


@dataclass
class LoweredProgram:
    """A plan compiled onto a fabric/engine pair, plus its instrumentation."""

    plan: MappingPlan
    colors: dict[str, Color]
    outputs: ProgramOutputs | DecompressOutputs
    counters: list[NodeCounters] = dataclass_field(default_factory=list)


def lower_plan(
    plan: MappingPlan,
    fabric: Fabric,
    engine: Engine,
    *,
    model: CycleModel = PAPER_CYCLE_MODEL,
    colors: ColorAllocator | None = None,
    fast_kernels: bool = True,
    tracer=None,
) -> LoweredProgram:
    """Compile ``plan`` onto ``fabric``/``engine``; returns the live outputs.

    Deterministic by construction: colors, routes, buffers, task bindings,
    activations, and feed injections all follow plan declaration order, so
    two lowerings of the same plan produce identical event schedules.

    ``fast_kernels`` selects the fused whole-block compression kernel for
    nodes that run the full algorithm on one PE (see the module docstring);
    results are identical either way.

    ``tracer`` (a :class:`repro.obs.tracing.Tracer`) wraps the pass in a
    ``"lower"`` host span; lowering itself is untraced beyond that.
    """
    if tracer is not None and tracer.enabled:
        with tracer.span(
            "lower",
            direction=plan.direction,
            rows=plan.rows,
            cols=plan.cols,
            nodes=len(plan.nodes),
        ):
            return _lower_plan(
                plan, fabric, engine, model=model, colors=colors,
                fast_kernels=fast_kernels,
            )
    return _lower_plan(
        plan, fabric, engine, model=model, colors=colors,
        fast_kernels=fast_kernels,
    )


def _lower_plan(
    plan: MappingPlan,
    fabric: Fabric,
    engine: Engine,
    *,
    model: CycleModel,
    colors: ColorAllocator | None,
    fast_kernels: bool,
) -> LoweredProgram:
    plan.validate()
    if plan.rows > fabric.rows or plan.cols > fabric.cols:
        raise ScheduleError(
            f"plan needs a {plan.rows}x{plan.cols} mesh, fabric is "
            f"{fabric.rows}x{fabric.cols}"
        )
    allocator = colors if colors is not None else ColorAllocator()
    cmap = {name: allocator.allocate(name) for name in plan.colors}

    for route in plan.routes:
        ins = tuple(_DIRECTIONS[d] for d in route.inputs)
        fabric.set_route(
            route.row,
            route.col,
            cmap[route.color],
            ins[0] if len(ins) == 1 else ins,
            _DIRECTIONS[route.output],
        )

    outputs: ProgramOutputs | DecompressOutputs
    if plan.direction == "compress":
        outputs = ProgramOutputs()
    else:
        outputs = DecompressOutputs()
    lowered = LoweredProgram(plan=plan, colors=cmap, outputs=outputs)

    for node in plan.nodes:
        if isinstance(node, (IngestNode, EgressNode)):
            continue
        pe = fabric.pe(node.row, node.col)
        for buf in node_buffers(node, plan):
            pe.alloc_buffer(
                buf.name, np.zeros(buf.extent, dtype=_NP_DTYPES[buf.dtype])
            )
        nc = NodeCounters(
            label=f"{node.kind}@({node.row},{node.col})",
            kind=node.kind,
            row=node.row,
            col=node.col,
        )
        pe.counters.append(nc)
        lowered.counters.append(nc)
        if isinstance(node, ComputeNode):
            _lower_compute(
                node, plan, pe, engine, cmap, model, outputs, nc, fast_kernels
            )
        elif isinstance(node, RelayNode):
            _lower_relay(
                node, plan, pe, engine, cmap, model, outputs, nc, fast_kernels
            )
        elif isinstance(node, StageNode):
            if plan.direction == "compress":
                _lower_stage(node, plan, pe, engine, cmap, model, outputs, nc)
            else:
                _lower_decompress_stage(
                    node, plan, pe, engine, cmap, model, outputs, nc
                )
        elif isinstance(node, HeaderNode):
            _lower_header(node, plan, pe, engine, cmap, model, outputs, nc)
        else:  # pragma: no cover - plan.validate() rejects unknown kinds
            raise ScheduleError(f"cannot lower node kind {node.kind!r}")

    clocks: dict[tuple[int, int], float] = {}
    for feed in plan.feeds:
        key = (feed.row, feed.col)
        at = clocks.get(key, 0.0)
        engine.inject(feed.row, feed.col, cmap[feed.color], feed.data, at=at)
        clocks[key] = at + feed.data.size
    return lowered


# --- shared closure pieces -------------------------------------------------------------


def _is_idle_shuffle(stage, fl: int | None) -> bool:
    return (
        stage.name.startswith("shuffle_bit_")
        and fl is not None
        and int(stage.name.rsplit("_", 1)[1]) >= fl
    )


def _run_full_compress(
    ctx: TaskContext,
    stages,
    eps: float,
    block_size: int,
    model: CycleModel,
    nc: NodeCounters,
) -> PipelineState:
    """Whole-algorithm compression of the block sitting in ``inbox``.

    Planned-but-idle shuffle bits are skipped entirely (uncharged) — the
    whole-block kernels iterate only the bits the block actually needs.
    """
    state = PipelineState(
        phase="raw", block_size=block_size, values=ctx.buffer("inbox").copy()
    )
    for stage in stages:
        if _is_idle_shuffle(stage, state.fl):
            continue
        state = run_substage(stage, state, eps)
        cost = substage_cycles(stage, state.fl, model, block_size)
        ctx.spend(cost)
        nc.add_stage(stage.name, cost)
    return state


def _make_fast_compress(
    plan: MappingPlan, model: CycleModel, nc: NodeCounters
):
    """Fused whole-block compression: ``inbox`` values -> record bytes.

    Arithmetic and accounting are exact replays of the stepped path
    (``_run_full_compress`` + ``finalize_record``): the same operations in
    the same order, one ``ctx.spend``/``nc.add_stage`` pair per live stage
    with the same per-stage rounding, and the same byte layout (sign bytes
    then bit planes 0..fl-1, little-endian packing within bytes). The only
    differences are mechanical: costs are precomputed at lowering time
    instead of re-derived per block, and all ``fl`` bit planes are packed
    in one vectorized call instead of ``fl`` separate ones.

    Prediction dispatches through the plan's registered block-local
    predictor (``plan.predictor``); the default ``lorenzo1d`` performs the
    exact first-difference arithmetic the stepped path's ``lorenzo``
    sub-stage does. Other predictors keep the ``lorenzo`` cost entry: the
    cycle model prices "the prediction sub-stage", and every block-local
    predictor is the same O(block) pass.
    """
    block_size = plan.block_size
    eps = plan.eps
    pred = get_predictor(plan.predictor)
    fixed_costs = (
        ("multiplication", model.multiplication.cycles(block_size)),
        ("addition", model.addition.cycles(block_size)),
        ("lorenzo", model.lorenzo.cycles(block_size)),
        ("sign", model.sign.cycles(block_size)),
        ("max", model.max.cycles(block_size)),
        ("get_length", model.get_length.cycles(block_size)),
    )
    per_bit = model.bit_shuffle.cycles(block_size, 1)
    # Accounting plans memoized per fixed length: the stepped path spends
    # int(round(cost)) per stage, so the batched spend is the sum of the
    # per-stage roundings (NOT round-of-sum) and the stage breakdown keeps
    # the raw per-stage floats.
    acct: dict[int, tuple[int, tuple[tuple[str, float], ...]]] = {}

    def _acct_for(fl: int) -> tuple[int, tuple[tuple[str, float], ...]]:
        plan_ = acct.get(fl)
        if plan_ is None:
            items = fixed_costs + tuple(
                (f"shuffle_bit_{k}", per_bit) for k in range(fl)
            )
            spend = sum(int(round(cost)) for _, cost in items)
            plan_ = acct[fl] = (spend, items)
        return plan_

    def compress(ctx: TaskContext) -> bytes:
        codes = np.floor(ctx.buffer("inbox") / (2.0 * eps) + 0.5)
        residuals = pred.predict_blocks(codes[None, :])[0]
        signs = np.packbits(
            (residuals < 0).reshape(-1, 8), axis=-1, bitorder="little"
        )
        mags = np.abs(residuals)
        fl = int(mags.max()).bit_length()
        spend, items = _acct_for(fl)
        ctx.spend(spend)
        nc.add_stages(items)
        header = fl.to_bytes(CERESZ_HEADER_BYTES, "little")
        if fl == 0:
            return header
        imags = mags.astype(np.int64)
        ks = np.arange(fl, dtype=np.int64)
        bits = ((imags[None, :] >> ks[:, None]) & 1).astype(np.uint8)
        planes = np.packbits(
            bits.reshape(fl, -1, 8), axis=-1, bitorder="little"
        )
        return header + signs.tobytes() + planes.tobytes()

    return compress


def host_block_records(
    raw_blocks,
    eps: float,
    indices,
    *,
    predictor: str = "lorenzo1d",
    header_bytes: int = CERESZ_HEADER_BYTES,
) -> dict[int, bytes]:
    """Wafer-identical compressed records computed on the host.

    The degraded-mode fallback's encoder: given the raw (zero-padded)
    blocks a plan's feeds were built from, produce the exact record bytes
    the fused wafer kernel (:func:`_make_fast_compress`) would have
    emitted for ``indices`` — including the feed's float32 wire cast
    (ingest sends ``float32`` wavelets into ``float64`` buffers, which is
    lossy for raw float64 data and therefore part of the byte contract).
    Keyed by block index, so the result merges straight into
    :attr:`repro.core.mapping.ProgramOutputs.records`.
    """
    pred = get_predictor(predictor)
    out: dict[int, bytes] = {}
    for idx in indices:
        vals = np.asarray(raw_blocks[int(idx)], dtype=np.float64)
        vals = vals.astype(np.float32).astype(np.float64)
        codes = np.floor(vals / (2.0 * eps) + 0.5)
        residuals = pred.predict_blocks(codes[None, :])[0]
        signs = np.packbits(
            (residuals < 0).reshape(-1, 8), axis=-1, bitorder="little"
        )
        mags = np.abs(residuals)
        fl = int(mags.max()).bit_length()
        header = fl.to_bytes(header_bytes, "little")
        if fl == 0:
            out[int(idx)] = header
            continue
        imags = mags.astype(np.int64)
        ks = np.arange(fl, dtype=np.int64)
        bits = ((imags[None, :] >> ks[:, None]) & 1).astype(np.uint8)
        planes = np.packbits(
            bits.reshape(fl, -1, 8), axis=-1, bitorder="little"
        )
        out[int(idx)] = header + signs.tobytes() + planes.tobytes()
    return out


def _make_run_group(
    group,
    out_color: Color | None,
    my: list[int],
    box: dict,
    plan: MappingPlan,
    model: CycleModel,
    outputs: ProgramOutputs,
    nc: NodeCounters,
):
    """One Algorithm-1 stage group: run, then emit or forward the state.

    Idle shuffle bits cost one task dispatch (the schedule planned them;
    the PE still wakes for them) but never enter the state machine.
    """
    eps = plan.eps
    block_size = plan.block_size
    state_len = plan.state_len

    def run_group(ctx: TaskContext, state: PipelineState) -> PipelineState:
        for stage in group:
            if _is_idle_shuffle(stage, state.fl):
                ctx.spend(model.task_dispatch)
                nc.add_stage(stage.name, model.task_dispatch)
                continue
            state = run_substage(stage, state, eps)
            cost = substage_cycles(stage, state.fl, model, block_size)
            ctx.spend(cost)
            nc.add_stage(stage.name, cost)
        idx = my[box["done"]]
        box["done"] += 1
        if out_color is None:
            outputs.records[idx] = finalize_record(state)
            nc.blocks_emitted += 1
        else:
            vec = state.to_array()
            padded = np.zeros(state_len, dtype=np.float64)
            padded[: vec.size] = vec
            ctx.spend(model.forward_block_cycles(block_size))
            ctx.send(out_color, padded)
            nc.wavelets_sent += wavelet_count(padded)
        return state

    return run_group


# --- compression nodes -----------------------------------------------------------------


def _lower_compute(
    node: ComputeNode,
    plan: MappingPlan,
    pe,
    engine: Engine,
    cmap: dict[str, Color],
    model: CycleModel,
    outputs: ProgramOutputs,
    nc: NodeCounters,
    fast_kernels: bool,
) -> None:
    """Whole-algorithm-per-PE node (the rows strategy's only worker kind)."""
    block_size = plan.block_size
    c_recv = cmap[node.recv]
    c_go = cmap[node.go]
    my = list(node.blocks)
    stages = compression_substages(64, block_size, model)  # superset plan
    # The stepped sub-stage machine models the paper's 1-D Lorenzo
    # pipeline; any other block-local predictor always runs through the
    # fused kernel, which dispatches on plan.predictor.
    use_fast = fast_kernels or plan.predictor != "lorenzo1d"
    fast = _make_fast_compress(plan, model, nc) if use_fast else None
    progress = {"next": 0}

    def recv(ctx: TaskContext) -> None:
        ctx.mov32(
            Mem1dDsd("inbox"),
            FabinDsd(c_recv, extent=block_size),
            on_complete=c_go,
        )

    def compute(ctx: TaskContext) -> None:
        idx = my[progress["next"]]
        progress["next"] += 1
        if fast is not None:
            outputs.records[idx] = fast(ctx)
        else:
            state = _run_full_compress(
                ctx, stages, plan.eps, block_size, model, nc
            )
            outputs.records[idx] = finalize_record(state)
        nc.blocks_emitted += 1
        if progress["next"] < len(my):
            ctx.activate(c_recv)
        else:
            ctx.halt()

    pe.bind_task(c_recv, Task("recv", recv))
    pe.bind_task(c_go, Task("compute", compute))
    if my:
        engine.schedule_activation(pe, c_recv.id, 0.0)


def _lower_relay(
    node: RelayNode,
    plan: MappingPlan,
    pe,
    engine: Engine,
    cmap: dict[str, Color],
    model: CycleModel,
    outputs: ProgramOutputs,
    nc: NodeCounters,
    fast_kernels: bool,
) -> None:
    """Fig 9 counted relay + compute (multi-pipeline PE or staged head)."""
    block_size = plan.block_size
    c_recv = cmap[node.recv]
    c_send = cmap[node.send]
    c_go = cmap[node.go]
    sched = list(node.schedule)
    my = list(node.blocks)
    box = {"round": 0, "relayed": 0, "done": 0}
    relay_overhead = max(
        0.0, model.relay_block_cycles(block_size) - block_size
    )

    def relay(ctx: TaskContext) -> None:
        rnd = box["round"]
        while rnd < len(sched) and sched[rnd] == (0, None):
            rnd += 1
        box["round"] = rnd
        if rnd >= len(sched):
            ctx.halt()
            return
        to_relay, own = sched[rnd]
        if box["relayed"] < to_relay:
            # Pass one block east untouched (Fig 9 lines 26-28), then
            # re-arm the relay task. The engine charges the wavelet
            # injection when the forward fires; spend only C1's
            # router/queueing overhead here so the per-block relay cost
            # totals exactly C1.
            ctx.mov32(
                FaboutDsd(c_send, extent=block_size),
                FabinDsd(c_recv, extent=block_size),
                on_complete=c_recv,
                relay=True,
            )
            ctx.spend(relay_overhead, relay=True)
            nc.blocks_relayed += 1
            nc.wavelets_sent += block_size
            box["relayed"] += 1
            if box["relayed"] == to_relay and own is None:
                box["round"] += 1
                box["relayed"] = 0
        elif own is not None:
            # This PE's own block of the round (Fig 9 lines 21-23).
            ctx.mov32(
                Mem1dDsd("inbox"),
                FabinDsd(c_recv, extent=block_size),
                on_complete=c_go,
            )
        else:  # pragma: no cover - unreachable by construction
            box["round"] += 1
            box["relayed"] = 0
            ctx.activate(c_recv)

    if node.group is None:
        stages = compression_substages(64, block_size, model)
        # Same rule as _lower_compute: the stepped machine is the 1-D
        # Lorenzo model; other predictors take the fused kernel.
        use_fast = fast_kernels or plan.predictor != "lorenzo1d"
        fast = _make_fast_compress(plan, model, nc) if use_fast else None

        def consume(ctx: TaskContext) -> None:
            idx = my[box["done"]]
            box["done"] += 1
            if fast is not None:
                outputs.records[idx] = fast(ctx)
            else:
                state = _run_full_compress(
                    ctx, stages, plan.eps, block_size, model, nc
                )
                outputs.records[idx] = finalize_record(state)
            nc.blocks_emitted += 1

    else:
        c_out = cmap[node.out] if node.out is not None else None
        run_group = _make_run_group(
            node.group, c_out, my, box, plan, model, outputs, nc
        )

        def consume(ctx: TaskContext) -> None:
            state = PipelineState(
                phase="raw",
                block_size=block_size,
                values=ctx.buffer("inbox").copy(),
            )
            run_group(ctx, state)

    def compute(ctx: TaskContext) -> None:
        consume(ctx)
        box["round"] += 1
        box["relayed"] = 0
        # Keep running while *any* duty remains — own blocks or tail-round
        # relays for PEs east (halting early would starve them, the Fig 9
        # countdown's whole point).
        remaining = any(p != (0, None) for p in sched[box["round"] :])
        if remaining:
            ctx.activate(c_recv)
        else:
            ctx.halt()

    pe.bind_task(c_recv, Task("relay", relay))
    pe.bind_task(c_go, Task("compute", compute))
    if any(p != (0, None) for p in sched):
        engine.schedule_activation(pe, c_recv.id, 0.0)


def _lower_stage(
    node: StageNode,
    plan: MappingPlan,
    pe,
    engine: Engine,
    cmap: dict[str, Color],
    model: CycleModel,
    outputs: ProgramOutputs,
    nc: NodeCounters,
) -> None:
    """One compression stage group, with an optional raw-relay side duty."""
    block_size = plan.block_size
    c_recv = cmap[node.recv]
    c_go = cmap[node.go]
    c_send = cmap[node.send] if node.send is not None else None
    extent = block_size if node.first else plan.state_len
    my = list(node.blocks)
    box = {"done": 0}
    run_group = _make_run_group(
        node.group, c_send, my, box, plan, model, outputs, nc
    )

    def recv(ctx: TaskContext) -> None:
        ctx.mov32(
            Mem1dDsd("stage_in"),
            FabinDsd(c_recv, extent=extent),
            on_complete=c_go,
        )

    def load_state(ctx: TaskContext) -> PipelineState:
        raw = ctx.buffer("stage_in")
        if node.first:
            return PipelineState(
                phase="raw", block_size=block_size, values=raw.copy()
            )
        return PipelineState.from_array(raw)

    if node.relay is None:

        def compute(ctx: TaskContext) -> None:
            run_group(ctx, load_state(ctx))
            if box["done"] < len(my):
                ctx.activate(c_recv)
            else:
                ctx.halt()

        pe.bind_task(c_recv, Task("recv", recv))
        pe.bind_task(c_go, Task("compute", compute))
        if my:
            engine.schedule_activation(pe, c_recv.id, 0.0)
        return

    # Stage PE with a raw pass-through duty for pipelines east of it.
    recv_raw_name, send_raw_name, total = node.relay
    c_recv_raw = cmap[recv_raw_name]
    c_send_raw = cmap[send_raw_name]
    rbox = {"relayed": 0}
    relay_overhead = max(
        0.0, model.relay_block_cycles(block_size) - block_size
    )

    def raw_relay(ctx: TaskContext) -> None:
        if rbox["relayed"] >= total:
            return
        ctx.mov32(
            FaboutDsd(c_send_raw, extent=block_size),
            FabinDsd(c_recv_raw, extent=block_size),
            on_complete=(c_recv_raw if rbox["relayed"] + 1 < total else None),
            relay=True,
        )
        ctx.spend(relay_overhead, relay=True)
        nc.blocks_relayed += 1
        nc.wavelets_sent += block_size
        rbox["relayed"] += 1

    def compute(ctx: TaskContext) -> None:
        run_group(ctx, load_state(ctx))
        if box["done"] < len(my):
            ctx.activate(c_recv)
        # Never halts: a raw relay for an eastern pipeline may still be in
        # flight through this PE.

    pe.bind_task(c_recv_raw, Task("raw_relay", raw_relay))
    pe.bind_task(c_recv, Task("recv_state", recv))
    pe.bind_task(c_go, Task("compute", compute))
    if total:
        engine.schedule_activation(pe, c_recv_raw.id, 0.0)
    if my:
        engine.schedule_activation(pe, c_recv.id, 0.0)


# --- decompression nodes ---------------------------------------------------------------


def _make_decompress_process(
    group,
    out_color: Color | None,
    rearm_color: Color,
    my: list[int],
    box: dict,
    plan: MappingPlan,
    model: CycleModel,
    outputs: DecompressOutputs,
    nc: NodeCounters,
):
    """One reverse stage group: run, then emit the block or forward state."""
    eps = plan.eps
    block_size = plan.block_size
    state_len = plan.state_len

    def process(ctx: TaskContext, state: DecompressState) -> None:
        for stage in group:
            if stage.name.startswith("unshuffle_bit_"):
                k = int(stage.name.rsplit("_", 1)[1])
                if k >= state.fl:
                    ctx.spend(model.task_dispatch)
                    nc.add_stage(stage.name, model.task_dispatch)
                    continue
            if state.fl == 0 and stage.name in ("sign_restore",):
                ctx.spend(model.task_dispatch)
                nc.add_stage(stage.name, model.task_dispatch)
                continue
            if state.phase == "signed" and stage.name.startswith("unshuffle"):
                ctx.spend(model.task_dispatch)
                nc.add_stage(stage.name, model.task_dispatch)
                continue
            state = run_decompress_substage(stage, state, eps)
            ctx.spend(stage.cycles)
            nc.add_stage(stage.name, stage.cycles)
        idx = my[box["done"]]
        box["done"] += 1
        if out_color is None:
            outputs.blocks[idx] = finalize_decompressed(state)
            nc.blocks_emitted += 1
        else:
            vec = state.to_array()
            padded = np.zeros(state_len, dtype=np.float64)
            padded[: vec.size] = vec
            ctx.spend(model.forward_block_cycles(block_size))
            ctx.send(out_color, padded)
            nc.wavelets_sent += wavelet_count(padded)
        if box["done"] < len(my):
            ctx.activate(rearm_color)
        else:
            ctx.halt()

    return process


def _lower_header(
    node: HeaderNode,
    plan: MappingPlan,
    pe,
    engine: Engine,
    cmap: dict[str, Color],
    model: CycleModel,
    outputs: DecompressOutputs,
    nc: NodeCounters,
) -> None:
    """Two-phase header/body receive, then whole-block decode or group 0."""
    block_size = plan.block_size
    eps = plan.eps
    sign_words = block_size // 32
    c_in = cmap[node.recv]
    c_hdr = cmap[node.hdr]
    c_body = cmap[node.body]
    my = list(node.blocks)
    box = {"done": 0}

    if node.group is None:

        def decode_and_emit(
            ctx: TaskContext, fl: int, words: np.ndarray | None
        ) -> None:
            idx = my[box["done"]]
            box["done"] += 1
            zero = fl == 0
            for stage in decompression_substages(fl, block_size, model):
                if zero and not stage.name.startswith("dequant"):
                    continue  # zero path: flag + dequant only
                ctx.spend(stage.cycles)
                nc.add_stage(stage.name, stage.cycles)
            if zero:
                cost = model.zero_flag.cycles(block_size)
                ctx.spend(cost)
                nc.add_stage("zero_flag", cost)
            outputs.blocks[idx] = decode_block_from_words(
                fl, words, eps, block_size
            )
            nc.blocks_emitted += 1
            if box["done"] < len(my):
                ctx.activate(c_in)
            else:
                ctx.halt()

    else:
        c_send = cmap[node.send] if node.send is not None else None
        process = _make_decompress_process(
            node.group, c_send, c_in, my, box, plan, model, outputs, nc
        )

        def decode_and_emit(
            ctx: TaskContext, fl: int, words: np.ndarray | None
        ) -> None:
            state = DecompressState.from_record(fl, words, block_size)
            process(ctx, state)

    def recv_header(ctx: TaskContext) -> None:
        ctx.mov32(
            Mem1dDsd("hdr"), FabinDsd(c_in, extent=1), on_complete=c_hdr
        )

    def on_header(ctx: TaskContext) -> None:
        fl = int(ctx.buffer("hdr")[0])
        if fl == 0:
            # Zero block: no body follows; decode is trivial.
            decode_and_emit(ctx, 0, None)
        else:
            ctx.mov32(
                Mem1dDsd("body", length=sign_words * (1 + fl)),
                FabinDsd(c_in, extent=sign_words * (1 + fl)),
                on_complete=c_body,
            )

    def on_body(ctx: TaskContext) -> None:
        fl = int(ctx.buffer("hdr")[0])
        words = (
            ctx.buffer("body")[: sign_words * (1 + fl)]
            .astype(np.uint32)
            .copy()
        )
        decode_and_emit(ctx, fl, words)

    pe.bind_task(c_in, Task("recv_header", recv_header))
    pe.bind_task(c_hdr, Task("on_header", on_header))
    pe.bind_task(c_body, Task("on_body", on_body))
    if my:
        engine.schedule_activation(pe, c_in.id, 0.0)


def _lower_decompress_stage(
    node: StageNode,
    plan: MappingPlan,
    pe,
    engine: Engine,
    cmap: dict[str, Color],
    model: CycleModel,
    outputs: DecompressOutputs,
    nc: NodeCounters,
) -> None:
    """A non-head decompression pipeline PE: receive state, run group."""
    c_recv = cmap[node.recv]
    c_go = cmap[node.go]
    c_send = cmap[node.send] if node.send is not None else None
    state_len = plan.state_len
    my = list(node.blocks)
    box = {"done": 0}
    process = _make_decompress_process(
        node.group, c_send, c_recv, my, box, plan, model, outputs, nc
    )

    def recv_state(ctx: TaskContext) -> None:
        ctx.mov32(
            Mem1dDsd("stage_in"),
            FabinDsd(c_recv, extent=state_len),
            on_complete=c_go,
        )

    def on_state(ctx: TaskContext) -> None:
        process(ctx, DecompressState.from_array(ctx.buffer("stage_in")))

    pe.bind_task(c_recv, Task("recv_state", recv_state))
    pe.bind_task(c_go, Task("on_state", on_state))
    if my:
        engine.schedule_activation(pe, c_recv.id, 0.0)
