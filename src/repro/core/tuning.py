"""Pipeline-length selection (paper Section 4.4).

The paper's analysis says pipeline length 1 is optimal *if* two assumptions
hold: the data generation rate can saturate all TC pipelines, and one PE's
48 KB SRAM holds the whole compression working set. When either fails, a
longer pipeline is mandatory, and "the optimal configuration can be easily
obtained by tuning" — this module is that tuning:

* :func:`pipeline_working_set` — bytes a stage group needs resident on one
  PE (input block + serialized inter-stage state + output record);
* :func:`min_feasible_pipeline_length` — the shortest pipeline whose
  largest per-PE working set fits the SRAM budget;
* :func:`tune_pipeline_length` — sweep feasible lengths through the wafer
  model and return the throughput-optimal configuration.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import BLOCK_SIZE, PE_SRAM_BYTES, WaferConfig
from repro.errors import ScheduleError
from repro.core.schedule import distribute_substages
from repro.core.stages import compression_substages
from repro.wse.cost import CycleModel, PAPER_CYCLE_MODEL

#: Bytes reserved per PE for code, the runtime, and routing state — the
#: fraction of the 48 KB not available for data buffers.
DEFAULT_CODE_RESERVE = 12 * 1024


def pipeline_working_set(
    fl: int,
    pipeline_length: int,
    block_size: int = BLOCK_SIZE,
    model: CycleModel = PAPER_CYCLE_MODEL,
) -> int:
    """Worst per-PE buffer bytes for a pipeline of the given length.

    A PE holds: the incoming payload (a raw block for the head PE, the
    serialized inter-stage state elsewhere — the larger of the two bounds
    every position), its working copy, and the outgoing payload. State
    grows with the planned fixed length (each 1-bit shuffle adds a byte
    group), so tight bounds raise the memory pressure — exactly the paper's
    "intermediate data" concern.
    """
    if pipeline_length < 1:
        raise ScheduleError(f"pipeline length must be >= 1: {pipeline_length}")
    stages = compression_substages(fl, block_size, model)
    if pipeline_length > len(stages):
        raise ScheduleError(
            f"pipeline of {pipeline_length} PEs longer than the "
            f"{len(stages)} sub-stages"
        )
    # Serialized PipelineState: header(5) + values + signs + fl byte groups,
    # in float64 words on the simulated fabric (i32 pairs on the device).
    sign_bytes = block_size // 8
    state_words = 5 + block_size + sign_bytes + fl * sign_bytes
    state_bytes = state_words * 8
    raw_bytes = block_size * 8  # float64 staging of the raw block
    per_pe = max(raw_bytes, state_bytes)
    # Input buffer + working copy + output buffer.
    return 3 * per_pe


def min_feasible_pipeline_length(
    fl: int,
    *,
    block_size: int = BLOCK_SIZE,
    sram_bytes: int = PE_SRAM_BYTES,
    code_reserve: int = DEFAULT_CODE_RESERVE,
    model: CycleModel = PAPER_CYCLE_MODEL,
) -> int:
    """Shortest pipeline whose working set fits the SRAM budget.

    For the paper's configuration (L = 32) this is 1 — the entire
    compression fits one PE, which is why Fig 13 finds pl = 1 optimal. For
    larger blocks or tighter bounds the working set grows and splitting
    becomes mandatory.

    Note the working set here shrinks only weakly with the pipeline length
    (every PE still stages the serialized state), so infeasibility at
    length 1 usually means infeasibility at any length for this block
    size — the resolution is a smaller block, which the function reports
    in its error.
    """
    budget = sram_bytes - code_reserve
    if budget <= 0:
        raise ScheduleError("code reserve exceeds the SRAM capacity")
    stages = compression_substages(fl, block_size, model)
    for pl in range(1, len(stages) + 1):
        if pipeline_working_set(fl, pl, block_size, model) <= budget:
            return pl
    raise ScheduleError(
        f"no pipeline length fits block size {block_size} at fixed length "
        f"{fl} within {budget} bytes; reduce the block size"
    )


@dataclass(frozen=True)
class TuningResult:
    """Outcome of the Section 4.4 sweep."""

    pipeline_length: int
    throughput_gbs: float
    feasible_lengths: tuple[int, ...]
    sweep: tuple[tuple[int, float], ...]  # (length, GB/s) pairs


def tune_pipeline_length(
    data: np.ndarray,
    eps: float,
    *,
    wafer: WaferConfig | None = None,
    max_length: int = 8,
    block_size: int = BLOCK_SIZE,
    sram_bytes: int = PE_SRAM_BYTES,
    model: CycleModel = PAPER_CYCLE_MODEL,
) -> TuningResult:
    """Pick the throughput-optimal feasible pipeline length for ``data``.

    Sweeps lengths from the SRAM-mandated minimum up to ``max_length``
    (the paper: "the number of sub-stages ... is limited, usually less
    than 10, [so] the optimal configuration can be easily obtained by
    tuning") through the wafer throughput model.
    """
    from repro.perf.wafer import measure_workload, wafer_throughput

    wafer = wafer or WaferConfig(rows=512, cols=512)
    workload = measure_workload(data, eps, block_size=block_size)
    fl = max(workload.representative_fl, 1)
    floor = min_feasible_pipeline_length(
        fl, block_size=block_size, sram_bytes=sram_bytes, model=model
    )
    stages = compression_substages(fl, block_size, model)
    ceiling = min(max_length, len(stages), wafer.cols)
    if floor > ceiling:
        raise ScheduleError(
            f"minimum feasible length {floor} exceeds the sweep ceiling "
            f"{ceiling}"
        )
    sweep = []
    for pl in range(floor, ceiling + 1):
        # Skip lengths Algorithm 1 cannot realize with non-empty groups.
        distribute_substages(stages, pl)
        perf = wafer_throughput(
            workload, wafer, pipeline_length=pl, model=model
        )
        sweep.append((pl, perf.throughput_gbs))
    best_pl, best_gbs = max(sweep, key=lambda item: item[1])
    return TuningResult(
        pipeline_length=best_pl,
        throughput_gbs=best_gbs,
        feasible_lengths=tuple(pl for pl, _ in sweep),
        sweep=tuple(sweep),
    )
