"""Sub-stage decomposition of the compression/decompression pipeline.

To balance a pipeline across PEs, the paper splits the three coarse steps
into finer sub-stages (Section 4.2):

* Pre-Quantization -> Multiplication + Addition (Table 2);
* Lorenzo prediction stays whole (cheap: one subtraction per element);
* Fixed-Length Encoding -> Sign + Max + GetLength + Bit-shuffle (Table 3),
  and the Bit-shuffle — whose cost is proportional to the fixed length —
  further splits into independent 1-bit shuffles.

Decompression mirrors this: per-byte bit-unshuffles, an *indivisible*
prefix sum (reverse Lorenzo), and an indivisible de-quantization multiply.

Each :class:`SubStage` carries its calibrated cycle cost so the greedy
balancer (:mod:`repro.core.schedule`, the paper's Algorithm 1) can fill PE
groups by runtime.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import BLOCK_SIZE
from repro.errors import ScheduleError
from repro.wse.cost import CycleModel, PAPER_CYCLE_MODEL


@dataclass(frozen=True)
class SubStage:
    """One indivisible unit of pipeline work for a single data block."""

    name: str
    cycles: float
    #: Coarse step this sub-stage belongs to ("prequant", "lorenzo",
    #: "encode" — or their decompression mirrors).
    step: str
    divisible_from: str | None = None  # parent stage it was split out of

    def __post_init__(self) -> None:
        if self.cycles < 0:
            raise ScheduleError(f"sub-stage {self.name} has negative cycles")


def compression_substages(
    fl: int,
    block_size: int = BLOCK_SIZE,
    model: CycleModel = PAPER_CYCLE_MODEL,
) -> list[SubStage]:
    """The ordered sub-stage list for compressing one block.

    ``fl`` is the (estimated) fixed length: it determines how many 1-bit
    shuffle sub-stages exist. In practice ``fl`` comes from the 5 % sampling
    estimator (:func:`repro.core.schedule.estimate_fixed_length`) since the
    distribution must be fixed before data arrives.
    """
    if fl < 0:
        raise ScheduleError(f"negative fixed length {fl}")
    stages = [
        SubStage(
            "multiplication",
            model.multiplication.cycles(block_size),
            "prequant",
            divisible_from="prequant",
        ),
        SubStage(
            "addition",
            model.addition.cycles(block_size),
            "prequant",
            divisible_from="prequant",
        ),
        SubStage("lorenzo", model.lorenzo.cycles(block_size), "lorenzo"),
        SubStage("sign", model.sign.cycles(block_size), "encode", "encode"),
        SubStage("max", model.max.cycles(block_size), "encode", "encode"),
        SubStage(
            "get_length", model.get_length.cycles(block_size), "encode", "encode"
        ),
    ]
    per_bit = model.bit_shuffle.cycles(block_size, 1)
    for k in range(fl):
        stages.append(
            SubStage(f"shuffle_bit_{k}", per_bit, "encode", "bit_shuffle")
        )
    return stages


def decompression_substages(
    fl: int,
    block_size: int = BLOCK_SIZE,
    model: CycleModel = PAPER_CYCLE_MODEL,
) -> list[SubStage]:
    """The ordered sub-stage list for decompressing one block.

    The reverse Bit-shuffle splits per encoded byte group; the prefix sum
    and the de-quantization multiply are indivisible (paper Section 4.2:
    "Reversing Lorenzo Prediction ... cannot be further divided. Similarly,
    the reverse Pre-Quantization step ... remains indivisible").
    """
    if fl < 0:
        raise ScheduleError(f"negative fixed length {fl}")
    stages: list[SubStage] = []
    per_bit = model.bit_unshuffle.cycles(block_size, 1)
    for k in range(fl):
        stages.append(
            SubStage(f"unshuffle_bit_{k}", per_bit, "decode", "bit_unshuffle")
        )
    stages.append(
        SubStage("sign_restore", model.sign_restore.cycles(block_size), "decode")
    )
    stages.append(
        SubStage("prefix_sum", model.prefix_sum.cycles(block_size), "unlorenzo")
    )
    stages.append(
        SubStage("dequant_mult", model.dequant_mult.cycles(block_size), "dequant")
    )
    return stages


def total_cycles(stages: list[SubStage]) -> float:
    """The paper's C: summed runtime of all sub-stages for one block."""
    return sum(s.cycles for s in stages)


def coarse_step_cycles(stages: list[SubStage]) -> dict[str, float]:
    """Aggregate cycles per coarse step (regenerates Tables 1-3 rows)."""
    out: dict[str, float] = {}
    for s in stages:
        out[s.step] = out.get(s.step, 0.0) + s.cycles
    return out
