"""cuSZ: N-D Lorenzo prediction + canonical Huffman encoding (Tian et al.).

cuSZ pairs a multi-dimensional Lorenzo predictor with a Huffman encoder over
the quantization codes; codes outside the codebook radius are stored as raw
outliers. Two structural consequences show up in the paper's Table 5:

* ratios track CereSZ's closely on rough data (both are first-order
  predictors), but the N-D predictor wins on multi-dimensional fields;
* the Huffman floor of one bit per symbol caps the best case near 32x
  (cuSZ's Table 5 maxima sit at 25-31x) — the same ceiling CereSZ hits via
  its 4-byte headers, which is why the paper calls their ratios "similar".

Stream layout::

    [ magic "CZL1" ][ ndim u8 ][ dims u64* ][ eps f64 ][ radius u32 ]
    [ outlier_count u64 ][ outliers (u64 index, i64 code)* ]
    [ huffman-coded clipped residuals ]
"""

from __future__ import annotations

import struct

import numpy as np

from repro.errors import CompressionError, FormatError
from repro.core.compressor import CompressionResult
from repro.core.lorenzo import lorenzo_predict_nd, lorenzo_reconstruct_nd
from repro.core.quantize import dequantize, prequantize_verified
from repro.baselines.base import register
from repro.baselines.huffman import HuffmanCodec

_MAGIC = b"CZL1"
_FIXED = struct.Struct("<4sB")
_DIM = struct.Struct("<Q")
_EPS_RADIUS = struct.Struct("<dI")
_OUTLIER_COUNT = struct.Struct("<Q")
_OUTLIER = np.dtype([("index", "<u8"), ("code", "<i8")])

#: cuSZ's default quantization-code radius (codebook of 2 * radius symbols).
DEFAULT_RADIUS = 2048


@register("cuSZ")
class CuSZ:
    """N-D Lorenzo + Huffman error-bounded compressor."""

    name = "cuSZ"
    device = "A100"

    def __init__(self, radius: int = DEFAULT_RADIUS):
        if radius <= 0:
            raise CompressionError(f"codebook radius must be positive: {radius}")
        self.radius = radius
        self._huffman = HuffmanCodec()

    def compress(
        self,
        data: np.ndarray,
        *,
        eps: float | None = None,
        rel: float | None = None,
        psnr: float | None = None,
    ) -> CompressionResult:
        arr = np.asarray(data)
        if arr.size == 0:
            raise CompressionError("cannot compress an empty array")
        bound = _resolve_bound(arr, eps, rel, psnr)
        codes, eps_eff = prequantize_verified(arr, bound)
        residuals = lorenzo_predict_nd(codes).reshape(-1)

        escape = self.radius + 1
        outside = np.abs(residuals) > self.radius
        symbols = np.where(outside, escape, residuals)
        outlier_idx = np.nonzero(outside)[0].astype(np.uint64)
        outliers = np.zeros(len(outlier_idx), dtype=_OUTLIER)
        outliers["index"] = outlier_idx
        outliers["code"] = residuals[outside.nonzero()[0]]

        payload = self._huffman.encode(symbols)
        parts = [_FIXED.pack(_MAGIC, arr.ndim)]
        parts.extend(_DIM.pack(d) for d in arr.shape)
        parts.append(_EPS_RADIUS.pack(eps_eff, self.radius))
        parts.append(_OUTLIER_COUNT.pack(len(outliers)))
        parts.append(outliers.tobytes())
        parts.append(payload)
        stream = b"".join(parts)

        return CompressionResult(
            stream=stream,
            eps=bound,
            original_bytes=arr.size * 4,
            shape=tuple(arr.shape),
            fixed_lengths=np.zeros(0, dtype=np.int64),
            zero_block_fraction=float(np.mean(residuals == 0)),
        )

    def decompress(self, stream: bytes) -> np.ndarray:
        if len(stream) < _FIXED.size:
            raise FormatError("cuSZ stream shorter than its header")
        magic, ndim = _FIXED.unpack(stream[: _FIXED.size])
        if magic != _MAGIC:
            raise FormatError(f"bad cuSZ magic {magic!r}")
        pos = _FIXED.size
        dims = []
        for _ in range(ndim):
            chunk = stream[pos : pos + _DIM.size]
            if len(chunk) < _DIM.size:
                raise FormatError("cuSZ stream truncated in dims")
            dims.append(_DIM.unpack(chunk)[0])
            pos += _DIM.size
        chunk = stream[pos : pos + _EPS_RADIUS.size]
        if len(chunk) < _EPS_RADIUS.size:
            raise FormatError("cuSZ stream truncated before eps/radius")
        eps_eff, radius = _EPS_RADIUS.unpack(chunk)
        pos += _EPS_RADIUS.size
        chunk = stream[pos : pos + _OUTLIER_COUNT.size]
        if len(chunk) < _OUTLIER_COUNT.size:
            raise FormatError("cuSZ stream truncated before outliers")
        (count,) = _OUTLIER_COUNT.unpack(chunk)
        pos += _OUTLIER_COUNT.size
        if count * _OUTLIER.itemsize > len(stream) - pos:
            raise FormatError(
                f"cuSZ stream cannot hold {count} outlier records"
            )
        outliers = np.frombuffer(stream, dtype=_OUTLIER, count=count, offset=pos)
        pos += count * _OUTLIER.itemsize

        symbols = self._huffman.decode(stream[pos:])
        shape = tuple(int(d) for d in dims)
        expected = 1
        for d in shape:
            expected *= d
        if symbols.size != expected:
            raise FormatError(
                f"cuSZ payload decoded {symbols.size} codes, shape needs "
                f"{expected}"
            )
        residuals = symbols
        if count:
            indices = outliers["index"].astype(np.int64)
            if indices.size and (indices.min() < 0 or indices.max() >= expected):
                raise FormatError("cuSZ outlier index out of range")
            residuals = symbols.copy()
            residuals[indices] = outliers["code"]
        codes = lorenzo_reconstruct_nd(residuals.reshape(shape))
        return dequantize(codes, eps_eff).reshape(shape)


def _resolve_bound(
    arr: np.ndarray,
    eps: float | None,
    rel: float | None,
    psnr: float | None = None,
) -> float:
    from repro.core.quantize import (
        psnr_to_relative,
        relative_to_absolute,
        validate_error_bound,
    )
    from repro.errors import ErrorBoundError

    if sum(x is not None for x in (eps, rel, psnr)) != 1:
        raise ErrorBoundError("specify exactly one of eps=, rel=, or psnr=")
    if psnr is not None:
        rel = psnr_to_relative(psnr)
    if eps is not None:
        return validate_error_bound(eps)
    return relative_to_absolute(arr, rel)
