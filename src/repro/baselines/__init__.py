"""Reimplementations of the paper's baseline compressors (Section 5.1.3).

All four baselines are error-bounded and prediction-based:

* :class:`~repro.baselines.szp.SZp` — the same block algorithm as CereSZ
  with 1-byte per-block headers (OpenMP CPU compressor);
* :class:`~repro.baselines.cuszp.CuSZp` — the SZp format with cuSZp's fused
  single-kernel GPU execution model;
* :class:`~repro.baselines.cusz.CuSZ` — N-D Lorenzo prediction +
  canonical Huffman encoding (GPU);
* :class:`~repro.baselines.sz3.SZ3` — multi-level interpolation prediction
  with Huffman + DEFLATE backend (the ratio-oriented CPU compressor).

These are *functional* codecs: Table 5's ratios are measured from the real
byte streams they produce. Their wall-clock throughput on the paper's
hardware (A100 / EPYC 7742) is modeled separately in
:mod:`repro.perf.device`.
"""

from repro.baselines.base import BaselineCompressor, get_compressor, COMPRESSORS
from repro.baselines.huffman import HuffmanCodec
from repro.baselines.szp import SZp
from repro.baselines.cuszp import CuSZp
from repro.baselines.cusz import CuSZ
from repro.baselines.sz3 import SZ3

__all__ = [
    "BaselineCompressor",
    "get_compressor",
    "COMPRESSORS",
    "HuffmanCodec",
    "SZp",
    "CuSZp",
    "CuSZ",
    "SZ3",
]
