"""SZ3: the ratio-oriented CPU compressor (Liang et al., SZ3 framework).

SZ3's headline design is a *multi-level interpolation predictor*: the field
is reconstructed coarse-to-fine, each level predicting the midpoints of the
previous level's grid by linear interpolation and quantizing the residual.
Prediction always uses already-reconstructed values, so the error bound
holds pointwise while residuals shrink dramatically on smooth data. The
quantization codes then go through a canonical Huffman pass and a DEFLATE
backend ("best-fit lossless" in the paper's description).

This combination is why SZ tops every ratio column of the paper's Table 5
by 1-3 orders of magnitude — and why its throughput is "routinely less than
1 GB/s" (Section 5.3), which is the trade CereSZ exists to avoid.

Stream layout::

    [ magic "SZ3R" ][ ndim u8 ][ dims u64* ][ eps f64 ][ levels u8 ]
    [ deflated anchor grid (little-endian f32) ]
    [ deflated huffman-coded residual codes ]
"""

from __future__ import annotations

import struct
import zlib

import numpy as np

from repro.errors import CompressionError, FormatError
from repro.core.compressor import CompressionResult
from repro.core.quantize import (
    effective_error_bound,
    relative_to_absolute,
    validate_error_bound,
)
from repro.errors import ErrorBoundError
from repro.baselines.base import register
from repro.baselines.huffman import HuffmanCodec

_MAGIC = b"SZ3R"
_FIXED = struct.Struct("<4sB")
_DIM = struct.Struct("<Q")
_EPS_LEVELS = struct.Struct("<dB")
_LEN = struct.Struct("<Q")

#: Interpolation depth: the anchor grid keeps every 2**LEVELS-th point.
#: Depth 8 (stride 256) plus DEFLATE on the anchors keeps the anchor
#: overhead far below the residual stream, letting ratios reach the
#: 1e2-1e4 territory SZ occupies in the paper's Table 5.
DEFAULT_LEVELS = 8


@register("SZ")
class SZ3:
    """Multi-level interpolation error-bounded compressor.

    Registered as ``"SZ"`` — the label the paper's tables use for SZ3.
    """

    name = "SZ"
    device = "EPYC-7742"

    def __init__(self, levels: int = DEFAULT_LEVELS):
        if not (1 <= levels <= 16):
            raise CompressionError(f"levels must be in [1, 16], got {levels}")
        self.levels = levels
        self._huffman = HuffmanCodec()

    # -- compression ---------------------------------------------------------------

    def compress(
        self,
        data: np.ndarray,
        *,
        eps: float | None = None,
        rel: float | None = None,
        psnr: float | None = None,
    ) -> CompressionResult:
        arr32 = np.asarray(data, dtype=np.float32)
        if arr32.size == 0:
            raise CompressionError("cannot compress an empty array")
        bound = self._resolve_bound(arr32, eps, rel, psnr)
        arr = arr32.astype(np.float64)
        eps_eff = effective_error_bound(arr, bound)

        stride = 1 << self.levels
        anchors = arr32[tuple(slice(None, None, stride) for _ in arr.shape)]
        recon = np.zeros_like(arr)
        recon[tuple(slice(None, None, stride) for _ in arr.shape)] = anchors

        symbols: list[np.ndarray] = []
        for sel, pred in _interpolation_steps(arr.shape, self.levels, recon):
            q = np.floor((arr[sel] - pred) / (2.0 * eps_eff) + 0.5)
            recon[sel] = pred + q * (2.0 * eps_eff)
            symbols.append(q.astype(np.int64).reshape(-1))

        codes = (
            np.concatenate(symbols) if symbols else np.zeros(0, dtype=np.int64)
        )
        if codes.size:
            payload = zlib.compress(self._huffman.encode(codes), 6)
        else:
            payload = b""

        parts = [_FIXED.pack(_MAGIC, arr.ndim)]
        parts.extend(_DIM.pack(d) for d in arr.shape)
        parts.append(_EPS_LEVELS.pack(eps_eff, self.levels))
        anchor_payload = zlib.compress(
            np.ascontiguousarray(anchors, dtype="<f4").tobytes(), 6
        )
        parts.append(_LEN.pack(anchors.size))
        parts.append(_LEN.pack(len(anchor_payload)))
        parts.append(anchor_payload)
        parts.append(_LEN.pack(len(payload)))
        parts.append(payload)
        stream = b"".join(parts)

        return CompressionResult(
            stream=stream,
            eps=bound,
            original_bytes=arr.size * 4,
            shape=tuple(arr.shape),
            fixed_lengths=np.zeros(0, dtype=np.int64),
            zero_block_fraction=float(np.mean(codes == 0)) if codes.size else 1.0,
        )

    # -- decompression --------------------------------------------------------------

    def decompress(self, stream: bytes) -> np.ndarray:
        if len(stream) < _FIXED.size:
            raise FormatError("SZ3 stream shorter than its header")
        magic, ndim = _FIXED.unpack(stream[: _FIXED.size])
        if magic != _MAGIC:
            raise FormatError(f"bad SZ3 magic {magic!r}")
        pos = _FIXED.size
        dims = []
        for _ in range(ndim):
            chunk = stream[pos : pos + _DIM.size]
            if len(chunk) < _DIM.size:
                raise FormatError("SZ3 stream truncated in dims")
            dims.append(int(_DIM.unpack(chunk)[0]))
            pos += _DIM.size
        chunk = stream[pos : pos + _EPS_LEVELS.size]
        if len(chunk) < _EPS_LEVELS.size:
            raise FormatError("SZ3 stream truncated before eps/levels")
        eps_eff, levels = _EPS_LEVELS.unpack(chunk)
        pos += _EPS_LEVELS.size
        anchor_count = _read_len(stream, pos, "anchor count")
        pos += _LEN.size
        anchor_len = _read_len(stream, pos, "anchor length")
        pos += _LEN.size
        if anchor_len > len(stream) - pos:
            raise FormatError("SZ3 stream truncated in anchor grid")
        try:
            anchor_bytes = zlib.decompress(stream[pos : pos + anchor_len])
        except zlib.error as exc:
            raise FormatError(f"SZ3 anchor grid corrupt: {exc}") from exc
        if len(anchor_bytes) != anchor_count * 4:
            raise FormatError("SZ3 anchor grid has the wrong size")
        anchors = np.frombuffer(anchor_bytes, dtype="<f4")
        pos += anchor_len
        payload_len = _read_len(stream, pos, "payload length")
        pos += _LEN.size
        payload = stream[pos : pos + payload_len]
        if len(payload) != payload_len:
            raise FormatError("SZ3 stream truncated in payload")

        shape = tuple(dims)
        if levels < 1 or levels > 16:
            raise FormatError(f"SZ3 stream has corrupt level count {levels}")
        stride = 1 << levels
        anchor_shape = tuple(-(-d // stride) for d in shape)
        expected_anchors = 1
        total = 1
        for d, a in zip(shape, anchor_shape):
            total *= d
            expected_anchors *= a
        if anchor_count != expected_anchors:
            raise FormatError(
                f"SZ3 anchor grid holds {anchor_count} values, shape needs "
                f"{expected_anchors}"
            )

        if payload_len:
            try:
                codes = self._huffman.decode(zlib.decompress(payload))
            except zlib.error as exc:
                raise FormatError(f"SZ3 payload corrupt: {exc}") from exc
        else:
            codes = np.zeros(0, dtype=np.int64)
        # Every non-anchor point consumes exactly one code; check before
        # allocating the (possibly corrupt, possibly huge) grid.
        if codes.size != total - expected_anchors:
            raise FormatError(
                f"SZ3 payload held {codes.size} codes, grid consumes "
                f"{total - expected_anchors}"
            )
        recon = np.zeros(shape, dtype=np.float64)
        recon[tuple(slice(None, None, stride) for _ in shape)] = (
            anchors.reshape(anchor_shape).astype(np.float64)
        )
        consumed = 0
        for sel, pred in _interpolation_steps(shape, levels, recon):
            count = pred.size
            q = codes[consumed : consumed + count].reshape(pred.shape)
            consumed += count
            recon[sel] = pred + q.astype(np.float64) * (2.0 * eps_eff)
        if consumed != codes.size:  # pragma: no cover - guarded above
            raise FormatError(
                f"SZ3 payload held {codes.size} codes, grid consumed {consumed}"
            )
        return recon.astype(np.float32)

    @staticmethod
    def _resolve_bound(
        arr: np.ndarray,
        eps: float | None,
        rel: float | None,
        psnr: float | None = None,
    ) -> float:
        from repro.core.quantize import psnr_to_relative

        if sum(x is not None for x in (eps, rel, psnr)) != 1:
            raise ErrorBoundError(
                "specify exactly one of eps=, rel=, or psnr="
            )
        if psnr is not None:
            rel = psnr_to_relative(psnr)
        if eps is not None:
            return validate_error_bound(eps)
        return relative_to_absolute(arr, rel)


def _read_len(stream: bytes, pos: int, what: str) -> int:
    chunk = stream[pos : pos + _LEN.size]
    if len(chunk) < _LEN.size:
        raise FormatError(f"SZ3 stream truncated before {what}")
    return _LEN.unpack(chunk)[0]


def _interpolation_steps(shape, levels, recon):
    """Yield ``(selector, prediction)`` for every refinement step, in order.

    At level ``k`` (coarse stride ``s = 2**k``, half-stride ``h = s // 2``)
    the grid of points with all indices divisible by ``s`` is already
    reconstructed. Axis by axis, the midpoints along that axis are predicted
    by the mean of their two already-known axis-neighbors (or copied from
    the left neighbor at the array boundary). The generator reads from
    ``recon`` lazily, so callers that update ``recon[sel]`` between yields —
    both compress and decompress do — give every later step the
    reconstructed values, which is what makes the scheme error-bounded.
    """
    ndim = len(shape)
    for k in range(levels, 0, -1):
        s = 1 << k
        h = s >> 1
        for axis in range(ndim):
            target = np.arange(h, shape[axis], s)
            if target.size == 0:
                continue
            coords = []
            for b in range(ndim):
                if b < axis:
                    coords.append(np.arange(0, shape[b], h))
                elif b == axis:
                    coords.append(target)
                else:
                    coords.append(np.arange(0, shape[b], s))
            if any(c.size == 0 for c in coords):
                continue
            sel = np.ix_(*coords)
            left_coords = list(coords)
            left_coords[axis] = target - h
            left = recon[np.ix_(*left_coords)]
            right_idx = np.minimum(target + h, shape[axis] - 1)
            # A right neighbor is usable only if it is a point of the
            # current coarse grid (index divisible by s) — otherwise it has
            # not been reconstructed yet and we fall back to the left value.
            usable = (right_idx % s == 0) & (target + h < shape[axis])
            right_coords = list(coords)
            right_coords[axis] = right_idx
            right = recon[np.ix_(*right_coords)]
            shape_mask = [1] * ndim
            shape_mask[axis] = usable.size
            mask = usable.reshape(shape_mask)
            pred = np.where(mask, 0.5 * (left + right), left)
            yield sel, pred
