"""cuSZp: the fused single-kernel GPU compressor (Huang et al., SC'23).

cuSZp shares SZp's byte format — the same pre-quantization, 1D Lorenzo and
1-byte-header fixed-length encoding — and differs in *execution*: the whole
pipeline (quantization, prediction, encoding, the parallel scan for block
offsets, and concatenation) is fused into one GPU kernel. Ratios are
therefore SZp's ratios; the execution difference lives in the throughput
model (:mod:`repro.perf.device`), where cuSZp is the fastest GPU baseline —
the one the paper's headline "4.9x faster" compares CereSZ against.
"""

from __future__ import annotations

from repro.config import BLOCK_SIZE
from repro.baselines.base import register
from repro.baselines.szp import SZp


@register("cuSZp")
class CuSZp(SZp):
    """cuSZp-format block compressor (SZp layout, A100 execution model)."""

    name = "cuSZp"
    device = "A100"

    def __init__(self, block_size: int = BLOCK_SIZE):
        super().__init__(block_size=block_size)
