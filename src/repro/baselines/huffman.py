"""Canonical Huffman codec.

Substrate for the cuSZ and SZ3 baselines, which Huffman-encode their
quantization codes (the paper's Section 3 rationale contrasts this against
CereSZ's fixed-length choice: tree construction is expensive and the
variable-length output needs a device-level scan to concatenate).

The codec is *canonical*: only the code lengths are stored (as a compact
symbol table), and codes are reassigned deterministically from lengths at
decode time. Encoding is vectorized by grouping symbols with equal code
length; decoding is the standard canonical bit-walk (sequential by nature —
which is precisely why the paper avoids Huffman on the wafer).
"""

from __future__ import annotations

import heapq
import itertools
import struct
from dataclasses import dataclass

import numpy as np

from repro.errors import CompressionError, FormatError

_HEADER = struct.Struct("<IIQ")  # num_symbols, max_len, num_values


@dataclass(frozen=True)
class CanonicalCode:
    """A canonical Huffman code book."""

    symbols: np.ndarray  # int64, sorted by (length, symbol)
    lengths: np.ndarray  # uint8, same order as symbols

    def __post_init__(self) -> None:
        if self.symbols.shape != self.lengths.shape:
            raise CompressionError("symbols/lengths shape mismatch")

    @property
    def max_length(self) -> int:
        return int(self.lengths.max(initial=0))

    def codewords(self) -> np.ndarray:
        """Canonical codeword values aligned with ``symbols``."""
        values = np.zeros(len(self.symbols), dtype=np.uint64)
        code = 0
        prev_len = 0
        for i, length in enumerate(self.lengths):
            code <<= int(length) - prev_len
            values[i] = code
            code += 1
            prev_len = int(length)
        return values


def _code_lengths(symbols: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Huffman code lengths via the classic heap construction."""
    n = len(symbols)
    if n == 1:
        return np.array([1], dtype=np.uint8)
    counter = itertools.count()
    # Heap entries: (weight, tiebreak, leaf depth bookkeeping as subtree).
    heap: list[tuple[int, int, list[int]]] = [
        (int(c), next(counter), [i]) for i, c in enumerate(counts)
    ]
    heapq.heapify(heap)
    depths = np.zeros(n, dtype=np.int64)
    while len(heap) > 1:
        w1, _, leaves1 = heapq.heappop(heap)
        w2, _, leaves2 = heapq.heappop(heap)
        for leaf in leaves1:
            depths[leaf] += 1
        for leaf in leaves2:
            depths[leaf] += 1
        heapq.heappush(heap, (w1 + w2, next(counter), leaves1 + leaves2))
    return depths.astype(np.uint8)


def build_code(values: np.ndarray) -> CanonicalCode:
    """Build a canonical code for the distinct values of ``values``."""
    arr = np.asarray(values).reshape(-1)
    if arr.size == 0:
        raise CompressionError("cannot build a Huffman code for no symbols")
    symbols, counts = np.unique(arr, return_counts=True)
    lengths = _code_lengths(symbols, counts)
    order = np.lexsort((symbols, lengths))
    return CanonicalCode(
        symbols=symbols[order].astype(np.int64), lengths=lengths[order]
    )


class HuffmanCodec:
    """Encode/decode int64 symbol streams with an embedded code book.

    Stream layout::

        [num_symbols u32][max_len u32][num_values u64]
        [symbol table: num_symbols * (i64 symbol, u8 length)]
        [padded bit stream]
    """

    def encode(self, values: np.ndarray) -> bytes:
        arr = np.asarray(values, dtype=np.int64).reshape(-1)
        code = build_code(arr)
        words = code.codewords()
        # Map each value to its rank in the canonical table.
        sorter = np.argsort(code.symbols, kind="stable")
        ranks = sorter[
            np.searchsorted(code.symbols[sorter], arr)
        ]
        lengths = code.lengths[ranks].astype(np.int64)
        ends = np.cumsum(lengths)
        total_bits = int(ends[-1]) if arr.size else 0
        starts = ends - lengths

        bits = np.zeros(total_bits, dtype=np.uint8)
        vals = words[ranks]
        # Vectorize by grouping equal code lengths: all symbols of length L
        # scatter their L bits (MSB first) in one fancy-indexed write.
        for length in np.unique(lengths):
            length = int(length)
            idx = np.nonzero(lengths == length)[0]
            shifts = np.arange(length - 1, -1, -1, dtype=np.uint64)
            group_bits = (
                (vals[idx][:, None] >> shifts[None, :]) & np.uint64(1)
            ).astype(np.uint8)
            dest = starts[idx][:, None] + np.arange(length)[None, :]
            bits[dest] = group_bits

        packed = np.packbits(bits)  # big-endian within bytes (MSB first)
        table = np.zeros(
            len(code.symbols), dtype=np.dtype([("sym", "<i8"), ("len", "u1")])
        )
        table["sym"] = code.symbols
        table["len"] = code.lengths
        header = _HEADER.pack(len(code.symbols), code.max_length, arr.size)
        return header + table.tobytes() + packed.tobytes()

    def decode(self, stream: bytes) -> np.ndarray:
        if len(stream) < _HEADER.size:
            raise FormatError("huffman stream shorter than its header")
        num_symbols, max_len, num_values = _HEADER.unpack(
            stream[: _HEADER.size]
        )
        if max_len > 64:
            raise FormatError(f"implausible max code length {max_len}")
        # Every coded value occupies at least one bit; anything claiming
        # more values than the payload has bits is corrupt (and would
        # otherwise trigger an enormous output allocation).
        if num_values > 8 * len(stream):
            raise FormatError(
                f"huffman stream of {len(stream)} bytes cannot hold "
                f"{num_values} values"
            )
        table_dtype = np.dtype([("sym", "<i8"), ("len", "u1")])
        table_bytes = num_symbols * table_dtype.itemsize
        if len(stream) < _HEADER.size + table_bytes:
            raise FormatError("huffman stream truncated in symbol table")
        table = np.frombuffer(
            stream, dtype=table_dtype, count=num_symbols, offset=_HEADER.size
        )
        lens = table["len"]
        if lens.size:
            if int(lens.min()) < 1 or int(lens.max()) > max_len:
                raise FormatError(
                    "huffman symbol table holds lengths outside [1, max_len]"
                )
            # A realizable prefix-free code satisfies Kraft's inequality;
            # corrupted tables that violate it would overflow the canonical
            # codeword construction.
            kraft = float(np.sum(2.0 ** -lens.astype(np.float64)))
            if kraft > 1.0 + 1e-9:
                raise FormatError(
                    f"huffman symbol table violates Kraft's inequality "
                    f"({kraft:.3f} > 1)"
                )
            if not np.all(np.diff(lens.astype(np.int64)) >= 0):
                raise FormatError(
                    "huffman symbol table is not sorted by code length"
                )
        code = CanonicalCode(
            symbols=table["sym"].astype(np.int64), lengths=table["len"].copy()
        )
        payload = np.frombuffer(
            stream, dtype=np.uint8, offset=_HEADER.size + table_bytes
        )
        return self._decode_fast(payload, code, num_values, max_len)

    # -- decoding engines ---------------------------------------------------------

    #: Prefix width of the acceleration table (2**W entries).
    _TABLE_BITS = 12

    @classmethod
    def _build_prefix_table(
        cls, code: CanonicalCode, max_len: int
    ) -> tuple[list, int]:
        """Multi-symbol acceleration table for W-bit windows.

        Entry ``table[w]`` is ``(symbols, consumed_bits)``: every symbol
        that decodes *entirely* inside the W-bit window ``w``, greedily, and
        the bits they consume together. A window whose first code is longer
        than W gets ``(None, 0)`` — the decoder falls back to the canonical
        bit-walk for that one symbol. With short codes (the typical skewed
        quantization-code histogram) one lookup emits several symbols,
        which is where the speedup over the per-bit walk comes from.
        """
        width = min(max_len, cls._TABLE_BITS)
        # Single-symbol decode helper arrays (canonical).
        first: dict[int, tuple[int, int]] = {}
        words = code.codewords()
        lengths = code.lengths.tolist()
        sym_vals = code.symbols.tolist()
        short = [
            (int(v) << (width - int(l)), (int(v) + 1) << (width - int(l)),
             int(l), sym_vals[rank])
            for rank, (l, v) in enumerate(zip(lengths, words.tolist()))
            if int(l) <= width
        ]
        # first-symbol lookup per window: fill by code (later = longer, but
        # ranges never overlap for a prefix-free code).
        one = [None] * (1 << width)
        for lo, hi, length, sym in short:
            for w in range(lo, hi):
                one[w] = (length, sym)
        table: list = [None] * (1 << width)
        for w in range(1 << width):
            syms: list[int] = []
            pos = 0
            while True:
                if pos >= width:
                    break
                sub = (w << pos) & ((1 << width) - 1)
                hit = one[sub]
                if hit is None or pos + hit[0] > width:
                    break
                syms.append(hit[1])
                pos += hit[0]
            if not syms:
                table[w] = (None, 0)
            else:
                table[w] = (syms, pos)
        return table, width

    @classmethod
    def _decode_fast(
        cls,
        payload: np.ndarray,
        code: CanonicalCode,
        num_values: int,
        max_len: int,
    ) -> np.ndarray:
        """Table-accelerated canonical decode (bit-walk fallback).

        Reads a W-bit window per symbol instead of walking bit by bit;
        output is identical to :meth:`_decode_bits` by construction, which
        the test suite asserts on random streams.
        """
        if num_values == 0:
            return np.zeros(0, dtype=np.int64)
        table, width = cls._build_prefix_table(code, max_len)
        symbols = code.symbols
        # Pad so a 4-byte window read never runs off the end.
        raw = payload.tobytes() + b"\x00\x00\x00\x00"
        total_bits = payload.size * 8
        mask = (1 << width) - 1

        # Canonical fallback parameters for codes longer than the table.
        lengths = code.lengths
        counts = np.bincount(lengths, minlength=max_len + 1).tolist()
        first_code = [0] * (max_len + 2)
        offsets = [0] * (max_len + 1)
        c = 0
        rank0 = 0
        for length in range(1, max_len + 1):
            first_code[length] = c
            offsets[length] = rank0
            c = (c + counts[length]) << 1
            rank0 += counts[length]

        produced: list[int] = []
        bitpos = 0
        append = produced.extend
        while len(produced) < num_values:
            if bitpos >= total_bits:
                raise FormatError(
                    f"huffman stream exhausted after "
                    f"{len(produced)}/{num_values} values"
                )
            byte0 = bitpos >> 3
            window32 = int.from_bytes(raw[byte0 : byte0 + 4], "big")
            window = (window32 >> (32 - width - (bitpos & 7))) & mask
            syms, consumed = table[window]
            if syms is not None:
                append(syms)
                bitpos += consumed
                continue
            # Long code: canonical walk from the current position.
            value = 0
            length = 0
            pos = bitpos
            while True:
                if pos >= total_bits:
                    raise FormatError(
                        f"huffman stream exhausted after "
                        f"{len(produced)}/{num_values} values"
                    )
                bit = (raw[pos >> 3] >> (7 - (pos & 7))) & 1
                value = (value << 1) | bit
                length += 1
                pos += 1
                if length > max_len:
                    raise FormatError(
                        "huffman decode ran past the longest code"
                    )
                rel = value - first_code[length]
                if 0 <= rel < counts[length]:
                    produced.append(symbols[offsets[length] + rel])
                    bitpos = pos
                    break
        return np.array(produced[:num_values], dtype=np.int64)

    @staticmethod
    def _decode_bits(
        bits: np.ndarray, code: CanonicalCode, num_values: int, max_len: int
    ) -> np.ndarray:
        if num_values == 0:
            return np.zeros(0, dtype=np.int64)
        # Canonical decode tables: for each length, the first canonical code
        # value and the rank offset of its first symbol.
        lengths = code.lengths
        counts = np.bincount(lengths, minlength=max_len + 1)
        first_code = np.zeros(max_len + 2, dtype=np.int64)
        offsets = np.zeros(max_len + 1, dtype=np.int64)
        c = 0
        rank = 0
        for length in range(1, max_len + 1):
            first_code[length] = c
            offsets[length] = rank
            c = (c + int(counts[length])) << 1
            rank += int(counts[length])
        symbols = code.symbols

        out = np.empty(num_values, dtype=np.int64)
        bit_list = bits.tolist()  # python ints: fastest pure-python walk
        value = 0
        length = 0
        produced = 0
        counts_l = counts.tolist()
        first_l = first_code.tolist()
        offsets_l = offsets.tolist()
        for b in bit_list:
            value = (value << 1) | b
            length += 1
            if length > max_len:
                raise FormatError("huffman decode ran past the longest code")
            rel = value - first_l[length]
            if 0 <= rel < counts_l[length]:
                out[produced] = symbols[offsets_l[length] + rel]
                produced += 1
                if produced == num_values:
                    return out
                value = 0
                length = 0
        raise FormatError(
            f"huffman stream exhausted after {produced}/{num_values} values"
        )
