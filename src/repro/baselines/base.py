"""Common interface and registry for all compressors in the study."""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np

from repro.errors import ReproError
from repro.core.compressor import CompressionResult


@runtime_checkable
class BaselineCompressor(Protocol):
    """The interface every compressor (CereSZ included) satisfies.

    ``device`` is the platform the *paper* ran the compressor on — it keys
    the throughput model in :mod:`repro.perf.device`.
    """

    name: str
    device: str

    def compress(
        self,
        data: np.ndarray,
        *,
        eps: float | None = None,
        rel: float | None = None,
    ) -> CompressionResult: ...

    def decompress(self, stream: bytes) -> np.ndarray: ...


#: Factories for every compressor evaluated in Table 5 / Figs 11-12.
#: Populated lazily to avoid import cycles; see :func:`get_compressor`.
COMPRESSORS: dict[str, type] = {}


def register(name: str):
    """Class decorator adding a compressor to the registry."""

    def deco(cls):
        COMPRESSORS[name] = cls
        return cls

    return deco


def get_compressor(name: str, **kwargs) -> BaselineCompressor:
    """Instantiate a registered compressor by its paper name.

    Names: ``CereSZ``, ``SZp``, ``cuSZp``, ``cuSZ``, ``SZ``.
    """
    _ensure_registered()
    try:
        cls = COMPRESSORS[name]
    except KeyError:
        raise ReproError(
            f"unknown compressor {name!r}; known: {sorted(COMPRESSORS)}"
        ) from None
    return cls(**kwargs)


def _ensure_registered() -> None:
    # Import for side effects: each module registers its class. Imports are
    # cached, so this is free after the first call.
    from repro.baselines import cusz, cuszp, sz3, szp  # noqa: F401
    from repro.core.compressor import CereSZ

    COMPRESSORS.setdefault("CereSZ", CereSZ)
