"""SZp: the OpenMP CPU compressor the paper compares against.

SZp runs the same block algorithm as CereSZ — pre-quantization, 1D Lorenzo,
fixed-length encoding — but records each block's fixed length in a single
byte. That one difference is why SZp's best-case ratio is 128x versus
CereSZ's 32x (paper Section 5.3: CereSZ "allocates 32 bits (or 4 bytes) to
record the fixed-length ... this block information requires only 1 byte in
SZp and cuSZp, increasing the theoretical compression ratio upper bound by
4 times for sparse datasets").

Implementation-wise this is :class:`~repro.core.compressor.CereSZ` with
``header_width=1``; the subclass pins the identity and the device the paper
benchmarked it on (one AMD EPYC 7742, 64C/128T).
"""

from __future__ import annotations

from repro.config import BLOCK_SIZE, SZP_HEADER_BYTES
from repro.core.compressor import CereSZ
from repro.baselines.base import register


@register("SZp")
class SZp(CereSZ):
    """SZp-format block compressor (1-byte fixed-length headers)."""

    name = "SZp"
    device = "EPYC-7742"

    def __init__(self, block_size: int = BLOCK_SIZE):
        super().__init__(block_size=block_size, header_width=SZP_HEADER_BYTES)
