"""Logical fabric channels ("colors").

The CS-2 fabric multiplexes traffic over 24 logical channels per PE
(paper Section 2.1). A program allocates colors, configures each PE's router
with the color's input/output directions, and binds tasks to colors so that
arriving data (or an explicit ``activate``) triggers computation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import PE_NUM_COLORS
from repro.errors import ColorExhaustedError


@dataclass(frozen=True)
class Color:
    """A named logical channel.

    Identity is the integer ``id``; ``name`` exists for readable traces and
    error messages only.
    """

    id: int
    name: str = ""

    def __post_init__(self) -> None:
        if not (0 <= self.id < PE_NUM_COLORS):
            raise ColorExhaustedError(
                f"color id {self.id} outside the {PE_NUM_COLORS} available "
                f"hardware colors"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = self.name or "color"
        return f"<{label}#{self.id}>"


class ColorAllocator:
    """Hands out distinct colors, enforcing the hardware limit of 24.

    One allocator is shared per program: the same color id must mean the same
    logical channel on every PE it traverses, exactly as on the device.
    """

    def __init__(self) -> None:
        self._next = 0
        self._by_name: dict[str, Color] = {}

    def allocate(self, name: str = "") -> Color:
        """Allocate a fresh color, optionally registering it under ``name``."""
        if self._next >= PE_NUM_COLORS:
            raise ColorExhaustedError(
                f"program requested more than {PE_NUM_COLORS} colors"
            )
        if name and name in self._by_name:
            raise ColorExhaustedError(f"color name already allocated: {name!r}")
        color = Color(self._next, name)
        self._next += 1
        if name:
            self._by_name[name] = color
        return color

    def __getitem__(self, name: str) -> Color:
        return self._by_name[name]

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    @property
    def allocated(self) -> int:
        return self._next

    @property
    def remaining(self) -> int:
        return PE_NUM_COLORS - self._next
