"""Per-PE fabric routers.

Each PE's router forwards wavelets by color: a :class:`RouteRule` declares,
for one color, which directions the router accepts wavelets from and which
single direction it forwards them to. This mirrors the CSL model in the
paper's Figure 3 where PE1 routes a color ``RAMP -> EAST`` and PE2 routes it
``WEST -> RAMP``.

The simulated router is deliberately strict: a wavelet arriving on a color
with no rule, or from a direction the rule does not accept, raises
:class:`~repro.errors.RoutingError` instead of being dropped — misrouted
traffic on real hardware is a silent hang, and tests want it loud.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import RoutingError
from repro.wse.color import Color
from repro.wse.wavelet import Direction


@dataclass(frozen=True)
class RouteRule:
    """Routing entry for one color on one PE."""

    color: Color
    inputs: frozenset[Direction]
    output: Direction

    def __post_init__(self) -> None:
        if not self.inputs:
            raise RoutingError(f"route for {self.color} has no input direction")
        if self.output in self.inputs and self.output is not Direction.RAMP:
            raise RoutingError(
                f"route for {self.color} reflects wavelets back "
                f"{self.output.value} -> {self.output.value}"
            )

    @classmethod
    def make(
        cls,
        color: Color,
        inputs: Direction | tuple[Direction, ...] | list[Direction],
        output: Direction,
    ) -> "RouteRule":
        if isinstance(inputs, Direction):
            inputs = (inputs,)
        return cls(color=color, inputs=frozenset(inputs), output=output)


@dataclass
class Router:
    """The routing table of a single PE."""

    rules: dict[int, RouteRule] = field(default_factory=dict)

    def set_route(self, rule: RouteRule) -> None:
        """Install a rule; re-installing a different rule for a color errors.

        On the device the router configuration for a color is fixed per
        program load, so a conflicting double configuration is a bug.
        """
        existing = self.rules.get(rule.color.id)
        if existing is not None and existing != rule:
            raise RoutingError(
                f"conflicting routes for {rule.color}: {existing} vs {rule}"
            )
        self.rules[rule.color.id] = rule

    def route(self, color_id: int, arriving_from: Direction) -> Direction:
        """Direction a wavelet on ``color_id`` leaves this PE.

        ``arriving_from`` is the direction the wavelet *enters* the router
        from — ``RAMP`` when the local processor injects it.
        """
        rule = self.rules.get(color_id)
        if rule is None:
            raise RoutingError(
                f"no route configured for color {color_id} "
                f"(arriving from {arriving_from.value})"
            )
        if arriving_from not in rule.inputs:
            accepted = sorted(d.value for d in rule.inputs)
            raise RoutingError(
                f"color {color_id}: wavelet arrived from "
                f"{arriving_from.value}, route only accepts {accepted}"
            )
        return rule.output

    def has_route(self, color_id: int) -> bool:
        return color_id in self.rules

    def accepts(self, color_id: int, arriving_from: Direction) -> bool:
        rule = self.rules.get(color_id)
        return rule is not None and arriving_from in rule.inputs
