"""Wavelets and cardinal dataflow directions.

A *wavelet* is the fabric's 32-bit message unit (paper Section 2.1): a PE can
exchange one wavelet with a neighbor per clock cycle. The simulator usually
moves whole arrays per event for efficiency, but the array payloads are
accounted as ``len(payload)`` wavelets for cycle costing, and single-wavelet
control messages use this class directly.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any

import numpy as np


class Direction(enum.Enum):
    """The five cardinal dataflow directions of a PE.

    ``RAMP`` is the internal link between the fabric router and the local
    processor; the other four point at the mesh neighbors.
    """

    RAMP = "ramp"
    EAST = "east"
    WEST = "west"
    NORTH = "north"
    SOUTH = "south"

    @property
    def opposite(self) -> "Direction":
        """The direction a wavelet *arrives from* after leaving this way."""
        return _OPPOSITE[self]

    @property
    def delta(self) -> tuple[int, int]:
        """(row, col) offset of the neighbor in this direction.

        Row 0 is the north edge and column 0 the west edge, matching the
        paper's figures where data flows in from the west.
        """
        return _DELTA[self]


_OPPOSITE = {
    Direction.RAMP: Direction.RAMP,
    Direction.EAST: Direction.WEST,
    Direction.WEST: Direction.EAST,
    Direction.NORTH: Direction.SOUTH,
    Direction.SOUTH: Direction.NORTH,
}

_DELTA = {
    Direction.RAMP: (0, 0),
    Direction.EAST: (0, 1),
    Direction.WEST: (0, -1),
    Direction.NORTH: (-1, 0),
    Direction.SOUTH: (1, 0),
}


@dataclass(frozen=True)
class Wavelet:
    """A single 32-bit fabric message on one color.

    ``payload`` is stored as a Python int restricted to 32 bits; helper
    constructors pack/unpack numpy scalars. ``meta`` carries simulator-only
    annotations (e.g. the originating PE for traces) and never affects
    simulated behaviour.
    """

    color: int
    payload: int
    meta: dict[str, Any] = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        if not (0 <= self.color < 64):
            raise ValueError(f"color id out of range: {self.color}")
        if not (-(2**31) <= self.payload < 2**32):
            raise ValueError(f"payload does not fit in 32 bits: {self.payload}")

    @classmethod
    def from_f32(cls, color: int, value: float) -> "Wavelet":
        """Pack a single-precision float into a wavelet."""
        raw = int(np.float32(value).view(np.uint32))
        return cls(color=color, payload=raw)

    def as_f32(self) -> float:
        """Unpack the payload as a single-precision float."""
        return float(np.uint32(self.payload & 0xFFFFFFFF).view(np.float32))

    @classmethod
    def from_i32(cls, color: int, value: int) -> "Wavelet":
        """Pack a signed 32-bit integer into a wavelet."""
        raw = int(np.int64(value).astype(np.int32))
        return cls(color=color, payload=raw)

    def as_i32(self) -> int:
        """Unpack the payload as a signed 32-bit integer."""
        return int(np.uint32(self.payload & 0xFFFFFFFF).view(np.int32))


def wavelet_count(payload: np.ndarray | bytes | int) -> int:
    """Number of 32-bit wavelets needed to carry ``payload``.

    Arrays are counted element-wise after conversion to a 32-bit dtype
    (the fabric's minimum granularity, paper Section 5.1.1); byte strings
    are rounded up to whole words; an int means "this many elements".
    """
    if isinstance(payload, int):
        if payload < 0:
            raise ValueError("wavelet_count of a negative element count")
        return payload
    if isinstance(payload, (bytes, bytearray, memoryview)):
        return (len(payload) + 3) // 4
    arr = np.asarray(payload)
    if arr.dtype.itemsize <= 4:
        return int(arr.size)
    # 64-bit payloads occupy two wavelets each.
    return int(arr.size) * ((arr.dtype.itemsize + 3) // 4)
