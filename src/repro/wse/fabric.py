"""The 2D mesh of PEs and static route resolution.

The fabric owns the PE grid and resolves, for a wavelet injected at some PE
on some color, the *path* it takes: the sequence of hops dictated by each
traversed PE's router until a router delivers it to a RAMP. Routes on the
device are static per program load, so resolving the full path once per
transfer (instead of stepping wavelet by wavelet) is behaviourally exact and
keeps event counts low.

Because the routes are static, the resolution itself is memoized: the first
walk from a source caches a :class:`ResolvedRoute` for *every* PE it
traverses (each intermediate position resolves to the same destination with
fewer hops), so a chain of k relaying PEs pays one O(k) walk total instead
of k separate walks. Installing any route invalidates the whole cache —
route setup happens at program-load time, before traffic flows, so the
invalidation never costs anything during a simulation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import WSE_USABLE_COLS, WSE_USABLE_ROWS
from repro.errors import RoutingError
from repro.wse.color import Color
from repro.wse.pe import ProcessingElement
from repro.wse.router import RouteRule
from repro.wse.wavelet import Direction


@dataclass(frozen=True)
class ResolvedRoute:
    """Outcome of walking a color's route from a source PE."""

    source: tuple[int, int]
    destination: tuple[int, int]
    hops: int  # number of PE-to-PE links traversed
    #: True when the walk hit a broken link (injected LinkDown fault):
    #: ``destination`` is then the PE where the wavelet vanishes, and the
    #: engine drops the payload instead of delivering it.
    dropped: bool = False


class Fabric:
    """A rows x cols mesh of :class:`ProcessingElement`."""

    def __init__(
        self,
        rows: int,
        cols: int,
        *,
        sram_bytes: int | None = None,
        cache_routes: bool = True,
    ):
        if not (1 <= rows <= WSE_USABLE_ROWS):
            raise ValueError(f"rows outside [1, {WSE_USABLE_ROWS}]: {rows}")
        if not (1 <= cols <= WSE_USABLE_COLS):
            raise ValueError(f"cols outside [1, {WSE_USABLE_COLS}]: {cols}")
        self.rows = rows
        self.cols = cols
        #: Static-route memo: (row, col, color_id, entering) -> ResolvedRoute.
        #: ``cache_routes=False`` keeps the pre-cache behaviour (every
        #: resolve re-walks the route); the benchmark harness uses it to
        #: measure what the cache buys.
        self.cache_routes = cache_routes
        self._route_cache: dict[
            tuple[int, int, int, Direction], ResolvedRoute
        ] = {}
        #: Resolve calls answered from the memo / forced to walk
        #: (observability for tests and ``ceresz sim --metrics``). Both
        #: reset whenever a route is (re)installed, so the numbers always
        #: describe the current program's traffic, not a previous run on
        #: the same fabric.
        self.route_cache_hits = 0
        self.route_cache_misses = 0
        #: Dead links installed by fault injection: a wavelet *arriving at*
        #: PE (row, col) from the stored direction is lost. Walks crossing a
        #: broken link return ``dropped=True`` and are never memoized, so
        #: diagnostics stay exact.
        self.broken_links: set[tuple[int, int, Direction]] = set()
        self._pes: list[list[ProcessingElement]] = [
            [ProcessingElement(row=r, col=c) for c in range(cols)]
            for r in range(rows)
        ]
        if sram_bytes is not None:
            for row in self._pes:
                for pe in row:
                    pe.sram.capacity = sram_bytes

    # -- access ------------------------------------------------------------------

    def pe(self, row: int, col: int) -> ProcessingElement:
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise RoutingError(
                f"PE coordinate ({row}, {col}) outside "
                f"{self.rows}x{self.cols} mesh"
            )
        return self._pes[row][col]

    def __iter__(self):
        for row in self._pes:
            yield from row

    @property
    def num_pes(self) -> int:
        return self.rows * self.cols

    def neighbor(
        self, row: int, col: int, direction: Direction
    ) -> ProcessingElement | None:
        """The PE one hop away, or None at a mesh edge."""
        dr, dc = direction.delta
        nr, nc = row + dr, col + dc
        if 0 <= nr < self.rows and 0 <= nc < self.cols:
            return self._pes[nr][nc]
        return None

    # -- routing -------------------------------------------------------------------

    def break_link(self, row: int, col: int, direction: Direction) -> None:
        """Mark the link delivering into PE (row, col) from ``direction`` dead.

        ``direction`` is the side the wavelet *arrives from* (the
        ``entering`` direction of the walk). Installing a break clears the
        route memo: previously cached walks may cross the now-dead link.
        """
        self.pe(row, col)  # validate coordinates
        if direction is Direction.RAMP:
            raise RoutingError("cannot break the internal RAMP link")
        self.broken_links.add((row, col, direction))
        if self._route_cache:
            self._route_cache.clear()

    @property
    def route_cache_size(self) -> int:
        """Number of memoized (PE, color, entering) resolutions."""
        return len(self._route_cache)

    def set_route(
        self,
        row: int,
        col: int,
        color: Color,
        inputs: Direction | tuple[Direction, ...] | list[Direction],
        output: Direction,
    ) -> None:
        """Configure one PE's router for ``color`` (CSL's route setup).

        Invalidates the resolve cache: a new rule can change the path of
        any route that traverses this PE. The hit/miss counters reset with
        it — route installation marks the start of a new program, so the
        counters stay per-run.
        """
        self.pe(row, col).router.set_route(RouteRule.make(color, inputs, output))
        if self._route_cache:
            self._route_cache.clear()
        self.route_cache_hits = 0
        self.route_cache_misses = 0

    def route_row_segment(
        self, row: int, col_from: int, col_to: int, color: Color
    ) -> None:
        """Configure an eastward point-to-point route along one row.

        Installs ``RAMP -> EAST`` at the source, ``WEST -> EAST`` pass-through
        on intermediate PEs, and ``WEST -> RAMP`` at the destination. This is
        the Figure 3 pattern generalized to any distance.
        """
        if col_to <= col_from:
            raise RoutingError(
                f"route_row_segment requires col_to > col_from "
                f"({col_from} -> {col_to})"
            )
        self.set_route(row, col_from, color, Direction.RAMP, Direction.EAST)
        for c in range(col_from + 1, col_to):
            self.set_route(row, c, color, Direction.WEST, Direction.EAST)
        self.set_route(row, col_to, color, Direction.WEST, Direction.RAMP)

    def resolve(
        self, row: int, col: int, color: Color, entering: Direction = Direction.RAMP
    ) -> ResolvedRoute:
        """Walk ``color``'s route from (row, col) until it reaches a RAMP.

        Raises :class:`RoutingError` on missing rules, on routes that leave
        the mesh, and on cycles (a route revisiting a PE from the same
        direction would loop forever on the device).

        Resolutions are memoized per (PE, color, entering direction) — see
        the module docstring. Only successful walks are cached; error paths
        always re-walk so diagnostics stay exact.
        """
        cache = self._route_cache if self.cache_routes else None
        ckey = (row, col, color.id, entering)
        if cache is not None:
            hit = cache.get(ckey)
            if hit is not None:
                self.route_cache_hits += 1
                return hit
            self.route_cache_misses += 1
        r, c = row, col
        arriving = entering
        hops = 0
        seen: set[tuple[int, int, Direction]] = set()
        path: list[tuple[int, int, Direction]] = []
        while True:
            key = (r, c, arriving)
            if self.broken_links and key in self.broken_links:
                # Broken link: the wavelet dies here. Not memoized — fault
                # runs are rare and diagnostics should always re-walk.
                return ResolvedRoute(
                    source=(row, col), destination=(r, c), hops=hops,
                    dropped=True,
                )
            if key in seen:
                raise RoutingError(
                    f"color {color.id} route loops at PE({r}, {c})"
                )
            seen.add(key)
            path.append(key)
            out = self.pe(r, c).router.route(color.id, arriving)
            if out is Direction.RAMP:
                destination = (r, c)
                if cache is not None:
                    # Every traversed position resolves to the same RAMP
                    # with the remaining hop count, so one walk warms the
                    # cache for the whole chain downstream of the source.
                    for i, (pr, pc, pd) in enumerate(path):
                        cache[(pr, pc, color.id, pd)] = ResolvedRoute(
                            source=(pr, pc),
                            destination=destination,
                            hops=hops - i,
                        )
                    return cache[ckey]
                return ResolvedRoute(
                    source=(row, col), destination=destination, hops=hops
                )
            nxt = self.neighbor(r, c, out)
            if nxt is None:
                raise RoutingError(
                    f"color {color.id} route leaves the mesh at PE({r}, {c}) "
                    f"going {out.value}"
                )
            r, c = nxt.row, nxt.col
            arriving = out.opposite
            hops += 1
