"""Processing elements and the data-triggered task model.

A PE owns a router, 48 KB of SRAM, named local buffers (numpy arrays), and a
set of *tasks*, each bound to a color (``@bind_task`` in CSL). A task runs
when its color is *activated* — explicitly via ``@activate`` or implicitly
when an asynchronous transfer targeting that activation color completes.
Each PE has its own program counter, so tasks on different PEs execute
independently; within one PE tasks are serialized, which the engine models
with a single ``busy_until`` horizon per PE.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.errors import TaskError
from repro.wse.color import Color
from repro.wse.dsd import Dsd, FabinDsd, FaboutDsd, Mem1dDsd
from repro.wse.memory import SramAllocator
from repro.wse.router import Router

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.wse.engine import Engine


@dataclass(frozen=True)
class Task:
    """A named unit of PE code bound to a color."""

    name: str
    fn: Callable[["TaskContext"], None]


@dataclass
class ProcessingElement:
    """State of one mesh node."""

    row: int
    col: int
    router: Router = field(default_factory=Router)
    sram: SramAllocator = field(default_factory=SramAllocator)
    buffers: dict[str, np.ndarray] = field(default_factory=dict)
    tasks: dict[int, Task] = field(default_factory=dict)
    pending: deque[int] = field(default_factory=deque)  # activated colors
    inbox: dict[int, deque[np.ndarray]] = field(default_factory=dict)
    busy_until: float = 0.0
    compute_cycles: int = 0
    relay_cycles: int = 0
    tasks_run: int = 0
    #: Deepest backlog any single color's inbox reached (delivery bursts
    #: that outpace the consuming task show up here; ``ceresz sim
    #: --metrics`` reports the fabric-wide maximum).
    max_inbox_depth: int = 0
    halted: bool = False
    #: True while a ``task`` event for this PE sits in the engine's heap.
    #: The engine keeps at most one such event per PE (the dispatcher
    #: re-arms it while work remains), so N pending activations cost one
    #: heap entry instead of N.
    task_scheduled: bool = False
    # NodeCounters attached by plan lowering (collected by TraceRecorder);
    # untyped to keep the substrate free of a trace-module dependency.
    counters: list = field(default_factory=list)

    @property
    def coord(self) -> tuple[int, int]:
        return (self.row, self.col)

    # -- program construction -------------------------------------------------

    def bind_task(self, color: Color, task: Task) -> None:
        """Bind ``task`` to ``color`` (one task per color per PE)."""
        if color.id in self.tasks:
            raise TaskError(
                f"PE{self.coord}: color {color} already bound to task "
                f"{self.tasks[color.id].name!r}"
            )
        self.tasks[color.id] = task

    def alloc_buffer(self, name: str, array: np.ndarray) -> np.ndarray:
        """Register a local buffer, charging its bytes against SRAM."""
        arr = np.ascontiguousarray(array)
        self.sram.alloc(name, arr.nbytes)
        self.buffers[name] = arr
        return arr

    def free_buffer(self, name: str) -> None:
        self.sram.release(name)
        del self.buffers[name]

    # -- runtime ---------------------------------------------------------------

    def activate(self, color_id: int) -> None:
        """Queue ``color_id`` for execution (idempotent per occurrence).

        Unknown colors error: activating a color with no bound task is a
        lost wakeup on the device.
        """
        if color_id not in self.tasks:
            raise TaskError(
                f"PE{self.coord}: activation of color {color_id} with no "
                f"bound task"
            )
        self.pending.append(color_id)

    def deliver(self, color_id: int, data: np.ndarray) -> None:
        """Fabric data for ``color_id`` arrived at this PE's RAMP."""
        queue = self.inbox.setdefault(color_id, deque())
        queue.append(data)
        if len(queue) > self.max_inbox_depth:
            self.max_inbox_depth = len(queue)

    def take_delivery(self, color_id: int) -> np.ndarray | None:
        queue = self.inbox.get(color_id)
        if not queue:
            return None
        return queue.popleft()

    def has_work(self) -> bool:
        return bool(self.pending) and not self.halted

    def flip_bit(self, name: str, bit: int) -> bool:
        """Flip one bit of buffer ``name``'s SRAM backing (fault injection).

        Returns False (a no-op) when the buffer does not exist at this
        cycle or ``bit`` is past its end — SEUs don't care whether the
        program has allocated the word they hit.
        """
        arr = self.buffers.get(name)
        if arr is None or bit < 0:
            return False
        raw = arr.view(np.uint8).reshape(-1)
        byte = bit // 8
        if byte >= raw.size:
            return False
        raw[byte] ^= np.uint8(1 << (bit % 8))
        return True


class TaskContext:
    """The API surface a running task sees (the CSL builtins analogue).

    A fresh context is created by the engine for every task execution; the
    current simulated time advances through :meth:`spend`.
    """

    def __init__(self, engine: "Engine", pe: ProcessingElement, now: float):
        self._engine = engine
        self._pe = pe
        self._start = now
        self._spent = 0

    # -- introspection ----------------------------------------------------------

    @property
    def pe(self) -> ProcessingElement:
        return self._pe

    @property
    def coord(self) -> tuple[int, int]:
        return self._pe.coord

    @property
    def now(self) -> float:
        """Current simulated cycle (start of task + cycles spent so far)."""
        return self._start + self._spent

    @property
    def cycles_spent(self) -> int:
        return self._spent

    # -- compute -----------------------------------------------------------------

    def spend(self, cycles: int | float, *, relay: bool = False) -> None:
        """Charge compute (or relay) cycles to this PE.

        The cost model (:mod:`repro.wse.cost`) decides *how many* cycles an
        operation takes; tasks report them here so the engine can keep the
        PE busy for that long.
        """
        cycles = int(round(cycles))
        if cycles < 0:
            raise TaskError("cannot spend negative cycles")
        self._spent += cycles
        if relay:
            self._pe.relay_cycles += cycles
        else:
            self._pe.compute_cycles += cycles

    # -- buffers -----------------------------------------------------------------

    def buffer(self, name: str) -> np.ndarray:
        try:
            return self._pe.buffers[name]
        except KeyError:
            raise TaskError(f"PE{self.coord}: unknown buffer {name!r}")

    def alloc_buffer(self, name: str, array: np.ndarray) -> np.ndarray:
        return self._pe.alloc_buffer(name, array)

    def free_buffer(self, name: str) -> None:
        self._pe.free_buffer(name)

    # -- dataflow ------------------------------------------------------------------

    def activate(self, color: Color) -> None:
        """``@activate``: queue another task on this PE after this one ends."""
        self._engine.schedule_activation(self._pe, color.id, self.now)

    def mov32(
        self,
        dst: Dsd,
        src: Dsd,
        *,
        on_complete: Color | None = None,
        relay: bool = False,
    ) -> None:
        """``@mov32``: asynchronous DSD-to-DSD move.

        Supported combinations (the ones the paper's kernels use):

        * ``Mem1dDsd <- FabinDsd``: receive from fabric into local memory;
        * ``FaboutDsd <- Mem1dDsd``: send local memory to the fabric;
        * ``FaboutDsd <- FabinDsd``: pure relay, fabric to fabric
          (Fig 9's forwarding pattern);
        * ``Mem1dDsd <- Mem1dDsd``: local copy.

        ``on_complete`` names the color activated when the move finishes —
        this is the data-triggering mechanism of the paper's Figure 4.
        """
        self._engine.submit_transfer(
            self._pe, dst, src, self.now, on_complete, relay=relay
        )

    def send(
        self,
        color: Color,
        array: np.ndarray,
        *,
        on_complete: Color | None = None,
        relay: bool = False,
    ) -> None:
        """Convenience: send a whole array on ``color`` from a scratch DSD."""
        name = f"__tx_{color.id}_{self._engine.fresh_id()}"
        self._pe.alloc_buffer(name, np.asarray(array))
        # Register the scratch buffer first: the engine frees it as soon as
        # the transfer below captures the data.
        self._engine.note_scratch(self._pe, name)
        self.mov32(
            FaboutDsd(color=color, extent=_extent_of(array)),
            Mem1dDsd(buffer=name),
            on_complete=on_complete,
            relay=relay,
        )

    def recv(self, color: Color, extent: int, into: str, on_complete: Color) -> None:
        """Convenience: receive ``extent`` wavelets into buffer ``into``."""
        self.mov32(
            Mem1dDsd(buffer=into),
            FabinDsd(color=color, extent=extent),
            on_complete=on_complete,
        )

    def halt(self) -> None:
        """Stop scheduling tasks on this PE (end of program)."""
        self._pe.halted = True


def _extent_of(array: np.ndarray) -> int:
    # DSD extents count *elements*; the engine charges fabric time in
    # wavelets (a float64 element costs two 32-bit wavelets).
    return int(np.asarray(array).size)
