"""Functional discrete-event simulator of the Cerebras CS-2 wafer-scale engine.

The simulator models the architectural features the paper's mapping relies on
(Section 2.1):

* a 2D mesh of processing elements (PEs), each with its own program counter,
  48 KB of SRAM, and a fabric router;
* five cardinal dataflow directions per PE: RAMP (to the local processor),
  EAST, WEST, NORTH, SOUTH;
* 24 logical channels ("colors") whose per-PE input/output directions the
  program configures;
* data structure descriptors (DSDs) naming memory buffers and fabric
  endpoints, moved with asynchronous ``mov32``-style operations that activate
  a color on completion;
* the data-triggered task model: a task bound to a color runs only when that
  color is activated, either explicitly or by a completed transfer.

Execution is event driven. Compute time is charged through an explicit cycle
cost model (:mod:`repro.wse.cost`) calibrated to the paper's Tables 1-3;
fabric transfers are charged per-wavelet injection plus per-hop latency.
Data moves at array granularity (one event per DSD transfer, not one per
wavelet) which keeps simulation tractable while preserving dataflow ordering
and cycle accounting.
"""

from repro.wse.wavelet import Direction, Wavelet
from repro.wse.color import Color, ColorAllocator
from repro.wse.router import RouteRule, Router
from repro.wse.memory import SramAllocator
from repro.wse.dsd import FabinDsd, FaboutDsd, Mem1dDsd
from repro.wse.pe import ProcessingElement, Task, TaskContext
from repro.wse.fabric import Fabric
from repro.wse.engine import Engine, SimulationReport
from repro.wse.cost import CycleModel, StageCost, PAPER_CYCLE_MODEL
from repro.wse.trace import TraceRecorder, PETrace
from repro.wse.program import Program

__all__ = [
    "Direction",
    "Wavelet",
    "Color",
    "ColorAllocator",
    "RouteRule",
    "Router",
    "SramAllocator",
    "Mem1dDsd",
    "FabinDsd",
    "FaboutDsd",
    "ProcessingElement",
    "Task",
    "TaskContext",
    "Fabric",
    "Engine",
    "SimulationReport",
    "CycleModel",
    "StageCost",
    "PAPER_CYCLE_MODEL",
    "TraceRecorder",
    "PETrace",
    "Program",
]
