"""Execution traces and profiling helpers.

The paper measures runtime with the per-PE hardware cycle counters and
reports the *maximum* cycles across PEs (Section 5.1.1). The trace recorder
mirrors that: it collects per-PE busy/compute/relay cycles and task counts
from a finished simulation so tests and benchmarks can ask the same
questions the paper's profiling sections do (Tables 1-3, Fig 10).

Lowered mapping plans additionally attach one :class:`NodeCounters` per
plan node to its PE: blocks relayed, wavelets sent, blocks emitted, and
busy cycles per sub-stage. The recorder aggregates those so the validation
layer can compare observed vs predicted cycles per pipeline *step*, not
just end-to-end makespans.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import CLOCK_HZ
from repro.wse.pe import ProcessingElement


def coarse_step(stage_name: str) -> str:
    """Map a sub-stage name onto the paper's coarse pipeline steps."""
    if stage_name in ("multiplication", "addition"):
        return "prequant"
    if stage_name == "lorenzo":
        return "lorenzo"
    if stage_name in ("sign", "max", "get_length") or stage_name.startswith(
        "shuffle_bit_"
    ):
        return "encode"
    if stage_name == "sign_restore" or stage_name.startswith(
        "unshuffle_bit_"
    ):
        return "decode"
    if stage_name == "prefix_sum":
        return "unlorenzo"
    if stage_name in ("dequant_mult", "zero_flag"):
        return "dequant"
    return "other"


@dataclass
class NodeCounters:
    """Instrumentation one lowered plan node accumulates during a run."""

    label: str
    kind: str
    row: int
    col: int
    blocks_relayed: int = 0
    wavelets_sent: int = 0
    blocks_emitted: int = 0
    stage_cycles: dict[str, float] = field(default_factory=dict)

    def add_stage(self, stage_name: str, cycles: float) -> None:
        self.stage_cycles[stage_name] = (
            self.stage_cycles.get(stage_name, 0.0) + cycles
        )

    def add_stages(self, items: tuple[tuple[str, float], ...]) -> None:
        """Bulk :meth:`add_stage` for precomputed per-block stage plans.

        The fused whole-block kernels account a block's full stage list in
        one call instead of one per sub-stage; the accumulated totals are
        identical.
        """
        sc = self.stage_cycles
        for name, cycles in items:
            sc[name] = sc.get(name, 0.0) + cycles

    @property
    def busy_cycles(self) -> float:
        return sum(self.stage_cycles.values())


@dataclass(frozen=True)
class PETrace:
    """Cycle accounting of one PE at the end of a run."""

    row: int
    col: int
    compute_cycles: int
    relay_cycles: int
    tasks_run: int
    finished_at: float  # simulated cycle when this PE last went idle

    @property
    def total_cycles(self) -> int:
        return self.compute_cycles + self.relay_cycles


@dataclass
class TraceRecorder:
    """Collects :class:`PETrace` rows and answers aggregate queries."""

    traces: list[PETrace] = field(default_factory=list)
    events_processed: int = 0
    node_counters: list[NodeCounters] = field(default_factory=list)

    def record(self, pe: ProcessingElement) -> None:
        self.traces.append(
            PETrace(
                row=pe.row,
                col=pe.col,
                compute_cycles=pe.compute_cycles,
                relay_cycles=pe.relay_cycles,
                tasks_run=pe.tasks_run,
                finished_at=pe.busy_until,
            )
        )
        self.node_counters.extend(getattr(pe, "counters", ()))

    # -- plan-node instrumentation aggregates --------------------------------------

    def stage_cycle_totals(self) -> dict[str, float]:
        """Busy cycles per sub-stage summed over every lowered node."""
        totals: dict[str, float] = {}
        for nc in self.node_counters:
            for name, cycles in nc.stage_cycles.items():
                totals[name] = totals.get(name, 0.0) + cycles
        return totals

    def step_cycle_totals(self) -> dict[str, float]:
        """Busy cycles per coarse pipeline step (prequant/lorenzo/encode...)."""
        totals: dict[str, float] = {}
        for name, cycles in self.stage_cycle_totals().items():
            step = coarse_step(name)
            totals[step] = totals.get(step, 0.0) + cycles
        return totals

    def total_blocks_relayed(self) -> int:
        return sum(nc.blocks_relayed for nc in self.node_counters)

    def total_wavelets_sent(self) -> int:
        return sum(nc.wavelets_sent for nc in self.node_counters)

    # -- the paper's aggregates ----------------------------------------------------

    @property
    def makespan_cycles(self) -> float:
        """Cycles until the last PE finished (the paper's timing rule)."""
        if not self.traces:
            return 0.0
        return max(t.finished_at for t in self.traces)

    def makespan_seconds(self, clock_hz: float = CLOCK_HZ) -> float:
        return self.makespan_cycles / clock_hz

    def throughput_bytes_per_s(
        self, payload_bytes: int, clock_hz: float = CLOCK_HZ
    ) -> float:
        """Throughput as the paper computes it: original size / makespan."""
        seconds = self.makespan_seconds(clock_hz)
        if seconds <= 0:
            raise ZeroDivisionError("simulation produced a zero makespan")
        return payload_bytes / seconds

    def max_compute_cycles(self) -> int:
        return max((t.compute_cycles for t in self.traces), default=0)

    def total_relay_cycles(self) -> int:
        return sum(t.relay_cycles for t in self.traces)

    def per_row(self) -> dict[int, list[PETrace]]:
        rows: dict[int, list[PETrace]] = {}
        for t in self.traces:
            rows.setdefault(t.row, []).append(t)
        return rows

    def merge_partition(
        self, rows: tuple[int, ...], part: "TraceRecorder"
    ) -> None:
        """Fold one row-partition's recorder into this one.

        A partition worker simulates on a full-size mesh, so its recorder
        also holds all-idle traces for foreign rows; only ``rows``' own
        entries are taken. Callers must fold partitions in row order —
        then the merged trace/counter sequences are exactly what the
        serial run's row-major recording produces. Event counts add up
        exactly: every engine event belongs to a single row.
        """
        keep = set(rows)
        self.traces.extend(t for t in part.traces if t.row in keep)
        self.node_counters.extend(
            nc for nc in part.node_counters if nc.row in keep
        )
        self.events_processed += part.events_processed

    def merge_replica(
        self, part: "TraceRecorder", row_offset: int
    ) -> None:
        """Fold one replicated copy of a representative's recorder in.

        Hybrid simulation runs one representative partition (rebased to
        row 0) per equivalence class and synthesizes the member rows from
        it: each copy's traces and counters are the representative's with
        the row coordinate translated by ``row_offset`` (labels rewritten
        to match what serial lowering would have produced at that row).
        Callers fold copies in target-row order so the sequences match the
        serial run's row-major recording. ``events_processed`` is *not*
        touched here — replication multiplies it, so the composer sets the
        class-weighted total once.

        Replica counters share the representative's ``stage_cycles`` dict:
        aggregation only reads it after a run, and sharing keeps wafer-
        scale composition (hundreds of thousands of counters) cheap.
        """
        for t in part.traces:
            self.traces.append(
                PETrace(
                    row=t.row + row_offset,
                    col=t.col,
                    compute_cycles=t.compute_cycles,
                    relay_cycles=t.relay_cycles,
                    tasks_run=t.tasks_run,
                    finished_at=t.finished_at,
                )
            )
        for nc in part.node_counters:
            row = nc.row + row_offset
            self.node_counters.append(
                NodeCounters(
                    label=f"{nc.kind}@({row},{nc.col})",
                    kind=nc.kind,
                    row=row,
                    col=nc.col,
                    blocks_relayed=nc.blocks_relayed,
                    wavelets_sent=nc.wavelets_sent,
                    blocks_emitted=nc.blocks_emitted,
                    stage_cycles=nc.stage_cycles,
                )
            )

    def busiest_pe(self) -> PETrace:
        if not self.traces:
            raise ValueError("no traces recorded")
        return max(self.traces, key=lambda t: t.total_cycles)

    def load_imbalance(self) -> float:
        """max/mean busy cycles across PEs that did any work.

        Returns 0.0 when no PE did any work (empty or compute-free
        trace): there is no load, so there is no imbalance — and the
        sentinel is distinguishable from a genuinely perfect 1.0.
        """
        busy = [t.total_cycles for t in self.traces if t.total_cycles > 0]
        if not busy:
            return 0.0
        mean = sum(busy) / len(busy)
        return max(busy) / mean if mean else 0.0
