"""Execution traces and profiling helpers.

The paper measures runtime with the per-PE hardware cycle counters and
reports the *maximum* cycles across PEs (Section 5.1.1). The trace recorder
mirrors that: it collects per-PE busy/compute/relay cycles and task counts
from a finished simulation so tests and benchmarks can ask the same
questions the paper's profiling sections do (Tables 1-3, Fig 10).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import CLOCK_HZ
from repro.wse.pe import ProcessingElement


@dataclass(frozen=True)
class PETrace:
    """Cycle accounting of one PE at the end of a run."""

    row: int
    col: int
    compute_cycles: int
    relay_cycles: int
    tasks_run: int
    finished_at: float  # simulated cycle when this PE last went idle

    @property
    def total_cycles(self) -> int:
        return self.compute_cycles + self.relay_cycles


@dataclass
class TraceRecorder:
    """Collects :class:`PETrace` rows and answers aggregate queries."""

    traces: list[PETrace] = field(default_factory=list)
    events_processed: int = 0

    def record(self, pe: ProcessingElement) -> None:
        self.traces.append(
            PETrace(
                row=pe.row,
                col=pe.col,
                compute_cycles=pe.compute_cycles,
                relay_cycles=pe.relay_cycles,
                tasks_run=pe.tasks_run,
                finished_at=pe.busy_until,
            )
        )

    # -- the paper's aggregates ----------------------------------------------------

    @property
    def makespan_cycles(self) -> float:
        """Cycles until the last PE finished (the paper's timing rule)."""
        if not self.traces:
            return 0.0
        return max(t.finished_at for t in self.traces)

    def makespan_seconds(self, clock_hz: float = CLOCK_HZ) -> float:
        return self.makespan_cycles / clock_hz

    def throughput_bytes_per_s(
        self, payload_bytes: int, clock_hz: float = CLOCK_HZ
    ) -> float:
        """Throughput as the paper computes it: original size / makespan."""
        seconds = self.makespan_seconds(clock_hz)
        if seconds <= 0:
            raise ZeroDivisionError("simulation produced a zero makespan")
        return payload_bytes / seconds

    def max_compute_cycles(self) -> int:
        return max((t.compute_cycles for t in self.traces), default=0)

    def total_relay_cycles(self) -> int:
        return sum(t.relay_cycles for t in self.traces)

    def per_row(self) -> dict[int, list[PETrace]]:
        rows: dict[int, list[PETrace]] = {}
        for t in self.traces:
            rows.setdefault(t.row, []).append(t)
        return rows

    def busiest_pe(self) -> PETrace:
        if not self.traces:
            raise ValueError("no traces recorded")
        return max(self.traces, key=lambda t: t.total_cycles)

    def load_imbalance(self) -> float:
        """max/mean busy cycles across PEs that did any work (>= 1.0)."""
        busy = [t.total_cycles for t in self.traces if t.total_cycles > 0]
        if not busy:
            return 1.0
        mean = sum(busy) / len(busy)
        return max(busy) / mean if mean else 1.0
