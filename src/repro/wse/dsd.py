"""Data Structure Descriptors (DSDs).

On the CS-2, DSDs describe where data lives — a strided region of local
memory, or a fabric endpoint on some color — and vector operations such as
``@mov32`` consume a source DSD and a destination DSD (paper Figure 4). The
simulator mirrors the three kinds used by the paper's kernels:

``Mem1dDsd``
    a view into a named PE-local buffer (``mem1d_dsd`` in CSL),
``FabinDsd``
    receive ``extent`` wavelets on a color (``fabin_dsd``),
``FaboutDsd``
    send ``extent`` wavelets on a color (``fabout_dsd``).

DSDs are plain descriptions; :class:`repro.wse.engine.Engine` gives them
meaning when a task issues a transfer.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import TaskError
from repro.wse.color import Color


@dataclass(frozen=True)
class Mem1dDsd:
    """A 1-D window into a PE-local buffer.

    ``buffer`` names an array registered on the owning PE; ``offset`` and
    ``length`` select the window (length ``None`` means "to the end").
    """

    buffer: str
    offset: int = 0
    length: int | None = None

    def __post_init__(self) -> None:
        if self.offset < 0:
            raise TaskError(f"mem1d dsd with negative offset: {self}")
        if self.length is not None and self.length < 0:
            raise TaskError(f"mem1d dsd with negative length: {self}")

    def resolve(self, storage: dict[str, np.ndarray]) -> np.ndarray:
        """Return the referenced view (never a copy)."""
        try:
            arr = storage[self.buffer]
        except KeyError:
            raise TaskError(f"mem1d dsd names unknown buffer {self.buffer!r}")
        stop = None if self.length is None else self.offset + self.length
        view = arr[self.offset : stop]
        if self.length is not None and view.size != self.length:
            raise TaskError(
                f"mem1d dsd window [{self.offset}:{stop}] exceeds buffer "
                f"{self.buffer!r} of size {arr.size}"
            )
        return view


@dataclass(frozen=True)
class FabinDsd:
    """Receive ``extent`` wavelets from the fabric on ``color``."""

    color: Color
    extent: int
    input_queue: int = 0

    def __post_init__(self) -> None:
        if self.extent <= 0:
            raise TaskError(f"fabin dsd with non-positive extent: {self}")


@dataclass(frozen=True)
class FaboutDsd:
    """Send ``extent`` wavelets to the fabric on ``color``."""

    color: Color
    extent: int
    output_queue: int = 0

    def __post_init__(self) -> None:
        if self.extent <= 0:
            raise TaskError(f"fabout dsd with non-positive extent: {self}")


Dsd = Mem1dDsd | FabinDsd | FaboutDsd
