"""Per-PE SRAM accounting.

Each PE owns 48 KB of SRAM holding *all* code and data (paper Section 2.1);
there is no global memory. The simulator does not model addresses — buffers
are numpy arrays — but it does enforce the capacity so that mappings which
would not fit on the device (e.g. pipeline length 1 with an oversized block
working set, see the paper's Section 4.4 discussion of when longer pipelines
become necessary) fail loudly in tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import PE_SRAM_BYTES
from repro.errors import MemoryError_


@dataclass
class SramAllocator:
    """Named-buffer allocator with a hard byte budget."""

    capacity: int = PE_SRAM_BYTES
    reserved: int = 0  # bytes pre-charged for code/runtime, if desired
    _allocs: dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ValueError("SRAM capacity must be positive")
        if not (0 <= self.reserved <= self.capacity):
            raise ValueError("reserved bytes outside [0, capacity]")

    @property
    def used(self) -> int:
        return self.reserved + sum(self._allocs.values())

    @property
    def free(self) -> int:
        return self.capacity - self.used

    def alloc(self, name: str, nbytes: int) -> None:
        """Reserve ``nbytes`` under ``name``.

        Re-allocating an existing name resizes it (the new size must still
        fit). Allocations of zero bytes are legal and track the name only.
        """
        if nbytes < 0:
            raise ValueError(f"negative allocation for {name!r}")
        current = self._allocs.get(name, 0)
        if self.used - current + nbytes > self.capacity:
            raise MemoryError_(
                f"PE SRAM overflow allocating {name!r}: need {nbytes} B, "
                f"{self.free + current} B free of {self.capacity} B"
            )
        self._allocs[name] = nbytes

    def release(self, name: str) -> None:
        if name not in self._allocs:
            raise MemoryError_(f"release of unknown buffer {name!r}")
        del self._allocs[name]

    def size_of(self, name: str) -> int:
        return self._allocs[name]

    def __contains__(self, name: str) -> bool:
        return name in self._allocs

    def snapshot(self) -> dict[str, int]:
        """Copy of the current allocation table (for traces/diagnostics)."""
        return dict(self._allocs)
