"""Discrete-event execution engine for the WSE simulator.

The engine gives DSDs and tasks their dataflow semantics:

* a task bound to a color runs when the color is activated, one task at a
  time per PE (each PE is an independent sequential processor);
* ``mov32`` transfers are asynchronous: receives post a pending descriptor
  that is matched against arriving fabric data, sends resolve the color's
  static route and schedule an arrival at the destination PE, and either
  side may activate a completion color (the data-triggering mechanism of the
  paper's Figure 4);
* fabric timing charges one cycle per wavelet injected plus one cycle per
  hop traversed; compute timing is charged explicitly by tasks through
  :meth:`TaskContext.spend` using the calibrated cost model.

Time is measured in clock cycles as a float (stage costs are calibrated
means, not integers). The engine is deterministic: ties are broken by event
sequence number.

Payload ownership rule
----------------------
Arrays handed to the fabric belong to the fabric from the moment the
transfer is issued: senders must not mutate a sent array afterwards, and
receivers copy into their own buffers at delivery time (``_match`` writes
through the destination DSD). The engine therefore copies a payload **at
most once**, on the fabout side, and only when the source buffer stays
live after the send (a task could legally reuse it). Transmit scratch
buffers registered via :meth:`Engine.note_scratch` are freed the moment
the transfer captures them, so their payloads move with zero copies; pure
relays (fabout <- fabin) forward the in-flight array itself.

Event-queue invariants
----------------------
The heap holds at most one ``task`` event per PE (``pe.task_scheduled``
guards re-arming; the dispatcher re-pushes while pending activations
remain), and ``match`` probes are only queued when they can pair —
deliveries with no posted receive and receives with an empty inbox do not
enqueue anything. Both are pure event-count reductions: timing and
matching order are unchanged, only redundant no-op events disappear.
``Engine(..., optimize=False)`` restores the pre-optimization behaviour
(every activation pushes a task event, every deliver/post pushes a match,
every send copies) so the benchmark suite can measure the difference.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.config import HOP_CYCLES
from repro.errors import DeadlockError, TaskError
from repro.faults.inject import FaultInjector, build_fault_report
from repro.faults.plan import FaultPlan
from repro.wse.color import Color
from repro.wse.dsd import Dsd, FabinDsd, FaboutDsd, Mem1dDsd
from repro.wse.fabric import Fabric
from repro.wse.pe import ProcessingElement, TaskContext
from repro.wse.trace import TraceRecorder
from repro.wse.wavelet import Direction, wavelet_count


@dataclass(frozen=True)
class SimulationReport:
    """Result of :meth:`Engine.run`.

    ``fault`` is ``None`` for a clean run. Under
    ``run(on_stall="report")`` a detected stall hands back the structured
    :class:`~repro.faults.report.FaultReport` here instead of raising —
    the handoff the self-healing retry loop consumes.
    """

    makespan_cycles: float
    events_processed: int
    tasks_run: int
    trace: TraceRecorder
    fault: "object | None" = None

    @property
    def stalled(self) -> bool:
        return self.fault is not None


@dataclass
class _PendingRecv:
    dst: Mem1dDsd
    extent: int
    on_complete: Color | None
    posted_at: float


@dataclass
class _PendingRelay:
    out_color: Color
    extent: int
    on_complete: Color | None
    posted_at: float
    charge_relay: bool


@dataclass
class _Event:
    kind: str
    pe: ProcessingElement | None = None
    color_id: int = -1
    data: np.ndarray | None = None
    payload: dict = field(default_factory=dict)


class Engine:
    """Runs a configured :class:`Fabric` until quiescence."""

    def __init__(
        self,
        fabric: Fabric,
        *,
        max_events: int = 50_000_000,
        optimize: bool = True,
        tracer=None,
        faults: FaultInjector | FaultPlan | None = None,
    ):
        self.fabric = fabric
        self.max_events = max_events
        #: Event-queue slimming + zero-copy scratch sends (see the module
        #: docstring). ``optimize=False`` keeps the naive behaviour so the
        #: benchmark harness can measure what the optimizations buy; results
        #: are identical either way.
        self.optimize = optimize
        #: Optional :class:`repro.obs.tracing.Tracer`. Per-PE timeline
        #: events are recorded only at ``trace_level="timeline"``; the
        #: level is cached as one bool so the off path costs a single
        #: attribute test per task execution.
        self.tracer = tracer
        self._timeline = tracer is not None and tracer.records_timeline
        #: High-water mark of the event heap (published to the metrics
        #: registry as ``sim.engine.queue_depth.max``).
        self.max_queue_depth = 0
        self._queue: list[tuple[float, int, _Event]] = []
        self._seq = itertools.count()
        self._ids = itertools.count()
        self._recv: dict[tuple[int, int, int], deque[_PendingRecv]] = {}
        self._relay: dict[tuple[int, int, int], deque[_PendingRelay]] = {}
        self._scratch: dict[tuple[int, int], list[str]] = {}
        self._events_processed = 0
        self._now = 0.0
        #: Optional fault injector (see :mod:`repro.faults`). ``_faulted``
        #: caches presence so clean runs pay one attribute test per deliver.
        if isinstance(faults, FaultPlan):
            faults = FaultInjector(faults)
        self.faults = faults
        self._faulted = faults is not None
        if faults is not None:
            faults.install(self)

    # -- public API -----------------------------------------------------------------

    @property
    def now(self) -> float:
        return self._now

    @property
    def events_processed(self) -> int:
        return self._events_processed

    def fresh_id(self) -> int:
        return next(self._ids)

    def inject(
        self,
        row: int,
        col: int,
        color: Color,
        data: np.ndarray,
        at: float = 0.0,
        *,
        from_direction: Direction = Direction.WEST,
    ) -> None:
        """Feed data onto the mesh as if arriving from off-wafer.

        The wafer edge PEs route data on and off the WSE (paper 5.1.1);
        ``inject`` models the on-wafer side of that boundary: the array
        appears at PE (row, col) on ``color`` at cycle ``at`` plus the
        injection time of ``len(data)`` wavelets.
        """
        arr = np.asarray(data)
        arrive = at + wavelet_count(arr) * HOP_CYCLES
        self._push(arrive, _Event("deliver", self.fabric.pe(row, col), color.id, arr))

    def send_from(
        self,
        row: int,
        col: int,
        color: Color,
        data: np.ndarray,
        at: float = 0.0,
    ) -> None:
        """Send ``data`` along ``color``'s route starting at PE (row, col).

        Unlike :meth:`inject` (which drops data straight into a PE's inbox,
        modeling the off-wafer edge), this resolves the static route from
        the source PE's RAMP — the data traverses the fabric and arrives at
        whichever PE the route terminates on, after injection and hop
        latency. It models a producer PE whose send is driven by the host
        (e.g. a generator kernel outside the simulated program).
        """
        pe = self.fabric.pe(row, col)
        self._send(pe, color, np.asarray(data), at, None, False)

    def schedule_activation(
        self, pe: ProcessingElement, color_id: int, at: float
    ) -> None:
        self._push(at, _Event("activate", pe, color_id))

    def schedule_fault(self, fault, at: float) -> None:
        """Arm a timed fault (PE halt, SRAM bit flip) at cycle ``at``."""
        self._push(at, _Event("fault", payload={"fault": fault}))

    def note_scratch(self, pe: ProcessingElement, name: str) -> None:
        """Mark ``name`` as a transmit scratch buffer to free on send."""
        self._scratch.setdefault(pe.coord, []).append(name)

    def submit_transfer(
        self,
        pe: ProcessingElement,
        dst: Dsd,
        src: Dsd,
        now: float,
        on_complete: Color | None,
        *,
        relay: bool = False,
    ) -> None:
        """Interpret a ``mov32`` issued by a task on ``pe`` at cycle ``now``."""
        if isinstance(dst, Mem1dDsd) and isinstance(src, FabinDsd):
            key = (pe.row, pe.col, src.color.id)
            self._recv.setdefault(key, deque()).append(
                _PendingRecv(dst, src.extent, on_complete, now)
            )
            # A freshly posted receive can only pair if data already sits in
            # the inbox; otherwise the next deliver event probes for us.
            if not self.optimize or pe.inbox.get(src.color.id):
                self._push(now, _Event("match", pe, src.color.id))
        elif isinstance(dst, FaboutDsd) and isinstance(src, Mem1dDsd):
            view = src.resolve(pe.buffers)
            names = self._scratch.get(pe.coord)
            if self.optimize and names and src.buffer in names:
                # Transmit scratch: the buffer is freed right after the send
                # captures it, so ownership transfers to the fabric and no
                # defensive copy is needed (see the ownership rule above).
                data = view
            else:
                data = np.array(view, copy=True)
            if data.size != dst.extent:
                raise TaskError(
                    f"PE{pe.coord}: fabout extent {dst.extent} != source "
                    f"window size {data.size}"
                )
            self._send(pe, dst.color, data, now, on_complete, relay)
            self._free_scratch(pe, src.buffer)
        elif isinstance(dst, FaboutDsd) and isinstance(src, FabinDsd):
            key = (pe.row, pe.col, src.color.id)
            self._relay.setdefault(key, deque()).append(
                _PendingRelay(dst.color, src.extent, on_complete, now, relay)
            )
            if not self.optimize or pe.inbox.get(src.color.id):
                self._push(now, _Event("match", pe, src.color.id))
        elif isinstance(dst, Mem1dDsd) and isinstance(src, Mem1dDsd):
            target = dst.resolve(pe.buffers)
            source = src.resolve(pe.buffers)
            if target.size != source.size:
                raise TaskError(
                    f"PE{pe.coord}: local copy size mismatch "
                    f"{source.size} -> {target.size}"
                )
            target[:] = source
            if on_complete is not None:
                self._push(now, _Event("activate", pe, on_complete.id))
        else:
            raise TaskError(
                f"unsupported mov32 combination: {type(src).__name__} -> "
                f"{type(dst).__name__}"
            )

    def run(
        self,
        *,
        allow_pending: bool = False,
        stop_when: Callable[[], bool] | None = None,
        on_stall: str = "raise",
    ) -> SimulationReport:
        """Process events until quiescence (or ``stop_when`` returns True).

        With ``allow_pending=False`` (the default), finishing with unmatched
        pending receives is a detected stall — on the device that state is
        a silent hang. ``on_stall`` selects the handoff: ``"raise"`` (the
        default) raises :class:`DeadlockError` carrying the structured
        FaultReport; ``"report"`` returns normally with the same
        FaultReport attached as :attr:`SimulationReport.fault`, so repair
        orchestration can consume stalls as data instead of control flow.
        """
        if on_stall not in ("raise", "report"):
            raise ValueError(
                f"on_stall must be 'raise' or 'report', got {on_stall!r}"
            )

        def _stall(message: str, reason: str) -> SimulationReport:
            report = self._diagnose(reason)
            if on_stall == "raise":
                raise DeadlockError(message, report=report)
            return self._finish(fault=report)

        while self._queue:
            if self._events_processed >= self.max_events:
                message = (
                    f"event budget exhausted after {self.max_events} events "
                    f"(livelock?)"
                )
                pending = self._pending_summary()
                if pending:
                    message += f"; pending: {pending}"
                return _stall(message, "livelock")
            time, _, event = heapq.heappop(self._queue)
            self._now = max(self._now, time)
            self._events_processed += 1
            self._dispatch(time, event)
            if stop_when is not None and stop_when():
                break
        if not allow_pending:
            desc = self._pending_summary()
            if desc:
                return _stall(
                    f"simulation quiesced with unmatched pending receives: "
                    f"{desc}",
                    "deadlock",
                )
            if self.faults is not None:
                leftovers = self.faults.quiesce_stuck(self)
                if leftovers:
                    locs = "; ".join(
                        f"PE({s.row},{s.col}) color {s.color_id}: "
                        f"{s.extent} undelivered"
                        for s in leftovers
                    )
                    return _stall(
                        f"simulation quiesced with undelivered data at "
                        f"injection-halted PEs: {locs}",
                        "deadlock",
                    )
        return self._finish()

    def _finish(self, fault=None) -> SimulationReport:
        """Fold per-PE state into the report (clean or stalled-with-report)."""
        trace = TraceRecorder()
        tasks_run = 0
        for pe in self.fabric:
            trace.record(pe)
            tasks_run += pe.tasks_run
        trace.events_processed = self._events_processed
        makespan = max((pe.busy_until for pe in self.fabric), default=0.0)
        return SimulationReport(
            makespan_cycles=makespan,
            events_processed=self._events_processed,
            tasks_run=tasks_run,
            trace=trace,
            fault=fault,
        )

    # -- internals --------------------------------------------------------------------

    def _diagnose(self, reason: str):
        """Build the structured :class:`FaultReport` for a detected stall."""
        if self.faults is not None:
            return self.faults.build_report(self, reason)
        return build_fault_report(self, reason)

    def _pending_summary(self) -> str:
        """Describe every stuck pending receive/relay for deadlock reports.

        One clause per posted descriptor: the PE's coordinates, the color it
        is blocked on, what it was waiting for, and the cycle the descriptor
        was posted — enough to see which producer never delivered.
        """
        lines: list[str] = []
        for (r, c, cid), queue in sorted(self._recv.items()):
            for p in queue:
                lines.append(
                    f"PE({r},{c}) color {cid}: recv of {p.extent} wavelets "
                    f"into {p.dst.buffer!r} posted at cycle {p.posted_at:.0f}"
                )
        for (r, c, cid), queue in sorted(self._relay.items()):
            for p in queue:
                lines.append(
                    f"PE({r},{c}) color {cid}: relay of {p.extent} wavelets "
                    f"to color {p.out_color.id} posted at cycle "
                    f"{p.posted_at:.0f}"
                )
        return "; ".join(lines)

    def _push(self, time: float, event: _Event) -> None:
        queue = self._queue
        heapq.heappush(queue, (time, next(self._seq), event))
        if len(queue) > self.max_queue_depth:
            self.max_queue_depth = len(queue)

    def _dispatch(self, time: float, event: _Event) -> None:
        if event.kind == "deliver":
            copies = 1
            if self._faulted:
                copies = self.faults.on_deliver(event.pe, event.color_id)
                if copies == 0:
                    return  # injected wavelet drop: the data never arrives
            for _ in range(copies):
                event.pe.deliver(event.color_id, event.data)
            # Data with no posted receive/relay just waits in the inbox; the
            # matching submit_transfer will probe when it arrives.
            key = (event.pe.row, event.pe.col, event.color_id)
            if (
                not self.optimize
                or self._recv.get(key)
                or self._relay.get(key)
            ):
                self._push(time, _Event("match", event.pe, event.color_id))
        elif event.kind == "match":
            self._match(event.pe, event.color_id, time)
        elif event.kind == "activate":
            event.pe.activate(event.color_id)
            self._schedule_task(event.pe, max(time, event.pe.busy_until))
        elif event.kind == "task":
            self._run_task(event.pe, time)
        elif event.kind == "fault":
            self.faults.apply_timed(self, event.payload["fault"], time)
        else:  # pragma: no cover - defensive
            raise TaskError(f"unknown event kind {event.kind!r}")

    def _match(self, pe: ProcessingElement, color_id: int, time: float) -> None:
        """Pair arrived data with pending receives/relays, FIFO."""
        key = (pe.row, pe.col, color_id)
        while True:
            relays = self._relay.get(key)
            recvs = self._recv.get(key)
            # Relays posted before receives are matched first in posting order.
            candidates: list[tuple[float, str]] = []
            if relays:
                candidates.append((relays[0].posted_at, "relay"))
            if recvs:
                candidates.append((recvs[0].posted_at, "recv"))
            if not candidates:
                return
            data = pe.take_delivery(color_id)
            if data is None:
                return
            candidates.sort()
            _, which = candidates[0]
            if which == "relay":
                pending = relays.popleft()
                if data.size != pending.extent:
                    raise TaskError(
                        f"PE{pe.coord}: relay on color {color_id} expected "
                        f"{pending.extent} wavelets, got {data.size}"
                    )
                self._send(
                    pe,
                    pending.out_color,
                    data,
                    max(time, pending.posted_at),
                    pending.on_complete,
                    pending.charge_relay,
                )
            else:
                pending = recvs.popleft()
                if data.size != pending.extent:
                    raise TaskError(
                        f"PE{pe.coord}: receive on color {color_id} expected "
                        f"{pending.extent} wavelets, got {data.size}"
                    )
                target = pending.dst.resolve(pe.buffers)
                if target.size != data.size:
                    raise TaskError(
                        f"PE{pe.coord}: receive buffer window holds "
                        f"{target.size} elements, data has {data.size}"
                    )
                target[:] = data.astype(target.dtype, copy=False)
                if pending.on_complete is not None:
                    done = max(time, pending.posted_at)
                    self._push(
                        done, _Event("activate", pe, pending.on_complete.id)
                    )

    def _send(
        self,
        pe: ProcessingElement,
        color: Color,
        data: np.ndarray,
        now: float,
        on_complete: Color | None,
        charge_relay: bool,
    ) -> None:
        route = self.fabric.resolve(pe.row, pe.col, color)
        inject_cycles = wavelet_count(data) * HOP_CYCLES
        if charge_relay:
            pe.relay_cycles += inject_cycles
        if route.dropped:
            # Dead link (injected fault): the wavelets are injected and then
            # vanish mid-route. The sender can't tell — its completion color
            # still fires — which is exactly the silent-loss failure mode.
            if self.faults is not None:
                self.faults.on_link_drop(*route.destination, color.id)
            if on_complete is not None:
                self._push(
                    now + inject_cycles,
                    _Event("activate", pe, on_complete.id),
                )
            return
        arrive = now + inject_cycles + route.hops * HOP_CYCLES
        dest = self.fabric.pe(*route.destination)
        self._push(arrive, _Event("deliver", dest, color.id, data))
        if on_complete is not None:
            self._push(now + inject_cycles, _Event("activate", pe, on_complete.id))

    def _schedule_task(self, pe: ProcessingElement, at: float) -> None:
        """Push a ``task`` event for ``pe``, at most one in flight.

        Any event scheduled while ``task_scheduled`` is set would fire at or
        after the one already in the heap (activation times are monotone and
        ``busy_until`` only moves when the armed event runs), and the
        dispatcher re-arms while pending activations remain — so dropping
        the duplicate never delays a task.
        """
        if self.optimize:
            if pe.task_scheduled:
                return
            pe.task_scheduled = True
        self._push(at, _Event("task", pe))

    def _run_task(self, pe: ProcessingElement, time: float) -> None:
        pe.task_scheduled = False
        if pe.halted or not pe.pending:
            return
        if time < pe.busy_until:
            self._schedule_task(pe, pe.busy_until)
            return
        color_id = pe.pending.popleft()
        task = pe.tasks.get(color_id)
        if task is None:  # pragma: no cover - activate() already guards
            raise TaskError(f"PE{pe.coord}: no task bound to color {color_id}")
        ctx = TaskContext(self, pe, time)
        task.fn(ctx)
        pe.busy_until = time + ctx.cycles_spent
        pe.tasks_run += 1
        if self._timeline:
            self.tracer.pe_event(
                pe.row, pe.col, task.name, time, ctx.cycles_spent
            )
        if pe.pending and not pe.halted:
            self._schedule_task(pe, pe.busy_until)

    def _free_scratch(self, pe: ProcessingElement, name: str) -> None:
        names = self._scratch.get(pe.coord)
        if names and name in names:
            names.remove(name)
            pe.free_buffer(name)
