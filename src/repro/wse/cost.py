"""Cycle cost model calibrated to the paper's Tables 1-3.

The paper profiles each compression (sub-)stage in clock cycles per data
block of 32 single-precision elements. The calibrated constants below are
the cross-dataset means of those tables:

======================  ============  =========================================
Sub-stage               cycles/block  source
======================  ============  =========================================
Multiplication          5074          Table 2 (5078 / 5081 / 5063)
Addition                1040          Table 2 (1033 / 1038 / 1049)
Lorenzo prediction      975           Table 1 (975 on all three datasets)
Sign                    1044          Table 3 (1044 / 1041 / 1048)
Max                     1037          Table 3 (1037 / 1032 / 1041)
GetLength               1386          Table 3 (1386 / 1370 / 1385)
Bit-shuffle             1976.6 x f    Table 3 fit: 33609/17 = 25675/13 = 23694/12
======================  ============  =========================================

where *f* is the block's fixed length (effective bits of the max absolute
predicted value). Decompression mirrors compression without the Max and
GetLength stages (the header already stores *f*, paper Section 3), with a
block-local prefix sum replacing the first-order difference and a byte-wise
bit-unshuffle replacing the shuffle.

Fabric constants:

``C1``
    cycles to relay one raw data block through one PE (Eq. 2's constant):
    32 wavelets injected back-to-back plus router turnaround.
``C2``
    cycles to move one block of intermediate results from local memory onto
    the fabric and to the next pipeline PE (Eq. 3's constant). ``C2 > C1``
    because it includes the memory-to-fabric DSD setup, as the paper notes.

All constants scale linearly in the block size; they are calibrated at the
paper's L = 32.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import BLOCK_SIZE
from repro.errors import ModelError

#: Reference block size the constants were calibrated at.
CALIBRATION_BLOCK = BLOCK_SIZE


@dataclass(frozen=True)
class StageCost:
    """Cycle cost of one sub-stage for a block of ``length`` elements.

    ``fixed`` is charged once per block, ``per_element`` per element, and
    ``per_bit`` once per effective bit of the block's fixed length (only the
    bit-shuffle stages use it).
    """

    name: str
    fixed: float = 0.0
    per_element: float = 0.0
    per_bit: float = 0.0

    def cycles(self, length: int = BLOCK_SIZE, fl: int = 0) -> float:
        if length <= 0:
            raise ModelError(f"stage {self.name}: non-positive block length")
        if fl < 0:
            raise ModelError(f"stage {self.name}: negative fixed length")
        return self.fixed + self.per_element * length + self.per_bit * fl * (
            length / CALIBRATION_BLOCK
        )


def _per_block(name: str, cycles_at_32: float) -> StageCost:
    """A stage whose cost is linear in block length, pinned at L = 32."""
    return StageCost(name=name, per_element=cycles_at_32 / CALIBRATION_BLOCK)


@dataclass(frozen=True)
class CycleModel:
    """The full calibrated model: per-stage costs plus fabric constants."""

    multiplication: StageCost = field(
        default_factory=lambda: _per_block("multiplication", 5074.0)
    )
    addition: StageCost = field(
        default_factory=lambda: _per_block("addition", 1040.0)
    )
    lorenzo: StageCost = field(
        default_factory=lambda: _per_block("lorenzo", 975.0)
    )
    sign: StageCost = field(default_factory=lambda: _per_block("sign", 1044.0))
    max: StageCost = field(default_factory=lambda: _per_block("max", 1037.0))
    get_length: StageCost = field(
        default_factory=lambda: _per_block("get_length", 1386.0)
    )
    bit_shuffle: StageCost = field(
        default_factory=lambda: StageCost("bit_shuffle", per_bit=1976.6)
    )
    # Decompression mirrors.
    bit_unshuffle: StageCost = field(
        default_factory=lambda: StageCost("bit_unshuffle", per_bit=1450.0)
    )
    prefix_sum: StageCost = field(
        default_factory=lambda: _per_block("prefix_sum", 1100.0)
    )
    dequant_mult: StageCost = field(
        default_factory=lambda: _per_block("dequant_mult", 3600.0)
    )
    sign_restore: StageCost = field(
        default_factory=lambda: _per_block("sign_restore", 1044.0)
    )
    #: Emitting/consuming a zero-block flag short-circuits encoding entirely.
    zero_flag: StageCost = field(
        default_factory=lambda: StageCost("zero_flag", fixed=96.0)
    )
    #: Eq. 2 constant: relay one raw block one hop (32 wavelets + queueing /
    #: turnaround). Calibrated so the relay-bound throughput ceiling on a
    #: 512x512 mesh lands at the paper's observed maximum (773.8 GB/s, RTM
    #: at REL 1e-2, Fig 11).
    c1_relay: float = 54.0
    #: Eq. 3 constant: intermediate block, memory -> fabric -> next PE.
    c2_forward: float = 640.0
    #: Per-task dispatch overhead charged by the engine when a task runs.
    task_dispatch: float = 12.0

    # -- aggregate queries -------------------------------------------------------

    def prequant_cycles(self, length: int = BLOCK_SIZE) -> float:
        """Pre-quantization = multiplication + addition (Table 2 split)."""
        return self.multiplication.cycles(length) + self.addition.cycles(length)

    def encode_cycles(self, fl: int, length: int = BLOCK_SIZE) -> float:
        """Fixed-length encoding for a block whose fixed length is ``fl``."""
        return (
            self.sign.cycles(length)
            + self.max.cycles(length)
            + self.get_length.cycles(length)
            + self.bit_shuffle.cycles(length, fl)
        )

    def compress_block_cycles(
        self, fl: int, length: int = BLOCK_SIZE, *, zero: bool = False
    ) -> float:
        """End-to-end compression cycles for one block.

        Zero blocks (all quantized integers zero) skip encoding after the
        Max stage discovers the block is empty, storing only a flag — this
        is what makes throughput *rise* with looser error bounds
        (paper Section 5.2).
        """
        base = self.prequant_cycles(length) + self.lorenzo.cycles(length)
        if zero:
            return (
                base
                + self.sign.cycles(length)
                + self.max.cycles(length)
                + self.zero_flag.cycles(length)
            )
        return base + self.encode_cycles(fl, length)

    def decompress_block_cycles(
        self, fl: int, length: int = BLOCK_SIZE, *, zero: bool = False
    ) -> float:
        """End-to-end decompression cycles for one block.

        No Max / GetLength: the fixed length is read from the header, which
        is why decompression outruns compression (Figs 11 vs 12).
        """
        if zero:
            return self.zero_flag.cycles(length) + self.dequant_mult.cycles(length)
        return (
            self.bit_unshuffle.cycles(length, fl)
            + self.sign_restore.cycles(length)
            + self.prefix_sum.cycles(length)
            + self.dequant_mult.cycles(length)
        )

    def relay_block_cycles(self, words: int = BLOCK_SIZE) -> float:
        """Relay ``words`` wavelets through one PE (scales Eq. 2's C1)."""
        if words <= 0:
            raise ModelError("relay of a non-positive wavelet count")
        return self.c1_relay * (words / CALIBRATION_BLOCK)

    def forward_block_cycles(self, words: int = BLOCK_SIZE) -> float:
        """Forward an intermediate block to the next pipeline PE (C2)."""
        if words <= 0:
            raise ModelError("forward of a non-positive wavelet count")
        return self.c2_forward * (words / CALIBRATION_BLOCK)


#: The calibrated instance every component defaults to.
PAPER_CYCLE_MODEL = CycleModel()
