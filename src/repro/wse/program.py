"""Reusable CSL-style program patterns for the WSE simulator.

The paper's kernels are built from two communication idioms:

* the **point-to-point stream** of Fig 3/4 — a producer PE sends arrays
  east on a color, a consumer receives them with a read-task/compute-task
  pair whose completion colors re-arm each other;
* the **relay chain** of Fig 9 — every PE forwards a counted number of
  blocks to its east neighbors before consuming one itself.

:class:`Program` packages those idioms so simulator users (and tests) can
compose them without hand-wiring colors, routes, and task bindings each
time. It is a convenience layer only: everything it does can be written
against :class:`~repro.wse.fabric.Fabric` directly, exactly as
:mod:`repro.core.mapping` does for the full compressor.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.errors import RoutingError
from repro.wse.color import Color, ColorAllocator
from repro.wse.dsd import FabinDsd, FaboutDsd, Mem1dDsd
from repro.wse.engine import Engine
from repro.wse.fabric import Fabric
from repro.wse.pe import Task, TaskContext
from repro.wse.wavelet import Direction


class Program:
    """A fabric + engine pair with pattern helpers and one color space."""

    def __init__(self, rows: int, cols: int):
        self.fabric = Fabric(rows, cols)
        self.engine = Engine(self.fabric)
        self.colors = ColorAllocator()

    def run(self, **kwargs):
        return self.engine.run(**kwargs)

    # -- declarative mapping plans -------------------------------------------------

    def load_plan(self, plan, *, model=None):
        """Lower a :class:`~repro.core.plan.MappingPlan` onto this program.

        Colors come out of this program's shared allocator, so a loaded
        plan composes with pattern helpers used on the same fabric. Returns
        the :class:`~repro.core.lower.LoweredProgram` (plan, colors, live
        outputs, per-node counters).
        """
        from repro.core.lower import lower_plan
        from repro.wse.cost import PAPER_CYCLE_MODEL

        return lower_plan(
            plan,
            self.fabric,
            self.engine,
            model=PAPER_CYCLE_MODEL if model is None else model,
            colors=self.colors,
        )

    # -- Fig 3/4: point-to-point streaming ---------------------------------------

    def stream_eastward(
        self,
        row: int,
        col_from: int,
        col_to: int,
        *,
        extent: int,
        count: int,
        on_chunk: Callable[[TaskContext, int, np.ndarray], None],
        name: str = "stream",
    ) -> Color:
        """Deliver ``count`` chunks of ``extent`` elements to ``col_to``.

        Implements the Fig 4 read/compute color pair on the receiving PE:
        the ``read`` task posts an async receive whose completion activates
        ``compute``; ``compute`` calls ``on_chunk(ctx, index, data)`` and
        re-activates ``read`` until every chunk has arrived. Data is
        injected at ``col_from`` (the west edge / producer side) by the
        caller via :meth:`feed`.
        """
        if col_to <= col_from:
            raise RoutingError("stream_eastward requires col_to > col_from")
        data_color = self.colors.allocate(f"{name}_data")
        compute_color = self.colors.allocate(f"{name}_compute")
        if col_from == col_to - 1:
            self.fabric.set_route(
                row, col_to, data_color, Direction.WEST, Direction.RAMP
            )
            self.fabric.set_route(
                row, col_from, data_color, Direction.RAMP, Direction.EAST
            )
        else:
            self.fabric.route_row_segment(row, col_from, col_to, data_color)
        pe = self.fabric.pe(row, col_to)
        pe.alloc_buffer(f"{name}_in", np.zeros(extent, dtype=np.float64))
        progress = {"seen": 0}

        def read(ctx: TaskContext) -> None:
            ctx.mov32(
                Mem1dDsd(f"{name}_in"),
                FabinDsd(data_color, extent=extent),
                on_complete=compute_color,
            )

        def compute(ctx: TaskContext) -> None:
            index = progress["seen"]
            progress["seen"] += 1
            on_chunk(ctx, index, ctx.buffer(f"{name}_in").copy())
            if progress["seen"] < count:
                ctx.activate(data_color)
            else:
                ctx.halt()

        pe.bind_task(data_color, Task(f"{name}_read", read))
        pe.bind_task(compute_color, Task(f"{name}_compute", compute))
        if count:
            self.engine.schedule_activation(pe, data_color.id, 0.0)
        return data_color

    def feed(
        self, row: int, col: int, color: Color, chunks, *, start: float = 0.0
    ) -> None:
        """Emit a sequence of arrays from PE (row, col), serialized in time.

        If the source PE routes the color from its RAMP, chunks travel the
        fabric to the route's destination (the producer-PE model);
        otherwise they are edge-injected straight into the PE's inbox (the
        off-wafer feed model the relay chain uses at column 0).
        """
        pe = self.fabric.pe(row, col)
        via_route = pe.router.accepts(color.id, Direction.RAMP)
        t = start
        for chunk in chunks:
            arr = np.asarray(chunk)
            if via_route:
                self.engine.send_from(row, col, color, arr, at=t)
            else:
                self.engine.inject(row, col, color, arr, at=t)
            t += arr.size

    # -- Fig 9: counted relay chain -------------------------------------------------

    def relay_chain(
        self,
        row: int,
        *,
        extent: int,
        rounds: int,
        on_block: Callable[[TaskContext, int, int, np.ndarray], None],
        name: str = "relay",
    ) -> Color:
        """Every PE in the row consumes one block per round, east-first.

        ``on_block(ctx, col, round, data)`` fires on each PE for its own
        block. Returns the color to :meth:`feed` at column 0 — inject
        ``rounds * cols`` blocks, east-most PE's block first within each
        round, exactly like the paper's ``(TC - i)/pipeline_length``
        countdown.
        """
        cols = self.fabric.cols
        recv_colors = [
            self.colors.allocate(f"{name}{p}") for p in range(2)
        ]
        work_color = self.colors.allocate(f"{name}_work")

        for col in range(cols):
            recv = recv_colors[col % 2]
            send = recv_colors[(col + 1) % 2]
            self.fabric.set_route(row, col, recv, Direction.WEST, Direction.RAMP)
            if col + 1 < cols:
                self.fabric.set_route(
                    row, col, send, Direction.RAMP, Direction.EAST
                )

        for col in range(cols):
            pe = self.fabric.pe(row, col)
            recv = recv_colors[col % 2]
            send = recv_colors[(col + 1) % 2]
            pe.alloc_buffer(f"{name}_in", np.zeros(extent, dtype=np.float64))
            state = {"relayed": 0, "round": 0}

            def relay(
                ctx: TaskContext, recv=recv, send=send, state=state, col=col
            ) -> None:
                if state["relayed"] < cols - 1 - col:
                    ctx.mov32(
                        FaboutDsd(send, extent=extent),
                        FabinDsd(recv, extent=extent),
                        on_complete=recv,
                        relay=True,
                    )
                    state["relayed"] += 1
                else:
                    ctx.mov32(
                        Mem1dDsd(f"{name}_in"),
                        FabinDsd(recv, extent=extent),
                        on_complete=work_color,
                    )

            def work(
                ctx: TaskContext, recv=recv, state=state, col=col
            ) -> None:
                rnd = state["round"]
                state["round"] += 1
                state["relayed"] = 0
                on_block(ctx, col, rnd, ctx.buffer(f"{name}_in").copy())
                if state["round"] < rounds:
                    ctx.activate(recv)
                else:
                    ctx.halt()

            pe.bind_task(recv, Task(f"{name}_fwd", relay))
            pe.bind_task(work_color, Task(f"{name}_work", work))
            if rounds:
                self.engine.schedule_activation(pe, recv.id, 0.0)
        return recv_colors[0]
