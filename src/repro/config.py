"""Global constants describing the simulated Cerebras CS-2 system.

All hardware parameters come from the paper (Section 5.1.1):

* the wafer-scale engine exposes a 757 x 996 mesh of processing elements, of
  which 750 x 994 are usable for computation (the rest route data on/off);
* each PE owns 48 KB of SRAM and runs at 850 MHz;
* the fabric moves one 32-bit *wavelet* per hop per cycle;
* 24 logical channels ("colors") are available per PE;
* the minimum transfer granularity forces CereSZ to use a 32-bit (4-byte)
  per-block header, versus the 1-byte header of SZp/cuSZp.

Block-format constants live here too because both the core compressor and the
baselines share them.
"""

from __future__ import annotations

from dataclasses import dataclass

# --- Wafer geometry (paper 5.1.1) -------------------------------------------
WSE_TOTAL_ROWS: int = 757
WSE_TOTAL_COLS: int = 996
WSE_USABLE_ROWS: int = 750
WSE_USABLE_COLS: int = 994

# --- Per-PE resources --------------------------------------------------------
PE_SRAM_BYTES: int = 48 * 1024
PE_NUM_COLORS: int = 24
CLOCK_HZ: float = 850e6  # 850 MHz

# --- Fabric ------------------------------------------------------------------
WAVELET_BITS: int = 32
WAVELET_BYTES: int = 4
HOP_CYCLES: int = 1  # one wavelet moves one hop per clock cycle

# --- CereSZ block format (paper 3 and 5.1.1) ---------------------------------
BLOCK_SIZE: int = 32  # elements per block; divisible by 16 as required
ELEMENT_BYTES: int = 4  # single-precision floats
BLOCK_BYTES: int = BLOCK_SIZE * ELEMENT_BYTES  # 128 B of raw data per block

# CereSZ stores the per-block fixed-length in a full 32-bit word to respect
# the wafer's message granularity; SZp/cuSZp use a single byte. This is what
# caps the best-case ratio at 128/4 = 32x for CereSZ vs 128/1 = 128x for SZp
# (visible in the paper's Table 5 as 31.99 vs 127.94).
CERESZ_HEADER_BYTES: int = 4
SZP_HEADER_BYTES: int = 1
SIGN_BYTES_PER_BLOCK: int = BLOCK_SIZE // 8  # one sign bit per element

MAX_RATIO_CERESZ: float = BLOCK_BYTES / CERESZ_HEADER_BYTES  # 32.0
MAX_RATIO_SZP: float = BLOCK_BYTES / SZP_HEADER_BYTES  # 128.0


@dataclass(frozen=True)
class WaferConfig:
    """Geometry of a (sub-)mesh used for one run.

    The paper's headline configuration is 512 x 512 PEs with pipeline
    length 1; Fig 14 sweeps square meshes from 32x32 up to the full usable
    750 x 994 wafer.
    """

    rows: int = 512
    cols: int = 512
    clock_hz: float = CLOCK_HZ

    def __post_init__(self) -> None:
        if not (1 <= self.rows <= WSE_USABLE_ROWS):
            raise ValueError(
                f"rows must be in [1, {WSE_USABLE_ROWS}], got {self.rows}"
            )
        if not (1 <= self.cols <= WSE_USABLE_COLS):
            raise ValueError(
                f"cols must be in [1, {WSE_USABLE_COLS}], got {self.cols}"
            )
        if self.clock_hz <= 0:
            raise ValueError("clock_hz must be positive")

    @property
    def num_pes(self) -> int:
        return self.rows * self.cols

    @property
    def ingest_bandwidth_bytes_per_s(self) -> float:
        """Upper bound on data flowing onto the mesh from the west edge.

        One 4-byte wavelet per row per cycle.
        """
        return self.rows * WAVELET_BYTES * self.clock_hz


#: The configuration used for the headline throughput numbers (Figs 11-12).
DEFAULT_WAFER = WaferConfig(rows=512, cols=512)

#: The largest usable mesh (right-most point of Fig 14).
FULL_WAFER = WaferConfig(rows=WSE_USABLE_ROWS, cols=WSE_USABLE_COLS)
