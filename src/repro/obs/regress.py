"""The regression observatory: statistics and gating over ledger records.

:mod:`repro.obs.ledger` remembers what every run measured; this module
decides whether the newest numbers are *worse*. The old approach was
hand-tuned floor flags (``--min-fused-speedup 2.0``) — brittle on shared
CI runners and silent about everything without a flag. The observatory
replaces floors with **effect sizes against a named baseline**:

1. Group ledger records by config fingerprint, so only runs of the same
   resolved configuration are ever compared.
2. Summarize each metric's history with robust paired statistics:
   median, IQR, and a seeded-bootstrap 95 % confidence interval over the
   repeats (seeded so reports are reproducible).
3. Compare the newest run against a baseline — either the same
   fingerprint's prior ledger span, or a committed ``BENCH_*.json``
   headline file — and flag a regression only when the relative effect
   exceeds a **per-metric threshold**.

Thresholds are per-metric because metrics fail differently. Ratios and
makespan cycles are deterministic given the config: any drift beyond
float noise is a real change, so they gate tight
(:data:`DETERMINISTIC_THRESHOLD`). Wall-clock speedups and MB/s move
with machine load and, against committed full-run baselines, with the
``--quick`` problem size (measured: a quick host-throughput run scores
~50 % below the committed full run with zero code change), so they gate
loose against baseline files (:data:`TIMING_BASELINE_THRESHOLD`) and
moderately against same-fingerprint history
(:data:`TIMING_HISTORY_THRESHOLD`). Overhead fractions hover near zero
where relative effects explode, so they use an absolute tolerance
(:data:`OVERHEAD_ABS_TOL`).

``ceresz report`` renders the comparison; ``ceresz report --gate`` exits
nonzero on any flagged regression, which is the CI contract.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field

import numpy as np

from repro.errors import LedgerError
from repro.obs.ledger import Ledger, RunRecord, resolve_ledger

#: Relative drop that flags a deterministic metric (ratios, makespans).
#: Quick-vs-full problem sizes move ratios ≤15 %; 25 % clears that while
#: catching any real encoder/scheduler change.
DETERMINISTIC_THRESHOLD = 0.25

#: Relative drop that flags a timing metric against a committed
#: BENCH_*.json baseline. Loose because the baseline was measured on a
#: different machine at full problem size.
TIMING_BASELINE_THRESHOLD = 0.75

#: Relative drop that flags a timing metric against same-fingerprint
#: ledger history (same machine, same problem size — a 2× slowdown is a
#: −50 % effect and must trip this).
TIMING_HISTORY_THRESHOLD = 0.35

#: Absolute tolerance for overhead fractions (e.g. observability
#: overhead 0.014 → 0.09 is +0.076, fine; → 0.20 is +0.186, flagged).
OVERHEAD_ABS_TOL = 0.10

#: Bootstrap resamples for the confidence interval.
BOOTSTRAP_RESAMPLES = 1000


# ---------------------------------------------------------------------------
# Summary statistics


@dataclass(frozen=True)
class MetricSummary:
    """Robust summary of one metric's repeats."""

    n: int
    median: float
    iqr: float
    ci_low: float
    ci_high: float

    def to_dict(self) -> dict:
        return {
            "n": self.n,
            "median": self.median,
            "iqr": self.iqr,
            "ci_low": self.ci_low,
            "ci_high": self.ci_high,
        }


def summarize(samples, *, resamples: int = BOOTSTRAP_RESAMPLES) -> MetricSummary:
    """Median, IQR, and seeded-bootstrap 95 % CI of the median.

    The bootstrap is seeded so two reports over the same ledger print
    the same interval. With a single sample the interval collapses to
    the point — downstream comparison then relies on thresholds alone.
    """
    arr = np.asarray(list(samples), dtype=float)
    if arr.size == 0:
        raise ValueError("cannot summarize zero samples")
    median = float(np.median(arr))
    if arr.size == 1:
        return MetricSummary(1, median, 0.0, median, median)
    q1, q3 = np.percentile(arr, [25.0, 75.0])
    rng = np.random.default_rng(0)
    idx = rng.integers(0, arr.size, size=(resamples, arr.size))
    medians = np.median(arr[idx], axis=1)
    lo, hi = np.percentile(medians, [2.5, 97.5])
    return MetricSummary(int(arr.size), median, float(q3 - q1), float(lo), float(hi))


# ---------------------------------------------------------------------------
# Per-metric gate policy


@dataclass(frozen=True)
class MetricPolicy:
    """How one metric is judged: which direction is worse, and how much
    movement in that direction counts as a regression."""

    #: "higher" means larger values are better (speedups, ratios, MB/s);
    #: "lower" means smaller is better (seconds, cycles, overheads).
    direction: str
    #: "deterministic" | "timing" | "overhead" — selects thresholds.
    kind: str
    #: Relative-effect threshold vs a committed baseline file.
    baseline_threshold: float
    #: Relative-effect threshold vs same-fingerprint ledger history.
    history_threshold: float
    #: Absolute tolerance (overhead metrics only; None otherwise).
    abs_tol: float | None = None


_DETERMINISTIC = dict(
    baseline_threshold=DETERMINISTIC_THRESHOLD,
    history_threshold=DETERMINISTIC_THRESHOLD,
)
_TIMING = dict(
    baseline_threshold=TIMING_BASELINE_THRESHOLD,
    history_threshold=TIMING_HISTORY_THRESHOLD,
)


def metric_policy(name: str) -> MetricPolicy:
    """Classify a metric by its naming convention.

    The convention is a contract shared by the bench emitters and the
    baseline adapters (:func:`headline_values`): ``*_overhead`` and
    ``*_gap`` are near-zero fractions; ``*_s`` are wall seconds;
    ``*_cycles``/``*_bytes``/``*_events`` are deterministic counts;
    ``*_speedup``/``*_mbs``/``*_gbs`` are timing-derived and
    higher-better; anything containing ``ratio`` is a deterministic
    compression ratio. Unknown names default to higher-better timing —
    the loosest judgment, so a novel metric never fails CI spuriously.
    """
    leaf = name.rsplit(".", 1)[-1]
    if leaf.endswith("_overhead") or leaf.endswith("_gap"):
        return MetricPolicy(
            "lower", "overhead", abs_tol=OVERHEAD_ABS_TOL, **_TIMING
        )
    if leaf.endswith("_s"):
        return MetricPolicy("lower", "timing", **_TIMING)
    if leaf.endswith(("_cycles", "_bytes", "_events", "_blocks")):
        return MetricPolicy("lower", "deterministic", **_DETERMINISTIC)
    if leaf.endswith(("_speedup", "_mbs", "_gbs")):
        return MetricPolicy("higher", "timing", **_TIMING)
    if "ratio" in leaf:
        return MetricPolicy("higher", "deterministic", **_DETERMINISTIC)
    if leaf.endswith("_error"):
        return MetricPolicy("lower", "deterministic", **_DETERMINISTIC)
    return MetricPolicy("higher", "timing", **_TIMING)


# ---------------------------------------------------------------------------
# Headline adapters: bench payload / BENCH_*.json -> flat {metric: value}


def headline_values(payload: dict) -> dict:
    """Flatten a bench payload (or committed BENCH_*.json) to headline
    metrics, named under the convention :func:`metric_policy` reads.

    This one adapter serves both sides of every comparison: benches call
    it to fill their RunRecord ``values``, and the gate calls it to load
    a committed baseline — so names match by construction.
    """
    bench = payload.get("benchmark")
    if bench == "host_throughput":
        return _headline_host_throughput(payload)
    if bench == "sim_speed":
        return _headline_sim_speed(payload)
    if bench == "rate_distortion_predictors":
        return _headline_rate_distortion(payload)
    if bench == "observations":
        return _headline_observations(payload)
    # A RunRecord dict, or an unknown payload carrying explicit values.
    values = payload.get("values")
    if isinstance(values, dict):
        return {k: float(v) for k, v in values.items()}
    raise LedgerError(
        f"cannot extract headline values: unknown payload "
        f"benchmark={bench!r}"
    )


def _headline_host_throughput(payload: dict) -> dict:
    out = {}
    for profile, summary in payload.get("profiles", {}).items():
        for key in (
            "v2_over_v1_decode_speedup",
            "fused_compress_speedup",
            "fused_decompress_speedup",
        ):
            if key in summary:
                out[f"{profile}.{key}"] = float(summary[key])
        for case in summary.get("cases", []):
            out[f"{profile}.{case['name']}.ratio"] = float(case["ratio"])
    return out


def _headline_sim_speed(payload: dict) -> dict:
    out = {}
    for key in ("fig7_rows_speedup", "max_obs_overhead"):
        if payload.get(key) is not None:
            out[key] = float(payload[key])
    for cfg in payload.get("configs", []):
        tag = f"{cfg['strategy']}{cfg['rows']}x{cfg['cols']}"
        out[f"{tag}.makespan_cycles"] = float(
            cfg["optimized"]["makespan_cycles"]
        )
        out[f"{tag}.sim_speedup"] = float(cfg["speedup_optimized"])
    for cfg in payload.get("hybrid_configs", []):
        tag = f"{cfg['strategy']}{cfg['rows']}x{cfg['cols']}"
        out[f"{tag}.hybrid_speedup"] = float(cfg["speedup_hybrid"])
        out[f"{tag}.hybrid_makespan_cycles"] = float(cfg["makespan_cycles"])
    wafer = payload.get("wafer")
    if wafer:
        out["wafer.wall_s"] = float(wafer["wall_s"])
        out["wafer.makespan_cycles"] = float(wafer["makespan_cycles"])
    return out


def _headline_rate_distortion(payload: dict) -> dict:
    out = {}
    for row in payload.get("rows", []):
        tag = f"{row['field']}.{row['predictor']}.eps{row['eps']:g}"
        out[f"{tag}.ratio"] = float(row["ratio"])
    return out


def _headline_observations(payload: dict) -> dict:
    out = {}
    for verdict in payload.get("verdicts", []):
        out[f"obs{verdict['observation']}.holds_ratio"] = float(
            bool(verdict["holds"])
        )
    return out


def load_baseline(path: str | os.PathLike) -> dict:
    """Headline metrics from a committed BENCH_*.json (or RunRecord JSON)."""
    with open(path, encoding="utf-8") as fh:
        try:
            payload = json.load(fh)
        except json.JSONDecodeError as exc:
            raise LedgerError(f"{path}: not valid JSON: {exc}") from exc
    try:
        return headline_values(payload)
    except LedgerError as exc:
        raise LedgerError(f"{path}: {exc}") from None


# ---------------------------------------------------------------------------
# Comparison & gate


@dataclass(frozen=True)
class Finding:
    """One metric's verdict in a comparison."""

    metric: str
    current: float
    reference: float
    #: Signed relative effect, positive = improved, negative = worse
    #: (already direction-adjusted; None when reference is ~0 and the
    #: metric was judged on absolute tolerance).
    effect: float | None
    threshold: float
    regressed: bool
    policy: MetricPolicy
    #: Summary over history repeats, when history mode supplied them.
    summary: MetricSummary | None = None


@dataclass
class Comparison:
    """All findings for one (group, baseline) comparison."""

    name: str
    mode: str  # "baseline-file" | "ledger-history"
    findings: list[Finding] = field(default_factory=list)

    @property
    def regressions(self) -> list[Finding]:
        return [f for f in self.findings if f.regressed]

    @property
    def ok(self) -> bool:
        return not self.regressions


def _judge(
    metric: str,
    current: float,
    reference: float,
    *,
    history: bool,
    summary: MetricSummary | None = None,
) -> Finding:
    policy = metric_policy(metric)
    threshold = (
        policy.history_threshold if history else policy.baseline_threshold
    )
    # Overhead-style metrics live near zero: relative effects divide by
    # ~0 and explode, so judge them on absolute movement toward "worse".
    if policy.abs_tol is not None:
        worse_by = (
            current - reference
            if policy.direction == "lower"
            else reference - current
        )
        return Finding(
            metric=metric,
            current=current,
            reference=reference,
            effect=None,
            threshold=policy.abs_tol,
            regressed=worse_by > policy.abs_tol,
            policy=policy,
            summary=summary,
        )
    if reference == 0:
        # Degenerate reference with no abs_tol policy: only an exact
        # match passes a deterministic metric; timing gets a pass.
        regressed = policy.kind == "deterministic" and current != reference
        return Finding(
            metric=metric,
            current=current,
            reference=reference,
            effect=None,
            threshold=threshold,
            regressed=regressed,
            policy=policy,
            summary=summary,
        )
    rel = (current - reference) / abs(reference)
    effect = rel if policy.direction == "higher" else -rel
    return Finding(
        metric=metric,
        current=current,
        reference=reference,
        effect=effect,
        threshold=threshold,
        regressed=effect < -threshold,
        policy=policy,
        summary=summary,
    )


def compare_to_baseline(
    current: dict, baseline: dict, *, name: str = "baseline"
) -> Comparison:
    """Judge the newest run's headline values against a baseline file's.

    Only metrics present on both sides are judged: a quick run measures
    a subset of the committed full run, and new metrics have no history.
    """
    comp = Comparison(name=name, mode="baseline-file")
    for metric in sorted(set(current) & set(baseline)):
        comp.findings.append(
            _judge(
                metric,
                float(current[metric]),
                float(baseline[metric]),
                history=False,
            )
        )
    return comp


def compare_to_history(
    group: list[RunRecord], *, name: str = "history"
) -> Comparison:
    """Judge a fingerprint group's newest record against its own past.

    The reference for each metric is the median of all *prior* records
    in the group (append order), summarized with bootstrap CI so the
    report can show spread, not just a point.
    """
    if len(group) < 2:
        raise ValueError(
            "history comparison needs >= 2 records with the same fingerprint"
        )
    newest = group[-1]
    prior = group[:-1]
    comp = Comparison(name=name, mode="ledger-history")
    for metric in sorted(newest.values):
        samples = [
            float(r.values[metric]) for r in prior if metric in r.values
        ]
        if not samples:
            continue
        summary = summarize(samples)
        comp.findings.append(
            _judge(
                metric,
                float(newest.values[metric]),
                summary.median,
                history=True,
                summary=summary,
            )
        )
    return comp


def group_by_fingerprint(records: list[RunRecord]) -> dict:
    """Ledger records bucketed by config fingerprint, append order kept."""
    groups: dict[str, list[RunRecord]] = {}
    for record in records:
        groups.setdefault(record.fingerprint, []).append(record)
    return groups


# ---------------------------------------------------------------------------
# Report rendering


def _fmt(value: float) -> str:
    return f"{value:.6g}"


def render_comparison(comp: Comparison, *, verbose: bool = False) -> str:
    """Human-readable comparison table (one metric per line)."""
    lines = [f"== {comp.name} ({comp.mode})"]
    for f in comp.findings:
        if f.effect is None:
            move = f"abs Δ={_fmt(f.current - f.reference)} (tol {_fmt(f.threshold)})"
        else:
            move = f"effect={f.effect:+.1%} (threshold -{f.threshold:.0%})"
        status = "REGRESSED" if f.regressed else "ok"
        extra = ""
        if f.summary is not None and f.summary.n > 1:
            extra = (
                f" [n={f.summary.n} IQR={_fmt(f.summary.iqr)}"
                f" CI {_fmt(f.summary.ci_low)}..{_fmt(f.summary.ci_high)}]"
            )
        if verbose or f.regressed:
            lines.append(
                f"  {status:9s} {f.metric}: {_fmt(f.current)} vs "
                f"{_fmt(f.reference)} {move}{extra}"
            )
    n_reg = len(comp.regressions)
    lines.append(
        f"  {len(comp.findings)} metric(s) compared, {n_reg} regression(s)"
    )
    return "\n".join(lines)


def run_report(
    ledger,
    *,
    baselines: list[str] | None = None,
    kind: str | None = None,
    verbose: bool = False,
) -> tuple[str, bool]:
    """The full ``ceresz report`` body: (text, ok).

    For every committed baseline file given, the newest matching bench
    record in the ledger is compared against it. Independently, every
    fingerprint group with >= 2 records compares its newest record to
    its own history. ``ok`` is False when any comparison regressed.
    """
    led = resolve_ledger(ledger if ledger is not None else True)
    records = led.records()
    if kind is not None:
        records = [r for r in records if r.kind == kind]
    if not records:
        return (f"ledger {led.path}: no records", True)

    chunks = [f"ledger {led.path}: {len(records)} record(s)"]
    ok = True

    for path in baselines or []:
        base = load_baseline(path)
        bench_name = None
        try:
            with open(path, encoding="utf-8") as fh:
                bench_name = json.load(fh).get("benchmark")
        except (OSError, json.JSONDecodeError):
            pass
        candidates = [
            r
            for r in records
            if bench_name is None or r.name == bench_name
        ]
        if not candidates:
            chunks.append(
                f"== {os.path.basename(path)}: no matching ledger record "
                f"(benchmark={bench_name!r})"
            )
            continue
        newest = candidates[-1]
        comp = compare_to_baseline(
            newest.values, base, name=os.path.basename(path)
        )
        ok = ok and comp.ok
        chunks.append(render_comparison(comp, verbose=verbose))

    for fingerprint, group in group_by_fingerprint(records).items():
        if len(group) < 2 or not group[-1].values:
            continue
        comp = compare_to_history(
            group, name=f"{group[-1].name} @{fingerprint[:12]}"
        )
        if not comp.findings:
            continue
        ok = ok and comp.ok
        chunks.append(render_comparison(comp, verbose=verbose))

    chunks.append("gate: PASS" if ok else "gate: FAIL")
    return ("\n".join(chunks), ok)
