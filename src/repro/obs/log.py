"""Structured logging and live progress for benches, CLI, and long runs.

Benches and the CLI historically reported status with bare ``print``
calls — fine for a human, useless for the run ledger's consumers (CI log
scrapers, the regression observatory, anyone grepping a 400-line bench
log for "which JSON did this run write"). This module replaces those
prints with leveled, machine-parseable ``key=value`` lines::

    ts=1754649600.123 level=info logger=bench.host event=wrote path=BENCH_host_throughput.json

Two deliberate non-goals keep it small: no handlers/formatters hierarchy
(one stream, one format) and no integration with :mod:`logging` (the
stdlib module's per-call overhead and global config are exactly what the
<1 % observability budget forbids on hot paths — these loggers are for
*reporting* paths only).

Parsing contract: one record per line; fields are space-separated
``key=value`` tokens; values containing whitespace, ``"``, or ``=`` are
JSON-quoted, so ``shlex.split`` or a ``key=("[^"]*"|\\S+)`` regex
recovers them. ``ts``/``level``/``logger``/``event`` always lead, in
that order.

:class:`ProgressReporter` builds on the same format: a rate-limited
rows-done/ETA line for long hybrid-wafer runs (750-row compositions take
tens of seconds), driven from the simulator's composition loops. It is
**off by default** everywhere — ``ceresz sim --progress`` opts in.
"""

from __future__ import annotations

import json
import os
import sys
import time

#: Severity order; a logger emits records at or above its level.
LOG_LEVELS = ("debug", "info", "warn", "error")

_LEVEL_RANK = {name: i for i, name in enumerate(LOG_LEVELS)}

#: Environment override for the default level of every new logger.
LEVEL_ENV = "CERESZ_LOG_LEVEL"


def _needs_quoting(text: str) -> bool:
    if text == "":
        return True
    return any(ch.isspace() or ch in '"=' for ch in text)


def format_value(value) -> str:
    """One ``key=value`` token's value: compact, unambiguous, parseable."""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        return f"{value:.6g}"
    if isinstance(value, int):
        return str(value)
    text = str(value)
    if _needs_quoting(text):
        return json.dumps(text)
    return text


def format_record(level: str, logger: str, event: str, fields: dict) -> str:
    """The full log line (no trailing newline)."""
    parts = [
        f"ts={time.time():.3f}",
        f"level={level}",
        f"logger={format_value(logger)}",
        f"event={format_value(event)}",
    ]
    parts.extend(f"{key}={format_value(val)}" for key, val in fields.items())
    return " ".join(parts)


class StructLogger:
    """Leveled ``key=value`` line logger bound to one name and stream."""

    def __init__(
        self,
        name: str,
        *,
        level: str | None = None,
        stream=None,
    ):
        if level is None:
            level = os.environ.get(LEVEL_ENV, "info")
        if level not in _LEVEL_RANK:
            raise ValueError(
                f"log level must be one of {LOG_LEVELS}, got {level!r}"
            )
        self.name = name
        self.level = level
        self._rank = _LEVEL_RANK[level]
        #: Resolved lazily so pytest's capsys / CLI redirections see the
        #: stream that is current at emit time, not at construction.
        self._stream = stream

    def log(self, level: str, event: str, **fields) -> None:
        rank = _LEVEL_RANK.get(level)
        if rank is None:
            raise ValueError(
                f"log level must be one of {LOG_LEVELS}, got {level!r}"
            )
        if rank < self._rank:
            return
        stream = self._stream if self._stream is not None else sys.stderr
        print(format_record(level, self.name, event, fields), file=stream)

    def debug(self, event: str, **fields) -> None:
        self.log("debug", event, **fields)

    def info(self, event: str, **fields) -> None:
        self.log("info", event, **fields)

    def warn(self, event: str, **fields) -> None:
        self.log("warn", event, **fields)

    def error(self, event: str, **fields) -> None:
        self.log("error", event, **fields)


_LOGGERS: dict[str, StructLogger] = {}


def get_logger(name: str) -> StructLogger:
    """The process-wide logger for ``name`` (created on first use)."""
    logger = _LOGGERS.get(name)
    if logger is None:
        logger = _LOGGERS[name] = StructLogger(name)
    return logger


class ProgressReporter:
    """Rate-limited rows-done/ETA lines for long composition loops.

    The simulator's hybrid/replicated paths call :meth:`update` once per
    composed row; this class turns that firehose into one ``event=progress``
    line every ``interval_s`` seconds (plus a final line at completion)
    with percent done, instantaneous rate, and a linear-extrapolation ETA.
    A ``None`` reporter is the off switch — call sites guard with
    ``if progress is not None``, so the default-off cost is one branch.
    """

    def __init__(
        self,
        total: int,
        *,
        label: str = "rows",
        interval_s: float = 2.0,
        logger: StructLogger | None = None,
        clock=time.perf_counter,
    ):
        if total < 1:
            raise ValueError(f"progress total must be >= 1, got {total}")
        self.total = int(total)
        self.label = label
        self.interval_s = float(interval_s)
        self._logger = logger if logger is not None else get_logger("progress")
        self._clock = clock
        self._start = clock()
        self._last_emit = -float("inf")
        self.emitted = 0

    def update(self, done: int, **fields) -> None:
        now = self._clock()
        final = done >= self.total
        if not final and now - self._last_emit < self.interval_s:
            return
        self._last_emit = now
        elapsed = now - self._start
        rate = done / elapsed if elapsed > 0 else 0.0
        eta = (self.total - done) / rate if rate > 0 else 0.0
        self.emitted += 1
        self._logger.info(
            "progress",
            label=self.label,
            done=int(done),
            total=self.total,
            pct=100.0 * done / self.total,
            elapsed_s=elapsed,
            eta_s=eta,
            **fields,
        )
