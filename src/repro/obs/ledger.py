"""The run ledger: provenance-stamped records of every measured run.

Per-run tracing and metrics (:mod:`repro.obs.tracing`,
:mod:`repro.obs.metrics`) answer "what happened inside this run"; nothing
answered "how does this run compare to last Tuesday's, and was it even
the same code?". Every benchmark overwrote its predecessor's JSON and
regressions were caught only by hand-tuned floor flags. The ledger is the
memory across runs: an append-only JSON-lines file where each line is one
:class:`RunRecord` —

* a **config fingerprint**: blake2b over the resolved knobs (predictor,
  eps, block size, strategy, mode, jobs, fast path, ...), so runs group
  by what was actually executed, not by how the caller spelled it;
* an **environment capture**: git SHA, python/numpy versions, CPU count,
  hostname, platform — which code and which machine produced the number;
* the full **MetricsRegistry snapshot** when one was collected;
* **timings** (wall seconds, simulated makespan cycles) and named scalar
  **values** (ratios, speedups, throughputs) — the regression engine's
  raw material;
* **artifact pointers** (trace JSON paths, bench result files).

Emission is strictly opt-in: every integration point takes
``ledger=None`` and the entire feature costs one ``is None`` test when
off. Pass a path, a :class:`Ledger`, or ``True`` (the default
``.ceresz/ledger.jsonl``, overridable via ``CERESZ_LEDGER``).

The file format is one compact JSON object per line, each carrying
``schema``; :meth:`Ledger.records` refuses records from a *newer* schema
(forward-incompatible) and malformed lines, naming the line number.
:mod:`repro.obs.regress` consumes these records to compute cross-run
statistics and the CI gate.
"""

from __future__ import annotations

import functools
import hashlib
import json
import os
import platform
import socket
import subprocess
import sys
import time
from dataclasses import asdict, dataclass, field

from repro.errors import LedgerError

#: Version of the RunRecord schema this module writes. Bump on any change
#: that an old reader would misinterpret; readers accept same-or-older.
SCHEMA_VERSION = 1

#: Default ledger location (relative to the working directory), and the
#: environment variable that overrides it.
DEFAULT_LEDGER_PATH = os.path.join(".ceresz", "ledger.jsonl")
LEDGER_ENV = "CERESZ_LEDGER"

#: Record kinds the emitters use. Free-form strings are accepted (the
#: ledger is a substrate, not a registry), but sticking to these keeps
#: ``ceresz report`` groupings meaningful.
RECORD_KINDS = ("compress", "decompress", "sim", "bench")


def canonical_json(obj) -> str:
    """Deterministic serialization: sorted keys, no whitespace.

    The fingerprint hashes this, so two configs that differ only in key
    order or float spelling (``1e-3`` vs ``0.001`` parse to the same
    float) fingerprint identically.
    """
    return json.dumps(
        obj, sort_keys=True, separators=(",", ":"), default=str
    )


def config_fingerprint(config: dict) -> str:
    """blake2b (128-bit, hex) over the canonical form of ``config``."""
    digest = hashlib.blake2b(
        canonical_json(config).encode("utf-8"), digest_size=16
    )
    return digest.hexdigest()


@functools.lru_cache(maxsize=1)
def _git_sha() -> str:
    """HEAD commit of the working directory's repo, or ``unknown``.

    Cached for the process lifetime: the SHA cannot change under a
    running process that matters here, and ledger emission must not pay
    a subprocess per record.
    """
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


@functools.lru_cache(maxsize=1)
def capture_environment() -> dict:
    """Who/what produced this record: code version, interpreter, machine."""
    import numpy

    return {
        "git_sha": _git_sha(),
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "platform": sys.platform,
        "machine": platform.machine(),
        "cpu_count": os.cpu_count() or 1,
        "hostname": socket.gethostname(),
    }


@dataclass(frozen=True)
class RunRecord:
    """One ledger line: a provenance-stamped measurement of one run."""

    kind: str
    name: str
    config: dict
    fingerprint: str
    env: dict
    timings: dict = field(default_factory=dict)
    values: dict = field(default_factory=dict)
    metrics: dict | None = None
    artifacts: dict = field(default_factory=dict)
    timestamp: float = 0.0
    schema: int = SCHEMA_VERSION

    def to_dict(self) -> dict:
        return asdict(self)

    def to_json(self) -> str:
        return json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )

    @classmethod
    def from_dict(cls, data: dict) -> "RunRecord":
        """Rebuild a record, enforcing the schema-version contract."""
        if not isinstance(data, dict):
            raise LedgerError(f"ledger record is not an object: {data!r}")
        schema = data.get("schema")
        if not isinstance(schema, int):
            raise LedgerError(
                "ledger record carries no integer 'schema' field"
            )
        if schema > SCHEMA_VERSION:
            raise LedgerError(
                f"ledger record has schema {schema}, newer than this "
                f"reader's {SCHEMA_VERSION}; upgrade to read it"
            )
        known = {
            "kind", "name", "config", "fingerprint", "env", "timings",
            "values", "metrics", "artifacts", "timestamp", "schema",
        }
        missing = {"kind", "name", "config", "fingerprint", "env"} - set(data)
        if missing:
            raise LedgerError(
                f"ledger record missing field(s) {sorted(missing)}"
            )
        return cls(**{k: v for k, v in data.items() if k in known})

    @classmethod
    def from_json(cls, line: str) -> "RunRecord":
        try:
            data = json.loads(line)
        except json.JSONDecodeError as exc:
            raise LedgerError(f"malformed ledger line: {exc}") from exc
        return cls.from_dict(data)


def make_record(
    kind: str,
    name: str,
    config: dict,
    *,
    timings: dict | None = None,
    values: dict | None = None,
    metrics=None,
    artifacts: dict | None = None,
    env: dict | None = None,
    timestamp: float | None = None,
) -> RunRecord:
    """Assemble a :class:`RunRecord` with fingerprint and environment.

    ``metrics`` accepts a raw snapshot dict or anything with a
    ``snapshot()`` method (a ``MetricsRegistry``). ``env``/``timestamp``
    overrides exist for tests that need byte-stable records.
    """
    if metrics is not None and hasattr(metrics, "snapshot"):
        metrics = metrics.snapshot()
    return RunRecord(
        kind=kind,
        name=name,
        config=dict(config),
        fingerprint=config_fingerprint(config),
        env=dict(capture_environment()) if env is None else dict(env),
        timings=dict(timings or {}),
        values=dict(values or {}),
        metrics=metrics,
        artifacts=dict(artifacts or {}),
        timestamp=time.time() if timestamp is None else float(timestamp),
    )


class Ledger:
    """Append-only JSON-lines store of :class:`RunRecord` rows."""

    def __init__(self, path: str | os.PathLike | None = None):
        if path is None:
            path = os.environ.get(LEDGER_ENV) or DEFAULT_LEDGER_PATH
        self.path = os.fspath(path)

    def append(self, record: RunRecord) -> RunRecord:
        """Write one record as one line (creating parent dirs as needed)."""
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(record.to_json())
            fh.write("\n")
        return record

    def records(self) -> list[RunRecord]:
        """All records, in append order; raises on schema/parse trouble."""
        if not os.path.exists(self.path):
            return []
        out: list[RunRecord] = []
        with open(self.path, encoding="utf-8") as fh:
            for lineno, line in enumerate(fh, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    out.append(RunRecord.from_json(line))
                except LedgerError as exc:
                    raise LedgerError(
                        f"{self.path}:{lineno}: {exc}"
                    ) from None
        return out

    def __len__(self) -> int:
        return len(self.records())


def resolve_ledger(ledger) -> Ledger | None:
    """Normalize the ``ledger=`` argument every emitter accepts.

    ``None``/``False`` disable emission; ``True`` selects the default
    path; a string/path opens that file; a :class:`Ledger` passes
    through. This is the only call on the ``ledger=None`` hot path, and
    it is a single ``is None`` test there.
    """
    if ledger is None or ledger is False:
        return None
    if isinstance(ledger, Ledger):
        return ledger
    if ledger is True:
        return Ledger()
    return Ledger(ledger)


def emit(
    ledger,
    kind: str,
    name: str,
    config: dict,
    *,
    timings: dict | None = None,
    values: dict | None = None,
    metrics=None,
    artifacts: dict | None = None,
) -> RunRecord | None:
    """Build and append one record, or do nothing when ``ledger`` is off."""
    led = resolve_ledger(ledger)
    if led is None:
        return None
    record = make_record(
        kind,
        name,
        config,
        timings=timings,
        values=values,
        metrics=metrics,
        artifacts=artifacts,
    )
    return led.append(record)
