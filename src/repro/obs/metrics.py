"""Named counters, gauges, and histograms with labels.

One registry per run replaces the scattered integer attributes the
simulator grew organically (``Fabric.route_cache_hits``,
``Engine.events_processed``, per-``NodeCounters`` ints): every number a
run produces is published here under a stable name, with labels for the
dimensions that matter (``sim.cycles{step=encode}``), and every exporter
and CLI report reads from the same snapshot.

Overhead budget: the simulator's hot loops keep their raw integer cells
(an attribute increment is the cheapest thing Python can do); the
registry is populated once per run by the ``collect_*`` functions below.
That is what keeps ``trace_level="off"`` runs within the <5 % wall-time
budget while still giving every run a complete metrics snapshot.

Merge policy (row-parallel workers return snapshots, the parent folds
them in):

* **counters sum** — partition work is disjoint by row, so sums over
  partitions equal the serial run's totals exactly;
* **gauges take the max** — high-water marks (queue depth, inbox depth);
  per-PE marks are identical to serial, but the *event-queue* depth is a
  genuinely concurrent quantity and is documented as such;
* **histograms add bucket counts** and combine min/max.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

_NO_LABELS = ""


def _label_key(labels: dict) -> str:
    if not labels:
        return _NO_LABELS
    return ",".join(f"{k}={labels[k]}" for k in sorted(labels))


@dataclass
class Counter:
    """Monotonically increasing value, one cell per label set."""

    name: str
    help: str = ""
    values: dict[str, float] = field(default_factory=dict)
    kind: str = "counter"

    def inc(self, amount: float = 1, **labels) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        key = _label_key(labels)
        self.values[key] = self.values.get(key, 0) + amount

    def value(self, **labels) -> float:
        return self.values.get(_label_key(labels), 0)

    def total(self) -> float:
        return sum(self.values.values())


@dataclass
class Gauge:
    """Point-in-time value, one cell per label set."""

    name: str
    help: str = ""
    values: dict[str, float] = field(default_factory=dict)
    kind: str = "gauge"

    def set(self, value: float, **labels) -> None:
        self.values[_label_key(labels)] = value

    def set_max(self, value: float, **labels) -> None:
        """Keep the running maximum (high-water-mark gauges)."""
        key = _label_key(labels)
        if value > self.values.get(key, -math.inf):
            self.values[key] = value

    def value(self, **labels) -> float:
        return self.values.get(_label_key(labels), 0)


#: Default histogram bucket upper bounds: powers of 4 cover cycle counts
#: from single-task to whole-run magnitudes in 12 buckets.
DEFAULT_BUCKETS = tuple(float(4**k) for k in range(1, 13))


@dataclass
class Histogram:
    """Cumulative-bucket histogram, one cell set per label set."""

    name: str
    help: str = ""
    buckets: tuple[float, ...] = DEFAULT_BUCKETS
    values: dict[str, dict] = field(default_factory=dict)
    kind: str = "histogram"

    def _cell(self, key: str) -> dict:
        cell = self.values.get(key)
        if cell is None:
            cell = self.values[key] = {
                "count": 0,
                "sum": 0.0,
                "min": math.inf,
                "max": -math.inf,
                "bucket_counts": [0] * (len(self.buckets) + 1),
            }
        return cell

    def observe(self, value: float, **labels) -> None:
        cell = self._cell(_label_key(labels))
        cell["count"] += 1
        cell["sum"] += value
        cell["min"] = min(cell["min"], value)
        cell["max"] = max(cell["max"], value)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                cell["bucket_counts"][i] += 1
                return
        cell["bucket_counts"][-1] += 1  # overflow bucket

    def cell(self, **labels) -> dict | None:
        return self.values.get(_label_key(labels))


class MetricsRegistry:
    """Get-or-create registry of named metrics; snapshot/merge/render."""

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, cls, name: str, help_: str, **kwargs):
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = cls(name=name, help=help_, **kwargs)
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as {metric.kind}"
            )
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get(Gauge, name, help)

    def histogram(
        self, name: str, help: str = "", buckets: tuple[float, ...] | None = None
    ) -> Histogram:
        if buckets is not None:
            return self._get(Histogram, name, help, buckets=buckets)
        return self._get(Histogram, name, help)

    def __iter__(self):
        for name in sorted(self._metrics):
            yield self._metrics[name]

    def __len__(self) -> int:
        return len(self._metrics)

    def get(self, name: str) -> Counter | Gauge | Histogram | None:
        return self._metrics.get(name)

    # -- snapshot / merge ------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-able state: ``{name: {kind, help, values, [buckets]}}``."""
        out: dict = {}
        for metric in self:
            entry = {
                "kind": metric.kind,
                "help": metric.help,
                "values": {
                    k: (dict(v) if isinstance(v, dict) else v)
                    for k, v in metric.values.items()
                },
            }
            if isinstance(metric, Histogram):
                entry["buckets"] = list(metric.buckets)
            out[metric.name] = entry
        return out

    def merge(self, snapshot: dict) -> None:
        """Fold a worker's :meth:`snapshot` in (see the merge policy above)."""
        for name, entry in snapshot.items():
            kind = entry["kind"]
            if kind == "counter":
                counter = self.counter(name, entry.get("help", ""))
                for key, value in entry["values"].items():
                    counter.values[key] = counter.values.get(key, 0) + value
            elif kind == "gauge":
                gauge = self.gauge(name, entry.get("help", ""))
                for key, value in entry["values"].items():
                    if value > gauge.values.get(key, -math.inf):
                        gauge.values[key] = value
            elif kind == "histogram":
                hist = self.histogram(
                    name,
                    entry.get("help", ""),
                    buckets=tuple(entry["buckets"]),
                )
                if list(hist.buckets) != list(entry["buckets"]):
                    raise ValueError(
                        f"histogram {name!r} bucket bounds disagree"
                    )
                for key, other in entry["values"].items():
                    cell = hist._cell(key)
                    cell["count"] += other["count"]
                    cell["sum"] += other["sum"]
                    cell["min"] = min(cell["min"], other["min"])
                    cell["max"] = max(cell["max"], other["max"])
                    cell["bucket_counts"] = [
                        a + b
                        for a, b in zip(
                            cell["bucket_counts"], other["bucket_counts"]
                        )
                    ]
            else:
                raise ValueError(f"unknown metric kind {kind!r}")

    def merge_scaled(self, snapshot: dict, factor: int) -> None:
        """Fold ``factor`` identical copies of a worker snapshot in.

        Used by hybrid (replicated-row) simulation: a representative
        partition's counters and histogram populations occur once per
        member row, so they scale linearly with the class size; gauges are
        per-run maxima and identical across copies, so they merge
        unscaled. Equivalent to calling :meth:`merge` ``factor`` times.
        """
        self.merge(scale_snapshot(snapshot, factor))

    def counter_totals(self) -> dict[str, float]:
        """``{name: summed value}`` over counters only — the exactly
        merge-invariant subset (used by the parallel-equivalence tests)."""
        return {
            m.name: m.total() for m in self if isinstance(m, Counter)
        }

    # -- reporting -------------------------------------------------------------

    def render(self) -> str:
        """Human-readable dump, one line per metric cell."""
        lines: list[str] = []
        for metric in self:
            for key in sorted(metric.values):
                cell = metric.values[key]
                label = f"{{{key}}}" if key else ""
                if isinstance(metric, Histogram):
                    lines.append(
                        f"{metric.name}{label}: count {cell['count']}, "
                        f"sum {cell['sum']:g}, min {cell['min']:g}, "
                        f"max {cell['max']:g}"
                    )
                else:
                    lines.append(f"{metric.name}{label}: {cell:g}")
        return "\n".join(lines)


def scale_snapshot(snapshot: dict, factor: int) -> dict:
    """A snapshot equal to merging ``factor`` copies of ``snapshot``.

    Counters and histogram populations (count, sum, per-bucket counts)
    scale by ``factor``; gauges and histogram min/max are maxima/extrema
    and are invariant under replication. The input is not mutated.
    """
    if factor < 1:
        raise ValueError(f"scale factor must be >= 1, got {factor}")
    out: dict = {}
    for name, entry in snapshot.items():
        kind = entry["kind"]
        scaled = dict(entry)
        if kind == "counter":
            scaled["values"] = {
                key: value * factor for key, value in entry["values"].items()
            }
        elif kind == "gauge":
            scaled["values"] = dict(entry["values"])
        elif kind == "histogram":
            cells: dict = {}
            for key, cell in entry["values"].items():
                copy = dict(cell)
                copy["count"] = cell["count"] * factor
                copy["sum"] = cell["sum"] * factor
                copy["bucket_counts"] = [
                    b * factor for b in cell["bucket_counts"]
                ]
                cells[key] = copy
            scaled["values"] = cells
        else:
            raise ValueError(f"unknown metric kind {kind!r}")
        out[name] = scaled
    return out


# -- run collectors ------------------------------------------------------------
#
# The simulator's hot paths keep raw integer cells; these publish them into
# a registry once per run. Split three ways because the row-parallel path
# collects fabric/engine metrics inside each worker (each worker owns its
# fabric and engine) but trace metrics once, from the exactly-merged
# recorder, in the parent.


def collect_fabric_metrics(registry: MetricsRegistry, fabric) -> None:
    """Route-cache counters and PE inbox high-water marks."""
    cache = registry.counter(
        "sim.route_cache", "Fabric.resolve route-memo outcomes"
    )
    cache.inc(fabric.route_cache_hits, outcome="hit")
    cache.inc(fabric.route_cache_misses, outcome="miss")
    registry.counter(
        "sim.route_cache.entries", "memoized (PE, color, entering) routes"
    ).inc(fabric.route_cache_size)
    inbox = registry.gauge(
        "sim.pe.inbox_depth.max", "deepest per-color inbox backlog on any PE"
    )
    inbox.set_max(max((pe.max_inbox_depth for pe in fabric), default=0))


def collect_engine_metrics(registry: MetricsRegistry, engine) -> None:
    """Event counts and event-queue depth."""
    registry.counter(
        "sim.engine.events", "discrete events processed"
    ).inc(engine.events_processed)
    registry.gauge(
        "sim.engine.queue_depth.max",
        "deepest event heap (concurrency-dependent: serial and partitioned "
        "runs interleave rows differently)",
    ).set_max(engine.max_queue_depth)


def collect_trace_metrics(registry: MetricsRegistry, trace) -> None:
    """Cycle totals, per-step breakdowns, and per-PE busy histogram."""
    registry.counter("sim.pe.compute_cycles", "busy compute cycles").inc(
        sum(t.compute_cycles for t in trace.traces)
    )
    registry.counter("sim.pe.relay_cycles", "busy relay cycles").inc(
        sum(t.relay_cycles for t in trace.traces)
    )
    registry.counter("sim.pe.tasks", "task executions").inc(
        sum(t.tasks_run for t in trace.traces)
    )
    registry.counter("sim.blocks.relayed", "blocks passed through").inc(
        trace.total_blocks_relayed()
    )
    registry.counter("sim.wavelets.sent", "wavelets injected by nodes").inc(
        trace.total_wavelets_sent()
    )
    registry.counter("sim.blocks.emitted", "records/blocks finalized").inc(
        sum(nc.blocks_emitted for nc in trace.node_counters)
    )
    steps = registry.counter(
        "sim.cycles", "busy cycles per coarse pipeline step"
    )
    for step, cycles in sorted(trace.step_cycle_totals().items()):
        steps.inc(cycles, step=step)
    busy = registry.histogram(
        "sim.pe.busy_cycles", "per-PE total busy cycles"
    )
    for t in trace.traces:
        busy.observe(t.total_cycles)


def collect_fault_metrics(registry: MetricsRegistry, injector) -> None:
    """Publish fault-injection outcomes (``faults.injected{kind=...}``,
    ``faults.detected``). No-op without an injector so callers can pass
    ``engine.faults`` unconditionally."""
    if injector is None:
        return
    injected = registry.counter(
        "faults.injected", "faults fired by the injector, by kind"
    )
    for fault in injector.log:
        injected.inc(kind=fault.kind)
    registry.counter(
        "faults.detected", "stalled rows diagnosed into FaultReports"
    ).inc(injector.detected)


def collect_repair_metrics(registry: MetricsRegistry, report) -> None:
    """Publish self-healing outcomes (``faults.repaired``,
    ``faults.fallback_blocks``). No-op without a RepairReport so callers
    can pass ``run.repair`` unconditionally."""
    if report is None:
        return
    registry.counter(
        "faults.repaired", "rows recovered by wafer-side plan repair"
    ).inc(report.repaired_rows)
    registry.counter(
        "faults.fallback_blocks",
        "blocks carried by the host fast path in degraded mode",
    ).inc(len(report.fallback_blocks))


def collect_run_metrics(
    registry: MetricsRegistry, *, fabric=None, engine=None, trace=None
) -> None:
    """Publish everything one serial run produced (the jobs=1 path)."""
    if fabric is not None:
        collect_fabric_metrics(registry, fabric)
    if engine is not None:
        collect_engine_metrics(registry, engine)
    if trace is not None:
        collect_trace_metrics(registry, trace)
