"""Span and per-PE timeline tracing for simulated runs.

The paper's evaluation is built on *observing* the wafer: per-PE hardware
cycle counters, per-stage profiles (Tables 1-3), relay/execution
breakdowns (Fig 10). This module is the capture side of that story for
the reproduction — two kinds of records behind one knob:

* **Host spans** — nested wall-clock regions of the host pipeline
  (``span("lower")``, ``span("simulate", rows=...)``). Cheap enough to
  leave in production paths; a span is two ``perf_counter`` calls and one
  list append.
* **PE timeline events** — one event per task execution, in *simulated
  cycles*, recorded by the engine. A full timeline of a large run is
  every task on every PE, so capture is gated behind
  ``trace_level="timeline"`` and bounded by a deterministic per-PE
  sampling stride (``sample_every=N`` keeps every Nth task per PE).

``trace_level`` takes three values:

=============  ==========================================================
``"off"``      nothing recorded; the engine sees ``tracer=None``-like
               cost (a single cached bool test per task)
``"spans"``    host spans only
``"timeline"`` host spans plus per-PE task events (sampled)
=============  ==========================================================

Spans close in a ``finally`` block, so timings and nesting depth survive
exceptions raised inside the span body — a failed run still exports a
truthful partial trace.

Row-parallel simulation gives every worker process its own ``Tracer``;
:meth:`Tracer.merge_partition` folds a worker's records into the parent
exactly like ``TraceRecorder.merge_partition`` folds cycle traces: PE
events are filtered to the partition's own rows, host spans keep their
timings and are re-tagged with the worker's track id. ``perf_counter``
on Linux is CLOCK_MONOTONIC (shared epoch across processes), so worker
span timestamps stay on the parent's axis.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field, replace

TRACE_LEVELS = ("off", "spans", "timeline")


@dataclass(frozen=True)
class SpanRecord:
    """One closed host span (wall-clock microseconds)."""

    name: str
    start_us: float
    dur_us: float
    depth: int
    tid: int = 0
    args: dict = field(default_factory=dict)


@dataclass(frozen=True)
class PEEvent:
    """One task execution on one PE (simulated cycles)."""

    row: int
    col: int
    name: str
    start_cycles: float
    dur_cycles: float


class Tracer:
    """Collects :class:`SpanRecord` and :class:`PEEvent` rows.

    Instances are picklable (plain lists and ints), which is what lets
    worker processes build their own tracer and ship it back whole.
    """

    def __init__(self, level: str = "spans", *, sample_every: int = 1):
        if level not in TRACE_LEVELS:
            raise ValueError(
                f"trace level must be one of {TRACE_LEVELS}, got {level!r}"
            )
        sample_every = int(sample_every)
        if sample_every < 1:
            raise ValueError(f"sample_every must be >= 1, got {sample_every}")
        self.level = level
        self.sample_every = sample_every
        # Hot-path predicates, resolved once: span() and pe_event() run per
        # task in the simulator inner loop, where a string compare per call
        # is measurable on small runs.
        self._off = level == "off"
        self._timeline = level == "timeline"
        self.spans: list[SpanRecord] = []
        self._depth = 0
        # Timeline state is lazy: spans-level tracers (the common case, and
        # one per row-partition worker) never allocate the per-PE event list
        # or the sampling counters.
        self._pe_events: list[PEEvent] | None = None
        self._seen: dict[tuple[int, int], int] | None = None

    # -- predicates ------------------------------------------------------------

    @property
    def enabled(self) -> bool:
        return not self._off

    @property
    def records_timeline(self) -> bool:
        return self._timeline

    @property
    def pe_events(self) -> list[PEEvent]:
        """Recorded timeline events (allocated on first touch)."""
        events = self._pe_events
        if events is None:
            events = self._pe_events = []
        return events

    # -- recording -------------------------------------------------------------

    @contextmanager
    def span(self, name: str, **args):
        """Record a nested host span around the ``with`` body.

        The record is appended when the span *closes* (in ``finally``), so
        an exception inside the body still yields a span with the correct
        duration and depth, and the nesting counter is always restored.
        """
        if self._off:
            yield self
            return
        depth = self._depth
        self._depth = depth + 1
        start = time.perf_counter()
        try:
            yield self
        finally:
            self._depth = depth
            self.spans.append(
                SpanRecord(
                    name=name,
                    start_us=start * 1e6,
                    dur_us=(time.perf_counter() - start) * 1e6,
                    depth=depth,
                    args=args,
                )
            )

    def pe_event(
        self, row: int, col: int, name: str, start: float, dur: float
    ) -> None:
        """Record one task execution; subject to the per-PE sampling stride.

        The stride counts *all* executions per PE and keeps the 0th, Nth,
        2Nth, ... — deterministic, so two runs of the same plan sample the
        same events and partition merges reproduce the serial capture.
        """
        if not self._timeline:
            return
        counters = self._seen
        if counters is None:
            counters = self._seen = {}
        key = (row, col)
        seen = counters.get(key, 0)
        counters[key] = seen + 1
        if seen % self.sample_every:
            return
        self.pe_events.append(
            PEEvent(
                row=row, col=col, name=name, start_cycles=start,
                dur_cycles=dur,
            )
        )

    # -- aggregation -----------------------------------------------------------

    def merge_partition(
        self, rows: tuple[int, ...], part: "Tracer", *, tid: int = 0
    ) -> None:
        """Fold one row-partition worker's tracer into this one.

        Like ``TraceRecorder.merge_partition``: a worker simulates on a
        full-size mesh, so only events for ``rows``' own PEs are taken
        (they are exactly the events the serial run would have recorded
        for those rows). Host spans keep their wall-clock timings and are
        re-tagged with ``tid`` so exports show one track per worker.
        """
        if part._pe_events:
            keep = set(rows)
            self.pe_events.extend(
                e for e in part._pe_events if e.row in keep
            )
        self.spans.extend(replace(s, tid=tid) for s in part.spans)

    def merge_replica(
        self,
        part: "Tracer",
        row_offset: int,
        *,
        spans: bool = False,
        tid: int = 0,
    ) -> None:
        """Fold one replicated copy of a representative's tracer in.

        Hybrid simulation synthesizes member rows from one representative
        run: timeline events are the representative's with the row
        coordinate translated by ``row_offset``. The per-PE sampling
        stride is deterministic and isomorphic rows run identical task
        streams, so the translated events are exactly what a serial run
        would have sampled at that row. Host spans are wall-clock and
        happened once per class, not once per row — they fold in only when
        ``spans=True`` (the first copy of a class), re-tagged with ``tid``.
        """
        if part._pe_events:
            self.pe_events.extend(
                PEEvent(
                    row=e.row + row_offset,
                    col=e.col,
                    name=e.name,
                    start_cycles=e.start_cycles,
                    dur_cycles=e.dur_cycles,
                )
                for e in part._pe_events
            )
        if spans:
            self.spans.extend(replace(s, tid=tid) for s in part.spans)

    def span_totals(self) -> dict[str, tuple[int, float]]:
        """``{span name: (count, total microseconds)}`` over all tracks."""
        totals: dict[str, tuple[int, float]] = {}
        for s in self.spans:
            count, total = totals.get(s.name, (0, 0.0))
            totals[s.name] = (count + 1, total + s.dur_us)
        return totals


#: Shared do-nothing tracer: integration points write
#: ``(tracer or NULL_TRACER).span(...)`` instead of branching on None.
NULL_TRACER = Tracer(level="off")
