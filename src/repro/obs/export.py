"""Exporters: Chrome trace-event JSON, fabric heatmaps, trace summaries.

The Chrome trace-event format (the JSON Perfetto and ``chrome://tracing``
load) is a list of events with ``name``/``ph``/``ts``/``pid``/``tid``;
we emit only complete events (``ph="X"``, with ``dur``) plus metadata
events (``ph="M"``) naming the tracks, which keeps the file trivially
valid — no begin/end pairing to break.

Two clock domains share one file as two *processes*:

* pid 1, "wafer (simulated cycles)": one thread per PE, one ``X`` event
  per (sampled) task execution, ``ts``/``dur`` in simulated cycles;
* pid 2, "host (wall clock)": one thread per host track (0 = the driving
  process, 1..N = row-partition workers), ``ts``/``dur`` in wall-clock
  microseconds, normalized so the first span starts at 0.

Everything that is not an event — the metrics snapshot, fabric occupancy
and relay-congestion heatmaps — rides in the top-level ``otherData``
object, which the trace-event spec reserves for exactly this and viewers
ignore. ``ceresz trace`` reads it back for offline summaries.
"""

from __future__ import annotations

import json

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer

WAFER_PID = 1
HOST_PID = 2

_REQUIRED_EVENT_KEYS = ("name", "ph", "ts", "pid", "tid")


# -- heatmaps ------------------------------------------------------------------


def _grid(recorder, value_of) -> dict:
    """rows x cols grid of ``value_of(PETrace)`` plus row/col totals."""
    if not recorder.traces:
        return {"rows": 0, "cols": 0, "cells": [], "row_totals": [],
                "col_totals": []}
    rows = max(t.row for t in recorder.traces) + 1
    cols = max(t.col for t in recorder.traces) + 1
    cells = [[0.0] * cols for _ in range(rows)]
    for t in recorder.traces:
        cells[t.row][t.col] += float(value_of(t))
    return {
        "rows": rows,
        "cols": cols,
        "cells": cells,
        "row_totals": [sum(row) for row in cells],
        "col_totals": [sum(col) for col in zip(*cells)],
    }


def occupancy_heatmap(recorder) -> dict:
    """Busy cycles (compute + relay) per PE — where the wafer spends time."""
    return _grid(recorder, lambda t: t.total_cycles)


def relay_heatmap(recorder) -> dict:
    """Relay cycles per PE — where forwarding traffic concentrates."""
    return _grid(recorder, lambda t: t.relay_cycles)


def render_heatmap(heatmap: dict, title: str) -> str:
    """ASCII rendering: cells scaled 0-9 against the grid maximum."""
    rows, cols = heatmap["rows"], heatmap["cols"]
    lines = [f"{title} ({rows}x{cols}, 0-9 scaled to max)"]
    if not rows:
        return lines[0] + "\n  (empty)"
    peak = max((max(row) for row in heatmap["cells"]), default=0.0)
    for r, row in enumerate(heatmap["cells"]):
        digits = "".join(
            str(min(9, int(9 * v / peak))) if peak else "0" for v in row
        )
        lines.append(f"  row {r:>3} |{digits}| {heatmap['row_totals'][r]:.0f}")
    lines.append(
        "  col totals: "
        + " ".join(f"{v:.0f}" for v in heatmap["col_totals"])
    )
    return "\n".join(lines)


# -- Chrome trace assembly -----------------------------------------------------


def build_chrome_trace(
    tracer: Tracer | None = None,
    *,
    recorder=None,
    metrics: MetricsRegistry | None = None,
    run_info: dict | None = None,
) -> dict:
    """Assemble the Chrome trace-event object for one run.

    ``tracer`` supplies the events (host spans and, at
    ``trace_level="timeline"``, per-PE task events); ``recorder`` (a
    ``TraceRecorder``) supplies the occupancy/congestion heatmaps;
    ``metrics`` embeds its snapshot. ``run_info`` rides along in
    ``otherData["run"]`` — notably the simulation ``mode`` and hybrid
    ``row_classes``, which the summarizer needs to label composed
    timelines correctly (a hybrid trace's spans cover only the
    representative rows). All are optional — an off-level tracer still
    yields a valid (metadata-only) trace.
    """
    events: list[dict] = []

    def meta(pid: int, kind: str, tid: int = 0, **args) -> None:
        events.append(
            {"name": kind, "ph": "M", "ts": 0, "pid": pid, "tid": tid,
             "args": args}
        )

    meta(WAFER_PID, "process_name", name="wafer (simulated cycles)")
    meta(HOST_PID, "process_name", name="host (wall clock)")

    spans = list(tracer.spans) if tracer is not None else []
    pe_events = list(tracer.pe_events) if tracer is not None else []

    host_tids = sorted({s.tid for s in spans})
    for tid in host_tids:
        label = "host" if tid == 0 else f"worker-{tid}"
        meta(HOST_PID, "thread_name", tid=tid, name=label)

    pe_tids: dict[tuple[int, int], int] = {}
    for coord in sorted({(e.row, e.col) for e in pe_events}):
        tid = len(pe_tids) + 1
        pe_tids[coord] = tid
        meta(
            WAFER_PID, "thread_name", tid=tid,
            name=f"PE({coord[0]},{coord[1]})",
        )

    body: list[dict] = []
    if spans:
        epoch = min(s.start_us for s in spans)
        for s in spans:
            body.append(
                {
                    "name": s.name,
                    "ph": "X",
                    "ts": s.start_us - epoch,
                    "dur": s.dur_us,
                    "pid": HOST_PID,
                    "tid": s.tid,
                    "args": {**s.args, "depth": s.depth},
                }
            )
    for e in pe_events:
        body.append(
            {
                "name": e.name,
                "ph": "X",
                "ts": e.start_cycles,
                "dur": e.dur_cycles,
                "pid": WAFER_PID,
                "tid": pe_tids[(e.row, e.col)],
                "args": {"row": e.row, "col": e.col},
            }
        )
    # Stable order: per track, by start time, longest (outermost) first so
    # nested spans with equal starts render parent-above-child.
    body.sort(key=lambda ev: (ev["pid"], ev["tid"], ev["ts"], -ev["dur"]))
    events.extend(body)

    other: dict = {}
    if tracer is not None:
        other["trace_level"] = tracer.level
        other["sample_every"] = tracer.sample_every
    if recorder is not None:
        other["occupancy_heatmap"] = occupancy_heatmap(recorder)
        other["relay_heatmap"] = relay_heatmap(recorder)
    if metrics is not None:
        other["metrics"] = metrics.snapshot()
    if run_info:
        other["run"] = dict(run_info)

    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": other,
    }


def write_chrome_trace(path: str, trace: dict) -> None:
    validate_chrome_trace(trace)
    with open(path, "w") as fh:
        json.dump(trace, fh, indent=1)
        fh.write("\n")


def load_chrome_trace(path: str) -> dict:
    with open(path) as fh:
        trace = json.load(fh)
    validate_chrome_trace(trace)
    return trace


def validate_chrome_trace(trace: dict) -> None:
    """Check the trace-event schema our exporter promises.

    Raises ``ValueError`` on the first violation: missing/ill-typed
    required keys, a complete event without a non-negative ``dur``,
    negative timestamps, per-track timestamps that go backwards, or
    duplicate complete events on one ``(pid, tid, ts)`` slot. A
    duplicate is either an identical repeat (same name and ``dur`` — a
    replica merge double-counting a track, the bug this check exists to
    catch) or two events of nonzero duration launched from the same
    instant (a PE executes serially; overlap means double-booking).
    Zero-duration markers (``recv``) legitimately coincide with the
    start of the task they trigger and are exempt.
    """
    if not isinstance(trace, dict):
        raise ValueError("trace must be a JSON object")
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("trace.traceEvents must be a list")
    last_ts: dict[tuple[int, int], float] = {}
    # Complete events sharing the current ts of their track, as
    # (name, dur) pairs — per-track ts monotonicity makes equal-ts
    # events contiguous in track order, so one slot per track suffices.
    slot: dict[tuple[int, int], list[tuple[str, float]]] = {}
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            raise ValueError(f"event {i} is not an object")
        for key in _REQUIRED_EVENT_KEYS:
            if key not in event:
                raise ValueError(f"event {i} missing required key {key!r}")
        ts = event["ts"]
        if not isinstance(ts, (int, float)) or ts < 0:
            raise ValueError(f"event {i} has invalid ts {ts!r}")
        ph = event["ph"]
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise ValueError(
                    f"event {i} is complete (ph=X) without a valid dur"
                )
            track = (event["pid"], event["tid"])
            prev = last_ts.get(track)
            if prev is not None and ts < prev:
                raise ValueError(
                    f"event {i} breaks per-track ts monotonicity"
                )
            if prev == ts:
                where = (
                    f"(pid, tid, ts)=({event['pid']}, {event['tid']}, {ts})"
                )
                for name, other_dur in slot[track]:
                    if name == event["name"] and other_dur == dur:
                        raise ValueError(
                            f"event {i} duplicates {where}: identical "
                            f"complete event repeated on one track slot"
                        )
                    if dur > 0 and other_dur > 0:
                        raise ValueError(
                            f"event {i} duplicates {where}: two complete "
                            f"events of nonzero duration on one track slot"
                        )
                slot[track].append((event["name"], dur))
            else:
                slot[track] = [(event["name"], dur)]
            last_ts[track] = ts
        elif ph != "M":
            raise ValueError(
                f"event {i} has unexpected phase {ph!r} (exporter emits "
                f"only X and M)"
            )


# -- offline summaries (the ``ceresz trace`` subcommand) -----------------------


def summarize_trace(trace: dict, *, top: int = 10) -> str:
    """Top spans, busiest PEs, and congestion hotspots of a saved trace."""
    events = trace.get("traceEvents", [])
    thread_names: dict[tuple[int, int], str] = {}
    for e in events:
        if e.get("ph") == "M" and e.get("name") == "thread_name":
            thread_names[(e["pid"], e["tid"])] = e["args"]["name"]

    span_totals: dict[str, list[float]] = {}
    pe_busy: dict[tuple[int, int], float] = {}
    for e in events:
        if e.get("ph") != "X":
            continue
        if e["pid"] == HOST_PID:
            cell = span_totals.setdefault(e["name"], [0, 0.0, 0.0])
            cell[0] += 1
            cell[1] += e["dur"]
            cell[2] = max(cell[2], e["dur"])
        elif e["pid"] == WAFER_PID:
            key = (e["pid"], e["tid"])
            pe_busy[key] = pe_busy.get(key, 0.0) + e["dur"]

    lines: list[str] = []
    other = trace.get("otherData", {})
    if "trace_level" in other:
        lines.append(
            f"trace level: {other['trace_level']} "
            f"(sample_every={other.get('sample_every', 1)})"
        )
    run = other.get("run") or {}
    mode = run.get("mode")
    if mode == "hybrid":
        classes = [tuple(c) for c in run.get("row_classes") or []]
        total_rows = sum(size for _, size in classes)
        lines.append(
            f"run mode: hybrid — {len(classes)} row class(es) covering "
            f"{total_rows} row(s); timelines below are composed from "
            f"replicated representatives, spans cover representatives only"
        )
        sized = sorted(classes, key=lambda rc: -rc[1])[:top]
        lines.append(
            "  class sizes: "
            + ", ".join(f"row {rep} x{size}" for rep, size in sized)
            + (" …" if len(classes) > top else "")
        )
    elif mode:
        lines.append(f"run mode: {mode}")

    lines.append(f"top spans (by total wall time, top {top}):")
    ranked = sorted(span_totals.items(), key=lambda kv: -kv[1][1])[:top]
    if not ranked:
        lines.append("  (no host spans recorded)")
    for name, (count, total, peak) in ranked:
        lines.append(
            f"  {name:<24} {count:>5}x  total {total / 1e3:>10.3f} ms  "
            f"max {peak / 1e3:.3f} ms"
        )

    lines.append(f"busiest PEs (by timeline cycles, top {top}):")
    busiest = sorted(pe_busy.items(), key=lambda kv: -kv[1])[:top]
    if not busiest:
        lines.append("  (no timeline events — trace level below 'timeline')")
    for key, cycles in busiest:
        lines.append(
            f"  {thread_names.get(key, str(key)):<12} {cycles:>14.0f} cycles"
        )

    relay = other.get("relay_heatmap")
    if relay and relay["rows"]:
        lines.append("relay congestion hotspots:")
        flat = [
            (v, r, c)
            for r, row in enumerate(relay["cells"])
            for c, v in enumerate(row)
            if v > 0
        ]
        for v, r, c in sorted(flat, reverse=True)[:top]:
            lines.append(f"  PE({r},{c}): {v:.0f} relay cycles")
        if not flat:
            lines.append("  (no relay traffic)")
        lines.append(render_heatmap(relay, "relay cycles"))
    occupancy = other.get("occupancy_heatmap")
    if occupancy and occupancy["rows"]:
        lines.append(render_heatmap(occupancy, "occupancy (busy cycles)"))
    return "\n".join(lines)
