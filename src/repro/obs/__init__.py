"""Wafer-scope observability: span tracing, metrics, exporters.

Three layers, one per module:

* :mod:`repro.obs.tracing` — nested host spans and sampled per-PE
  timeline events behind a ``trace_level`` knob (off / spans / timeline);
* :mod:`repro.obs.metrics` — named counters/gauges/histograms with
  labels, plus the ``collect_*`` functions that publish a finished run's
  raw counters into a registry;
* :mod:`repro.obs.export` — Chrome trace-event JSON (Perfetto /
  ``chrome://tracing``), fabric occupancy and relay-congestion heatmaps,
  and the offline summarizer behind ``ceresz trace``.
"""

from repro.obs.export import (
    build_chrome_trace,
    load_chrome_trace,
    occupancy_heatmap,
    relay_heatmap,
    render_heatmap,
    summarize_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    collect_engine_metrics,
    collect_fabric_metrics,
    collect_run_metrics,
    collect_trace_metrics,
)
from repro.obs.tracing import (
    NULL_TRACER,
    TRACE_LEVELS,
    PEEvent,
    SpanRecord,
    Tracer,
)

__all__ = [
    "NULL_TRACER",
    "TRACE_LEVELS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PEEvent",
    "SpanRecord",
    "Tracer",
    "build_chrome_trace",
    "collect_engine_metrics",
    "collect_fabric_metrics",
    "collect_run_metrics",
    "collect_trace_metrics",
    "load_chrome_trace",
    "occupancy_heatmap",
    "relay_heatmap",
    "render_heatmap",
    "summarize_trace",
    "validate_chrome_trace",
    "write_chrome_trace",
]
