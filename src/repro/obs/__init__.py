"""Wafer-scope observability: span tracing, metrics, exporters.

Three layers, one per module:

* :mod:`repro.obs.tracing` — nested host spans and sampled per-PE
  timeline events behind a ``trace_level`` knob (off / spans / timeline);
* :mod:`repro.obs.metrics` — named counters/gauges/histograms with
  labels, plus the ``collect_*`` functions that publish a finished run's
  raw counters into a registry;
* :mod:`repro.obs.export` — Chrome trace-event JSON (Perfetto /
  ``chrome://tracing``), fabric occupancy and relay-congestion heatmaps,
  and the offline summarizer behind ``ceresz trace``;
* :mod:`repro.obs.ledger` — provenance-stamped RunRecords appended to a
  JSON-lines run ledger (config fingerprint, environment capture,
  metrics snapshot, timings);
* :mod:`repro.obs.regress` — statistics and the ``ceresz report --gate``
  regression engine over the ledger;
* :mod:`repro.obs.log` — structured ``key=value`` logging and the
  off-by-default live progress reporter for long wafer runs.
"""

from repro.obs.export import (
    build_chrome_trace,
    load_chrome_trace,
    occupancy_heatmap,
    relay_heatmap,
    render_heatmap,
    summarize_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.ledger import (
    SCHEMA_VERSION,
    Ledger,
    RunRecord,
    capture_environment,
    config_fingerprint,
    make_record,
    resolve_ledger,
)
from repro.obs.log import (
    ProgressReporter,
    StructLogger,
    get_logger,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    collect_engine_metrics,
    collect_fabric_metrics,
    collect_repair_metrics,
    collect_run_metrics,
    collect_trace_metrics,
)
from repro.obs.regress import (
    headline_values,
    load_baseline,
    metric_policy,
    run_report,
    summarize,
)
from repro.obs.tracing import (
    NULL_TRACER,
    TRACE_LEVELS,
    PEEvent,
    SpanRecord,
    Tracer,
)

__all__ = [
    "NULL_TRACER",
    "SCHEMA_VERSION",
    "TRACE_LEVELS",
    "Counter",
    "Gauge",
    "Histogram",
    "Ledger",
    "MetricsRegistry",
    "PEEvent",
    "ProgressReporter",
    "RunRecord",
    "SpanRecord",
    "StructLogger",
    "Tracer",
    "build_chrome_trace",
    "capture_environment",
    "config_fingerprint",
    "collect_engine_metrics",
    "collect_fabric_metrics",
    "collect_repair_metrics",
    "collect_run_metrics",
    "collect_trace_metrics",
    "get_logger",
    "headline_values",
    "load_baseline",
    "load_chrome_trace",
    "make_record",
    "metric_policy",
    "occupancy_heatmap",
    "relay_heatmap",
    "render_heatmap",
    "resolve_ledger",
    "run_report",
    "summarize",
    "summarize_trace",
    "validate_chrome_trace",
    "write_chrome_trace",
]
