"""Plain-text rendering for harness results (no plotting dependencies)."""

from __future__ import annotations

from collections.abc import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str | None = None,
) -> str:
    """Render an aligned ASCII table (markdown-ish pipes)."""
    cells = [[_fmt(c) for c in row] for row in rows]
    widths = [
        max(len(str(h)), *(len(r[i]) for r in cells)) if cells else len(str(h))
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append(
        " | ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    )
    lines.append("-+-".join("-" * w for w in widths))
    for row in cells:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 10000 or abs(value) < 0.001:
            return f"{value:.3g}"
        return f"{value:.2f}"
    return str(value)


def ascii_bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    *,
    width: int = 50,
    unit: str = "",
    title: str | None = None,
) -> str:
    """A horizontal bar chart for the figure benches' logs."""
    if not values:
        return title or ""
    peak = max(values)
    lines = [title] if title else []
    label_w = max(len(l) for l in labels)
    for label, value in zip(labels, values):
        bar = "#" * (int(round(width * value / peak)) if peak else 0)
        lines.append(f"{label.ljust(label_w)} | {bar} {value:.2f}{unit}")
    return "\n".join(lines)
