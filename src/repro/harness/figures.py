"""Regeneration of the paper's Figures 7 and 10-15.

Figures 7, 10, 13, 14 are model curves (cycle model + Eqs 2-4) driven by
workload statistics measured from the synthetic data; Fig 10 additionally
cross-checks the analytic relay line against the discrete-event simulator
on small meshes. Figures 11-12 combine the wafer model (CereSZ) with the
calibrated device models (baselines). Figure 15 is fully measured: real
streams, real reconstructions, real PSNR/SSIM.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import (
    BLOCK_SIZE,
    WSE_USABLE_COLS,
    WSE_USABLE_ROWS,
    WaferConfig,
)
from repro.core.quantize import relative_to_absolute
from repro.core.wse_compressor import WSECereSZ
from repro.datasets import generate_field, iter_fields
from repro.datasets.registry import NYX_FIELDS
from repro.baselines.base import get_compressor
from repro.metrics.quality import psnr, ssim
from repro.perf.device import DEVICE_MODELS
from repro.perf.model import compute_cycles_per_round, relay_cycles_per_round
from repro.perf.wafer import (
    measure_workload,
    pipeline_length_curve,
    row_scaling_curve,
    wafer_throughput,
    wse_size_curve,
)
from repro.wse.cost import PAPER_CYCLE_MODEL

REL_BOUNDS = (1e-2, 1e-3, 1e-4)
HEADLINE_WAFER = WaferConfig(rows=512, cols=512)


def plan_placement_summary(
    *,
    strategy: str,
    rows: int,
    cols: int,
    pipeline_length: int = 1,
    dataset: str = "QMCPack",
    blocks: int = 16,
    rel: float = 1e-3,
    seed: int = 0,
) -> str:
    """Placement report for a figure's mapping strategy on a small mesh.

    The figure curves are model-driven; this pins the exact mapping plan
    (node placement, color budget, routes, SRAM footprint) the lowered
    program uses for the same strategy, so the recorded results show
    *what* ran on the fabric, not just how fast the model says it runs.
    """
    arr = generate_field(dataset, 0, seed=seed).reshape(-1)
    data = np.asarray(arr[: blocks * BLOCK_SIZE], dtype=np.float32)
    sim = WSECereSZ(
        rows=rows,
        cols=cols,
        strategy=strategy,
        pipeline_length=pipeline_length,
    )
    plan = sim.plan_for(data, rel=rel)
    plan.validate()
    return plan.describe()


# --- Fig 7 ----------------------------------------------------------------------------


@dataclass(frozen=True)
class RowScalingPoint:
    rows: int
    throughput_mbs: float


def fig7_row_scaling(
    rows_list=(64, 128, 256, 512, 750), *, rel: float = 1e-3, seed: int = 0
) -> list[RowScalingPoint]:
    """Fig 7: throughput vs number of PE rows, NYX temperature field.

    Whole compression on the first PE of each row, block size 32, data
    flowing continuously — the setting where speedup across rows must be
    exactly linear (no inter-row communication exists).
    """
    temperature_index = NYX_FIELDS.index("temperature")
    arr = generate_field("NYX", temperature_index, seed=seed)
    eps = relative_to_absolute(arr, rel)
    workload = measure_workload(arr, eps)
    curve = row_scaling_curve(workload, rows_list)
    return [
        RowScalingPoint(rows=p.rows, throughput_mbs=p.throughput_bytes_per_s / 1e6)
        for p in curve
    ]


# --- Fig 10 ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RelayProfile:
    cols_swept: list[int]
    relay_cycles_analytic: list[float]
    relay_cycles_simulated: list[float]
    blocks_relayed: list[int]  # total across the mesh, from node counters
    pipeline_lengths: list[int]
    execution_cycles_per_pe: list[float]


def fig10_relay_and_execution(
    *,
    sim_cols=(2, 4, 8, 12),
    pipeline_lengths=(1, 2, 4, 8),
    rel: float = 1e-4,
    seed: int = 0,
) -> RelayProfile:
    """Fig 10: (a) relay time per PE vs columns; (b) exec time vs length.

    (a) The analytic line is Eq. 2 (``TC * C1``); the simulated points run
    the actual multi-pipeline program on a 1-row mesh and read the head
    PE's relay-cycle counter — the linearity check the paper performs on
    QMCPack. (b) is Eq. 3 with the actual Algorithm-1 bottleneck.
    """
    arr = generate_field("QMCPack", 0, seed=seed)
    eps = relative_to_absolute(arr, rel)
    workload = measure_workload(arr, eps)
    model = PAPER_CYCLE_MODEL

    analytic = [relay_cycles_per_round(tc) for tc in sim_cols]
    simulated = []
    relayed = []
    flat = np.asarray(arr).reshape(-1)
    for tc in sim_cols:
        # One row, tc columns, exactly 2 rounds of blocks.
        need = 2 * tc * BLOCK_SIZE
        sim = WSECereSZ(rows=1, cols=tc, strategy="multi")
        result = sim.compress(flat[:need], eps=eps)
        head = result.report.trace.traces[0]
        # Per-round relay on the head PE (it relays TC-1 blocks per round).
        simulated.append(head.relay_cycles / 2.0)
        # Fig 9 bookkeeping from the lowered plan's node counters: PE i
        # forwards TC-1-i blocks per round, so 2 rounds relay TC*(TC-1).
        relayed.append(result.report.trace.total_blocks_relayed())

    block_cycles = workload.mean_cycles("compress", model)
    execution = []
    for pl in pipeline_lengths:
        perf = wafer_throughput(
            workload, HEADLINE_WAFER, pipeline_length=pl, direction="compress"
        )
        execution.append(
            compute_cycles_per_round(
                block_cycles,
                pl,
                model,
                bottleneck_fraction=None,
            )
        )
        del perf  # throughput unused here; Fig 13 reports it
    return RelayProfile(
        cols_swept=list(sim_cols),
        relay_cycles_analytic=analytic,
        relay_cycles_simulated=simulated,
        blocks_relayed=relayed,
        pipeline_lengths=list(pipeline_lengths),
        execution_cycles_per_pe=execution,
    )


# --- Figs 11 / 12 -----------------------------------------------------------------------


@dataclass(frozen=True)
class ThroughputBar:
    compressor: str
    dataset: str
    rel: float
    throughput_gbs: float


#: Figs 11-12 compressor order.
THROUGHPUT_COMPRESSORS = ("SZ", "SZp", "cuSZ", "cuSZp", "CereSZ")

_FIELD_LIMITS = {
    "CESM-ATM": 8,
    "Hurricane": 13,
    "QMCPack": 2,
    "NYX": 6,
    "RTM": 10,
    "HACC": 6,
}


def _throughput_bars(direction: str, datasets, rel_bounds, seed: int):
    bars = []
    for dataset in datasets:
        fields = list(
            iter_fields(dataset, limit=_FIELD_LIMITS.get(dataset), seed=seed)
        )
        for rel in rel_bounds:
            workloads = []
            for _, arr in fields:
                eps = relative_to_absolute(arr, rel)
                workloads.append(measure_workload(arr, eps))
            # CereSZ: wafer model, field-averaged (the paper's rule).
            ceresz = float(
                np.mean(
                    [
                        wafer_throughput(
                            w,
                            HEADLINE_WAFER,
                            pipeline_length=1,
                            direction=direction,
                        ).throughput_gbs
                        for w in workloads
                    ]
                )
            )
            zero_frac = float(np.mean([w.zero_fraction for w in workloads]))
            for name in THROUGHPUT_COMPRESSORS:
                if name == "CereSZ":
                    value = ceresz
                else:
                    value = DEVICE_MODELS[name].throughput_gbs(
                        direction, zero_frac
                    )
                bars.append(
                    ThroughputBar(
                        compressor=name,
                        dataset=dataset,
                        rel=rel,
                        throughput_gbs=value,
                    )
                )
    return bars


def fig11_compression_throughput(
    *,
    datasets=("CESM-ATM", "Hurricane", "QMCPack", "NYX", "RTM", "HACC"),
    rel_bounds=REL_BOUNDS,
    seed: int = 0,
) -> list[ThroughputBar]:
    """Fig 11: compression throughput (GB/s), 5 compressors x 6 datasets."""
    return _throughput_bars("compress", datasets, rel_bounds, seed)


def fig12_decompression_throughput(
    *,
    datasets=("CESM-ATM", "Hurricane", "QMCPack", "NYX", "RTM", "HACC"),
    rel_bounds=REL_BOUNDS,
    seed: int = 0,
) -> list[ThroughputBar]:
    """Fig 12: decompression throughput (GB/s)."""
    return _throughput_bars("decompress", datasets, rel_bounds, seed)


# --- Fig 13 -----------------------------------------------------------------------------


@dataclass(frozen=True)
class PipelineLengthPoint:
    dataset: str
    pipeline_length: int
    throughput_gbs: float


def fig13_pipeline_lengths(
    *,
    datasets=("QMCPack", "Hurricane"),
    lengths=(1, 2, 4, 8),
    rel: float = 1e-4,
    seed: int = 0,
) -> list[PipelineLengthPoint]:
    """Fig 13: compression throughput of n-PE pipelines, eb REL 1e-4."""
    points = []
    for dataset in datasets:
        arr = generate_field(dataset, 0, seed=seed)
        eps = relative_to_absolute(arr, rel)
        workload = measure_workload(arr, eps)
        curve = pipeline_length_curve(workload, lengths, HEADLINE_WAFER)
        points.extend(
            PipelineLengthPoint(
                dataset=dataset,
                pipeline_length=perf.pipeline_length,
                throughput_gbs=perf.throughput_gbs,
            )
            for perf in curve
        )
    return points


# --- Fig 14 -----------------------------------------------------------------------------


@dataclass(frozen=True)
class WSESizePoint:
    dataset: str
    rows: int
    cols: int
    throughput_gbs: float


def fig14_wse_sizes(
    *,
    datasets=("CESM-ATM", "HACC"),
    sizes=(16, 32, 64, 128, 256, 512, (WSE_USABLE_ROWS, WSE_USABLE_COLS)),
    rel: float = 1e-4,
    seed: int = 0,
) -> list[WSESizePoint]:
    """Fig 14: compression throughput vs WSE mesh size, eb REL 1e-4.

    Whole-dataset rule: the workload aggregates every field of the dataset
    (the paper runs the two *whole* datasets here).
    """
    points = []
    for dataset in datasets:
        fields = list(
            iter_fields(dataset, limit=_FIELD_LIMITS.get(dataset), seed=seed)
        )
        stacked = np.concatenate([a.reshape(-1) for _, a in fields])
        eps = relative_to_absolute(stacked, rel)
        workload = measure_workload(stacked, eps)
        curve = wse_size_curve(workload, sizes)
        points.extend(
            WSESizePoint(
                dataset=dataset,
                rows=perf.rows,
                cols=perf.total_cols,
                throughput_gbs=perf.throughput_gbs,
            )
            for perf in curve
        )
    return points


@dataclass(frozen=True)
class SimulatedWSESizePoint:
    """One Fig 14 mesh size measured on the hybrid simulator."""

    dataset: str
    rows: int
    cols: int
    throughput_gbs: float
    makespan_cycles: float
    model_gap: float  # (simulated - Eq.4 prediction) / prediction
    row_classes: int
    wall_seconds: float


def fig14_wse_sizes_simulated(
    *,
    dataset: str = "CESM-ATM",
    sizes=(16, 32, 64, 128, 256, 512, (WSE_USABLE_ROWS, WSE_USABLE_COLS)),
    rel: float = 1e-4,
    seed: int = 0,
) -> list[SimulatedWSESizePoint]:
    """Fig 14 measured, not modelled: hybrid simulation at every size.

    The analytic :func:`fig14_wse_sizes` drives Eqs 2-4 with workload
    statistics; this variant *runs* each mesh on the hybrid simulator —
    one representative row event-simulated per homogeneous class, the
    rest replicated exactly — which is what makes the full 750x994 wafer
    point reachable in seconds. Each mesh compresses ``cols`` blocks of
    dataset values per row, tiled across all rows (the workload shape Fig
    14 sweeps), and reports the cross-check gap against the Eq. 4
    prediction for the same workload.
    """
    import time

    from repro.perf.model import hybrid_model_gap

    field = generate_field(dataset, 0, seed=seed).reshape(-1)
    points = []
    for size in sizes:
        rows, cols = (size, size) if isinstance(size, int) else size
        n_row = cols * BLOCK_SIZE
        # One row's worth of blocks, recycling the field if it is short.
        reps = -(-n_row // field.size)
        row_values = np.tile(field, reps)[:n_row]
        sim = WSECereSZ(
            rows=rows, cols=cols, strategy="multi", mode="hybrid"
        )
        t0 = time.perf_counter()
        result = sim.compress(row_values, rel=rel, tile_rows=True)
        wall = time.perf_counter() - t0
        trace = result.report.trace
        eps = relative_to_absolute(row_values, rel)
        workload = measure_workload(row_values, eps)
        points.append(
            SimulatedWSESizePoint(
                dataset=dataset,
                rows=rows,
                cols=cols,
                throughput_gbs=trace.throughput_bytes_per_s(
                    result.result.original_bytes
                )
                / 1e9,
                makespan_cycles=trace.makespan_cycles,
                model_gap=hybrid_model_gap(
                    trace.makespan_cycles,
                    num_blocks=rows * cols,
                    rows=rows,
                    total_cols=cols,
                    block_cycles=workload.mean_cycles("compress"),
                ),
                row_classes=len(result.row_classes),
                wall_seconds=wall,
            )
        )
    return points


# --- Fig 15 -----------------------------------------------------------------------------


@dataclass(frozen=True)
class QualityReport:
    field: str
    rel: float
    ceresz_ratio: float
    cuszp_ratio: float
    ceresz_psnr: float
    cuszp_psnr: float
    ceresz_ssim: float
    cuszp_ssim: float
    reconstructions_identical: bool

    @property
    def paper_psnr(self) -> float:
        return 84.77

    @property
    def paper_ssim(self) -> float:
        return 0.9996


def fig15_quality(*, rel: float = 1e-4, seed: int = 0) -> QualityReport:
    """Fig 15: CereSZ vs cuSZp data quality on NYX velocity_x, REL 1e-4.

    The paper's Observation 3: both share the pre-quantization design, so
    reconstructions — hence PSNR and SSIM — are identical; only the ratio
    differs (3.10 vs 3.35 in the paper).
    """
    vx = NYX_FIELDS.index("velocity_x")
    arr = generate_field("NYX", vx, seed=seed)
    ceresz = get_compressor("CereSZ")
    cuszp = get_compressor("cuSZp")
    r1 = ceresz.compress(arr, rel=rel)
    r2 = cuszp.compress(arr, rel=rel)
    back1 = ceresz.decompress(r1.stream)
    back2 = cuszp.decompress(r2.stream)
    return QualityReport(
        field="velocity_x",
        rel=rel,
        ceresz_ratio=r1.ratio,
        cuszp_ratio=r2.ratio,
        ceresz_psnr=psnr(arr, back1),
        cuszp_psnr=psnr(arr, back2),
        ceresz_ssim=ssim(arr, back1),
        cuszp_ssim=ssim(arr, back2),
        reconstructions_identical=bool(np.array_equal(back1, back2)),
    )
