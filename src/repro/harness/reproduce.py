"""One-command reproduction: every table, figure, and audit to one folder.

``ceresz reproduce --out DIR`` (or :func:`reproduce_all`) regenerates the
paper's full evaluation and the reproduction-side audits, writing each
artifact as a text file plus a ``REPORT.md`` index with the headline
numbers. ``quick=True`` narrows dataset/field coverage for smoke runs.
"""

from __future__ import annotations

import pathlib
import time
from dataclasses import dataclass

import numpy as np

from repro.harness.report import ascii_bar_chart, format_table


@dataclass(frozen=True)
class ReproduceSummary:
    out_dir: pathlib.Path
    artifacts: tuple[str, ...]
    elapsed_seconds: float
    headline: dict


def reproduce_all(
    out_dir: str | pathlib.Path, *, quick: bool = False, seed: int = 0
) -> ReproduceSummary:
    """Run the full experiment matrix; returns the summary it wrote."""
    from repro.harness import observations, tables
    from repro.harness.figures import (
        fig7_row_scaling,
        fig10_relay_and_execution,
        fig11_compression_throughput,
        fig12_decompression_throughput,
        fig13_pipeline_lengths,
        fig14_wse_sizes,
        fig15_quality,
    )
    from repro.perf.calibration import calibration_report
    from repro.perf.validate import (
        validate_against_simulator,
        validation_report,
    )

    out = pathlib.Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    started = time.monotonic()
    artifacts: list[str] = []

    def write(name: str, text: str) -> None:
        (out / f"{name}.txt").write_text(text + "\n")
        artifacts.append(f"{name}.txt")

    datasets = ("QMCPack", "HACC") if quick else (
        "CESM-ATM", "Hurricane", "QMCPack", "NYX", "RTM", "HACC"
    )
    bounds = (1e-2, 1e-4) if quick else (1e-2, 1e-3, 1e-4)
    field_limit = 2 if quick else -1

    # --- tables -----------------------------------------------------------------
    t1 = tables.table1_stage_cycles(seed=seed)
    write(
        "table1",
        format_table(
            ["Dataset", "fl", "Pre-Quant.", "Lorenzo", "FL Encd.", "paper"],
            [[r.dataset, r.fixed_length, round(r.prequant), round(r.lorenzo),
              round(r.fl_encode), r.paper] for r in t1],
            title="Table 1",
        ),
    )
    t2 = tables.table2_prequant_breakdown()
    write(
        "table2",
        format_table(
            ["Dataset", "Pre-Quant.", "Mult", "Add", "paper"],
            [[r.dataset, round(r.prequant), round(r.multiplication),
              round(r.addition), r.paper] for r in t2],
            title="Table 2",
        ),
    )
    t3 = tables.table3_encoding_breakdown(seed=seed)
    write(
        "table3",
        format_table(
            ["Dataset", "fl", "Encd.", "Sign", "Max", "GetLen", "Shuffle"],
            [[r.dataset, r.fixed_length, round(r.fl_encode), round(r.sign),
              round(r.max), round(r.get_length), round(r.bit_shuffle)]
             for r in t3],
            title="Table 3",
        ),
    )
    t4 = tables.table4_datasets()
    write(
        "table4",
        format_table(
            ["Dataset", "Fields", "paper dims", "synthetic dims", "Domain"],
            [[r["dataset"], r["num_fields"], r["paper_shape"],
              r["synthetic_shape"], r["domain"]] for r in t4],
            title="Table 4",
        ),
    )
    t5 = tables.table5_compression_ratio(
        datasets=datasets, rel_bounds=bounds, field_limit=field_limit,
        seed=seed,
    )
    write(
        "table5",
        format_table(
            ["Compressor", "Dataset", "REL", "range", "avg"],
            [[r.compressor, r.dataset, f"{r.rel:g}",
              f"{r.min:.2f}~{r.max:.2f}", f"{r.avg:.2f}"] for r in t5],
            title="Table 5 (measured streams)",
        ),
    )

    # --- figures ----------------------------------------------------------------
    f7 = fig7_row_scaling(seed=seed)
    write(
        "fig7",
        ascii_bar_chart(
            [f"{p.rows} rows" for p in f7],
            [p.throughput_mbs for p in f7],
            unit=" MB/s",
            title="Fig 7",
        ),
    )
    f10 = fig10_relay_and_execution(seed=seed)
    write(
        "fig10",
        format_table(
            ["TC", "relay Eq.2", "relay sim"],
            list(zip(f10.cols_swept,
                     [round(x) for x in f10.relay_cycles_analytic],
                     [round(x) for x in f10.relay_cycles_simulated])),
            title="Fig 10a",
        )
        + "\n\n"
        + format_table(
            ["pl", "exec cycles/PE"],
            list(zip(f10.pipeline_lengths,
                     [round(x) for x in f10.execution_cycles_per_pe])),
            title="Fig 10b",
        ),
    )
    f11 = fig11_compression_throughput(
        datasets=datasets, rel_bounds=bounds, seed=seed
    )
    f12 = fig12_decompression_throughput(
        datasets=datasets, rel_bounds=bounds, seed=seed
    )
    for name, bars in (("fig11", f11), ("fig12", f12)):
        write(
            name,
            format_table(
                ["Dataset", "REL", "Compressor", "GB/s"],
                [[b.dataset, f"{b.rel:g}", b.compressor,
                  f"{b.throughput_gbs:.2f}"] for b in bars],
                title=name,
            ),
        )
    f13 = fig13_pipeline_lengths(seed=seed)
    write(
        "fig13",
        format_table(
            ["Dataset", "pl", "GB/s"],
            [[p.dataset, p.pipeline_length, f"{p.throughput_gbs:.1f}"]
             for p in f13],
            title="Fig 13",
        ),
    )
    sizes = (16, 64, 256) if quick else (16, 32, 64, 128, 256, 512, (750, 994))
    f14 = fig14_wse_sizes(sizes=sizes, seed=seed)
    write(
        "fig14",
        format_table(
            ["Dataset", "mesh", "GB/s"],
            [[p.dataset, f"{p.rows}x{p.cols}", f"{p.throughput_gbs:.1f}"]
             for p in f14],
            title="Fig 14",
        ),
    )
    f15 = fig15_quality(seed=seed)
    write(
        "fig15",
        f"reconstructions identical: {f15.reconstructions_identical}\n"
        f"PSNR {f15.ceresz_psnr:.2f} dB (paper 84.77) | "
        f"SSIM {f15.ceresz_ssim:.6f} (paper 0.9996)\n"
        f"ratio CereSZ {f15.ceresz_ratio:.2f} vs cuSZp "
        f"{f15.cuszp_ratio:.2f} (paper 3.10 vs 3.35)",
    )

    # --- audits ------------------------------------------------------------------
    write("calibration", calibration_report())
    rng = np.random.default_rng(seed)
    probe = np.cumsum(rng.normal(size=32 * (16 if quick else 48))).astype(
        np.float32
    )
    points = validate_against_simulator(data=probe, eps=0.05)
    write("model_validation", validation_report(points))
    verdicts = observations.all_observations(seed=seed)
    write(
        "observations",
        "\n".join(
            f"Observation {v.observation}: "
            f"{'HOLDS' if v.holds else 'FAILS'}\n  {v.claim}\n  {v.evidence}"
            for v in verdicts
        ),
    )

    # --- report -------------------------------------------------------------------
    ceresz11 = [b.throughput_gbs for b in f11 if b.compressor == "CereSZ"]
    cuszp11 = [b.throughput_gbs for b in f11 if b.compressor == "cuSZp"]
    ceresz12 = [b.throughput_gbs for b in f12 if b.compressor == "CereSZ"]
    headline = {
        "compress_avg_gbs": round(float(np.mean(ceresz11)), 2),
        "decompress_avg_gbs": round(float(np.mean(ceresz12)), 2),
        "speedup_vs_cuszp": round(
            float(np.mean(ceresz11)) / float(np.mean(cuszp11)), 2
        ),
        "fig15_psnr_db": round(f15.ceresz_psnr, 2),
        "observations_hold": all(v.holds for v in verdicts),
        "worst_model_gap": round(
            max(p.relative_gap for p in points), 3
        ),
    }
    elapsed = time.monotonic() - started
    lines = [
        "# Reproduction report",
        "",
        f"Mode: {'quick' if quick else 'full'}; seed {seed}; "
        f"{elapsed:.1f} s.",
        "",
        "| headline | paper | this run |",
        "|---|---|---|",
        f"| compression avg (GB/s) | 457.35 | {headline['compress_avg_gbs']} |",
        f"| decompression avg (GB/s) | 581.31 | "
        f"{headline['decompress_avg_gbs']} |",
        f"| speedup vs cuSZp | 4.97x | {headline['speedup_vs_cuszp']}x |",
        f"| Fig 15 PSNR (dB) | 84.77 | {headline['fig15_psnr_db']} |",
        f"| Observations 1-3 | hold | "
        f"{'hold' if headline['observations_hold'] else 'FAIL'} |",
        f"| worst sim-vs-model gap | — | "
        f"{100 * headline['worst_model_gap']:.1f}% |",
        "",
        "Artifacts:",
        *[f"- {name}" for name in artifacts],
    ]
    (out / "REPORT.md").write_text("\n".join(lines) + "\n")
    artifacts.append("REPORT.md")
    return ReproduceSummary(
        out_dir=out,
        artifacts=tuple(artifacts),
        elapsed_seconds=elapsed,
        headline=headline,
    )
