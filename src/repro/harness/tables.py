"""Regeneration of the paper's Tables 1-5.

Tables 1-3 (per-stage cycle profiles) come from the calibrated cycle model
evaluated at the fixed lengths measured from the synthetic datasets — the
paper's numbers are the calibration source, so agreement there validates
bookkeeping, while the *fixed lengths* themselves are genuinely measured.
Table 4 is the dataset registry. Table 5 is fully measured: every ratio is
``original/compressed`` of a real byte stream produced by the reimplemented
codec on the synthetic field.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import BLOCK_SIZE
from repro.core.quantize import relative_to_absolute
from repro.datasets import DATASETS, iter_fields
from repro.baselines.base import get_compressor
from repro.metrics.ratio import summarize_ratios
from repro.perf.wafer import measure_workload
from repro.wse.cost import CycleModel, PAPER_CYCLE_MODEL

#: Datasets the paper profiles in Tables 1-3, with the encoding lengths it
#: reports there (17 / 13 / 12).
PROFILED_DATASETS = ("CESM-ATM", "HACC", "QMCPack")

#: The REL bounds of the evaluation (Section 5.2).
REL_BOUNDS = (1e-2, 1e-3, 1e-4)

#: Paper values for side-by-side printing.
PAPER_TABLE1 = {
    "CESM-ATM": (6051, 975, 37124),
    "HACC": (6101, 975, 29181),
    "QMCPack": (6111, 975, 27188),
}
PAPER_TABLE2 = {
    "CESM-ATM": (6051, 5078, 1033),
    "HACC": (6101, 5081, 1038),
    "QMCPack": (6111, 5063, 1049),
}
PAPER_TABLE3 = {
    "CESM-ATM": (37124, 1044, 1037, 1386, 33609),
    "HACC": (29181, 1041, 1032, 1370, 25675),
    "QMCPack": (27188, 1048, 1041, 1385, 23694),
}

#: Field caps for the full experiment matrix (keeps Table 5 minutes-fast;
#: pass ``field_limit=None`` for every field).
DEFAULT_FIELD_LIMITS = {
    "CESM-ATM": 8,
    "Hurricane": 13,
    "QMCPack": 2,
    "NYX": 6,
    "RTM": 10,
    "HACC": 6,
}


def _profiled_fl(dataset: str, *, seed: int = 0) -> int:
    """The max fixed length of the dataset's first field at REL 1e-4.

    This is our analogue of the paper's profiled encoding length (their
    Table 3 footnote: 17/13/12 for CESM-ATM/HACC/QMCPack).
    """
    name, arr = next(iter(iter_fields(dataset, limit=1, seed=seed)))
    eps = relative_to_absolute(arr, 1e-4)
    return measure_workload(arr, eps).representative_fl


@dataclass(frozen=True)
class StageCycleRow:
    dataset: str
    fixed_length: int
    prequant: float
    lorenzo: float
    fl_encode: float
    paper: tuple[float, float, float]


def table1_stage_cycles(
    *, model: CycleModel = PAPER_CYCLE_MODEL, seed: int = 0
) -> list[StageCycleRow]:
    """Table 1: execution cycles of the three steps for one data block."""
    rows = []
    for dataset in PROFILED_DATASETS:
        fl = _profiled_fl(dataset, seed=seed)
        rows.append(
            StageCycleRow(
                dataset=dataset,
                fixed_length=fl,
                prequant=model.prequant_cycles(BLOCK_SIZE),
                lorenzo=model.lorenzo.cycles(BLOCK_SIZE),
                fl_encode=model.encode_cycles(fl, BLOCK_SIZE),
                paper=PAPER_TABLE1[dataset],
            )
        )
    return rows


@dataclass(frozen=True)
class PrequantRow:
    dataset: str
    prequant: float
    multiplication: float
    addition: float
    paper: tuple[float, float, float]


def table2_prequant_breakdown(
    *, model: CycleModel = PAPER_CYCLE_MODEL
) -> list[PrequantRow]:
    """Table 2: Multiplication / Addition split of pre-quantization."""
    return [
        PrequantRow(
            dataset=dataset,
            prequant=model.prequant_cycles(BLOCK_SIZE),
            multiplication=model.multiplication.cycles(BLOCK_SIZE),
            addition=model.addition.cycles(BLOCK_SIZE),
            paper=PAPER_TABLE2[dataset],
        )
        for dataset in PROFILED_DATASETS
    ]


@dataclass(frozen=True)
class EncodingRow:
    dataset: str
    fixed_length: int
    fl_encode: float
    sign: float
    max: float
    get_length: float
    bit_shuffle: float
    paper: tuple[float, float, float, float, float]


def table3_encoding_breakdown(
    *, model: CycleModel = PAPER_CYCLE_MODEL, seed: int = 0
) -> list[EncodingRow]:
    """Table 3: Sign / Max / GetLength / Bit-shuffle split of encoding."""
    rows = []
    for dataset in PROFILED_DATASETS:
        fl = _profiled_fl(dataset, seed=seed)
        rows.append(
            EncodingRow(
                dataset=dataset,
                fixed_length=fl,
                fl_encode=model.encode_cycles(fl, BLOCK_SIZE),
                sign=model.sign.cycles(BLOCK_SIZE),
                max=model.max.cycles(BLOCK_SIZE),
                get_length=model.get_length.cycles(BLOCK_SIZE),
                bit_shuffle=model.bit_shuffle.cycles(BLOCK_SIZE, fl),
                paper=PAPER_TABLE3[dataset],
            )
        )
    return rows


def table4_datasets() -> list[dict]:
    """Table 4: the dataset inventory, paper dims and synthetic dims."""
    return [
        {
            "dataset": info.name,
            "num_fields": info.num_fields,
            "paper_shape": "x".join(str(d) for d in info.paper_shape),
            "synthetic_shape": "x".join(str(d) for d in info.synthetic_shape),
            "domain": info.domain,
        }
        for info in DATASETS.values()
    ]


@dataclass(frozen=True)
class RatioRow:
    compressor: str
    dataset: str
    rel: float
    min: float
    avg: float
    max: float
    num_fields: int


#: Table 5 compressor order, as in the paper.
TABLE5_COMPRESSORS = ("CereSZ", "SZp", "cuSZp", "SZ", "cuSZ")


def table5_compression_ratio(
    *,
    compressors=TABLE5_COMPRESSORS,
    datasets=tuple(DATASETS),
    rel_bounds=REL_BOUNDS,
    field_limit: int | None = -1,
    seed: int = 0,
) -> list[RatioRow]:
    """Table 5: measured compression ratios (range and avg over fields).

    ``field_limit=-1`` uses :data:`DEFAULT_FIELD_LIMITS`; ``None`` uses all
    fields of every dataset.
    """
    rows = []
    for dataset in datasets:
        limit = (
            DEFAULT_FIELD_LIMITS.get(dataset)
            if field_limit == -1
            else field_limit
        )
        fields = list(iter_fields(dataset, limit=limit, seed=seed))
        for name in compressors:
            codec = get_compressor(name)
            for rel in rel_bounds:
                ratios = [
                    codec.compress(arr, rel=rel).ratio for _, arr in fields
                ]
                lo, avg, hi = summarize_ratios(ratios)
                rows.append(
                    RatioRow(
                        compressor=name,
                        dataset=dataset,
                        rel=rel,
                        min=lo,
                        avg=avg,
                        max=hi,
                        num_fields=len(fields),
                    )
                )
    return rows


#: Datasets for the predictor-comparison mode: the 2-D dataset and the
#: smooth 3-D ones, where multi-dimensional prediction is expected to pay
#: (NYX is deliberately included as the counterexample the sweep prints —
#: its fields are rough enough that 1-D Lorenzo wins).
TABLE5_PREDICTOR_DATASETS = ("CESM-ATM", "Hurricane", "QMCPack", "RTM", "NYX")


def table5_predictor_comparison(
    *,
    predictors: tuple[str, ...] | None = None,
    datasets=TABLE5_PREDICTOR_DATASETS,
    rel_bounds=(1e-3,),
    field_limit: int | None = 1,
    seed: int = 0,
) -> list[RatioRow]:
    """Table 5, predictor mode: CereSZ with each registered predictor.

    Same measurement loop as :func:`table5_compression_ratio`, but the
    compressor axis is the predictor registry — every stream is a real
    CereSZ container whose header carries the predictor tag. Rows are
    labelled ``CereSZ[<predictor>]``.
    """
    from repro.core.compressor import CereSZ
    from repro.core.predictors import predictor_names

    if predictors is None:
        predictors = predictor_names()
    rows = []
    for dataset in datasets:
        limit = (
            DEFAULT_FIELD_LIMITS.get(dataset)
            if field_limit == -1
            else field_limit
        )
        fields = list(iter_fields(dataset, limit=limit, seed=seed))
        for pred in predictors:
            codec = CereSZ(predictor=pred)
            for rel in rel_bounds:
                ratios = [
                    codec.compress(arr, rel=rel).ratio for _, arr in fields
                ]
                lo, avg, hi = summarize_ratios(ratios)
                rows.append(
                    RatioRow(
                        compressor=f"CereSZ[{pred}]",
                        dataset=dataset,
                        rel=rel,
                        min=lo,
                        avg=avg,
                        max=hi,
                        num_fields=len(fields),
                    )
                )
    return rows
