"""The paper's three numbered Observations, verified programmatically.

Each function re-derives one of the boxed claims of Section 5 from this
reproduction's own measurements and returns a structured verdict. The
bench and the CLI print them; tests assert they hold.

* **Observation 1** (5.2): CereSZ averages hundreds of GB/s for compression
  and decompression, ~5x faster than cuSZp.
* **Observation 2** (5.3): ratios are similar to cuSZ and slightly below
  SZp/cuSZp, because of the 32-bit message-passing restriction.
* **Observation 3** (5.4): identical PSNR/SSIM to cuSZp at the same bound,
  with a slightly compromised rate-distortion curve.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.harness.figures import (
    fig11_compression_throughput,
    fig12_decompression_throughput,
    fig15_quality,
)
from repro.harness.tables import table5_compression_ratio


@dataclass(frozen=True)
class Verdict:
    observation: int
    claim: str
    holds: bool
    evidence: dict


def observation1_throughput(*, seed: int = 0) -> Verdict:
    """CereSZ hundreds of GB/s, ~5x cuSZp, both directions."""
    comp = fig11_compression_throughput(seed=seed)
    decomp = fig12_decompression_throughput(seed=seed)

    def avg(bars, name):
        return float(
            np.mean([b.throughput_gbs for b in bars if b.compressor == name])
        )

    c_avg = avg(comp, "CereSZ")
    d_avg = avg(decomp, "CereSZ")
    c_speedup = c_avg / avg(comp, "cuSZp")
    d_speedup = d_avg / avg(decomp, "cuSZp")
    holds = (
        c_avg > 200
        and d_avg > c_avg
        and 3.0 <= c_speedup <= 8.0
        and 3.0 <= d_speedup <= 8.0
    )
    return Verdict(
        observation=1,
        claim=(
            "CereSZ achieves hundreds of GB/s for compression and "
            "decompression, ~5x faster than cuSZp (paper: 457.35 / 581.31 "
            "GB/s, 4.9x / 4.8x)"
        ),
        holds=holds,
        evidence={
            "compress_avg_gbs": round(c_avg, 2),
            "decompress_avg_gbs": round(d_avg, 2),
            "compress_speedup_vs_cuszp": round(c_speedup, 2),
            "decompress_speedup_vs_cuszp": round(d_speedup, 2),
        },
    )


def observation2_ratio(*, seed: int = 0) -> Verdict:
    """Ratios similar to cuSZ, slightly below SZp/cuSZp (header width)."""
    rows = table5_compression_ratio(
        compressors=("CereSZ", "SZp", "cuSZp", "cuSZ"),
        rel_bounds=(1e-2, 1e-4),
        field_limit=4,
        seed=seed,
    )
    by = {}
    for r in rows:
        by.setdefault(r.compressor, []).append(r.avg)
    means = {k: float(np.mean(v)) for k, v in by.items()}
    szp_gap = means["SZp"] / means["CereSZ"]
    cusz_gap = means["cuSZ"] / means["CereSZ"]
    holds = (
        means["SZp"] >= means["CereSZ"]  # never better than SZp
        and szp_gap < 4.0  # "slightly lower", not catastrophically
        and 0.5 <= cusz_gap <= 4.0  # "similar" to cuSZ
        and abs(means["SZp"] - means["cuSZp"]) / means["SZp"] < 0.01
    )
    return Verdict(
        observation=2,
        claim=(
            "CereSZ has similar ratios to cuSZ and slightly lower ratios "
            "than SZp/cuSZp due to the 32-bit message-passing restriction"
        ),
        holds=holds,
        evidence={k: round(v, 2) for k, v in means.items()},
    )


def observation3_quality(*, seed: int = 0) -> Verdict:
    """Identical visualization/PSNR/SSIM to cuSZp at the same bound."""
    q = fig15_quality(seed=seed)
    holds = (
        q.reconstructions_identical
        and abs(q.ceresz_psnr - q.cuszp_psnr) < 1e-9
        and abs(q.ceresz_ssim - q.cuszp_ssim) < 1e-9
        and q.cuszp_ratio > q.ceresz_ratio  # the compromised RD curve
    )
    return Verdict(
        observation=3,
        claim=(
            "CereSZ shares identical PSNR/SSIM with cuSZp under the same "
            "error bound; its rate-distortion curve is slightly compromised"
        ),
        holds=holds,
        evidence={
            "reconstructions_identical": q.reconstructions_identical,
            "psnr_db": round(q.ceresz_psnr, 2),
            "ssim": round(q.ceresz_ssim, 6),
            "ratio_ceresz": round(q.ceresz_ratio, 2),
            "ratio_cuszp": round(q.cuszp_ratio, 2),
        },
    )


def all_observations(*, seed: int = 0) -> list[Verdict]:
    return [
        observation1_throughput(seed=seed),
        observation2_ratio(seed=seed),
        observation3_quality(seed=seed),
    ]
