"""Experiment harness: one function per table/figure of the paper.

Every public function returns structured rows *and* can render the same
ASCII table the benchmarks print, so results are consumable both
programmatically (tests assert on them) and visually (bench logs read like
the paper's tables). The experiment-to-module map lives in DESIGN.md; the
paper-vs-measured record the harness produces is summarized in
EXPERIMENTS.md.
"""

from repro.harness.tables import (
    table1_stage_cycles,
    table2_prequant_breakdown,
    table3_encoding_breakdown,
    table4_datasets,
    table5_compression_ratio,
    table5_predictor_comparison,
)
from repro.harness.figures import (
    fig7_row_scaling,
    fig10_relay_and_execution,
    fig11_compression_throughput,
    fig12_decompression_throughput,
    fig13_pipeline_lengths,
    fig14_wse_sizes,
    fig15_quality,
)
from repro.harness.observations import (
    Verdict,
    all_observations,
    observation1_throughput,
    observation2_ratio,
    observation3_quality,
)
from repro.harness.report import format_table

__all__ = [
    "table1_stage_cycles",
    "table2_prequant_breakdown",
    "table3_encoding_breakdown",
    "table4_datasets",
    "table5_compression_ratio",
    "table5_predictor_comparison",
    "fig7_row_scaling",
    "fig10_relay_and_execution",
    "fig11_compression_throughput",
    "fig12_decompression_throughput",
    "fig13_pipeline_lengths",
    "fig14_wse_sizes",
    "fig15_quality",
    "format_table",
    "Verdict",
    "all_observations",
    "observation1_throughput",
    "observation2_ratio",
    "observation3_quality",
]
