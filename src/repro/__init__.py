"""CereSZ reproduction: error-bounded lossy compression on a simulated
Cerebras CS-2 wafer-scale engine.

Reproduces Song et al., *"CereSZ: Enabling and Scaling Error-bounded Lossy
Compression on Cerebras CS-2"*, HPDC 2024. See ``DESIGN.md`` for the system
inventory and ``EXPERIMENTS.md`` for the paper-vs-measured record.

Quick start::

    import numpy as np
    from repro import CereSZ

    codec = CereSZ()
    result = codec.compress(field, rel=1e-3)   # REL error bound, paper 5.1.3
    restored = codec.decompress(result.stream)
    assert np.max(np.abs(restored - field)) <= result.eps
    print(result.ratio)

Top-level surface:

* :class:`CereSZ` — the compressor (NumPy reference path);
* :mod:`repro.wse` — the wafer-scale-engine simulator substrate;
* :mod:`repro.baselines` — SZ3 / SZp / cuSZ / cuSZp reimplementations;
* :mod:`repro.datasets` — synthetic SDRBench-like field generators;
* :mod:`repro.metrics` — PSNR / SSIM / ratio / error-bound checks;
* :mod:`repro.perf` — wafer & device throughput models (Figs 7, 10-14);
* :mod:`repro.harness` — regenerates every table and figure of the paper.
"""

from repro.config import BLOCK_SIZE, DEFAULT_WAFER, FULL_WAFER, WaferConfig
from repro.core.compressor import CereSZ, CompressionResult
from repro.core.nd_variant import CereSZND
from repro.core.parallel import (
    compress_sharded,
    decompress_sharded,
    is_sharded,
)
from repro.core.streaming import (
    FrameReader,
    FrameWriter,
    compress_stream,
    decompress_stream,
)
from repro.core.wse_compressor import WSECereSZ
from repro.errors import (
    CompressionError,
    ErrorBoundError,
    FabricError,
    FormatError,
    ReproError,
)

__version__ = "1.0.0"

__all__ = [
    "CereSZ",
    "CereSZND",
    "WSECereSZ",
    "CompressionResult",
    "FrameWriter",
    "FrameReader",
    "compress_stream",
    "decompress_stream",
    "compress_sharded",
    "decompress_sharded",
    "is_sharded",
    "WaferConfig",
    "DEFAULT_WAFER",
    "FULL_WAFER",
    "BLOCK_SIZE",
    "ReproError",
    "CompressionError",
    "FormatError",
    "ErrorBoundError",
    "FabricError",
    "__version__",
]
