"""Fault-aware plan repair: turn a stalled wafer run into a completed one.

Real wafer-scale parts ship with defective PEs and route around them; this
module is the planning half of that story for the simulator. Given a
:class:`~repro.faults.plan.FaultPlan` (or the
:class:`~repro.faults.report.FaultReport` a stall produced) and the
:class:`~repro.core.plan.MappingPlan` it broke, it

1. classifies every fault as *harmful* (it lands on a PE the plan actually
   uses) or *tolerated* (an idle PE, or a north/south link a
   row-partitionable plan never crosses) — :func:`classify_faults`;
2. rewrites the plan to evacuate the harmful rows: onto idle **spare rows**
   of the same mesh when any exist (:func:`remap_rows`), or onto a
   shrunk-and-rebalanced replan when none do (driven by the retry loop in
   :mod:`repro.core.simulate`, which owns the ``replan`` callback);
3. records everything in a :class:`RepairReport` — a frozen, picklable,
   JSON-able report in the same mold as PR 5's
   :class:`~repro.faults.report.FaultReport`.

Everything here is a pure function of the fault plan and the mapping plan,
never of engine state: the same inputs produce the identical
classification and report whether the mesh simulated in one process or
was row-partitioned across four, which is what makes the
``jobs=1 == jobs=N`` RepairReport invariance hold.

Why evacuating a row is *byte*-safe: compressed records are keyed by block
index (``ProgramOutputs.records``) and every block's bytes depend only on
its own values — never on which PE produced it. Any repaired plan that
still emits every block therefore reproduces the fault-free stream
byte for byte.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, replace
from typing import TYPE_CHECKING

from repro.errors import ScheduleError
from repro.faults.plan import FaultPlan, _describe_fault

if TYPE_CHECKING:  # imported lazily at runtime: repro.wse -> repro.faults
    # -> repro.core.plan would otherwise be a cycle.
    from repro.core.plan import MappingPlan

#: Link directions a row-partitionable plan never routes across. Breaking
#: such a link cannot drop a wavelet, so the fault is tolerated in place.
_CROSS_ROW_LINKS = frozenset({"N", "S", "NORTH", "SOUTH"})


def used_rows(plan: "MappingPlan") -> tuple[int, ...]:
    """Mesh rows that carry at least one node, sorted ascending."""
    return tuple(sorted({n.row for n in plan.nodes}))


def spare_rows(plan: "MappingPlan") -> tuple[int, ...]:
    """Idle mesh rows (no nodes placed) available as repair targets."""
    used = {n.row for n in plan.nodes}
    return tuple(r for r in range(plan.rows) if r not in used)


@dataclass(frozen=True)
class FaultClassification:
    """What a fault plan means for one mapping plan's rows."""

    #: Used rows with at least one harmful fault, sorted.
    unusable_rows: tuple[int, ...]
    #: Human-readable description of each harmful fault, canonical order.
    harmful: tuple[str, ...]
    #: Description of each fault the plan absorbs in place, canonical order.
    tolerated: tuple[str, ...]
    #: ``(row, description)`` for each harmful fault, canonical order —
    #: what lets the repair loop say *why* it condemned a given row.
    harmful_by_row: tuple[tuple[int, str], ...] = ()

    def row_reason(self, row: int) -> str:
        """The harmful fault(s) that condemned ``row``, joined."""
        return "; ".join(d for r, d in self.harmful_by_row if r == row)


def _plan_occupancy(plan: "MappingPlan"):
    """PE coordinates the plan touches: node sites and routed sites."""
    node_sites = {(n.row, n.col) for n in plan.nodes}
    route_sites = {(r.row, r.col) for r in plan.routes}
    return node_sites, route_sites


def classify_faults(
    faults: FaultPlan, plan: "MappingPlan"
) -> FaultClassification:
    """Split a fault plan into harmful and tolerated faults for ``plan``.

    A fault is harmful when it can disturb traffic or compute the plan
    actually places:

    * ``halt``/``flip`` — harmful iff a node occupies the exact PE (a halt
      on an idle PE fires, logs, and starves nobody);
    * ``drop``/``dup`` — harmful iff the PE carries a node or a route
      (deliveries are counted at receiving PEs, which the plan's routes
      and nodes enumerate);
    * ``link`` — a north/south link is tolerated outright for
      row-partitionable plans (no route ever crosses a row boundary);
      an east/west or ramp link is harmful iff the entered PE is routed.

    Deterministic: depends only on the two plans, never on simulation
    state, so every partition of the same mesh computes the same answer.
    """
    from repro.core.plan import row_partitionable

    node_sites, route_sites = _plan_occupancy(plan)
    row_local = row_partitionable(plan)
    bad_rows: set[int] = set()
    harmful: list[tuple] = []
    tolerated: list[tuple] = []
    for f in faults.faults:
        site = (f.row, f.col)
        if f.kind in ("halt", "flip"):
            is_harmful = site in node_sites
        elif f.kind in ("drop", "dup"):
            is_harmful = site in node_sites or site in route_sites
        elif f.kind == "link":
            if row_local and f.direction.upper() in _CROSS_ROW_LINKS:
                is_harmful = False
            else:
                is_harmful = site in node_sites or site in route_sites
        else:  # pragma: no cover - FaultPlan rejects unknown kinds
            is_harmful = True
        key = (f.row, f.col, f.kind, _describe_fault(f))
        if is_harmful:
            bad_rows.add(f.row)
            harmful.append(key)
        else:
            tolerated.append(key)
    return FaultClassification(
        unusable_rows=tuple(sorted(bad_rows)),
        harmful=tuple(k[3] for k in sorted(harmful)),
        tolerated=tuple(k[3] for k in sorted(tolerated)),
        harmful_by_row=tuple((k[0], k[3]) for k in sorted(harmful)),
    )


def remap_rows(
    plan: "MappingPlan", row_map: dict[int, int], *, rows: int | None = None
) -> "MappingPlan":
    """Rewrite a plan with row coordinates mapped through ``row_map``.

    Rows absent from the map keep their placement. The mesh height stays
    ``plan.rows`` (or ``rows=`` when given, e.g. after a shrink replan
    whose fault coordinates must stay in-mesh); block indices are never
    touched, which is what keeps the output stream byte-identical.
    """
    from repro.core.plan import Feed, MappingPlan

    total = plan.rows if rows is None else int(rows)
    targets = list(row_map.values())
    if len(set(targets)) != len(targets):
        raise ScheduleError(f"repair row map has colliding targets: {row_map}")
    kept = {r for r in range(plan.rows) if r not in row_map}
    clash = kept & {n.row for n in plan.nodes} & set(targets)
    if clash:
        raise ScheduleError(
            f"repair row map targets occupied rows {sorted(clash)}"
        )
    for src, dst in row_map.items():
        if not (0 <= dst < total):
            raise ScheduleError(
                f"repair maps row {src} to row {dst}, outside the "
                f"{total}x{plan.cols} mesh"
            )

    def _row(r: int) -> int:
        return row_map.get(r, r)

    return MappingPlan(
        strategy=plan.strategy,
        direction=plan.direction,
        rows=total,
        cols=plan.cols,
        block_size=plan.block_size,
        num_blocks=plan.num_blocks,
        eps=plan.eps,
        colors=plan.colors,
        routes=tuple(replace(r, row=_row(r.row)) for r in plan.routes),
        nodes=tuple(replace(n, row=_row(n.row)) for n in plan.nodes),
        feeds=tuple(
            Feed(_row(f.row), f.col, f.color, f.data) for f in plan.feeds
        ),
        state_len=plan.state_len,
        partial=plan.partial,
        predictor=plan.predictor,
    )


def drop_rows(plan: "MappingPlan", rows: set[int]) -> "MappingPlan":
    """A partial plan carrying everything except ``rows``' placement.

    The degraded-mode fallback uses this to keep the healthy rows on the
    wafer while their condemned neighbours' blocks go to the host: the
    result deliberately covers only the surviving rows' blocks, so it is
    ``partial`` like a :func:`repro.core.plan.split_rows` shard.
    """
    rowset = {int(r) for r in rows}
    return replace(
        plan,
        routes=tuple(r for r in plan.routes if r.row not in rowset),
        nodes=tuple(n for n in plan.nodes if n.row not in rowset),
        feeds=tuple(f for f in plan.feeds if f.row not in rowset),
        partial=True,
    )


def row_blocks(plan: "MappingPlan", rows: set[int]) -> tuple[int, ...]:
    """Block indices emitted by nodes on ``rows``, sorted ascending."""
    from repro.core.plan import _emits

    rowset = {int(r) for r in rows}
    out: set[int] = set()
    for node in plan.nodes:
        if node.row in rowset and _emits(node):
            out.update(int(b) for b in node.blocks)
    return tuple(sorted(out))


# --- the report ------------------------------------------------------------------------


@dataclass(frozen=True)
class RowRepair:
    """One row-level repair action the orchestrator took."""

    row: int  # the condemned row
    action: str  # "remap" | "shrink" | "fallback"
    target_row: int | None  # where it moved (None for fallback)
    blocks: tuple[int, ...]  # block indices that row was responsible for
    reason: str  # the fault(s) that condemned it


@dataclass(frozen=True)
class RepairReport:
    """Structured record of a self-healing run's recovery decisions.

    Frozen, plain picklable data, JSON-serializable — the same contract as
    :class:`~repro.faults.report.FaultReport`, and derived exclusively
    from the fault plan plus mapping plans, so it is identical for
    ``jobs=1`` and ``jobs=N`` runs of the same workload.
    """

    #: "clean" (no repair needed), "repaired" (wafer-only recovery),
    #: "fallback" (host carried part of the work), or "exhausted".
    outcome: str
    #: Repair attempts consumed (0 when the first run completed).
    attempts: int
    #: Every row condemned over the whole retry sequence, sorted.
    unusable_rows: tuple[int, ...] = ()
    #: Spare rows that absorbed remapped work, sorted.
    spare_rows_used: tuple[int, ...] = ()
    #: Row-level actions in the order they were taken.
    repairs: tuple[RowRepair, ...] = ()
    #: Faults absorbed in place (idle PEs, uncrossed links), canonical order.
    tolerated: tuple[str, ...] = ()
    #: Block indices the host fast path produced, sorted.
    fallback_blocks: tuple[int, ...] = ()
    #: Whether the final stream was verified byte-identical to a
    #: fault-free reference (None = no verification was requested).
    verified: bool | None = None
    seed: int | None = None

    @property
    def repaired_rows(self) -> int:
        """Rows brought back by wafer-side repair (the metric value)."""
        return sum(1 for r in self.repairs if r.action in ("remap", "shrink"))

    def describe(self) -> str:
        lines = [
            f"RepairReport: {self.outcome} after {self.attempts} repair "
            f"attempt(s)"
        ]
        if self.unusable_rows:
            lines.append(
                "  unusable rows: "
                + ", ".join(str(r) for r in self.unusable_rows)
            )
        for r in self.repairs:
            if r.action == "remap":
                what = f"remapped to spare row {r.target_row}"
            elif r.action == "shrink":
                what = "work rebalanced across surviving rows"
            else:
                what = f"{len(r.blocks)} block(s) to the host fast path"
            lines.append(f"  row {r.row}: {what} — {r.reason}")
        for t in self.tolerated:
            lines.append(f"  tolerated: {t}")
        if self.fallback_blocks:
            lines.append(
                f"  host fallback blocks: {len(self.fallback_blocks)}"
            )
        if self.verified is not None:
            lines.append(
                "  stream verified byte-identical to fault-free reference"
                if self.verified
                else "  stream NOT verified against fault-free reference"
            )
        return "\n".join(lines)

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(asdict(self), indent=indent)
