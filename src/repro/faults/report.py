"""Structured reports for the robustness layer.

Three report types, one per failure domain:

- :class:`FaultReport` — what the simulator saw when a run stalled: which
  PEs/colors are wedged, the last cycle any of them made progress, and the
  provenance of any *injected* faults (so a test can assert "this exact
  injected drop caused this exact stall").
- :class:`IntegrityReport` — what ``verify`` found walking a container's
  checksums without decoding.
- :class:`SalvageReport` — what a salvage decode recovered and what it
  lost, including where the error bound no longer holds.

All three are frozen dataclasses of plain picklable data: they cross the
multiprocessing boundary attached to exceptions, and serialize to JSON for
the CI chaos artifact.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field


@dataclass(frozen=True)
class InjectedFault:
    """Provenance record of one fault the injector actually fired."""

    kind: str  # halt | drop | dup | flip | link
    row: int
    col: int
    cycle: int
    detail: str = ""


@dataclass(frozen=True)
class StuckTransfer:
    """One unmatched pending receive or relay at stall time."""

    row: int
    col: int
    color_id: int
    kind: str  # "recv" | "relay"
    extent: int  # wavelets still expected
    buffer: str  # destination buffer name ("" for relays)
    posted_at: int  # cycle the receive/relay was posted


@dataclass(frozen=True)
class FaultReport:
    """Structured diagnosis of a stalled simulation.

    ``last_progress_cycle`` is computed only from row-local facts (posting
    cycles of stuck transfers, injected-fault cycles) so it is identical
    whether the mesh ran in one process or partitioned across several.
    """

    reason: str  # "deadlock" | "livelock"
    last_progress_cycle: int
    stuck: tuple[StuckTransfer, ...] = ()
    halted_pes: tuple[tuple[int, int], ...] = ()
    injected: tuple[InjectedFault, ...] = ()
    seed: int | None = None

    @property
    def stuck_pes(self) -> tuple[tuple[int, int], ...]:
        """Coordinates with at least one wedged transfer, sorted, deduped."""
        return tuple(sorted({(s.row, s.col) for s in self.stuck}))

    @property
    def stuck_colors(self) -> tuple[int, ...]:
        return tuple(sorted({s.color_id for s in self.stuck}))

    def describe(self) -> str:
        lines = [
            f"FaultReport: {self.reason}, last progress at cycle "
            f"{self.last_progress_cycle}"
        ]
        for s in self.stuck:
            what = (
                f"recv of {s.extent} wavelets into {s.buffer!r}"
                if s.kind == "recv"
                else f"relay of {s.extent} wavelets"
            )
            lines.append(
                f"  stuck: PE({s.row},{s.col}) color {s.color_id} — {what}, "
                f"posted at cycle {s.posted_at}"
            )
        for row, col in self.halted_pes:
            lines.append(f"  halted: PE({row},{col})")
        for f in self.injected:
            lines.append(
                f"  injected: {f.kind} at PE({f.row},{f.col}) "
                f"cycle {f.cycle}" + (f" ({f.detail})" if f.detail else "")
            )
        return "\n".join(lines)

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(asdict(self), indent=indent)

    def merged_with(self, other: "FaultReport") -> "FaultReport":
        """Fold two partition-local reports into one mesh-wide view."""
        return FaultReport(
            reason=self.reason if self.reason == other.reason else "deadlock",
            last_progress_cycle=max(
                self.last_progress_cycle, other.last_progress_cycle
            ),
            stuck=tuple(
                sorted(
                    set(self.stuck) | set(other.stuck),
                    key=lambda s: (
                        s.row, s.col, s.color_id, s.kind, s.posted_at,
                        s.extent, s.buffer,
                    ),
                )
            ),
            halted_pes=tuple(
                sorted(set(self.halted_pes) | set(other.halted_pes))
            ),
            injected=tuple(
                sorted(
                    set(self.injected) | set(other.injected),
                    key=lambda f: (f.cycle, f.row, f.col, f.kind, f.detail),
                )
            ),
            seed=self.seed if self.seed is not None else other.seed,
        )


@dataclass(frozen=True)
class IntegrityReport:
    """Result of a checksum walk over a container — no payload decode."""

    kind: str  # "ceresz" | "sharded"
    checksummed: bool
    total_blocks: int
    corrupt_blocks: tuple[int, ...] = ()
    corrupt_groups: tuple[int, ...] = ()
    #: For CSZX containers: per-shard nested reports (index-aligned).
    shards: tuple["IntegrityReport", ...] = ()
    corrupt_shards: tuple[int, ...] = ()
    meta_ok: bool = True
    note: str = ""

    @property
    def ok(self) -> bool:
        return (
            self.meta_ok
            and not self.corrupt_blocks
            and not self.corrupt_shards
            and all(s.ok for s in self.shards)
        )

    def describe(self) -> str:
        if not self.checksummed:
            return (
                f"{self.kind}: no checksums present (pre-CRC stream); "
                "structural walk only"
                + (f" — {self.note}" if self.note else "")
            )
        if self.ok:
            return (
                f"{self.kind}: OK — {self.total_blocks} blocks verified"
            )
        parts = [f"{self.kind}: CORRUPT"]
        if not self.meta_ok:
            parts.append("header/metadata checksum failed")
        if self.corrupt_blocks:
            parts.append(
                f"{len(self.corrupt_blocks)} corrupt blocks "
                f"(first: {self.corrupt_blocks[0]})"
            )
        if self.corrupt_shards:
            parts.append(
                f"shards {list(self.corrupt_shards)} failed verification"
            )
        if self.note:
            parts.append(self.note)
        return " — ".join(parts)

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(asdict(self), indent=indent)


@dataclass(frozen=True)
class SalvageReport:
    """What a salvage decode recovered, lost, and can still guarantee."""

    total_elements: int
    total_blocks: int
    blocks_lost: int
    elements_lost: int
    lost_block_indices: tuple[int, ...] = ()
    shards_lost: tuple[int, ...] = ()
    fill: str = "zero"  # "zero" | "previous"
    #: The fill *actually applied* per contiguous lost region, as
    #: ``(first_block, stop_block, effective_fill)`` half-open spans.
    #: Under ``fill="previous"`` a corrupt leading region has no intact
    #: predecessor and falls back to zero fill — the effective fill is
    #: what tells the consumer which regions hold carried-forward values
    #: and which hold zeros.
    fill_regions: tuple[tuple[int, int, str], ...] = ()
    eps: float = 0.0
    #: Error-bound audit over the *intact* region (None when no original
    #: array was supplied to compare against).
    bound: "object | None" = None
    notes: tuple[str, ...] = ()

    @property
    def clean(self) -> bool:
        return self.blocks_lost == 0 and not self.shards_lost

    def describe(self) -> str:
        if self.clean:
            return (
                f"salvage: clean — all {self.total_blocks} blocks decoded"
            )
        lines = [
            f"salvage: lost {self.blocks_lost}/{self.total_blocks} blocks "
            f"({self.elements_lost} of {self.total_elements} elements), "
            f"fill={self.fill}"
        ]
        if self.shards_lost:
            lines.append(f"  shards lost: {list(self.shards_lost)}")
        if self.lost_block_indices:
            shown = list(self.lost_block_indices[:16])
            more = len(self.lost_block_indices) - len(shown)
            lines.append(
                "  blocks lost: "
                + ", ".join(str(i) for i in shown)
                + (f" … +{more} more" if more > 0 else "")
            )
        if self.fill_regions:
            shown = ", ".join(
                f"[{a}, {b})={eff}" for a, b, eff in self.fill_regions[:8]
            )
            more = len(self.fill_regions) - 8
            lines.append(
                "  fill regions: "
                + shown
                + (f" … +{more} more" if more > 0 else "")
            )
        if self.bound is not None:
            ok = getattr(self.bound, "count", 1) == 0
            lines.append(
                "  error bound holds on intact region"
                if ok
                else f"  error bound VIOLATED on intact region: {self.bound}"
            )
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)

    def to_json(self, indent: int | None = 2) -> str:
        payload = asdict(self)
        return json.dumps(payload, indent=indent)


@dataclass(frozen=True)
class ShardFailure:
    """One shard's terminal failure inside a resilient pool run."""

    index: int
    attempts: int
    kind: str  # "timeout" | "error"
    error: str = ""
