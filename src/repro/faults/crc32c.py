"""Pure-NumPy CRC32C (Castagnoli) with vectorized many-region support.

The container integrity layer checksums two very different shapes of data:
one large contiguous header blob, and *many* small variable-length record
groups inside a single stream buffer. A Python byte loop is fine for the
first and hopeless for the second, so this module provides

- :func:`crc32c` — single buffer, table-driven; large buffers are folded
  strip-parallel with a GF(2) shift operator so the Python-level loop runs
  over strip length, not buffer length;
- :func:`crc32c_many` — one CRC per (start, length) region of a shared
  buffer, processed column-wise across all regions at once (the same
  gather idiom :mod:`repro.core.encoding` uses to decode blocks);
- :func:`crc32c_combine` — concatenate two CRCs without touching bytes
  (the zlib ``crc32_combine`` construction, Castagnoli polynomial).

CRC32C (not zlib's CRC32) is the checksum used by iSCSI/ext4/leveldb and
the cuSZ-adjacent GPU codecs; reflected polynomial ``0x82F63B78``, init and
final XOR ``0xFFFFFFFF``. Test vector: ``crc32c(b"123456789") == 0xE3069283``.
"""

from __future__ import annotations

import numpy as np

_POLY = 0x82F63B78


def _build_table() -> np.ndarray:
    table = np.zeros(256, dtype=np.uint32)
    for i in range(256):
        crc = i
        for _ in range(8):
            crc = (crc >> 1) ^ (_POLY if crc & 1 else 0)
        table[i] = crc
    return table


_TABLE = _build_table()


# -- GF(2) zero-advance operators (zlib crc32_combine construction) --------
#
# A 32x32 GF(2) matrix is stored as 32 uint32 columns: mat[i] is the image
# of basis vector 1<<i. All operators are powers of the one-bit shift, so
# they commute and composition order is irrelevant.

def _gf2_times(mat, vec: int) -> int:
    total = 0
    i = 0
    while vec:
        if vec & 1:
            total ^= int(mat[i])
        vec >>= 1
        i += 1
    return total


def _gf2_square(mat):
    return [_gf2_times(mat, int(mat[i])) for i in range(32)]


def _one_byte_operator():
    odd = [0] * 32
    odd[0] = _POLY  # operator for one zero bit
    row = 1
    for i in range(1, 32):
        odd[i] = row
        row <<= 1
    even = _gf2_square(odd)   # 2 zero bits
    odd = _gf2_square(even)   # 4 zero bits
    return _gf2_square(odd)   # 8 zero bits = one zero byte


_BYTE_OP = _one_byte_operator()
_ZERO_OPS: dict[int, list[int]] = {}


def _zeros_operator(nbytes: int) -> list[int]:
    """Operator advancing a CRC across ``nbytes`` zero bytes."""
    cached = _ZERO_OPS.get(nbytes)
    if cached is not None:
        return cached
    mat = None
    op = _BYTE_OP
    n = nbytes
    while n:
        if n & 1:
            mat = op if mat is None else [
                _gf2_times(op, mat[i]) for i in range(32)
            ]
        n >>= 1
        if n:
            op = _gf2_square(op)
    if mat is None:
        mat = [1 << i for i in range(32)]
    if len(_ZERO_OPS) < 64:  # bound the cache; lengths repeat in practice
        _ZERO_OPS[nbytes] = mat
    return mat


def crc32c_combine(crc1: int, crc2: int, len2: int) -> int:
    """CRC of ``A ++ B`` given ``crc32c(A)``, ``crc32c(B)``, and ``len(B)``."""
    if len2 <= 0:
        return crc1 & 0xFFFFFFFF
    return (_gf2_times(_zeros_operator(len2), crc1) ^ crc2) & 0xFFFFFFFF


# -- single-buffer CRC ------------------------------------------------------

_STRIP_THRESHOLD = 1 << 13  # 8 KiB: below this a plain byte loop wins
_NUM_STRIPS = 64


def _crc_bytes(buf: np.ndarray, reg: int) -> int:
    """Scalar table loop over a uint8 array, register pre-inverted."""
    table = _TABLE
    for b in buf:
        reg = int(table[(reg ^ int(b)) & 0xFF]) ^ (reg >> 8)
    return reg


def crc32c(data, crc: int = 0) -> int:
    """CRC32C of ``data``, optionally continuing from a previous value."""
    if isinstance(data, np.ndarray):
        buf = np.ascontiguousarray(data).view(np.uint8).reshape(-1)
    else:
        buf = np.frombuffer(bytes(data), dtype=np.uint8)
    n = buf.size
    if n == 0:
        return crc & 0xFFFFFFFF
    if n < _STRIP_THRESHOLD:
        return (_crc_bytes(buf, (crc & 0xFFFFFFFF) ^ 0xFFFFFFFF)
                ^ 0xFFFFFFFF) & 0xFFFFFFFF
    # Strip-parallel: CRC 64 equal strips column-wise in one vectorized
    # loop (strip_len iterations, not n), then fold left-to-right with the
    # cached zero-advance operator.
    strip_len = n // _NUM_STRIPS
    head_len = _NUM_STRIPS * strip_len
    body = buf[:head_len].reshape(_NUM_STRIPS, strip_len)
    regs = np.full(_NUM_STRIPS, 0xFFFFFFFF, dtype=np.uint32)
    for j in range(strip_len):
        regs = _TABLE[(regs ^ body[:, j]) & np.uint32(0xFF)] ^ (
            regs >> np.uint32(8)
        )
    crcs = regs ^ np.uint32(0xFFFFFFFF)
    total = int(crcs[0])
    for i in range(1, _NUM_STRIPS):
        total = crc32c_combine(total, int(crcs[i]), strip_len)
    out = crc32c_combine(crc & 0xFFFFFFFF, total, head_len) if crc else total
    tail = buf[head_len:]
    if tail.size:
        out = (_crc_bytes(tail, out ^ 0xFFFFFFFF) ^ 0xFFFFFFFF) & 0xFFFFFFFF
    return out


# -- many-region CRC --------------------------------------------------------

def crc32c_many(buf, starts, lengths, init=None) -> np.ndarray:
    """CRC32C of many ``(start, length)`` regions of one buffer at once.

    Processes byte column ``j`` of every still-active region in a single
    vectorized step, so the Python loop runs ``max(lengths)`` times rather
    than ``sum(lengths)`` — the same column-wise gather trick the block
    decoder uses. ``init`` optionally seeds each region with a running CRC
    (for split coverage like "fl slice ++ record slice").
    """
    if isinstance(buf, np.ndarray):
        data = np.ascontiguousarray(buf).view(np.uint8).reshape(-1)
    else:
        data = np.frombuffer(buf, dtype=np.uint8)
    starts = np.asarray(starts, dtype=np.int64)
    lengths = np.asarray(lengths, dtype=np.int64)
    m = starts.size
    if init is None:
        regs = np.full(m, 0xFFFFFFFF, dtype=np.uint32)
    else:
        regs = np.asarray(init, dtype=np.uint32) ^ np.uint32(0xFFFFFFFF)
    if m == 0:
        return regs
    if (lengths < 0).any() or (starts < 0).any():
        raise ValueError("negative region start or length")
    max_len = int(lengths.max(initial=0))
    if max_len:
        end = int((starts + lengths).max())
        if end > data.size:
            raise ValueError(
                f"region extends to byte {end} but buffer has {data.size}"
            )
    for j in range(max_len):
        active = lengths > j
        if not active.any():
            break
        cols = data[starts[active] + j]
        sub = regs[active]
        regs[active] = _TABLE[(sub ^ cols) & np.uint32(0xFF)] ^ (
            sub >> np.uint32(8)
        )
    return regs ^ np.uint32(0xFFFFFFFF)
