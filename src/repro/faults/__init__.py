"""Fault injection, container integrity, and recovery reports.

The robustness layer of the reproduction (ISSUE 5): deterministic fault
plans for the WSE simulator, CRC32C container integrity, and the
structured reports (:class:`FaultReport`, :class:`IntegrityReport`,
:class:`SalvageReport`) that make detection and recovery observable.
"""

from repro.faults.crc32c import crc32c, crc32c_combine, crc32c_many
from repro.faults.inject import FaultInjector, build_fault_report
from repro.faults.plan import (
    FAULT_KINDS,
    FaultPlan,
    LinkDown,
    PEHalt,
    SramBitFlip,
    WaveletDrop,
    WaveletDup,
    parse_fault_spec,
)
from repro.faults.repair import (
    FaultClassification,
    RepairReport,
    RowRepair,
    classify_faults,
    drop_rows,
    remap_rows,
    row_blocks,
    spare_rows,
    used_rows,
)
from repro.faults.report import (
    FaultReport,
    InjectedFault,
    IntegrityReport,
    SalvageReport,
    ShardFailure,
    StuckTransfer,
)

__all__ = [
    "FAULT_KINDS",
    "FaultClassification",
    "FaultInjector",
    "FaultPlan",
    "FaultReport",
    "InjectedFault",
    "IntegrityReport",
    "LinkDown",
    "PEHalt",
    "RepairReport",
    "RowRepair",
    "SalvageReport",
    "ShardFailure",
    "SramBitFlip",
    "StuckTransfer",
    "WaveletDrop",
    "WaveletDup",
    "build_fault_report",
    "classify_faults",
    "crc32c",
    "crc32c_combine",
    "crc32c_many",
    "drop_rows",
    "parse_fault_spec",
    "remap_rows",
    "row_blocks",
    "spare_rows",
    "used_rows",
]
