"""Fault injection, container integrity, and recovery reports.

The robustness layer of the reproduction (ISSUE 5): deterministic fault
plans for the WSE simulator, CRC32C container integrity, and the
structured reports (:class:`FaultReport`, :class:`IntegrityReport`,
:class:`SalvageReport`) that make detection and recovery observable.
"""

from repro.faults.crc32c import crc32c, crc32c_combine, crc32c_many
from repro.faults.inject import FaultInjector, build_fault_report
from repro.faults.plan import (
    FAULT_KINDS,
    FaultPlan,
    LinkDown,
    PEHalt,
    SramBitFlip,
    WaveletDrop,
    WaveletDup,
    parse_fault_spec,
)
from repro.faults.report import (
    FaultReport,
    InjectedFault,
    IntegrityReport,
    SalvageReport,
    ShardFailure,
    StuckTransfer,
)

__all__ = [
    "FAULT_KINDS",
    "FaultInjector",
    "FaultPlan",
    "FaultReport",
    "InjectedFault",
    "IntegrityReport",
    "LinkDown",
    "PEHalt",
    "SalvageReport",
    "ShardFailure",
    "SramBitFlip",
    "StuckTransfer",
    "WaveletDrop",
    "WaveletDup",
    "build_fault_report",
    "crc32c",
    "crc32c_combine",
    "crc32c_many",
    "parse_fault_spec",
]
