"""Fault injection hooks for the discrete-event engine.

:class:`FaultInjector` is the runtime half of a :class:`FaultPlan`: the
engine consults it at the three points where hardware can misbehave —
timed events (PE halts, SRAM bit flips), wavelet delivery (drops and
duplicates, counted per receiving PE), and route resolution (dead links).
Every fault that actually fires is appended to :attr:`log` as an
:class:`~repro.faults.report.InjectedFault`, which is the provenance that
ends up in the :class:`~repro.faults.report.FaultReport` when the injected
fault wedges the program.

The injector is engine-local state; for row-partitioned simulation each
worker builds its own injector from ``plan.for_rows(rows)`` so the logs
merge disjointly and deterministically.
"""

from __future__ import annotations

from repro.faults.plan import FaultPlan
from repro.faults.report import FaultReport, InjectedFault, StuckTransfer

_DIRECTION_NAMES = {
    "N": "north", "S": "south", "E": "east", "W": "west",
    "NORTH": "north", "SOUTH": "south", "EAST": "east", "WEST": "west",
    "RAMP": "ramp",
}


class FaultInjector:
    """Applies a :class:`FaultPlan` to one engine run and logs what fired."""

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self.log: list[InjectedFault] = []
        #: Stalls the engine diagnosed into a FaultReport (the
        #: ``faults.detected`` metric).
        self.detected = 0
        self.halted: set[tuple[int, int]] = set()
        # Delivery-count faults, keyed by receiving PE + color; counts are
        # tracked only for faulted keys so clean traffic pays one dict miss.
        self._drops: dict[tuple[int, int, int], set[int]] = {}
        self._dups: dict[tuple[int, int, int], set[int]] = {}
        self._delivery_counts: dict[tuple[int, int, int], int] = {}
        for f in plan.faults:
            if f.kind == "drop":
                self._drops.setdefault(
                    (f.row, f.col, f.color_id), set()
                ).add(f.nth)
            elif f.kind == "dup":
                self._dups.setdefault(
                    (f.row, f.col, f.color_id), set()
                ).add(f.nth)

    # -- engine wiring ----------------------------------------------------------

    def install(self, engine) -> None:
        """Arm timed faults and dead links on ``engine``'s fabric.

        Coordinates and link directions are validated against the fabric's
        mesh shape first (:meth:`FaultPlan.validate_mesh`), so a fault
        plan aimed at the wrong mesh fails structurally — naming the
        offending fault — before anything is armed.
        """
        from repro.wse.wavelet import Direction

        fabric = engine.fabric
        self.plan.validate_mesh(fabric.rows, fabric.cols)
        for f in self.plan.faults:
            if f.kind in ("halt", "flip"):
                engine.schedule_fault(f, float(f.at_cycle))
            elif f.kind == "link":
                name = _DIRECTION_NAMES[f.direction.upper()]
                fabric.break_link(f.row, f.col, Direction(name))

    # -- hooks called by the engine ---------------------------------------------

    def apply_timed(self, engine, fault, time: float) -> None:
        """Fire a halt or bit-flip fault at its scheduled cycle."""
        pe = engine.fabric.pe(fault.row, fault.col)
        if fault.kind == "halt":
            pe.halted = True
            pe.pending.clear()
            self.halted.add((fault.row, fault.col))
            self.log.append(
                InjectedFault(
                    kind="halt", row=fault.row, col=fault.col,
                    cycle=int(fault.at_cycle),
                )
            )
        elif fault.kind == "flip":
            flipped = pe.flip_bit(fault.buffer, fault.bit)
            detail = (
                f"buffer {fault.buffer!r} bit {fault.bit}"
                if flipped
                else f"buffer {fault.buffer!r} absent or too small (no-op)"
            )
            self.log.append(
                InjectedFault(
                    kind="flip", row=fault.row, col=fault.col,
                    cycle=int(fault.at_cycle), detail=detail,
                )
            )

    def on_deliver(self, pe, color_id: int) -> int:
        """How many copies of this delivery reach the PE (1 = clean)."""
        key = (pe.row, pe.col, color_id)
        drops = self._drops.get(key)
        dups = self._dups.get(key)
        if drops is None and dups is None:
            return 1
        n = self._delivery_counts.get(key, 0) + 1
        self._delivery_counts[key] = n
        if drops and n in drops:
            self.log.append(
                InjectedFault(
                    kind="drop", row=pe.row, col=pe.col, cycle=-1,
                    detail=f"color {color_id} delivery #{n}",
                )
            )
            return 0
        if dups and n in dups:
            self.log.append(
                InjectedFault(
                    kind="dup", row=pe.row, col=pe.col, cycle=-1,
                    detail=f"color {color_id} delivery #{n}",
                )
            )
            return 2
        return 1

    def on_link_drop(self, row: int, col: int, color_id: int) -> None:
        """A wavelet hit a broken link and vanished."""
        self.log.append(
            InjectedFault(
                kind="link", row=row, col=col, cycle=-1,
                detail=f"color {color_id} dropped at dead link",
            )
        )

    # -- diagnosis ---------------------------------------------------------------

    def quiesce_stuck(self, engine) -> list[StuckTransfer]:
        """Undelivered inbox data at injection-halted PEs.

        A halted PE never posts its receives, so arriving data piles up in
        its inbox without creating the pending descriptors the quiesce
        check looks at — silent data loss. Reported as ``kind="inbox"``
        stuck transfers (extent = queued deliveries, posted_at = the halt
        cycle) so the stall is detected instead of surfacing later as
        missing output blocks.
        """
        if not self.halted:
            return []
        halt_cycles = {
            (f.row, f.col): f.at_cycle
            for f in self.plan.faults
            if f.kind == "halt"
        }
        stuck: list[StuckTransfer] = []
        for (r, c) in sorted(self.halted):
            pe = engine.fabric.pe(r, c)
            for cid, queue in sorted(pe.inbox.items()):
                if queue:
                    stuck.append(
                        StuckTransfer(
                            row=r, col=c, color_id=cid, kind="inbox",
                            extent=len(queue), buffer="",
                            posted_at=int(halt_cycles.get((r, c), 0)),
                        )
                    )
        return stuck

    def build_report(self, engine, reason: str) -> FaultReport:
        """Structured stall diagnosis; also counts detections.

        Detections are counted per *stuck row* (minimum one), not per
        engine: a serial run diagnosing rows 1 and 3 in one DeadlockError
        and a partitioned run where two workers each diagnose one row must
        publish the same ``faults.detected`` total.
        """
        report = build_fault_report(engine, reason, injector=self)
        self.detected += max(1, len({s.row for s in report.stuck}))
        return report


def _stuck_key(s: StuckTransfer):
    return (s.row, s.col, s.color_id, s.kind, s.posted_at, s.extent, s.buffer)


def _injected_key(f: InjectedFault):
    return (f.cycle, f.row, f.col, f.kind, f.detail)


def build_fault_report(engine, reason: str, injector=None) -> FaultReport:
    """Diagnose a stalled engine into a :class:`FaultReport`.

    Works with or without an injector (a stall needs no injected fault).
    ``last_progress_cycle`` uses only row-local facts — descriptor posting
    cycles and injected-fault cycles — so partitioned and serial runs of
    the same plan produce the identical report.
    """
    stuck: list[StuckTransfer] = []
    for (r, c, cid), queue in sorted(engine._recv.items()):
        for p in queue:
            stuck.append(
                StuckTransfer(
                    row=r, col=c, color_id=cid, kind="recv",
                    extent=p.extent, buffer=p.dst.buffer,
                    posted_at=int(p.posted_at),
                )
            )
    for (r, c, cid), queue in sorted(engine._relay.items()):
        for p in queue:
            stuck.append(
                StuckTransfer(
                    row=r, col=c, color_id=cid, kind="relay",
                    extent=p.extent, buffer="",
                    posted_at=int(p.posted_at),
                )
            )
    if injector is not None:
        stuck.extend(injector.quiesce_stuck(engine))
    # Canonical ordering (not chronological): the report must be identical
    # whether it was built by one engine or merged from row partitions.
    stuck.sort(key=_stuck_key)
    injected: tuple[InjectedFault, ...] = ()
    halted: tuple[tuple[int, int], ...] = ()
    seed = None
    if injector is not None:
        injected = tuple(sorted(injector.log, key=_injected_key))
        halted = tuple(sorted(injector.halted))
        seed = injector.plan.seed
    progress = 0
    for s in stuck:
        progress = max(progress, s.posted_at)
    for f in injected:
        progress = max(progress, f.cycle)
    return FaultReport(
        reason=reason,
        last_progress_cycle=progress,
        stuck=tuple(stuck),
        halted_pes=halted,
        injected=injected,
        seed=seed,
    )
