"""Deterministic fault plans for the WSE simulator.

A :class:`FaultPlan` is a seeded, immutable list of faults to inject into a
simulation run. Determinism is the whole point: the same plan produces the
same stall, the same :class:`~repro.faults.report.FaultReport`, and the same
``faults.*`` metric counts whether the mesh is simulated in one process or
split row-wise across four — so mapping-level failure modes become
reproducible test fixtures instead of flaky hypotheticals.

Every fault is located by PE coordinate (and, for wavelet faults, counted
in *deliveries at that PE*, not global events), which makes a plan a pure
row filter under :func:`repro.core.plan.split_rows` partitioning: workers
see exactly the faults whose ``row`` they own and nothing else.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import ReproError

FAULT_KINDS = ("halt", "drop", "dup", "flip", "link")


@dataclass(frozen=True)
class PEHalt:
    """PE (row, col) stops running tasks at ``at_cycle``.

    Models a hard-failed core: queued and future task activations on the PE
    are discarded, which typically starves every consumer downstream of it.
    """

    row: int
    col: int
    at_cycle: int
    kind: str = field(default="halt", init=False)


@dataclass(frozen=True)
class WaveletDrop:
    """The ``nth`` wavelet delivery of ``color_id`` AT PE (row, col) is lost.

    Counted per receiving PE (1-based) so the fault is row-local and
    partition-invariant. Models a flaky link or router bit-error that
    discards one flit.
    """

    row: int
    col: int
    color_id: int
    nth: int
    kind: str = field(default="drop", init=False)


@dataclass(frozen=True)
class WaveletDup:
    """The ``nth`` wavelet delivery of ``color_id`` AT PE (row, col) arrives
    twice. Models a retransmission bug; duplicates corrupt stream framing
    or over-fill receive buffers."""

    row: int
    col: int
    color_id: int
    nth: int
    kind: str = field(default="dup", init=False)


@dataclass(frozen=True)
class SramBitFlip:
    """Bit ``bit`` of the named mem1d ``buffer`` on PE (row, col) flips at
    ``at_cycle``. Models an SEU in SRAM; surfaces as wrong output data (the
    codec's CRC layer is what catches it downstream)."""

    row: int
    col: int
    buffer: str
    bit: int
    at_cycle: int
    kind: str = field(default="flip", init=False)


@dataclass(frozen=True)
class LinkDown:
    """Every wavelet whose resolved route enters PE (row, col) moving in
    ``direction`` is dropped. Models a dead fabric link."""

    row: int
    col: int
    direction: str  # one of "N", "S", "E", "W", entering-direction
    kind: str = field(default="link", init=False)


Fault = PEHalt | WaveletDrop | WaveletDup | SramBitFlip | LinkDown


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, ordered set of faults to inject into one simulation."""

    seed: int
    faults: tuple[Fault, ...] = ()

    def __post_init__(self):
        for f in self.faults:
            if f.kind not in FAULT_KINDS:
                raise ReproError(f"unknown fault kind {f.kind!r}")

    def validate_mesh(self, rows: int, cols: int) -> "FaultPlan":
        """Check every fault's coordinates against a ``rows x cols`` mesh.

        Raises a structured :class:`~repro.errors.ReproError` naming the
        offending fault — at plan-installation time, not as a late
        ``KeyError`` (or silent no-op) deep inside the engine. Link
        directions are validated here too, for the same reason. Returns
        ``self`` so call sites can chain.
        """
        for f in self.faults:
            if not (0 <= f.row < rows and 0 <= f.col < cols):
                raise ReproError(
                    f"fault targets PE({f.row},{f.col}) outside the "
                    f"{rows}x{cols} mesh: {_describe_fault(f)}"
                )
            if f.kind == "link" and f.direction.upper() not in (
                "N", "S", "E", "W",
                "NORTH", "SOUTH", "EAST", "WEST", "RAMP",
            ):
                raise ReproError(
                    f"bad link direction {f.direction!r} (use N/S/E/W): "
                    f"{_describe_fault(f)}"
                )
        return self

    def for_rows(self, rows) -> "FaultPlan":
        """The sub-plan visible to a partition owning ``rows``.

        Pure row filter — sub-plans keep original coordinates, matching how
        :func:`repro.core.plan.split_rows` partitions a mesh.
        """
        rowset = frozenset(int(r) for r in rows)
        return FaultPlan(
            seed=self.seed,
            faults=tuple(f for f in self.faults if f.row in rowset),
        )

    def describe(self) -> str:
        if not self.faults:
            return f"FaultPlan(seed={self.seed}, no faults)"
        lines = [f"FaultPlan(seed={self.seed}, {len(self.faults)} faults)"]
        for f in self.faults:
            lines.append(f"  - {_describe_fault(f)}")
        return "\n".join(lines)

    @staticmethod
    def random(
        seed: int,
        rows: int,
        cols: int,
        *,
        n_halts: int = 1,
        n_drops: int = 1,
        n_flips: int = 0,
        max_cycle: int = 5_000,
        buffers: tuple[str, ...] = (),
    ) -> "FaultPlan":
        """A reproducible random plan over a ``rows`` x ``cols`` mesh.

        Same arguments → same plan, always: the generator is a private
        :class:`random.Random` seeded with ``seed`` and nothing else.
        """
        rng = random.Random(seed)
        faults: list[Fault] = []
        for _ in range(n_halts):
            faults.append(
                PEHalt(
                    row=rng.randrange(rows),
                    col=rng.randrange(cols),
                    at_cycle=rng.randrange(1, max_cycle),
                )
            )
        for _ in range(n_drops):
            faults.append(
                WaveletDrop(
                    row=rng.randrange(rows),
                    col=rng.randrange(cols),
                    color_id=rng.randrange(24),
                    nth=rng.randrange(1, 16),
                )
            )
        for _ in range(n_flips):
            buf = rng.choice(buffers) if buffers else "raw"
            faults.append(
                SramBitFlip(
                    row=rng.randrange(rows),
                    col=rng.randrange(cols),
                    buffer=buf,
                    bit=rng.randrange(256),
                    at_cycle=rng.randrange(1, max_cycle),
                )
            )
        return FaultPlan(seed=seed, faults=tuple(faults))


def _describe_fault(f: Fault) -> str:
    if f.kind == "halt":
        return f"halt PE({f.row},{f.col}) at cycle {f.at_cycle}"
    if f.kind == "drop":
        return (
            f"drop delivery #{f.nth} of color {f.color_id} "
            f"at PE({f.row},{f.col})"
        )
    if f.kind == "dup":
        return (
            f"duplicate delivery #{f.nth} of color {f.color_id} "
            f"at PE({f.row},{f.col})"
        )
    if f.kind == "flip":
        return (
            f"flip bit {f.bit} of buffer {f.buffer!r} on "
            f"PE({f.row},{f.col}) at cycle {f.at_cycle}"
        )
    return f"link into PE({f.row},{f.col}) from {f.direction} down"


def parse_fault_spec(spec: str, mesh: tuple[int, int] | None = None) -> FaultPlan:
    """Parse the CLI fault mini-language into a :class:`FaultPlan`.

    Grammar (``;``-separated, whitespace ignored)::

        seed:S
        halt:R,C@CYCLE
        drop:R,C,COLOR#NTH
        dup:R,C,COLOR#NTH
        flip:R,C,BUFFER,BIT@CYCLE
        link:R,C,DIR
        random:R,C[,halts=H][,drops=D][,flips=F]    (no mesh context)
        random:SEED,N                               (mesh context given)

    Example: ``"seed:7;halt:1,2@400;drop:0,3,5#2"``.

    ``mesh=(rows, cols)`` supplies the target mesh shape. With it,
    ``random:`` segments no longer need the mesh spelled into the spec:
    ``random:SEED,N`` draws ``N`` faults over the whole mesh from
    :meth:`FaultPlan.random`, seeded with ``SEED`` (alternating halts and
    drops: ``ceil(N/2)`` halts, ``floor(N/2)`` drops). The mesh also
    validates every explicit coordinate at parse time via
    :meth:`FaultPlan.validate_mesh`, so a typo'd PE fails here with the
    offending fault named instead of stalling a simulation later.
    """
    seed = 0
    seed_given = False
    faults: list[Fault] = []
    randoms: list[tuple] = []
    for raw in spec.split(";"):
        part = raw.strip()
        if not part:
            continue
        try:
            kind, _, rest = part.partition(":")
            kind = kind.strip().lower()
            if kind == "seed":
                seed = int(rest)
                seed_given = True
            elif kind == "halt":
                loc, _, cyc = rest.partition("@")
                r, c = (int(x) for x in loc.split(","))
                faults.append(PEHalt(row=r, col=c, at_cycle=int(cyc)))
            elif kind in ("drop", "dup"):
                loc, _, nth = rest.partition("#")
                r, c, color = (int(x) for x in loc.split(","))
                cls = WaveletDrop if kind == "drop" else WaveletDup
                faults.append(
                    cls(row=r, col=c, color_id=color, nth=int(nth or 1))
                )
            elif kind == "flip":
                loc, _, cyc = rest.partition("@")
                r, c, buf, bit = (x.strip() for x in loc.split(","))
                faults.append(
                    SramBitFlip(
                        row=int(r), col=int(c), buffer=buf,
                        bit=int(bit), at_cycle=int(cyc),
                    )
                )
            elif kind == "link":
                r, c, direction = (x.strip() for x in rest.split(","))
                faults.append(
                    LinkDown(row=int(r), col=int(c),
                             direction=direction.upper())
                )
            elif kind == "random":
                randoms.append(tuple(rest.split(",")))
            else:
                raise ValueError(f"unknown fault kind {kind!r}")
        except (ValueError, TypeError) as exc:
            raise ReproError(
                f"bad fault spec segment {part!r}: {exc}"
            ) from None
    for args in randoms:
        try:
            if mesh is not None:
                # Mesh context: random:SEED,N — the mesh shape comes from
                # the caller, the segment carries seed and fault count.
                if len(args) != 2 or "=" in args[0] or "=" in args[1]:
                    raise ValueError(
                        "with a mesh context, random takes 'SEED,N'"
                    )
                rseed, n = int(args[0]), int(args[1])
                if n < 0:
                    raise ValueError(f"fault count must be >= 0, got {n}")
                rows, cols = int(mesh[0]), int(mesh[1])
                rand = FaultPlan.random(
                    rseed, rows, cols,
                    n_halts=(n + 1) // 2, n_drops=n // 2,
                )
                if not seed_given:
                    seed = rseed
            else:
                rows, cols = int(args[0]), int(args[1])
                kw = {}
                for extra in args[2:]:
                    key, _, val = extra.partition("=")
                    kw["n_" + key.strip()] = int(val)
                rand = FaultPlan.random(seed, rows, cols, **kw)
        except (ValueError, TypeError) as exc:
            raise ReproError(
                f"bad fault spec segment 'random:{','.join(args)}': {exc}"
            ) from None
        faults.extend(rand.faults)
    plan = FaultPlan(seed=seed, faults=tuple(faults))
    if mesh is not None:
        plan.validate_mesh(int(mesh[0]), int(mesh[1]))
    return plan
