"""Reconstruction quality metrics: PSNR, SSIM, NRMSE.

Definitions follow the data-reduction community's conventions (the paper
cites Z-checker for PSNR and Wang et al. 2004 for SSIM):

* PSNR uses the *value range* as the peak (scientific data is not 8-bit
  imagery): ``20 log10(range) - 10 log10(mse)``;
* SSIM is the mean local SSIM over sliding windows with the standard
  Gaussian-free uniform 7-wide window and K1 = 0.01, K2 = 0.03, again with
  the value range as the dynamic range ``L``.

The paper's Fig 15 reports PSNR 84.77 dB and SSIM 0.9996 on NYX velocity_x
at REL 1e-4 — identical for CereSZ and cuSZp because both quantize
identically; our Fig 15 bench asserts the same *parity* property.
"""

from __future__ import annotations

import numpy as np
from scipy.ndimage import uniform_filter

from repro.errors import ReproError


def _pair(original: np.ndarray, reconstructed: np.ndarray):
    a = np.asarray(original, dtype=np.float64)
    b = np.asarray(reconstructed, dtype=np.float64)
    if a.shape != b.shape:
        raise ReproError(
            f"shape mismatch: original {a.shape} vs reconstructed {b.shape}"
        )
    if a.size == 0:
        raise ReproError("quality metrics need non-empty arrays")
    return a, b


def psnr(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """Peak signal-to-noise ratio in dB (range-based peak).

    Returns ``inf`` for an exact reconstruction.
    """
    a, b = _pair(original, reconstructed)
    mse = float(np.mean((a - b) ** 2))
    if mse == 0.0:
        return float("inf")
    vrange = float(a.max() - a.min())
    if vrange == 0.0:
        raise ReproError("PSNR undefined for a constant original field")
    return 20.0 * np.log10(vrange) - 10.0 * np.log10(mse)


def nrmse(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """Root-mean-square error normalized by the value range."""
    a, b = _pair(original, reconstructed)
    vrange = float(a.max() - a.min())
    if vrange == 0.0:
        raise ReproError("NRMSE undefined for a constant original field")
    return float(np.sqrt(np.mean((a - b) ** 2))) / vrange


def ssim(
    original: np.ndarray,
    reconstructed: np.ndarray,
    *,
    window: int = 7,
    k1: float = 0.01,
    k2: float = 0.03,
) -> float:
    """Mean structural similarity over uniform sliding windows.

    Works for 1-D, 2-D, and 3-D fields (the window is isotropic). Values
    are in [-1, 1]; 1.0 means structurally identical.
    """
    a, b = _pair(original, reconstructed)
    if window < 2:
        raise ReproError(f"SSIM window must be >= 2, got {window}")
    if min(a.shape) < window:
        raise ReproError(
            f"field shape {a.shape} smaller than SSIM window {window}"
        )
    vrange = float(a.max() - a.min())
    if vrange == 0.0:
        raise ReproError("SSIM undefined for a constant original field")
    c1 = (k1 * vrange) ** 2
    c2 = (k2 * vrange) ** 2

    mu_a = uniform_filter(a, size=window)
    mu_b = uniform_filter(b, size=window)
    mu_a2 = mu_a * mu_a
    mu_b2 = mu_b * mu_b
    mu_ab = mu_a * mu_b
    sigma_a2 = uniform_filter(a * a, size=window) - mu_a2
    sigma_b2 = uniform_filter(b * b, size=window) - mu_b2
    sigma_ab = uniform_filter(a * b, size=window) - mu_ab

    numerator = (2.0 * mu_ab + c1) * (2.0 * sigma_ab + c2)
    denominator = (mu_a2 + mu_b2 + c1) * (sigma_a2 + sigma_b2 + c2)
    # Trim the border where the window hangs off the field (filter padding
    # would otherwise bias the mean).
    half = window // 2
    core = tuple(slice(half, s - half) for s in a.shape)
    ssim_map = numerator[core] / denominator[core]
    return float(ssim_map.mean())
