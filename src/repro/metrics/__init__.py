"""Quality and efficiency metrics for lossy compression (paper Section 5.1.4).

* throughput — bytes of original data per second (computed by the perf
  models, reported by the harness);
* compression ratio and bit rate — :mod:`repro.metrics.ratio`;
* PSNR and SSIM — :mod:`repro.metrics.quality`;
* error-bound verification — :mod:`repro.metrics.errorbound`.
"""

from repro.metrics.quality import psnr, ssim, nrmse
from repro.metrics.ratio import compression_ratio, bit_rate
from repro.metrics.errorbound import max_abs_error, check_error_bound
from repro.metrics.ratedistortion import rate_distortion_curve, RatePoint
from repro.metrics.visualize import error_map, slice_of, write_pgm

__all__ = [
    "psnr",
    "ssim",
    "nrmse",
    "compression_ratio",
    "bit_rate",
    "max_abs_error",
    "check_error_bound",
    "rate_distortion_curve",
    "RatePoint",
    "error_map",
    "slice_of",
    "write_pgm",
]
