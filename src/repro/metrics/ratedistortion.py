"""Rate-distortion analysis (paper Section 5.4).

A rate-distortion curve plots reconstruction quality (PSNR or SSIM) against
bit rate (bits per element). Compressors that share the pre-quantization
design (CereSZ, cuSZp, FZ-GPU, cuSZ) produce *identical* reconstructions at
a given error bound, so their curves differ only horizontally — by their
ratios. The paper's Observation 3: CereSZ's curve is slightly right-shifted
(compromised) versus cuSZp because of the 4-byte block headers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.metrics.quality import psnr, ssim
from repro.metrics.ratio import bit_rate


@dataclass(frozen=True)
class RatePoint:
    """One point of a rate-distortion curve."""

    eps: float
    bit_rate: float
    psnr: float
    ssim: float | None = None


def rate_distortion_curve(
    compressor,
    data: np.ndarray,
    rel_bounds,
    *,
    with_ssim: bool = False,
) -> list[RatePoint]:
    """Sweep REL bounds and collect (bit rate, PSNR[, SSIM]) points.

    ``compressor`` is anything with the :class:`repro.core.compressor.CereSZ`
    interface (``compress(data, rel=...)`` returning an object with
    ``stream``/``eps``, and ``decompress``).
    """
    arr = np.asarray(data)
    points: list[RatePoint] = []
    for rel in rel_bounds:
        result = compressor.compress(arr, rel=rel)
        restored = compressor.decompress(result.stream)
        points.append(
            RatePoint(
                eps=result.eps,
                bit_rate=bit_rate(arr.size, len(result.stream)),
                psnr=psnr(arr, restored),
                ssim=ssim(arr, restored) if with_ssim else None,
            )
        )
    return points
