"""Pointwise error-bound verification.

The defining contract of an error-bounded compressor: every reconstructed
value is within ``eps`` of its original. These helpers compare in float64 so
the check itself never introduces rounding slack.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ReproError


@dataclass(frozen=True)
class BoundViolation:
    """Where (flat indices) and how badly a reconstruction breaks the bound.

    ``count == 0`` means the bound holds everywhere it was checked;
    ``checked`` records how many points that was (salvage audits exclude
    lost elements, so it can be less than the field size).
    """

    eps: float
    count: int
    checked: int
    first_index: int = -1
    max_error: float = 0.0

    @property
    def ok(self) -> bool:
        return self.count == 0

    def __str__(self) -> str:
        if self.ok:
            return f"bound {self.eps:g} holds on {self.checked} points"
        return (
            f"bound {self.eps:g} violated at {self.count} of "
            f"{self.checked} points (first flat index {self.first_index}, "
            f"max error {self.max_error:g})"
        )


def max_abs_error(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """The largest pointwise |original - reconstructed| (float64)."""
    a = np.asarray(original, dtype=np.float64)
    b = np.asarray(reconstructed, dtype=np.float64)
    if a.shape != b.shape:
        raise ReproError(
            f"shape mismatch: original {a.shape} vs reconstructed {b.shape}"
        )
    if a.size == 0:
        raise ReproError("error bound check on empty arrays")
    return float(np.max(np.abs(a - b)))


def check_error_bound(
    original: np.ndarray, reconstructed: np.ndarray, eps: float
) -> bool:
    """True iff every point honors the absolute bound ``eps``."""
    if eps < 0:
        raise ReproError(f"negative error bound {eps}")
    return max_abs_error(original, reconstructed) <= eps


def violation_count(
    original: np.ndarray, reconstructed: np.ndarray, eps: float
) -> int:
    """Number of points exceeding the bound (0 for a compliant stream)."""
    a = np.asarray(original, dtype=np.float64)
    b = np.asarray(reconstructed, dtype=np.float64)
    if a.shape != b.shape:
        raise ReproError("shape mismatch in violation_count")
    return int(np.count_nonzero(np.abs(a - b) > eps))


def locate_bound_violations(
    original: np.ndarray,
    reconstructed: np.ndarray,
    eps: float,
    mask: np.ndarray | None = None,
) -> BoundViolation:
    """Full audit: where the bound breaks, not just whether.

    ``mask`` (flat, boolean) restricts the audit to the True positions —
    the salvage path passes the intact-element mask so zero-filled lost
    blocks don't read as violations of a bound they never promised.
    """
    if eps < 0:
        raise ReproError(f"negative error bound {eps}")
    a = np.asarray(original, dtype=np.float64).reshape(-1)
    b = np.asarray(reconstructed, dtype=np.float64).reshape(-1)
    if a.shape != b.shape:
        raise ReproError(
            f"shape mismatch: original {a.shape} vs reconstructed {b.shape}"
        )
    err = np.abs(a - b)
    if mask is not None:
        mask = np.asarray(mask, dtype=bool).reshape(-1)
        if mask.shape != a.shape:
            raise ReproError(
                f"mask shape {mask.shape} does not match data {a.shape}"
            )
        err = np.where(mask, err, 0.0)
        checked = int(np.count_nonzero(mask))
    else:
        checked = a.size
    bad = np.nonzero(err > eps)[0]
    return BoundViolation(
        eps=float(eps),
        count=int(bad.size),
        checked=checked,
        first_index=int(bad[0]) if bad.size else -1,
        max_error=float(err.max()) if err.size else 0.0,
    )
