"""Pointwise error-bound verification.

The defining contract of an error-bounded compressor: every reconstructed
value is within ``eps`` of its original. These helpers compare in float64 so
the check itself never introduces rounding slack.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ReproError


def max_abs_error(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """The largest pointwise |original - reconstructed| (float64)."""
    a = np.asarray(original, dtype=np.float64)
    b = np.asarray(reconstructed, dtype=np.float64)
    if a.shape != b.shape:
        raise ReproError(
            f"shape mismatch: original {a.shape} vs reconstructed {b.shape}"
        )
    if a.size == 0:
        raise ReproError("error bound check on empty arrays")
    return float(np.max(np.abs(a - b)))


def check_error_bound(
    original: np.ndarray, reconstructed: np.ndarray, eps: float
) -> bool:
    """True iff every point honors the absolute bound ``eps``."""
    if eps < 0:
        raise ReproError(f"negative error bound {eps}")
    return max_abs_error(original, reconstructed) <= eps


def violation_count(
    original: np.ndarray, reconstructed: np.ndarray, eps: float
) -> int:
    """Number of points exceeding the bound (0 for a compliant stream)."""
    a = np.asarray(original, dtype=np.float64)
    b = np.asarray(reconstructed, dtype=np.float64)
    if a.shape != b.shape:
        raise ReproError("shape mismatch in violation_count")
    return int(np.count_nonzero(np.abs(a - b) > eps))
