"""Compression efficiency: ratio and bit rate."""

from __future__ import annotations

import numpy as np

from repro.errors import ReproError


def compression_ratio(original_bytes: int, compressed_bytes: int) -> float:
    """``size_original / size_compressed`` (paper Section 5.1.4)."""
    if original_bytes <= 0:
        raise ReproError(f"non-positive original size {original_bytes}")
    if compressed_bytes <= 0:
        raise ReproError(f"non-positive compressed size {compressed_bytes}")
    return original_bytes / compressed_bytes


def bit_rate(num_elements: int, compressed_bytes: int) -> float:
    """Bits stored per original element (rate-distortion x-axis).

    For float32 inputs, ``bit_rate == 32 / ratio``.
    """
    if num_elements <= 0:
        raise ReproError(f"non-positive element count {num_elements}")
    if compressed_bytes < 0:
        raise ReproError(f"negative compressed size {compressed_bytes}")
    return 8.0 * compressed_bytes / num_elements


def summarize_ratios(ratios) -> tuple[float, float, float]:
    """(min, mean, max) — the "range" and "avg" columns of Table 5."""
    arr = np.asarray(list(ratios), dtype=np.float64)
    if arr.size == 0:
        raise ReproError("no ratios to summarize")
    return float(arr.min()), float(arr.mean()), float(arr.max())
