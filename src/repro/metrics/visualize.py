"""Minimal visualization output (no plotting dependencies).

The paper's Fig 15 compares slice renderings of the original and the
reconstructions. This module renders 2-D fields to binary PGM (portable
graymap) — viewable everywhere, writable with nothing but numpy — so the
Fig 15 bench can emit actual images alongside its metrics.
"""

from __future__ import annotations

import os

import numpy as np

from repro.errors import ReproError


def normalize_to_bytes(field: np.ndarray) -> np.ndarray:
    """Scale a 2-D field linearly to uint8 [0, 255]."""
    arr = np.asarray(field, dtype=np.float64)
    if arr.ndim != 2:
        raise ReproError(f"expected a 2-D slice, got shape {arr.shape}")
    if arr.size == 0:
        raise ReproError("cannot render an empty slice")
    lo = float(arr.min())
    hi = float(arr.max())
    if hi == lo:
        return np.zeros(arr.shape, dtype=np.uint8)
    scaled = (arr - lo) * (255.0 / (hi - lo))
    return np.clip(np.round(scaled), 0, 255).astype(np.uint8)


def write_pgm(path: str | os.PathLike, field: np.ndarray) -> None:
    """Write a 2-D field as a binary (P5) PGM image."""
    pixels = normalize_to_bytes(field)
    rows, cols = pixels.shape
    header = f"P5\n{cols} {rows}\n255\n".encode("ascii")
    with open(os.fspath(path), "wb") as fh:
        fh.write(header)
        fh.write(pixels.tobytes())


def slice_of(field: np.ndarray, axis: int = 0, index: int | None = None) -> np.ndarray:
    """Extract a 2-D slice from a 3-D field (middle plane by default).

    Mirrors the paper's Fig 15 convention ("3-th dim and 200-th panel"):
    pick an axis and a plane index.
    """
    arr = np.asarray(field)
    if arr.ndim != 3:
        raise ReproError(f"slice_of expects a 3-D field, got {arr.shape}")
    if not (0 <= axis < 3):
        raise ReproError(f"axis must be 0..2, got {axis}")
    if index is None:
        index = arr.shape[axis] // 2
    if not (0 <= index < arr.shape[axis]):
        raise ReproError(
            f"plane {index} outside axis {axis} of extent {arr.shape[axis]}"
        )
    return np.take(arr, index, axis=axis)


def error_map(original: np.ndarray, reconstructed: np.ndarray) -> np.ndarray:
    """Absolute pointwise error, for rendering difference images."""
    a = np.asarray(original, dtype=np.float64)
    b = np.asarray(reconstructed, dtype=np.float64)
    if a.shape != b.shape:
        raise ReproError("shape mismatch in error_map")
    return np.abs(a - b)
