"""Golden regression locks: the reproduction's own headline numbers.

These pins are *this repository's* measured values (EXPERIMENTS.md), not
the paper's — they exist so that refactors of the kernels, generators, or
models cannot silently drift the reproduced results. Tolerances are tight
(1-2 %): the pipeline is deterministic, so only a real behavioural change
should move them. If a change is intentional, update the pins *and*
EXPERIMENTS.md together.
"""

import numpy as np
import pytest

from repro import CereSZ
from repro.config import WaferConfig
from repro.core.quantize import relative_to_absolute
from repro.datasets import generate_field
from repro.perf.wafer import measure_workload, wafer_throughput

WAFER = WaferConfig(rows=512, cols=512)

#: (dataset, field, REL) -> CereSZ ratio measured at pinning time.
GOLDEN_RATIOS = {
    ("CESM-ATM", 0, 1e-2): 15.17,
    ("CESM-ATM", 1, 1e-3): 2.29,
    ("Hurricane", 0, 1e-2): 13.33,
    ("QMCPack", 0, 1e-3): 6.39,
    ("NYX", 3, 1e-4): 2.78,   # the Fig 15 configuration
    ("RTM", 0, 1e-2): 29.03,
    ("RTM", 35, 1e-4): 2.67,
    ("HACC", 0, 1e-3): 3.20,
    ("HACC", 4, 1e-2): 9.37,
}

#: (dataset, field, REL, direction) -> modeled GB/s at pinning time.
GOLDEN_THROUGHPUT = {
    ("RTM", 0, 1e-2, "compress"): 768.8,
    ("HACC", 0, 1e-4, "compress"): 470.1,
    ("NYX", 3, 1e-4, "decompress"): 627.7,
}


class TestGoldenRatios:
    @pytest.mark.parametrize(
        "dataset,field,rel", sorted(GOLDEN_RATIOS), ids=str
    )
    def test_ratio_pinned(self, dataset, field, rel):
        arr = generate_field(dataset, field)
        ratio = CereSZ().compress(arr, rel=rel).ratio
        assert ratio == pytest.approx(
            GOLDEN_RATIOS[(dataset, field, rel)], rel=0.02
        )


class TestGoldenThroughput:
    @pytest.mark.parametrize(
        "dataset,field,rel,direction", sorted(GOLDEN_THROUGHPUT), ids=str
    )
    def test_throughput_pinned(self, dataset, field, rel, direction):
        arr = generate_field(dataset, field)
        eps = relative_to_absolute(arr, rel)
        workload = measure_workload(arr, eps)
        perf = wafer_throughput(workload, WAFER, direction=direction)
        assert perf.throughput_gbs == pytest.approx(
            GOLDEN_THROUGHPUT[(dataset, field, rel, direction)], rel=0.02
        )


class TestGoldenQuality:
    def test_fig15_psnr_pinned(self):
        """84.77 dB at REL 1e-4: analytic, hence exactly stable."""
        from repro.harness.figures import fig15_quality

        q = fig15_quality()
        assert q.ceresz_psnr == pytest.approx(84.77, abs=0.05)
        assert q.ceresz_ratio == pytest.approx(2.78, rel=0.02)
        assert q.cuszp_ratio == pytest.approx(2.98, rel=0.02)

    def test_stream_bytes_deterministic(self):
        """Identical inputs must produce identical streams across runs."""
        arr = generate_field("QMCPack", 0)
        s1 = CereSZ().compress(arr, rel=1e-3).stream
        s2 = CereSZ().compress(arr, rel=1e-3).stream
        assert s1 == s2

    def test_generator_fingerprint(self):
        """The synthetic data itself is pinned (seeded generation)."""
        arr = generate_field("NYX", 3)
        fingerprint = float(np.abs(arr.astype(np.float64)).sum())
        assert fingerprint == pytest.approx(1.40001e13, rel=1e-3)
