"""Tests for rate-distortion curves (paper Section 5.4)."""

import pytest

from repro import CereSZ
from repro.baselines import CuSZp
from repro.metrics.ratedistortion import rate_distortion_curve


class TestRateDistortion:
    def test_curve_shape(self, smooth_field):
        points = rate_distortion_curve(
            CereSZ(), smooth_field, [1e-2, 1e-3, 1e-4]
        )
        assert len(points) == 3
        # Tighter bound -> more bits and higher PSNR.
        rates = [p.bit_rate for p in points]
        psnrs = [p.psnr for p in points]
        assert rates[0] < rates[1] < rates[2]
        assert psnrs[0] < psnrs[1] < psnrs[2]

    def test_with_ssim(self, smooth_field):
        points = rate_distortion_curve(
            CereSZ(), smooth_field, [1e-2, 1e-4], with_ssim=True
        )
        assert all(p.ssim is not None for p in points)
        assert points[0].ssim <= points[1].ssim

    def test_ssim_skipped_by_default(self, smooth_field):
        points = rate_distortion_curve(CereSZ(), smooth_field, [1e-3])
        assert points[0].ssim is None

    def test_cuszp_curve_left_of_ceresz(self, sparse_field):
        """Paper Obs 3: same PSNR at each bound, cuSZp at lower bit rate —
        CereSZ's curve is 'slightly compromised'."""
        bounds = [1e-2, 1e-3]
        ours = rate_distortion_curve(CereSZ(), sparse_field, bounds)
        theirs = rate_distortion_curve(CuSZp(), sparse_field, bounds)
        for a, b in zip(ours, theirs):
            assert a.psnr == pytest.approx(b.psnr, abs=1e-6)
            assert b.bit_rate < a.bit_rate
