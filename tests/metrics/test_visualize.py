"""Tests for the PGM visualization helpers."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.metrics.visualize import (
    error_map,
    normalize_to_bytes,
    slice_of,
    write_pgm,
)


class TestNormalize:
    def test_full_range(self):
        out = normalize_to_bytes(np.array([[0.0, 1.0], [0.5, 1.0]]))
        assert out.dtype == np.uint8
        assert out.min() == 0
        assert out.max() == 255

    def test_constant_field_is_black(self):
        out = normalize_to_bytes(np.full((3, 3), 7.0))
        assert not out.any()

    def test_rejects_non_2d(self):
        with pytest.raises(ReproError):
            normalize_to_bytes(np.zeros(5))

    def test_monotone(self):
        field = np.array([[1.0, 2.0, 3.0]])
        out = normalize_to_bytes(field)
        assert out[0, 0] < out[0, 1] < out[0, 2]


class TestWritePgm:
    def test_valid_p5_file(self, tmp_path, rng):
        path = tmp_path / "img.pgm"
        field = rng.normal(size=(10, 14))
        write_pgm(path, field)
        data = path.read_bytes()
        assert data.startswith(b"P5\n14 10\n255\n")
        assert len(data) == len(b"P5\n14 10\n255\n") + 10 * 14


class TestSliceOf:
    def test_middle_plane_default(self):
        field = np.arange(4 * 5 * 6).reshape(4, 5, 6)
        sl = slice_of(field, axis=0)
        assert np.array_equal(sl, field[2])

    def test_explicit_axis_and_index(self):
        field = np.arange(4 * 5 * 6).reshape(4, 5, 6)
        sl = slice_of(field, axis=2, index=3)
        assert np.array_equal(sl, field[:, :, 3])

    def test_bounds(self):
        field = np.zeros((2, 2, 2))
        with pytest.raises(ReproError):
            slice_of(field, axis=3)
        with pytest.raises(ReproError):
            slice_of(field, axis=0, index=5)
        with pytest.raises(ReproError):
            slice_of(np.zeros((2, 2)))


class TestErrorMap:
    def test_absolute_difference(self):
        a = np.array([[1.0, -2.0]])
        b = np.array([[1.5, -1.0]])
        assert error_map(a, b).tolist() == [[0.5, 1.0]]

    def test_shape_mismatch(self):
        with pytest.raises(ReproError):
            error_map(np.zeros((2, 2)), np.zeros((3, 2)))
