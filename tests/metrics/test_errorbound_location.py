"""Bound-violation *location*: not just whether the bound broke, but where.

:func:`locate_bound_violations` backs two consumers: the salvage path
(auditing the intact region through ``mask=``) and post-hoc analysis of a
reconstruction that failed :func:`check_error_bound`.
"""

import numpy as np
import pytest

from repro.core.compressor import CereSZ
from repro.core.decompressor import salvage_decompress
from repro.errors import ReproError
from repro.metrics.errorbound import (
    BoundViolation,
    check_error_bound,
    locate_bound_violations,
)


class TestLocate:
    def test_compliant_reconstruction(self):
        a = np.linspace(0, 1, 100)
        v = locate_bound_violations(a, a + 0.004, eps=0.005)
        assert v.ok
        assert v.count == 0
        assert v.first_index == -1
        assert v.checked == 100
        assert "holds" in str(v)

    def test_violation_located_and_quantified(self):
        a = np.zeros(50)
        b = a.copy()
        b[7] = 0.02
        b[31] = -0.09
        v = locate_bound_violations(a, b, eps=0.01)
        assert not v.ok
        assert v.count == 2
        assert v.first_index == 7
        assert v.max_error == pytest.approx(0.09)
        assert "first flat index 7" in str(v)

    def test_multidimensional_inputs_use_flat_indices(self):
        a = np.zeros((4, 5))
        b = a.copy()
        b[2, 3] = 1.0
        v = locate_bound_violations(a, b, eps=0.1)
        assert v.first_index == 13

    def test_mask_excludes_lost_elements(self):
        a = np.zeros(10)
        b = a.copy()
        b[4] = 5.0  # a "lost" element, zero-filled wrong on purpose
        mask = np.ones(10, dtype=bool)
        mask[4] = False
        v = locate_bound_violations(a, b, eps=0.1, mask=mask)
        assert v.ok
        assert v.checked == 9

    def test_mask_shape_mismatch_raises(self):
        with pytest.raises(ReproError, match="mask"):
            locate_bound_violations(
                np.zeros(4), np.zeros(4), 0.1, mask=np.ones(3, dtype=bool)
            )

    def test_shape_mismatch_raises(self):
        with pytest.raises(ReproError, match="shape"):
            locate_bound_violations(np.zeros(4), np.zeros(5), 0.1)

    def test_negative_eps_raises(self):
        with pytest.raises(ReproError, match="negative"):
            locate_bound_violations(np.zeros(4), np.zeros(4), -0.1)

    def test_agrees_with_check_error_bound(self):
        rng = np.random.default_rng(3)
        a = rng.normal(size=500)
        b = a + rng.uniform(-0.01, 0.01, size=500)
        eps = 0.008
        v = locate_bound_violations(a, b, eps)
        assert v.ok == check_error_bound(a, b, eps)
        assert v.count == int(np.count_nonzero(np.abs(a - b) > eps))


class TestSalvageIntegration:
    def test_salvage_report_reuses_locator(self):
        """The SalvageReport's ``bound`` field is a BoundViolation audited
        over the intact mask — the satellite's 'reused from salvage'."""
        codec = CereSZ()
        rng = np.random.default_rng(8)
        data = rng.normal(size=8000).cumsum().astype(np.float32)
        res = codec.compress(data, eps=1e-3, checksum=True, crc_group=4)
        buf = bytearray(res.stream)
        buf[-10] ^= 0x01  # corrupt one record near the end
        _, report = salvage_decompress(bytes(buf), original=data)
        assert isinstance(report.bound, BoundViolation)
        assert report.bound.ok
        # The audit eps is the stream's real promise: eps_eff plus the
        # float32-cast margin effective_error_bound subtracted.
        assert report.bound.eps >= report.eps
        assert report.bound.eps == pytest.approx(report.eps, rel=1e-2)
        assert report.bound.checked == data.size - report.elements_lost

    def test_audit_tolerates_float32_cast_rounding(self):
        """Regression: this field produces one value sitting half a float32
        ulp past the header's eps_eff (while honoring the requested REL
        bound). The audit must test the requested promise, not bare
        eps_eff, or healthy data reads as a bound violation."""
        codec = CereSZ()
        data = np.cumsum(
            np.random.default_rng(1).normal(size=20_000)
        ).astype(np.float32)
        res = codec.compress(data, rel=1e-3, checksum=True)
        out = codec.decompress(res.stream)
        from repro.core.format import StreamHeader

        header, _ = StreamHeader.unpack(res.stream)
        raw = locate_bound_violations(data, out, header.eps)
        assert raw.count == 1  # the half-ulp overshoot this test pins
        buf = bytearray(res.stream)
        buf[len(buf) // 2] ^= 0x01
        _, report = salvage_decompress(bytes(buf), original=data)
        assert report.bound is not None and report.bound.ok
