"""Tests for PSNR / SSIM / NRMSE."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.metrics.quality import nrmse, psnr, ssim


@pytest.fixture
def image(rng):
    base = np.add.outer(
        np.sin(np.linspace(0, 3, 48)), np.cos(np.linspace(0, 5, 64))
    )
    return (base * 100).astype(np.float32)


class TestPSNR:
    def test_identical_is_infinite(self, image):
        assert psnr(image, image) == float("inf")

    def test_known_value(self):
        """Uniform error e on range r: PSNR = 20 log10(r / e)."""
        original = np.array([0.0, 1.0] * 500)
        recon = original + 0.01
        assert psnr(original, recon) == pytest.approx(40.0)

    def test_smaller_error_higher_psnr(self, image, rng):
        noisy1 = image + rng.normal(scale=0.1, size=image.shape)
        noisy2 = image + rng.normal(scale=1.0, size=image.shape)
        assert psnr(image, noisy1) > psnr(image, noisy2)

    def test_quantization_psnr_formula(self, rng):
        """Uniform quantization at eps gives ~ 20log10(r/eps) + 10.79 dB.

        (MSE of uniform error on [-eps, eps] is eps^2/3; this is exactly
        why the paper's Fig 15 PSNR of 84.77 dB at REL 1e-4 is reproducible
        from the error bound alone.)
        """
        data = rng.uniform(0, 1, size=200_000)
        eps = 1e-4
        codes = np.round(data / (2 * eps))
        recon = codes * 2 * eps
        expected = 20 * np.log10(1.0 / eps) + 10 * np.log10(3)  # = 84.77 dB
        assert psnr(data, recon) == pytest.approx(expected, abs=0.2)

    def test_shape_mismatch(self, image):
        with pytest.raises(ReproError):
            psnr(image, image[:-1])

    def test_constant_field_rejected(self):
        with pytest.raises(ReproError):
            psnr(np.ones(10), np.ones(10) * 1.001)


class TestSSIM:
    def test_identical_is_one(self, image):
        assert ssim(image, image) == pytest.approx(1.0)

    def test_small_noise_near_one(self, image, rng):
        noisy = image + rng.normal(scale=1e-3, size=image.shape).astype(
            np.float32
        )
        assert ssim(image, noisy) > 0.999

    def test_structural_destruction_lowers_ssim(self, image, rng):
        shuffled = rng.permutation(image.reshape(-1)).reshape(image.shape)
        assert ssim(image, shuffled) < 0.5

    def test_monotone_in_noise(self, image, rng):
        a = ssim(image, image + rng.normal(scale=0.5, size=image.shape))
        b = ssim(image, image + rng.normal(scale=5.0, size=image.shape))
        assert a > b

    def test_works_in_3d(self, field_3d, rng):
        noisy = field_3d + 0.01 * rng.standard_normal(field_3d.shape).astype(
            np.float32
        )
        assert 0.9 < ssim(field_3d, noisy) <= 1.0

    def test_works_in_1d(self, rng):
        sig = np.sin(np.linspace(0, 20, 500))
        assert ssim(sig, sig) == pytest.approx(1.0)

    def test_window_larger_than_field_rejected(self):
        with pytest.raises(ReproError):
            ssim(np.ones((3, 3)) * np.arange(3), np.ones((3, 3)), window=7)

    def test_bad_window_rejected(self, image):
        with pytest.raises(ReproError):
            ssim(image, image, window=1)

    def test_constant_field_rejected(self):
        with pytest.raises(ReproError):
            ssim(np.ones((10, 10)), np.ones((10, 10)))


class TestNRMSE:
    def test_zero_for_identical(self, image):
        assert nrmse(image, image) == 0.0

    def test_known_value(self):
        original = np.array([0.0, 2.0])
        recon = np.array([1.0, 1.0])
        assert nrmse(original, recon) == pytest.approx(0.5)

    def test_range_normalization(self):
        a = np.array([0.0, 1.0, 0.5])
        b10 = a * 10
        assert nrmse(a, a + 0.01) == pytest.approx(
            nrmse(b10, b10 + 0.1)
        )
