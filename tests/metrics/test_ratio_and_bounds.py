"""Tests for ratio/bit-rate helpers and error-bound verification."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.metrics.errorbound import (
    check_error_bound,
    max_abs_error,
    violation_count,
)
from repro.metrics.ratio import bit_rate, compression_ratio, summarize_ratios


class TestCompressionRatio:
    def test_formula(self):
        assert compression_ratio(1000, 250) == 4.0

    def test_expansion_is_below_one(self):
        assert compression_ratio(100, 200) == 0.5

    @pytest.mark.parametrize("o,c", [(0, 10), (-1, 10), (10, 0), (10, -5)])
    def test_invalid_sizes(self, o, c):
        with pytest.raises(ReproError):
            compression_ratio(o, c)


class TestBitRate:
    def test_formula(self):
        # 1000 float32 elements stored in 500 bytes = 4 bits/elem.
        assert bit_rate(1000, 500) == 4.0

    def test_reciprocal_of_ratio_for_f32(self):
        ratio = compression_ratio(4000, 500)
        assert bit_rate(1000, 500) == pytest.approx(32.0 / ratio)

    def test_invalid(self):
        with pytest.raises(ReproError):
            bit_rate(0, 10)
        with pytest.raises(ReproError):
            bit_rate(10, -1)


class TestSummarize:
    def test_min_mean_max(self):
        lo, avg, hi = summarize_ratios([1.0, 2.0, 6.0])
        assert (lo, avg, hi) == (1.0, 3.0, 6.0)

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            summarize_ratios([])


class TestErrorBound:
    def test_max_abs_error(self):
        a = np.array([1.0, 2.0, 3.0])
        b = np.array([1.1, 1.8, 3.0])
        assert max_abs_error(a, b) == pytest.approx(0.2)

    def test_check_pass_and_fail(self):
        a = np.zeros(5)
        b = np.full(5, 0.099)
        assert check_error_bound(a, b, 0.1)
        assert not check_error_bound(a, b, 0.05)

    def test_boundary_inclusive(self):
        assert check_error_bound(np.zeros(2), np.full(2, 0.1), 0.1)

    def test_violation_count(self):
        a = np.zeros(4)
        b = np.array([0.0, 0.2, 0.05, 0.3])
        assert violation_count(a, b, 0.1) == 2

    def test_float64_comparison(self):
        """The check itself must not add float32 slack."""
        a = np.array([1e8], dtype=np.float32)
        b = np.array([1e8 + 64], dtype=np.float32)
        assert max_abs_error(a, b) == pytest.approx(64.0)

    def test_shape_mismatch(self):
        with pytest.raises(ReproError):
            max_abs_error(np.zeros(3), np.zeros(4))

    def test_negative_eps_rejected(self):
        with pytest.raises(ReproError):
            check_error_bound(np.zeros(2), np.zeros(2), -0.1)

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            max_abs_error(np.zeros(0), np.zeros(0))
