"""Tests for hardware constants and wafer configurations."""

import pytest

from repro.config import (
    BLOCK_BYTES,
    BLOCK_SIZE,
    CLOCK_HZ,
    DEFAULT_WAFER,
    FULL_WAFER,
    MAX_RATIO_CERESZ,
    MAX_RATIO_SZP,
    PE_NUM_COLORS,
    PE_SRAM_BYTES,
    WSE_TOTAL_COLS,
    WSE_TOTAL_ROWS,
    WSE_USABLE_COLS,
    WSE_USABLE_ROWS,
    WaferConfig,
)


class TestPaperConstants:
    def test_wafer_geometry(self):
        """Paper 5.1.1: 757x996 total, 750x994 usable."""
        assert (WSE_TOTAL_ROWS, WSE_TOTAL_COLS) == (757, 996)
        assert (WSE_USABLE_ROWS, WSE_USABLE_COLS) == (750, 994)

    def test_pe_resources(self):
        assert PE_SRAM_BYTES == 48 * 1024
        assert PE_NUM_COLORS == 24
        assert CLOCK_HZ == 850e6

    def test_block_format(self):
        assert BLOCK_SIZE == 32
        assert BLOCK_SIZE % 16 == 0  # the fabric's transfer-unit rule
        assert BLOCK_BYTES == 128

    def test_ratio_caps(self):
        """The Table 5 ceilings: 32x (CereSZ) vs 128x (SZp)."""
        assert MAX_RATIO_CERESZ == 32.0
        assert MAX_RATIO_SZP == 128.0


class TestWaferConfig:
    def test_defaults(self):
        assert DEFAULT_WAFER.rows == DEFAULT_WAFER.cols == 512
        assert FULL_WAFER.rows == 750
        assert FULL_WAFER.cols == 994

    def test_num_pes(self):
        assert WaferConfig(rows=4, cols=8).num_pes == 32

    def test_ingest_bandwidth(self):
        """One 4-byte wavelet per row per cycle at the west edge."""
        cfg = WaferConfig(rows=100, cols=1)
        assert cfg.ingest_bandwidth_bytes_per_s == pytest.approx(
            100 * 4 * 850e6
        )

    def test_reported_throughput_under_ingest_cap(self):
        """The paper's peak (920.67 GB/s) fits the fabric's feed limit."""
        assert DEFAULT_WAFER.ingest_bandwidth_bytes_per_s > 920.67e9

    @pytest.mark.parametrize(
        "rows,cols", [(0, 10), (10, 0), (751, 10), (10, 995), (-1, -1)]
    )
    def test_out_of_range_rejected(self, rows, cols):
        with pytest.raises(ValueError):
            WaferConfig(rows=rows, cols=cols)

    def test_bad_clock_rejected(self):
        with pytest.raises(ValueError):
            WaferConfig(rows=1, cols=1, clock_hz=0)
