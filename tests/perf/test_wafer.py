"""Tests for the wafer-scale throughput estimator."""

import numpy as np
import pytest

from repro.config import WaferConfig
from repro.errors import ModelError
from repro.core.quantize import relative_to_absolute
from repro.perf.wafer import (
    measure_workload,
    pipeline_length_curve,
    row_scaling_curve,
    wafer_throughput,
    wse_size_curve,
)

WAFER = WaferConfig(rows=512, cols=512)


@pytest.fixture(scope="module")
def workloads():
    rng = np.random.default_rng(0)
    smooth = np.cumsum(rng.normal(size=32 * 2000)).astype(np.float32)
    out = {}
    for rel in (1e-2, 1e-4):
        eps = relative_to_absolute(smooth, rel)
        out[rel] = measure_workload(smooth, eps)
    return out


class TestMeasureWorkload:
    def test_block_count(self, workloads):
        assert workloads[1e-2].num_blocks == 2000

    def test_zero_fraction_rises_with_looser_bound(self, workloads):
        assert workloads[1e-2].zero_fraction >= workloads[1e-4].zero_fraction

    def test_fl_rises_with_tighter_bound(self, workloads):
        assert (
            workloads[1e-4].representative_fl
            > workloads[1e-2].representative_fl
        )

    def test_mean_cycles_mixture(self, workloads):
        """The mean must sit between the zero-path and max-fl costs."""
        from repro.wse.cost import PAPER_CYCLE_MODEL as M

        w = workloads[1e-2]
        mean = w.mean_cycles("compress")
        assert M.compress_block_cycles(0, zero=True) <= mean
        assert mean <= M.compress_block_cycles(w.representative_fl)

    def test_decompress_mean_below_compress(self, workloads):
        w = workloads[1e-4]
        assert w.mean_cycles("decompress") < w.mean_cycles("compress")

    def test_invalid_direction(self, workloads):
        with pytest.raises(ModelError):
            workloads[1e-2].mean_cycles("sideways")

    def test_compressed_words_within_format_bounds(self, workloads):
        w = workloads[1e-4]
        words = w.mean_compressed_words()
        assert 1.0 <= words <= 2 + w.block_size  # header .. worst case


class TestWaferThroughput:
    def test_decompression_faster(self, workloads):
        w = workloads[1e-4]
        comp = wafer_throughput(w, WAFER, direction="compress")
        decomp = wafer_throughput(w, WAFER, direction="decompress")
        assert decomp.throughput_gbs > comp.throughput_gbs

    def test_looser_bound_faster(self, workloads):
        loose = wafer_throughput(workloads[1e-2], WAFER)
        tight = wafer_throughput(workloads[1e-4], WAFER)
        assert loose.throughput_gbs > tight.throughput_gbs

    def test_headline_range(self, workloads):
        """512x512, pl=1 must land in the paper's GB/s territory."""
        perf = wafer_throughput(workloads[1e-4], WAFER)
        assert 200 <= perf.throughput_gbs <= 1100

    def test_overlapped_at_least_serialized(self, workloads):
        w = workloads[1e-4]
        ser = wafer_throughput(w, WAFER, overlapped=False)
        ovl = wafer_throughput(w, WAFER, overlapped=True)
        assert ovl.throughput_gbs >= ser.throughput_gbs

    def test_invalid_direction(self, workloads):
        with pytest.raises(ModelError):
            wafer_throughput(workloads[1e-2], WAFER, direction="bad")


class TestCurves:
    def test_row_scaling_is_linear(self, workloads):
        """Fig 7: throughput strictly proportional to row count."""
        curve = row_scaling_curve(workloads[1e-4], [64, 128, 256, 512])
        rates = [p.throughput_bytes_per_s for p in curve]
        per_row = [r / p.rows for r, p in zip(rates, curve)]
        assert max(per_row) / min(per_row) == pytest.approx(1.0, rel=1e-9)

    def test_pipeline_length_one_is_best(self, workloads):
        """Fig 13: the 1-PE pipeline wins."""
        curve = pipeline_length_curve(
            workloads[1e-4], [1, 2, 4, 8], WAFER
        )
        rates = [p.throughput_gbs for p in curve]
        assert rates[0] == max(rates)
        assert all(a >= b for a, b in zip(rates, rates[1:]))

    def test_wse_size_monotone(self, workloads):
        """Fig 14: more PEs, more throughput."""
        curve = wse_size_curve(workloads[1e-4], [16, 32, 64, 128, 256])
        rates = [p.throughput_gbs for p in curve]
        assert all(a < b for a, b in zip(rates, rates[1:]))

    def test_wse_size_near_linear_at_small_sizes(self, workloads):
        """Fig 14's observation: 32x32 is ~4x the 16x16 throughput."""
        curve = wse_size_curve(workloads[1e-4], [16, 32])
        ratio = curve[1].throughput_gbs / curve[0].throughput_gbs
        assert 3.5 <= ratio <= 4.2

    def test_rectangular_full_wafer_accepted(self, workloads):
        curve = wse_size_curve(workloads[1e-4], [(750, 994)])
        assert curve[0].rows == 750
        assert curve[0].total_cols == 994

    def test_pipeline_longer_than_stages_raises(self, workloads):
        with pytest.raises(ModelError):
            pipeline_length_curve(workloads[1e-2], [100], WAFER)
