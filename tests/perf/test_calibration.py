"""Tests for the calibration audit against the paper's tables."""

import pytest

from repro.perf.calibration import (
    calibration_report,
    calibration_residuals,
    worst_relative_error,
)
from repro.wse.cost import CycleModel


class TestCalibration:
    def test_all_pairs_covered(self):
        residuals = calibration_residuals()
        constants = {r.constant for r in residuals}
        assert constants == {
            "multiplication",
            "addition",
            "lorenzo",
            "sign",
            "max",
            "get_length",
            "bit_shuffle",
        }
        datasets = {r.dataset for r in residuals}
        assert datasets == {"CESM-ATM", "HACC", "QMCPack"}

    def test_fit_within_measurement_scatter(self):
        """Every constant within 1.5% of every paper measurement."""
        assert worst_relative_error() < 0.015

    def test_lorenzo_is_exact(self):
        for r in calibration_residuals():
            if r.constant == "lorenzo":
                assert r.relative_error == 0.0

    def test_detuned_model_shows_up(self):
        """The audit must actually detect a miscalibrated model."""
        bad = CycleModel(
            lorenzo=CycleModel().lorenzo.__class__(
                "lorenzo", per_element=2000.0 / 32
            )
        )
        assert worst_relative_error(bad) > 0.5

    def test_report_renders(self):
        text = calibration_report()
        assert "bit_shuffle" in text
        assert "residual" in text
