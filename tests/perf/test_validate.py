"""Tests for the sim-vs-model cross-validation."""

import numpy as np
import pytest

from repro.perf.validate import validate_against_simulator, validation_report


@pytest.fixture(scope="module")
def points():
    rng = np.random.default_rng(0)
    data = np.cumsum(rng.normal(size=32 * 48)).astype(np.float32)
    return validate_against_simulator(data=data, eps=0.05)


class TestValidation:
    def test_covers_all_strategies(self, points):
        strategies = {p.strategy for p in points}
        assert strategies == {"rows", "multi", "staged(pl=2)"}

    def test_model_matches_simulator(self, points):
        """The structural claim of DESIGN.md: agreement within ~15%."""
        for p in points:
            assert p.relative_gap < 0.15, (p.strategy, p.rows, p.cols)

    def test_rows_strategy_tight(self, points):
        """No fabric contention in 'rows': agreement should be ~2%."""
        for p in points:
            if p.strategy == "rows":
                assert p.relative_gap < 0.03

    def test_simulated_scaling_is_linear_in_rows(self, points):
        rows_points = {p.rows: p for p in points if p.strategy == "rows"}
        s1 = rows_points[1].simulated_cycles
        s4 = rows_points[4].simulated_cycles
        assert 3.5 <= s1 / s4 <= 4.3

    def test_report_renders(self, points):
        text = validation_report(points)
        assert "simulated" in text
        assert "multi" in text
