"""Tests for the sim-vs-model cross-validation."""

import numpy as np
import pytest

from repro.perf.validate import validate_against_simulator, validation_report


@pytest.fixture(scope="module")
def points():
    rng = np.random.default_rng(0)
    data = np.cumsum(rng.normal(size=32 * 48)).astype(np.float32)
    return validate_against_simulator(data=data, eps=0.05)


class TestValidation:
    def test_covers_all_strategies(self, points):
        strategies = {p.strategy for p in points}
        assert strategies == {"rows", "multi", "staged(pl=2)"}

    def test_model_matches_simulator(self, points):
        """The structural claim of DESIGN.md: agreement within ~15%."""
        for p in points:
            assert p.relative_gap < 0.15, (p.strategy, p.rows, p.cols)

    def test_rows_strategy_tight(self, points):
        """No fabric contention in 'rows': agreement should be ~2%."""
        for p in points:
            if p.strategy == "rows":
                assert p.relative_gap < 0.03

    def test_simulated_scaling_is_linear_in_rows(self, points):
        rows_points = {p.rows: p for p in points if p.strategy == "rows"}
        s1 = rows_points[1].simulated_cycles
        s4 = rows_points[4].simulated_cycles
        assert 3.5 <= s1 / s4 <= 4.3

    def test_report_renders(self, points):
        text = validation_report(points)
        assert "simulated" in text
        assert "multi" in text


class TestStageGaps:
    def test_every_point_has_per_stage_breakdown(self, points):
        for p in points:
            steps = [g.step for g in p.stage_gaps]
            assert steps == ["prequant", "lorenzo", "encode"], p.strategy

    def test_breakdown_sums_to_busy_cycles(self, points):
        """The three coarse steps partition each point's busy cycles."""
        for p in points:
            total = sum(g.observed_cycles for g in p.stage_gaps)
            assert total > 0

    def test_per_stage_model_is_exact(self, points):
        """The cost model predicts each sub-stage's charge exactly, so the
        per-step gaps vanish (to float summation noise) for every strategy
        — a visible entry localizes a model drift to one pipeline step."""
        for p in points:
            for gap in p.stage_gaps:
                assert gap.relative_gap < 1e-9, (p.strategy, gap.step)

    def test_report_includes_per_step_table(self, points):
        text = validation_report(points)
        assert "Per-PE busy cycles by pipeline step" in text
        assert "prequant" in text
        assert "encode" in text
