"""Tests for the baseline device throughput models."""

import pytest

from repro.errors import ModelError
from repro.perf.device import DEVICE_MODELS, device_throughput


class TestDeviceModels:
    def test_all_baselines_modeled(self):
        assert set(DEVICE_MODELS) == {"cuSZp", "cuSZ", "SZp", "SZ"}

    def test_paper_speed_ordering(self):
        """cuSZp > cuSZ > SZp > SZ at any zero fraction."""
        for z in (0.0, 0.5, 1.0):
            rates = [
                device_throughput(name, "compress", z)
                for name in ("cuSZp", "cuSZ", "SZp", "SZ")
            ]
            assert all(a > b for a, b in zip(rates, rates[1:])), z

    def test_sz_below_one_gbs(self):
        """Paper 5.3: SZ throughput 'routinely less than 1 GB/s'."""
        assert device_throughput("SZ", "compress", 0.5) < 1.0

    def test_decompression_faster(self):
        for name in DEVICE_MODELS:
            assert device_throughput(name, "decompress", 0.3) > (
                device_throughput(name, "compress", 0.3)
            )

    def test_zero_blocks_speed_up_block_compressors(self):
        """Same eb->throughput trend as CereSZ (paper 5.2 on SZp/cuSZp)."""
        for name in ("cuSZp", "SZp"):
            assert device_throughput(name, "compress", 0.9) > (
                device_throughput(name, "compress", 0.1)
            )

    def test_devices(self):
        assert DEVICE_MODELS["cuSZp"].device == "A100"
        assert DEVICE_MODELS["SZ"].device == "EPYC-7742"

    def test_unknown_model(self):
        with pytest.raises(ModelError):
            device_throughput("zstd", "compress", 0.0)

    def test_invalid_direction(self):
        with pytest.raises(ModelError):
            device_throughput("SZ", "sideways", 0.0)

    def test_invalid_zero_fraction(self):
        with pytest.raises(ModelError):
            device_throughput("SZ", "compress", 1.5)
