"""Tests for the paper's analytic pipeline model (Eqs 2-4)."""

import pytest

from repro.errors import ModelError
from repro.perf.model import (
    compute_cycles_per_round,
    eq4_total_cycles,
    relay_cycles_per_round,
    round_cycles,
)
from repro.wse.cost import PAPER_CYCLE_MODEL


class TestEq2Relay:
    def test_linear_in_columns(self):
        """Eq 2: relay time per PE is TC * C1 (Fig 10a's line)."""
        r1 = relay_cycles_per_round(100)
        r2 = relay_cycles_per_round(200)
        assert r2 == pytest.approx(2 * r1)

    def test_constant_is_c1(self):
        assert relay_cycles_per_round(1) == PAPER_CYCLE_MODEL.c1_relay

    def test_scales_with_payload_words(self):
        full = relay_cycles_per_round(64, relay_words=32)
        half = relay_cycles_per_round(64, relay_words=16)
        assert full == pytest.approx(2 * half)

    def test_invalid_cols(self):
        with pytest.raises(ModelError):
            relay_cycles_per_round(0)


class TestEq3Compute:
    def test_single_pe_is_full_block(self):
        assert compute_cycles_per_round(1000.0, 1) == 1000.0

    def test_ideal_split_plus_forwarding(self):
        c2 = PAPER_CYCLE_MODEL.c2_forward
        assert compute_cycles_per_round(1000.0, 4) == pytest.approx(
            250.0 + 3 * c2
        )

    def test_bottleneck_fraction_override(self):
        out = compute_cycles_per_round(1000.0, 4, bottleneck_fraction=0.4)
        assert out == pytest.approx(400.0 + 3 * PAPER_CYCLE_MODEL.c2_forward)

    def test_inversely_proportional_then_rising(self):
        """Fig 10b: C/pl falls, pl*C2 rises; a minimum exists."""
        values = [compute_cycles_per_round(30000.0, pl) for pl in range(1, 12)]
        assert values[1] < values[0]  # splitting helps at first
        # Eventually forwarding overhead wins.
        assert values[-1] > min(values)

    def test_invalid_inputs(self):
        with pytest.raises(ModelError):
            compute_cycles_per_round(100.0, 0)
        with pytest.raises(ModelError):
            compute_cycles_per_round(-1.0, 1)
        with pytest.raises(ModelError):
            compute_cycles_per_round(100.0, 2, bottleneck_fraction=1.5)


class TestRoundCycles:
    def test_serialized_is_sum(self):
        relay = relay_cycles_per_round(64)
        compute = compute_cycles_per_round(5000.0, 1)
        assert round_cycles(64, 5000.0, 1, overlapped=False) == pytest.approx(
            relay + compute
        )

    def test_overlapped_is_max(self):
        out = round_cycles(64, 5000.0, 1, overlapped=True)
        assert out == pytest.approx(
            max(relay_cycles_per_round(64), 5000.0)
        )

    def test_overlapped_never_exceeds_serialized(self):
        for tc in (8, 64, 512):
            for c in (1000.0, 50000.0):
                assert round_cycles(tc, c, 1, overlapped=True) <= (
                    round_cycles(tc, c, 1, overlapped=False)
                )


class TestEq4Total:
    def test_rounds_scale_with_blocks(self):
        t1 = eq4_total_cycles(1000, 10, 10, 5000.0, 1)
        t2 = eq4_total_cycles(2000, 10, 10, 5000.0, 1)
        assert t2 > t1

    def test_more_rows_fewer_cycles(self):
        t1 = eq4_total_cycles(10000, 4, 16, 5000.0, 1)
        t2 = eq4_total_cycles(10000, 16, 16, 5000.0, 1)
        assert t2 < t1

    def test_includes_fill_latency(self):
        """Even one block pays the pipeline-fill time."""
        total = eq4_total_cycles(1, 1, 64, 5000.0, 1)
        assert total > 64 * PAPER_CYCLE_MODEL.c1_relay

    def test_pipeline_longer_than_cols_rejected(self):
        with pytest.raises(ModelError):
            eq4_total_cycles(100, 1, 4, 5000.0, 8)

    def test_invalid_inputs(self):
        with pytest.raises(ModelError):
            eq4_total_cycles(0, 1, 1, 100.0, 1)
        with pytest.raises(ModelError):
            eq4_total_cycles(1, 0, 1, 100.0, 1)
