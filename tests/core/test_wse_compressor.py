"""Integration tests: CereSZ on the simulated wafer == the reference.

These are the paper's Section 4 validation: the three parallelization
strategies must produce byte-identical streams to the vectorized host
compressor, across mesh shapes, block counts (full and partial rounds),
and pipeline lengths.
"""

import numpy as np
import pytest

from repro import CereSZ
from repro.errors import CompressionError, ScheduleError
from repro.core.wse_compressor import WSECereSZ


@pytest.fixture(scope="module")
def walk():
    rng = np.random.default_rng(42)
    return np.cumsum(rng.normal(size=1024)).astype(np.float32)


@pytest.fixture(scope="module")
def reference(walk):
    return CereSZ().compress(walk, rel=1e-3)


class TestRowStrategy:
    @pytest.mark.parametrize("rows", [1, 2, 3, 5])
    def test_bit_exact(self, walk, reference, rows):
        sim = WSECereSZ(rows=rows, cols=1, strategy="rows")
        result = sim.compress(walk, rel=1e-3)
        assert result.stream == reference.stream

    def test_rows_speed_up_linearly(self, walk):
        """Twice the rows -> roughly half the makespan (Fig 7's claim)."""
        m1 = WSECereSZ(rows=1, cols=1, strategy="rows").compress(
            walk, rel=1e-3
        )
        m4 = WSECereSZ(rows=4, cols=1, strategy="rows").compress(
            walk, rel=1e-3
        )
        speedup = m1.makespan_cycles / m4.makespan_cycles
        assert 3.3 <= speedup <= 4.2

    def test_decompress_round_trip(self, walk):
        sim = WSECereSZ(rows=2, cols=1, strategy="rows")
        result = sim.compress(walk, rel=1e-3)
        back = sim.decompress(result.stream)
        err = np.max(np.abs(back.astype(np.float64) - walk.astype(np.float64)))
        assert err <= result.result.eps


class TestPipelineStrategy:
    @pytest.mark.parametrize("pl", [1, 2, 3, 4, 6])
    def test_bit_exact(self, walk, reference, pl):
        sim = WSECereSZ(
            rows=2, cols=max(pl, 2), strategy="pipeline", pipeline_length=pl
        )
        result = sim.compress(walk, rel=1e-3)
        assert result.stream == reference.stream

    def test_pipeline_beats_single_pe_on_makespan(self, walk):
        """A pipeline overlaps stages, so it finishes earlier than one PE."""
        single = WSECereSZ(rows=1, cols=1, strategy="rows").compress(
            walk, rel=1e-3
        )
        piped = WSECereSZ(
            rows=1, cols=4, strategy="pipeline", pipeline_length=4
        ).compress(walk, rel=1e-3)
        assert piped.makespan_cycles < single.makespan_cycles

    def test_too_long_pipeline_rejected(self):
        with pytest.raises(ScheduleError):
            WSECereSZ(rows=1, cols=2, strategy="pipeline", pipeline_length=4)


class TestMultiPipelineStrategy:
    @pytest.mark.parametrize("rows,cols", [(1, 2), (1, 5), (2, 3), (3, 4)])
    def test_bit_exact(self, walk, reference, rows, cols):
        sim = WSECereSZ(rows=rows, cols=cols, strategy="multi")
        result = sim.compress(walk, rel=1e-3)
        assert result.stream == reference.stream

    @pytest.mark.parametrize("n", [32, 33, 100, 32 * 7 + 5])
    def test_partial_rounds_and_tails(self, n):
        rng = np.random.default_rng(n)
        data = np.cumsum(rng.normal(size=n)).astype(np.float32)
        ref = CereSZ().compress(data, eps=0.05)
        sim = WSECereSZ(rows=2, cols=3, strategy="multi")
        assert sim.compress(data, eps=0.05).stream == ref.stream

    def test_more_columns_reduce_makespan(self, walk):
        m2 = WSECereSZ(rows=1, cols=2, strategy="multi").compress(
            walk, rel=1e-3
        )
        m8 = WSECereSZ(rows=1, cols=8, strategy="multi").compress(
            walk, rel=1e-3
        )
        assert m8.makespan_cycles < m2.makespan_cycles

    def test_relay_cycles_concentrate_on_west_pes(self, walk):
        """PE i relays the blocks of everyone east of it (Fig 9)."""
        sim = WSECereSZ(rows=1, cols=4, strategy="multi")
        result = sim.compress(walk, rel=1e-3)
        relay_by_col = {
            t.col: t.relay_cycles for t in result.report.trace.traces
        }
        assert relay_by_col[0] > relay_by_col[1] > relay_by_col[2]
        assert relay_by_col[3] == 0

    def test_longer_pipeline_than_mesh_rejected(self):
        with pytest.raises(ScheduleError):
            WSECereSZ(rows=1, cols=4, strategy="multi", pipeline_length=8)


class TestStagedMultiPipeline:
    """Fig 6 right in full generality: P staged pipelines per row."""

    @pytest.mark.parametrize(
        "rows,cols,pl", [(1, 4, 2), (2, 6, 2), (1, 6, 3), (2, 8, 4), (1, 9, 3)]
    )
    def test_bit_exact(self, walk, reference, rows, cols, pl):
        sim = WSECereSZ(
            rows=rows, cols=cols, strategy="multi", pipeline_length=pl
        )
        assert sim.compress(walk, rel=1e-3).stream == reference.stream

    def test_tail_rounds_with_relay_only_duty(self):
        """The head of pipeline 0 must keep relaying after its own blocks
        are done (the regression behind the P=3 deadlock)."""
        rng = np.random.default_rng(3)
        data = np.cumsum(rng.normal(size=32 * 32)).astype(np.float32)
        ref = CereSZ().compress(data, eps=0.05)
        sim = WSECereSZ(rows=1, cols=6, strategy="multi", pipeline_length=2)
        assert sim.compress(data, eps=0.05).stream == ref.stream

    def test_unused_trailing_columns_tolerated(self, walk, reference):
        # cols=7, pl=2 -> 3 pipelines over 6 columns, one idle column.
        sim = WSECereSZ(rows=1, cols=7, strategy="multi", pipeline_length=2)
        assert sim.compress(walk, rel=1e-3).stream == reference.stream

    def test_stage_pes_carry_relay_load_too(self, walk):
        """Raw blocks pass through stage PEs, not only heads (Fig 9a)."""
        sim = WSECereSZ(rows=1, cols=6, strategy="multi", pipeline_length=2)
        result = sim.compress(walk, rel=1e-3)
        relay = {
            t.col: t.relay_cycles for t in result.report.trace.traces
        }
        assert relay[1] > 0  # stage PE of pipeline 0 relays for pipelines east
        assert relay[0] >= relay[2] >= relay[4]  # west relays most
        assert relay[5] == 0  # last stage of the last pipeline relays nothing

    def test_more_pipelines_reduce_makespan(self, walk):
        two = WSECereSZ(
            rows=1, cols=4, strategy="multi", pipeline_length=2
        ).compress(walk, rel=1e-3)
        four = WSECereSZ(
            rows=1, cols=8, strategy="multi", pipeline_length=2
        ).compress(walk, rel=1e-3)
        assert four.makespan_cycles < two.makespan_cycles


class TestValidation:
    def test_unknown_strategy(self):
        with pytest.raises(ScheduleError):
            WSECereSZ(strategy="magic")

    def test_constant_field_redirected_to_host(self):
        sim = WSECereSZ(rows=1, cols=1, strategy="rows")
        with pytest.raises(CompressionError, match="constant"):
            sim.compress(np.full(64, 2.0, dtype=np.float32), rel=1e-3)

    def test_different_error_bounds_still_bit_exact(self, walk):
        for rel in (1e-2, 1e-4):
            ref = CereSZ().compress(walk, rel=rel)
            sim = WSECereSZ(rows=2, cols=2, strategy="multi")
            assert sim.compress(walk, rel=rel).stream == ref.stream

    def test_2d_field_bit_exact(self, field_2d):
        ref = CereSZ().compress(field_2d, rel=1e-3)
        sim = WSECereSZ(rows=2, cols=2, strategy="multi")
        assert sim.compress(field_2d, rel=1e-3).stream == ref.stream


class TestFig13AtSimulatorScale:
    """The Fig 13 ordering — shorter pipelines win — must already be
    visible in the discrete-event simulator on a fixed small mesh."""

    def test_makespan_grows_with_pipeline_length(self):
        rng = np.random.default_rng(13)
        data = np.cumsum(rng.normal(size=32 * 36)).astype(np.float32)
        makespans = []
        for pl in (1, 2, 3):
            sim = WSECereSZ(
                rows=1, cols=6, strategy="multi", pipeline_length=pl
            )
            makespans.append(sim.compress(data, eps=0.05).makespan_cycles)
        assert makespans[0] < makespans[1] < makespans[2]
