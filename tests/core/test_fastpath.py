"""Property suite for the fused host kernels (core.fastpath).

The fused single-pass compress/decompress kernels must be *bit-identical*
to the reference multi-stage pipeline — the reference stays in the tree
as the independent oracle, and this suite is the enforcement: every
container flavor (v1 sequential, v2 indexed, v3 checksummed, CSZX
sharded), both float dtypes, ragged tails, all-zero blocks, and the
error-path parity (NaN/Inf, quantizer overflow) are held byte- or
bit-equal across the two paths.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CompressionError, ErrorBoundError
from repro.core.compressor import CereSZ
from repro.core.parallel import compress_sharded

REF = CereSZ(fast=False)
FUS = CereSZ(fast=True)


def _field(n, dtype, seed, kind="smooth"):
    rng = np.random.default_rng(seed)
    if kind == "smooth":
        t = np.linspace(0.0, 6.0, n)
        vals = np.sin(t) * 100.0 + rng.normal(0.0, 1e-3, n)
    else:
        vals = rng.normal(0.0, 50.0, n)
    return vals.astype(dtype)


def _assert_pair(data, **kw):
    """Compress both paths, assert byte-identity, return the stream.

    When the bound is infeasible for the dtype (e.g. below the float32
    resolution at the field's magnitude) the reference raises — then the
    fused path must raise the same error type, and ``None`` is returned.
    """
    try:
        a = REF.compress(data, **kw)
    except (ErrorBoundError, CompressionError) as exc:
        with pytest.raises(type(exc)):
            FUS.compress(data, **kw)
        return None
    b = FUS.compress(data, **kw)
    assert a.stream == b.stream
    return a.stream


def _assert_decode_pair(stream, reference_field, eps):
    out_ref = REF.decompress(stream)
    out_fus = FUS.decompress(stream)
    assert out_ref.dtype == out_fus.dtype
    assert out_ref.tobytes() == out_fus.tobytes()
    ref64 = np.asarray(reference_field, dtype=np.float64)
    assert np.max(np.abs(out_fus.astype(np.float64) - ref64)) <= eps
    return out_fus


class TestFusedCompressBitExact:
    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    @pytest.mark.parametrize("eps", [1e-1, 1e-3, 1e-6])
    @pytest.mark.parametrize("kind", ["smooth", "noisy"])
    def test_stream_identity_plain(self, dtype, eps, kind):
        data = _field(4096, dtype, seed=1, kind=kind)
        stream = _assert_pair(data, eps=eps, index=False)
        if stream is not None:
            _assert_decode_pair(stream, data, eps)

    @pytest.mark.parametrize("eps", [1e-2, 1e-4])
    def test_stream_identity_indexed(self, eps):
        data = _field(4096, np.float32, seed=2)
        stream = _assert_pair(data, eps=eps, index=True)
        _assert_decode_pair(stream, data, eps)

    def test_stream_identity_checksummed(self):
        data = _field(4096, np.float32, seed=3)
        stream = _assert_pair(data, eps=1e-3, checksum=True)
        _assert_decode_pair(stream, data, 1e-3)

    def test_rel_mode_identity(self):
        data = _field(4096, np.float32, seed=4)
        a = REF.compress(data, rel=1e-3)
        b = FUS.compress(data, rel=1e-3)
        assert a.stream == b.stream

    @pytest.mark.parametrize("n", [1, 7, 31, 33, 4095, 4097])
    def test_ragged_tails(self, n):
        """Sizes straddling block boundaries: the tail block is padded."""
        data = _field(n, np.float32, seed=5)
        stream = _assert_pair(data, eps=1e-3, index=True)
        out = _assert_decode_pair(stream, data, 1e-3)
        assert out.size == n

    def test_all_zero_blocks(self):
        """A constant-offset field quantizes to all-zero codes (fl=0)."""
        data = np.full(2048, 0.25, dtype=np.float32)
        data[0] += 1e-9  # not constant -> not the exact-constant container
        stream = _assert_pair(data, eps=1.0, index=True)
        _assert_decode_pair(stream, data, 1.0)

    def test_single_partial_block(self):
        data = np.array([1.0, -2.0, 3.5], dtype=np.float32)
        stream = _assert_pair(data, eps=1e-2, index=False)
        _assert_decode_pair(stream, data, 1e-2)

    @given(
        n=st.integers(1, 600),
        eps_exp=st.integers(-6, 1),
        seed=st.integers(0, 2**16),
        dtype=st.sampled_from([np.float32, np.float64]),
        index=st.booleans(),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_fused_equals_reference(self, n, eps_exp, seed, dtype, index):
        data = _field(n, dtype, seed=seed, kind="noisy")
        eps = 10.0 ** eps_exp
        stream = _assert_pair(data, eps=eps, index=index)
        if stream is not None:
            _assert_decode_pair(stream, data, eps)


class TestFusedSharded:
    def test_sharded_byte_identity(self):
        """CSZX shards byte-identical, fused vs reference, incl. v3 CRC."""
        data = _field(1 << 14, np.float32, seed=6)
        for checksum in (False, True):
            a = compress_sharded(
                data, eps=1e-3, codec=REF, jobs=2,
                shard_elements=2048, checksum=checksum,
            )
            b = compress_sharded(
                data, eps=1e-3, codec=FUS, jobs=2,
                shard_elements=2048, checksum=checksum,
            )
            assert a.stream == b.stream
            _assert_decode_pair(a.stream, data, 1e-3)

    def test_jobs_invariance(self):
        """jobs=1 and jobs=4 produce identical bytes (fused path)."""
        data = _field(1 << 14, np.float32, seed=7)
        one = compress_sharded(
            data, eps=1e-3, codec=FUS, jobs=1, shard_elements=2048,
        )
        four = compress_sharded(
            data, eps=1e-3, codec=FUS, jobs=4, shard_elements=2048,
        )
        assert one.stream == four.stream


class TestFusedErrorParity:
    """Both paths must fail the same way on the same bad input."""

    @pytest.mark.parametrize("bad", [np.nan, np.inf, -np.inf])
    def test_nonfinite_rejected_both_paths(self, bad):
        data = _field(256, np.float32, seed=8)
        data[100] = bad
        for codec in (REF, FUS):
            with pytest.raises(ErrorBoundError):
                codec.compress(data, eps=1e-3)

    def test_quantizer_overflow_both_paths(self):
        # M/(2*eps) just over 2**50: overflow guard, not the bound check.
        data = np.full(64, 1e6, dtype=np.float64)
        data[0] = 0.0
        eps = 1e6 / 2.0**52
        for codec in (REF, FUS):
            with pytest.raises(CompressionError):
                codec.compress(data, eps=eps)

    def test_empty_rejected_both_paths(self):
        for codec in (REF, FUS):
            with pytest.raises(CompressionError):
                codec.compress(np.array([], dtype=np.float32), eps=1e-3)


class TestFusedDecodeDispatch:
    def test_reference_stream_fused_decode(self):
        """A stream written by the reference path decodes through the
        fused decoder to the same bits (and vice versa)."""
        data = _field(4096, np.float32, seed=9)
        stream = REF.compress(data, eps=1e-3, index=True).stream
        a = REF.decompress(stream, fast=False)
        b = REF.decompress(stream, fast=True)
        assert a.tobytes() == b.tobytes()

    def test_constant_field_both_paths(self):
        data = np.full(500, 3.25, dtype=np.float32)
        stream = _assert_pair(data, rel=1e-3)
        out = FUS.decompress(stream)
        assert np.array_equal(out, data)

    def test_shape_restored(self):
        data = _field(1024, np.float32, seed=10).reshape(32, 32)
        stream = _assert_pair(data, eps=1e-3)
        out = FUS.decompress(stream)
        assert out.shape == (32, 32)
        assert out.tobytes() == REF.decompress(stream).tobytes()
