"""Tests for pipeline-length tuning (paper Section 4.4)."""

import numpy as np
import pytest

from repro.errors import ScheduleError
from repro.config import WaferConfig
from repro.core.tuning import (
    min_feasible_pipeline_length,
    pipeline_working_set,
    tune_pipeline_length,
)


class TestWorkingSet:
    def test_grows_with_block_size(self):
        small = pipeline_working_set(10, 1, block_size=32)
        large = pipeline_working_set(10, 1, block_size=256)
        assert large > small

    def test_grows_with_fixed_length(self):
        narrow = pipeline_working_set(4, 1)
        wide = pipeline_working_set(30, 1)
        assert wide > narrow

    def test_paper_configuration_fits_one_pe(self):
        """L = 32 fits comfortably — the premise of Fig 13's pl = 1."""
        from repro.config import PE_SRAM_BYTES

        ws = pipeline_working_set(32, 1, block_size=32)
        assert ws < PE_SRAM_BYTES // 3

    def test_invalid_lengths(self):
        with pytest.raises(ScheduleError):
            pipeline_working_set(4, 0)
        with pytest.raises(ScheduleError):
            pipeline_working_set(2, 100)


class TestMinFeasibleLength:
    def test_default_block_is_one(self):
        assert min_feasible_pipeline_length(17) == 1

    def test_tiny_sram_forces_failure_with_guidance(self):
        with pytest.raises(ScheduleError, match="reduce the block size"):
            min_feasible_pipeline_length(
                32, block_size=4096, sram_bytes=16 * 1024
            )

    def test_code_reserve_validated(self):
        with pytest.raises(ScheduleError, match="code reserve"):
            min_feasible_pipeline_length(
                4, sram_bytes=1024, code_reserve=4096
            )


class TestTune:
    @pytest.fixture(scope="class")
    def data(self):
        rng = np.random.default_rng(0)
        return np.cumsum(rng.normal(size=32 * 500)).astype(np.float32)

    def test_paper_answer_is_length_one(self, data):
        """Fig 13: the 1-PE pipeline wins at the paper's configuration."""
        result = tune_pipeline_length(data, eps=0.05)
        assert result.pipeline_length == 1

    def test_sweep_is_monotone_decreasing(self, data):
        result = tune_pipeline_length(data, eps=0.05, max_length=6)
        rates = [gbs for _, gbs in result.sweep]
        assert all(a >= b for a, b in zip(rates, rates[1:]))

    def test_feasible_lengths_start_at_floor(self, data):
        result = tune_pipeline_length(data, eps=0.05, max_length=4)
        assert result.feasible_lengths[0] == 1
        assert result.feasible_lengths == (1, 2, 3, 4)

    def test_narrow_wafer_caps_the_sweep(self, data):
        result = tune_pipeline_length(
            data, eps=0.05, wafer=WaferConfig(rows=4, cols=2), max_length=8
        )
        assert max(result.feasible_lengths) <= 2

    def test_best_throughput_reported(self, data):
        result = tune_pipeline_length(data, eps=0.05)
        assert result.throughput_gbs == max(g for _, g in result.sweep)
