"""Tests for random-access decompression and the PSNR-target mode."""

import numpy as np
import pytest

from repro import CereSZ
from repro.errors import CompressionError, ErrorBoundError
from repro.core.access import block_index, decompress_range
from repro.core.nd_variant import CereSZND
from repro.core.quantize import psnr_to_relative
from repro.metrics.quality import psnr as measure_psnr


@pytest.fixture(scope="module")
def stream_and_field():
    rng = np.random.default_rng(4)
    data = np.cumsum(rng.normal(size=3000)).astype(np.float32)
    data[1000:1500] = 0.0  # zero blocks in the middle
    result = CereSZ().compress(data, rel=1e-3)
    return result, data


class TestDecompressRange:
    def test_matches_full_reconstruction(self, stream_and_field):
        result, data = stream_and_field
        full = CereSZ().decompress(result.stream)
        for start, stop in [(0, 32), (0, 3000), (100, 900), (2950, 3000)]:
            part = decompress_range(result.stream, start, stop)
            assert np.array_equal(part, full[start:stop]), (start, stop)

    def test_unaligned_ranges(self, stream_and_field):
        result, data = stream_and_field
        full = CereSZ().decompress(result.stream)
        for start, stop in [(1, 2), (31, 33), (17, 1999), (1499, 1501)]:
            part = decompress_range(result.stream, start, stop)
            assert np.array_equal(part, full[start:stop]), (start, stop)

    def test_range_through_zero_blocks(self, stream_and_field):
        result, data = stream_and_field
        part = decompress_range(result.stream, 1100, 1400)
        assert not part.any()

    def test_empty_range(self, stream_and_field):
        result, _ = stream_and_field
        assert decompress_range(result.stream, 50, 50).size == 0

    def test_out_of_bounds_rejected(self, stream_and_field):
        result, _ = stream_and_field
        with pytest.raises(CompressionError, match="outside"):
            decompress_range(result.stream, 0, 4000)
        with pytest.raises(CompressionError):
            decompress_range(result.stream, -1, 10)

    def test_nd_streams_rejected(self, field_2d):
        nd = CereSZND().compress(field_2d, rel=1e-3)
        with pytest.raises(CompressionError, match="random access"):
            decompress_range(nd.stream, 0, 32)

    def test_constant_stream_range(self):
        result = CereSZ().compress(np.full(200, 7.5, dtype=np.float32), rel=1e-3)
        part = decompress_range(result.stream, 10, 20)
        assert np.all(part == np.float32(7.5))

    def test_block_index(self, stream_and_field):
        result, _ = stream_and_field
        idx = block_index(result.stream)
        assert idx.size == -(-3000 // 32)
        assert np.all(np.diff(idx) >= 4)  # at least a header per block


class TestPsnrTarget:
    def test_conversion_matches_fig15_identity(self):
        """REL 1e-4 <-> 84.77 dB (the paper's Fig 15 numbers)."""
        assert psnr_to_relative(84.77) == pytest.approx(1e-4, rel=0.01)

    @pytest.mark.parametrize("target", [50.0, 70.0, 90.0])
    def test_achieved_psnr_close_to_target(self, target, rng):
        data = np.cumsum(rng.normal(size=60000)).astype(np.float32)
        codec = CereSZ()
        result = codec.compress(data, psnr=target)
        got = measure_psnr(data, codec.decompress(result.stream))
        assert got == pytest.approx(target, abs=0.6)

    def test_higher_target_lower_ratio(self, smooth_field):
        codec = CereSZ()
        low = codec.compress(smooth_field, psnr=50.0)
        high = codec.compress(smooth_field, psnr=100.0)
        assert high.ratio < low.ratio

    def test_exclusive_with_other_modes(self, smooth_field):
        codec = CereSZ()
        with pytest.raises(ErrorBoundError):
            codec.compress(smooth_field, psnr=80.0, rel=1e-3)
        with pytest.raises(ErrorBoundError):
            codec.compress(smooth_field, psnr=80.0, eps=0.1)

    def test_invalid_targets(self, smooth_field):
        codec = CereSZ()
        with pytest.raises(ErrorBoundError):
            codec.compress(smooth_field, psnr=-5.0)
        with pytest.raises(ErrorBoundError):
            codec.compress(smooth_field, psnr=float("inf"))
