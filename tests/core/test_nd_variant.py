"""Tests for CereSZ-ND (the higher-dimensional Lorenzo extension)."""

import numpy as np
import pytest

from repro import CereSZ
from repro.core.nd_variant import CereSZND
from repro.metrics.errorbound import check_error_bound


class TestRoundTrip:
    def test_1d(self, smooth_field):
        codec = CereSZND()
        result = codec.compress(smooth_field, rel=1e-3)
        back = codec.decompress(result.stream)
        assert back.shape == smooth_field.shape
        assert check_error_bound(smooth_field, back, result.eps)

    def test_2d(self, field_2d):
        codec = CereSZND()
        result = codec.compress(field_2d, rel=1e-3)
        back = codec.decompress(result.stream)
        assert back.shape == field_2d.shape
        assert check_error_bound(field_2d, back, result.eps)

    def test_3d(self, field_3d):
        codec = CereSZND()
        result = codec.compress(field_3d, rel=1e-4)
        back = codec.decompress(result.stream)
        assert check_error_bound(field_3d, back, result.eps)

    def test_partial_tail(self):
        data = np.linspace(0, 10, 77).astype(np.float32)
        codec = CereSZND()
        result = codec.compress(data, eps=0.01)
        back = codec.decompress(result.stream)
        assert back.size == 77
        assert check_error_bound(data, back, 0.01)

    def test_constant_field(self):
        codec = CereSZND()
        data = np.full((5, 5), 2.0, dtype=np.float32)
        result = codec.compress(data, rel=1e-3)
        assert np.array_equal(codec.decompress(result.stream), data)


class TestCrossDecoding:
    def test_base_codec_decodes_nd_streams(self, field_2d):
        """The predictor flag makes streams self-describing."""
        nd_stream = CereSZND().compress(field_2d, rel=1e-3).stream
        back = CereSZ().decompress(nd_stream)
        vrange = float(field_2d.max() - field_2d.min())
        assert check_error_bound(field_2d, back, 1e-3 * vrange)

    def test_nd_codec_decodes_blocked_streams(self, field_2d):
        blocked = CereSZ().compress(field_2d, rel=1e-3).stream
        back = CereSZND().decompress(blocked)
        assert np.array_equal(back, CereSZ().decompress(blocked))

    def test_streams_differ(self, field_2d):
        s1 = CereSZ().compress(field_2d, rel=1e-3).stream
        s2 = CereSZND().compress(field_2d, rel=1e-3).stream
        assert s1 != s2


class TestRatioAdvantage:
    def test_nd_wins_on_2d_fields(self, field_2d):
        """The paper's claim: higher-dimensional Lorenzo -> higher ratio."""
        blocked = CereSZ().compress(field_2d, rel=1e-3)
        nd = CereSZND().compress(field_2d, rel=1e-3)
        assert nd.ratio > blocked.ratio

    def test_nd_wins_on_3d_fields(self, field_3d):
        blocked = CereSZ().compress(field_3d, rel=1e-3)
        nd = CereSZND().compress(field_3d, rel=1e-3)
        assert nd.ratio > blocked.ratio

    def test_no_block_leader_penalty(self):
        """Blocked-1D pays an absolute leader per block; ND does not, so a
        large-offset smooth field shows the gap starkly."""
        y, x = np.mgrid[0:64, 0:96]
        # Increment of exactly two quantization bins per grid step: the
        # N-D operator annihilates the plane, the blocked form still pays
        # a ~17-bit absolute leader per block.
        field = (1000.0 + 0.04 * (x + y)).astype(np.float32)
        blocked = CereSZ().compress(field, eps=0.01)
        nd = CereSZND().compress(field, eps=0.01)
        assert nd.zero_block_fraction > blocked.zero_block_fraction
        assert nd.ratio > 2 * blocked.ratio

    def test_same_quality_as_blocked(self, field_2d):
        """Same pre-quantization -> identical reconstructions."""
        b1 = CereSZ()
        b2 = CereSZND()
        back1 = b1.decompress(b1.compress(field_2d, rel=1e-3).stream)
        back2 = b2.decompress(b2.compress(field_2d, rel=1e-3).stream)
        assert np.array_equal(back1, back2)

    def test_ratio_still_capped_at_32(self):
        field = np.zeros((64, 64), dtype=np.float32)
        field[0, 0] = 1.0
        result = CereSZND().compress(field, rel=1e-2)
        assert result.ratio <= 32.5
