"""Tests for block partitioning and zero-block detection."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CompressionError
from repro.core.blocks import (
    merge_blocks,
    partition_blocks,
    validate_block_size,
    zero_block_mask,
)


class TestValidateBlockSize:
    @pytest.mark.parametrize("good", [8, 16, 32, 64, 128])
    def test_accepts_multiples_of_8(self, good):
        assert validate_block_size(good) == good

    @pytest.mark.parametrize("bad", [0, -8, 7, 12, 33])
    def test_rejects_others(self, bad):
        with pytest.raises(CompressionError):
            validate_block_size(bad)


class TestPartition:
    def test_exact_multiple(self):
        blocks, n = partition_blocks(np.arange(64), 32)
        assert blocks.shape == (2, 32)
        assert n == 64

    def test_tail_padding_with_zeros(self):
        blocks, n = partition_blocks(np.ones(40), 32)
        assert blocks.shape == (2, 32)
        assert n == 40
        assert not blocks[1, 8:].any()
        assert blocks[1, :8].all()

    def test_flattens_nd_input(self):
        blocks, n = partition_blocks(np.ones((4, 16)), 32)
        assert blocks.shape == (2, 32)
        assert n == 64

    def test_single_element(self):
        blocks, n = partition_blocks(np.array([5.0]), 32)
        assert blocks.shape == (1, 32)
        assert blocks[0, 0] == 5.0
        assert n == 1

    def test_preserves_dtype(self):
        blocks, _ = partition_blocks(np.arange(8, dtype=np.int64), 8)
        assert blocks.dtype == np.int64

    def test_empty_input(self):
        blocks, n = partition_blocks(np.zeros(0), 32)
        assert blocks.shape == (0, 32)
        assert n == 0


class TestMerge:
    def test_round_trip(self):
        data = np.arange(100, dtype=np.float32)
        blocks, n = partition_blocks(data, 32)
        assert np.array_equal(merge_blocks(blocks, n), data)

    def test_trims_padding(self):
        blocks, n = partition_blocks(np.arange(33), 32)
        assert merge_blocks(blocks, n).size == 33

    def test_rejects_overlong_trim(self):
        blocks, _ = partition_blocks(np.arange(32), 32)
        with pytest.raises(CompressionError):
            merge_blocks(blocks, 100)

    def test_requires_2d(self):
        with pytest.raises(CompressionError):
            merge_blocks(np.arange(8), 8)

    @given(
        n=st.integers(1, 500),
        block=st.sampled_from([8, 16, 32, 64]),
    )
    @settings(max_examples=100, deadline=None)
    def test_round_trip_property(self, n, block):
        data = np.arange(n, dtype=np.float64) + 0.5
        blocks, count = partition_blocks(data, block)
        assert count == n
        assert np.array_equal(merge_blocks(blocks, count), data)


class TestZeroBlockMask:
    def test_identifies_zero_blocks(self):
        blocks = np.array([[0, 0, 0], [0, 1, 0], [0, 0, 0]], dtype=np.int64)
        assert zero_block_mask(blocks).tolist() == [True, False, True]

    def test_negative_values_are_nonzero(self):
        blocks = np.array([[0, -1, 0]], dtype=np.int64)
        assert zero_block_mask(blocks).tolist() == [False]

    def test_requires_2d(self):
        with pytest.raises(CompressionError):
            zero_block_mask(np.zeros(8, dtype=np.int64))
