"""Tests for Algorithm 1 and the pipeline-planning helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ScheduleError
from repro.core.schedule import (
    distribute_substages,
    estimate_fixed_length,
    max_feasible_pipeline_length,
)
from repro.core.stages import SubStage, compression_substages, total_cycles


def make_stages(cycles):
    return [
        SubStage(f"s{i}", float(c), "encode") for i, c in enumerate(cycles)
    ]


class TestDistribute:
    def test_single_group_gets_everything(self):
        stages = make_stages([1, 2, 3])
        dist = distribute_substages(stages, 1)
        assert dist.length == 1
        assert dist.group_cycles == (6.0,)

    def test_even_split(self):
        stages = make_stages([10, 10, 10, 10])
        dist = distribute_substages(stages, 2)
        assert dist.group_cycles == (20.0, 20.0)
        assert dist.imbalance == 1.0

    def test_order_preserved(self):
        """Stages execute in sequence: groups must be contiguous runs."""
        stages = make_stages([5, 1, 7, 2, 9, 3])
        dist = distribute_substages(stages, 3)
        flattened = [s.name for g in dist.groups for s in g]
        assert flattened == [s.name for s in stages]

    def test_every_stage_assigned_exactly_once(self):
        stages = compression_substages(13)
        dist = distribute_substages(stages, 5)
        names = [s.name for g in dist.groups for s in g]
        assert sorted(names) == sorted(s.name for s in stages)

    def test_no_empty_groups(self):
        stages = compression_substages(17)
        for m in range(1, len(stages) + 1):
            dist = distribute_substages(stages, m)
            assert all(len(g) >= 1 for g in dist.groups), m

    def test_greedy_fill_rule(self):
        """Paper Alg 1: fill group until it reaches C/m, then move on."""
        stages = make_stages([4, 4, 4, 100])
        dist = distribute_substages(stages, 2)
        # Target C/m = 56; the first group keeps taking until >= 56.
        assert [s.name for s in dist.groups[0]] == ["s0", "s1", "s2"]
        assert [s.name for s in dist.groups[1]] == ["s3"]

    def test_bottleneck_reporting(self):
        stages = make_stages([30, 10, 10])
        dist = distribute_substages(stages, 2)
        assert dist.bottleneck_cycles == max(dist.group_cycles)
        assert dist.imbalance >= 1.0

    def test_pipeline_longer_than_stages_rejected(self):
        with pytest.raises(ScheduleError, match="longer"):
            distribute_substages(make_stages([1, 2]), 3)

    def test_zero_pes_rejected(self):
        with pytest.raises(ScheduleError):
            distribute_substages(make_stages([1]), 0)

    def test_empty_stages_rejected(self):
        with pytest.raises(ScheduleError):
            distribute_substages([], 1)

    def test_stage_names_helper(self):
        dist = distribute_substages(make_stages([1, 1]), 2)
        assert dist.stage_names() == [["s0"], ["s1"]]

    @given(
        cycles=st.lists(st.floats(1.0, 1e4), min_size=1, max_size=30),
        data=st.data(),
    )
    @settings(max_examples=150, deadline=None)
    def test_distribution_invariants(self, cycles, data):
        stages = make_stages(cycles)
        m = data.draw(st.integers(1, len(stages)))
        dist = distribute_substages(stages, m)
        # 1. Exactly m groups, all non-empty.
        assert dist.length == m
        assert all(g for g in dist.groups)
        # 2. Concatenation reproduces the input order.
        assert [s.name for g in dist.groups for s in g] == [
            s.name for s in stages
        ]
        # 3. Total work preserved.
        assert dist.total == pytest.approx(total_cycles(stages))
        # 4. Bottleneck at least the ideal share.
        assert dist.bottleneck_cycles >= dist.total / m - 1e-9


class TestMaxFeasibleLength:
    def test_formula(self):
        stages = make_stages([50, 25, 25])  # C=100, t1=50 -> floor 2
        assert max_feasible_pipeline_length(stages) == 2

    def test_uniform_stages(self):
        stages = make_stages([10] * 8)
        assert max_feasible_pipeline_length(stages) == 8

    def test_at_least_one(self):
        stages = make_stages([100.0])
        assert max_feasible_pipeline_length(stages) == 1

    def test_paper_configuration(self):
        """With Multiplication dominating, the feasible length is C/t1."""
        stages = compression_substages(17)
        limit = max_feasible_pipeline_length(stages)
        mult = next(s for s in stages if s.name == "multiplication")
        assert limit == int(total_cycles(stages) // mult.cycles)

    def test_empty_rejected(self):
        with pytest.raises(ScheduleError):
            max_feasible_pipeline_length([])

    def test_zero_cycles_rejected(self):
        with pytest.raises(ScheduleError):
            max_feasible_pipeline_length(make_stages([0.0, 0.0]))


class TestEstimateFixedLength:
    def test_full_sample_is_exact_max(self, smooth_field):
        from repro.core.blocks import partition_blocks
        from repro.core.encoding import block_fixed_lengths
        from repro.core.lorenzo import lorenzo_predict
        from repro.core.quantize import prequantize

        eps = 0.01
        est = estimate_fixed_length(smooth_field, eps, fraction=1.0)
        blocks, _ = partition_blocks(prequantize(smooth_field, eps), 32)
        truth = int(block_fixed_lengths(lorenzo_predict(blocks)).max())
        assert est == truth

    def test_sample_never_exceeds_truth(self, smooth_field):
        eps = 0.01
        full = estimate_fixed_length(smooth_field, eps, fraction=1.0)
        sampled = estimate_fixed_length(smooth_field, eps, fraction=0.05)
        assert sampled <= full

    def test_deterministic_in_seed(self, smooth_field):
        a = estimate_fixed_length(smooth_field, 0.01, seed=7)
        b = estimate_fixed_length(smooth_field, 0.01, seed=7)
        assert a == b

    def test_five_percent_close_on_homogeneous_data(self, rng):
        """On i.i.d. blocks the 5% sample finds the max fl almost surely."""
        data = (rng.standard_normal(32 * 2000) * 100).astype(np.float32)
        full = estimate_fixed_length(data, 0.5, fraction=1.0)
        sampled = estimate_fixed_length(data, 0.5, fraction=0.05)
        assert abs(full - sampled) <= 1

    def test_bad_fraction_rejected(self, smooth_field):
        with pytest.raises(ScheduleError):
            estimate_fixed_length(smooth_field, 0.01, fraction=0.0)
        with pytest.raises(ScheduleError):
            estimate_fixed_length(smooth_field, 0.01, fraction=1.5)
