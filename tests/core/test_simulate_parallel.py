"""Row-parallel and legacy-engine simulation equivalence.

The performance layer must be invisible in results: the optimized engine
(route cache, event dedup, zero-copy sends, fused kernels) and row-parallel
simulation with ``jobs > 1`` have to reproduce the legacy single-process
run cycle for cycle and byte for byte. These tests sweep the plan matrix
and compare makespans, compressed bytes, per-PE traces, and per-stage
counter breakdowns across all three execution modes.
"""

import numpy as np
import pytest

from repro.config import BLOCK_SIZE
from repro.core.plan import (
    plan_multi_pipeline,
    plan_pipeline,
    plan_row_parallel,
    plan_staged_multi_pipeline,
    row_chunks,
    row_partitionable,
    split_rows,
)
from repro.core.schedule import distribute_substages
from repro.core.simulate import simulate_plan
from repro.core.stages import compression_substages
from repro.core.wse_compressor import WSECereSZ
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer

EPS = 0.01


def _blocks(num_blocks: int, seed: int = 11) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.normal(size=(num_blocks, BLOCK_SIZE)).cumsum(axis=1)


def _distribution(length: int):
    return distribute_substages(
        compression_substages(8, BLOCK_SIZE), length
    )


def _plan(strategy: str, blocks: np.ndarray):
    if strategy == "rows":
        return plan_row_parallel(blocks, EPS, rows=3, cols=1)
    if strategy == "pipeline":
        return plan_pipeline(blocks, EPS, _distribution(3), rows=2, cols=3)
    if strategy == "multi":
        return plan_multi_pipeline(blocks, EPS, rows=2, cols=3)
    return plan_staged_multi_pipeline(
        blocks, EPS, _distribution(2), rows=2, cols=4
    )


STRATEGIES = ["rows", "pipeline", "multi", "staged"]


def _trace_rows(trace):
    return [
        (t.row, t.col, t.compute_cycles, t.relay_cycles, t.tasks_run,
         t.finished_at)
        for t in trace.traces
    ]


def _counter_rows(trace):
    return [
        (nc.label, nc.kind, nc.row, nc.col, nc.blocks_relayed,
         nc.wavelets_sent, nc.blocks_emitted, dict(nc.stage_cycles))
        for nc in trace.node_counters
    ]


@pytest.mark.parametrize("strategy", STRATEGIES)
class TestExecutionModeEquivalence:
    def test_parallel_matches_serial(self, strategy):
        blocks = _blocks(13)  # non-divisible across every mesh above
        serial = simulate_plan(_plan(strategy, blocks))
        parallel = simulate_plan(_plan(strategy, blocks), jobs=2)
        assert parallel.partitions == 2
        assert (
            serial.outputs.stream(13) == parallel.outputs.stream(13)
        )
        assert (
            serial.report.makespan_cycles == parallel.report.makespan_cycles
        )
        assert (
            serial.report.events_processed
            == parallel.report.events_processed
        )
        assert serial.report.tasks_run == parallel.report.tasks_run
        assert _trace_rows(serial.report.trace) == _trace_rows(
            parallel.report.trace
        )
        assert _counter_rows(serial.report.trace) == _counter_rows(
            parallel.report.trace
        )

    def test_parallel_metrics_totals_match_serial(self, strategy):
        """Counter totals are merge-invariant: workers' fabric/engine
        counters sum exactly and trace metrics come from the merged
        recorder, so jobs=N equals jobs=1 for every counter."""
        blocks = _blocks(13)
        m1, m2 = MetricsRegistry(), MetricsRegistry()
        simulate_plan(_plan(strategy, blocks), metrics=m1)
        run2 = simulate_plan(_plan(strategy, blocks), jobs=2, metrics=m2)
        assert run2.partitions == 2
        assert m1.counter_totals() == m2.counter_totals()
        # Labeled cells agree too, not just per-name sums.
        for metric in m1:
            if metric.kind == "counter":
                assert metric.values == m2.get(metric.name).values, metric.name

    def test_parallel_timeline_matches_serial(self, strategy):
        """The merged timeline holds exactly the serial run's PE events
        (worker captures are filtered to their own rows)."""
        blocks = _blocks(13)
        t1 = Tracer(level="timeline")
        t2 = Tracer(level="timeline")
        simulate_plan(_plan(strategy, blocks), tracer=t1)
        simulate_plan(_plan(strategy, blocks), jobs=2, tracer=t2)

        def key(events):
            return sorted(
                (e.row, e.col, e.name, e.start_cycles, e.dur_cycles)
                for e in events
            )

        assert key(t1.pe_events) == key(t2.pe_events)
        # Worker spans come back re-tagged onto per-worker tracks.
        assert {s.tid for s in t2.spans if s.name == "engine.run"} == {1, 2}

    def test_observed_run_is_byte_identical(self, strategy):
        """Tracing and metrics must never perturb simulation results."""
        blocks = _blocks(13)
        plain = simulate_plan(_plan(strategy, blocks))
        observed = simulate_plan(
            _plan(strategy, blocks),
            tracer=Tracer(level="timeline"),
            metrics=MetricsRegistry(),
        )
        assert plain.outputs.stream(13) == observed.outputs.stream(13)
        assert (
            plain.report.makespan_cycles == observed.report.makespan_cycles
        )
        assert _trace_rows(plain.report.trace) == _trace_rows(
            observed.report.trace
        )

    def test_optimized_matches_legacy(self, strategy):
        blocks = _blocks(13)
        legacy = simulate_plan(
            _plan(strategy, blocks), optimize=False, fast_kernels=False
        )
        optimized = simulate_plan(_plan(strategy, blocks))
        assert legacy.outputs.stream(13) == optimized.outputs.stream(13)
        assert (
            legacy.report.makespan_cycles
            == optimized.report.makespan_cycles
        )
        assert legacy.report.tasks_run == optimized.report.tasks_run
        assert _trace_rows(legacy.report.trace) == _trace_rows(
            optimized.report.trace
        )
        assert _counter_rows(legacy.report.trace) == _counter_rows(
            optimized.report.trace
        )
        # The optimizations exist to shrink the event queue.
        assert (
            optimized.report.events_processed
            <= legacy.report.events_processed
        )


class TestRowPartitioning:
    def test_all_strategies_are_row_partitionable(self):
        blocks = _blocks(13)
        for strategy in STRATEGIES:
            assert row_partitionable(_plan(strategy, blocks)), strategy

    def test_split_covers_every_row_and_block(self):
        plan = _plan("rows", _blocks(13))
        subs = split_rows(plan, 2)
        assert [s.partial for s in subs] == [True, True]
        for sub in subs:
            sub.validate()  # partial plans skip only the coverage check
        rows = sorted(r for sub in subs for r in {n.row for n in sub.nodes})
        assert rows == list(range(plan.rows))
        emitted = sorted(
            idx
            for sub in subs
            for node in sub.nodes
            if node.kind == "compute"
            for idx in node.blocks
        )
        assert emitted == list(range(plan.num_blocks))

    def test_row_chunks_are_deterministic_and_balanced(self):
        assert row_chunks(5, 2) == [(0, 1, 2), (3, 4)]
        assert row_chunks(2, 8) == [(0,), (1,)]
        assert row_chunks(4, 1) == [(0, 1, 2, 3)]

    def test_single_row_plan_falls_back_to_serial(self):
        blocks = _blocks(5)
        plan = plan_row_parallel(blocks, EPS, rows=1, cols=1)
        run = simulate_plan(plan, jobs=4)
        assert run.partitions == 1
        assert run.outputs.stream(5)


class TestDecompressionParallel:
    def test_wafer_decompress_parity(self):
        rng = np.random.default_rng(3)
        data = np.cumsum(rng.normal(size=6 * BLOCK_SIZE)).astype(np.float32)
        stream = (
            WSECereSZ(rows=3, cols=1, strategy="rows")
            .compress(data, eps=EPS)
            .stream
        )
        serial = WSECereSZ(rows=3, cols=1, strategy="rows")
        parallel = WSECereSZ(rows=3, cols=1, strategy="rows", jobs=2)
        out_s, rep_s = serial.decompress_on_wafer(stream)
        out_p, rep_p = parallel.decompress_on_wafer(stream)
        assert np.array_equal(out_s, out_p)
        assert rep_s.makespan_cycles == rep_p.makespan_cycles
        assert rep_s.events_processed == rep_p.events_processed
